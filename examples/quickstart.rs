//! Quickstart: compile an MSGR-C script, build a logical network, inject
//! messengers, and inspect the results — on both platforms.
//!
//! Run with: `cargo run --example quickstart`

use messengers::core::topology::LogicalTopology;
use messengers::core::{ClusterConfig, DaemonId, SimCluster, ThreadCluster};
use messengers::vm::{Dir, Value};

const SCRIPT: &str = r#"
// Walk a ring of logical nodes, incrementing a counter at each stop and
// recording the total distance travelled in the messenger's own state.
walker(laps, ring_len) {
    int steps, total = laps * ring_len;
    node int visits;
    for (steps = 0; steps < total; steps = steps + 1) {
        visits = visits + 1;
        hop(ll = "ring"; ldir = +);
    }
    visits = visits + 1000;   // mark the final node
}
"#;

fn build_ring(n: usize, daemons: usize) -> LogicalTopology {
    let mut topo = LogicalTopology::new();
    for i in 0..n {
        topo.node(Value::str(format!("r{i}")), DaemonId((i % daemons) as u16));
    }
    for i in 0..n {
        topo.link(
            Value::str(format!("r{i}")),
            Value::str(format!("r{}", (i + 1) % n)),
            Value::str("ring"),
            Dir::Forward,
        );
    }
    topo
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = messengers::lang::compile(SCRIPT)?;
    println!("compiled `walker` to {} bytecode ops\n", program.instruction_count());

    // --- Simulation platform: deterministic, with a 1997 cost model ----
    let mut sim = SimCluster::new(ClusterConfig::new(4));
    sim.build(&build_ring(8, 4))?;
    let pid = sim.register_program(&program);
    sim.inject_at(&Value::str("r0"), pid, &[Value::Int(3), Value::Int(8)])?;
    let report = sim.run()?;
    println!(
        "simulated: {:.3} ms of 1997 cluster time, {} migrations",
        report.sim_seconds * 1e3,
        report.stats.counter("migrations_out"),
    );
    for i in 0..8 {
        let v = sim.node_var_by_name(&Value::str(format!("r{i}")), "visits");
        println!("  r{i}: visits = {}", v.unwrap_or(Value::Null));
    }

    // --- Threaded platform: real concurrent execution ------------------
    let mut live = ThreadCluster::new(ClusterConfig::new(4))?;
    live.build(&build_ring(8, 4))?;
    let pid = live.register_program(&program);
    live.inject_at(&Value::str("r0"), pid, &[Value::Int(3), Value::Int(8)])?;
    let report = live.run()?;
    println!("\nthreaded: {:.1} ms wall clock on 4 daemon threads", report.wall_seconds * 1e3);
    let total: i64 = (0..8)
        .map(|i| {
            live.node_var_by_name(&Value::str(format!("r{i}")), "visits")
                .and_then(|v| v.as_int().ok())
                .unwrap_or(0)
        })
        .sum();
    println!("total visits across the ring: {total} (24 hops + 1000 end marker)");
    assert_eq!(total, 3 * 8 + 1000);
    Ok(())
}
