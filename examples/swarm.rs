//! An individual-based simulation in the navigational style — the
//! application class the paper's introduction motivates ("individual-
//! based systems, distributed interactive simulations") for persistent
//! logical networks. See `msgr_apps::swarm` for the model.
//!
//! Runs the same swarm under conservative GVT and optimistic Time Warp
//! and checks the two pheromone fields agree exactly. On this workload
//! Time Warp usually wins — compare with the matmul ablation, where it
//! loses.
//!
//! Run with: `cargo run --release --example swarm`

use messengers::apps::swarm::{run, SwarmScene};
use messengers::core::config::VtMode;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scene = SwarmScene { side: 6, ants: 24, ticks: 16, daemons: 4 };
    println!(
        "{} ants x {} ticks on a {side}x{side} torus over {} daemons\n",
        scene.ants,
        scene.ticks,
        scene.daemons,
        side = scene.side
    );

    let mut fields = Vec::new();
    for mode in [VtMode::Conservative, VtMode::Optimistic] {
        let out = run(scene, mode)?;
        println!(
            "{mode:?}: {:.1} simulated ms | {} migrations | {} gvt rounds | {} rollbacks",
            out.seconds * 1e3,
            out.stats.counter("migrations_out"),
            out.stats.counter("gvt_rounds"),
            out.stats.counter("rollbacks"),
        );
        fields.push(out.field);
    }

    let total: i64 = fields[0].iter().sum();
    assert_eq!(total, scene.ants * scene.ticks, "every ant deposits once per tick");
    assert_eq!(fields[0], fields[1], "Time Warp must converge to the same field");

    println!("\npheromone field (conservative == optimistic):");
    for row in fields[0].chunks(scene.side) {
        println!("  {}", row.iter().map(|v| format!("{v:>4}")).collect::<String>());
    }
    println!("\ntotal deposits: {total} = {} ants x {} ticks ✓", scene.ants, scene.ticks);
    Ok(())
}
