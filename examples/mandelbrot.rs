//! The paper's §3.1 application: Mandelbrot via the manager/worker
//! paradigm — except there is no manager. Workers created with
//! `create(ALL)` shuttle between their work areas and the central node,
//! pulling tasks and depositing pixel blocks.
//!
//! This example runs the *threaded* platform: the fractal genuinely
//! computes on worker threads, and the assembled image is rendered as
//! ASCII art. It then replays the same scene on the simulation platform
//! to show the paper's 1997-era runtime estimate.
//!
//! Run with: `cargo run --release --example mandelbrot`

use std::sync::Arc;

use messengers::apps::calib::Calib;
use messengers::apps::mandel::{render_sequential, MandelScene, MandelWork};
use messengers::apps::mandel_msgr;
use messengers::core::ClusterConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scene = MandelScene::paper(256, 8);

    println!("MESSENGERS manager/worker (Fig. 3) on 8 daemon threads…");
    let run = mandel_msgr::run_threads(scene, 8)?;
    println!(
        "rendered {}x{} in {:.0} ms with {} hops and {} migrations\n",
        scene.size,
        scene.size,
        run.seconds * 1e3,
        run.stats.counter("hops"),
        run.stats.counter("migrations_out"),
    );

    // Verify against the sequential render and draw it.
    let work = Arc::new(MandelWork::compute(scene));
    let calib = Calib::default();
    let (_, expected) = render_sequential(&work, &calib);
    assert_eq!(run.checksum, expected, "distributed image differs from sequential");
    draw(&work);

    // The same computation on the simulated 1997 cluster.
    println!("\nreplaying on the simulated 110 MHz SPARC cluster:");
    for procs in [1usize, 4, 16] {
        let sim = mandel_msgr::run_sim(&work, procs, &calib, ClusterConfig::new(procs))?;
        assert_eq!(sim.checksum, expected);
        println!("  {procs:>2} processors: {:>7.3} simulated seconds", sim.seconds);
    }
    Ok(())
}

fn draw(work: &MandelWork) {
    let shades = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let n = work.scene.size as usize;
    let step = n / 64;
    for row in (0..n).step_by(step) {
        let mut line = String::with_capacity(64);
        for col in (0..n).step_by(step) {
            let iters = work.pixels[row * n + col] as usize;
            let shade = if iters >= work.scene.max_iter as usize {
                shades[9]
            } else {
                shades[(iters * 9 / 64).min(8)]
            };
            line.push(shade);
            line.push(shade);
        }
        println!("{line}");
    }
}
