//! The paper's §3.2 application: block matrix multiplication coordinated
//! entirely by global virtual time — `distribute_A` messengers replicate
//! A blocks along grid rows at integer ticks, `rotate_B` messengers
//! multiply and carry B blocks up the columns at half ticks.
//!
//! Runs on the simulation platform in both virtual-time modes and checks
//! the distributed product against a reference multiplication.
//!
//! Run with: `cargo run --release --example matmul`

use messengers::apps::calib::Calib;
use messengers::apps::matmul::{max_abs_diff, multiply_reference, test_matrix};
use messengers::apps::matmul_msgr::{run_sim, MATMUL_SCRIPTS};
use messengers::apps::MatmulScene;
use messengers::core::config::VtMode;
use messengers::core::ClusterConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("The two messenger scripts (paper Fig. 11):");
    println!("{MATMUL_SCRIPTS}");

    let scene = MatmulScene::new(3, 32); // 96x96 matrices on a 3x3 grid
    let a = test_matrix(scene.n(), 7);
    let b = test_matrix(scene.n(), 8);
    let reference = multiply_reference(&a, &b);
    let calib = Calib::default();

    for mode in [VtMode::Conservative, VtMode::Optimistic] {
        let mut cfg = ClusterConfig::new(9);
        cfg.vt_mode = mode;
        let run = run_sim(scene, &a, &b, &calib, cfg)?;
        let err = max_abs_diff(&run.product, &reference);
        println!(
            "{mode:?}: {:.3} simulated s | gvt rounds {} | rollbacks {} | max |err| {err:.2e}",
            run.seconds,
            run.stats.counter("gvt_rounds"),
            run.stats.counter("rollbacks"),
        );
        assert!(err < 1e-9, "product mismatch");
    }
    println!("both modes computed the exact same product ✓");
    Ok(())
}
