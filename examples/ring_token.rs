//! A classic distributed-systems exercise in the navigational style:
//! leader election on a unidirectional ring (Chang–Roberts), written as
//! a single MSGR-C script.
//!
//! Each node injects one candidate messenger carrying its id. A
//! messenger circulating the ring compares its id with each node's
//! resident id: it dies if the resident id is larger, keeps travelling
//! otherwise, and declares itself leader when it returns to a node
//! already marked with its own id. Node variables do all coordination —
//! there are no explicit messages anywhere.
//!
//! Run with: `cargo run --example ring_token`

use messengers::core::topology::LogicalTopology;
use messengers::core::{ClusterConfig, DaemonId, SimCluster};
use messengers::vm::{Dir, Value};

const ELECTION: &str = r#"
elect(my_id) {
    int circulating = 1;
    node int resident, leader;
    resident = my_id;          // my home node; runs before any hop
    while (circulating) {
        hop(ll = "ring"; ldir = +);
        if (resident == my_id) {
            // Back at a node that already saw my id: I won.
            leader = my_id;
            hop(ll = virtual; ln = "announce");
            node int elected;
            elected = my_id;
            circulating = 0;
        } else if (resident < my_id) {
            resident = my_id;  // beat the locals; keep going
        } else {
            circulating = 0;   // someone bigger came through; die out
        }
    }
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 9usize;
    let daemons = 3usize;
    let mut topo = LogicalTopology::new();
    for i in 0..n {
        topo.node(Value::str(format!("p{i}")), DaemonId((i % daemons) as u16));
    }
    for i in 0..n {
        topo.link(
            Value::str(format!("p{i}")),
            Value::str(format!("p{}", (i + 1) % n)),
            Value::str("ring"),
            Dir::Forward,
        );
    }
    topo.node(Value::str("announce"), DaemonId(0));

    let mut cluster = SimCluster::new(ClusterConfig::new(daemons));
    cluster.build(&topo)?;
    let program = messengers::lang::compile(ELECTION)?;
    let pid = cluster.register_program(&program);

    // Shuffled candidate ids, one injected at each ring position.
    let ids = [4i64, 9, 2, 7, 5, 1, 8, 3, 6];
    for (i, id) in ids.iter().enumerate() {
        cluster.inject_at(&Value::str(format!("p{i}")), pid, &[Value::Int(*id)])?;
    }
    let report = cluster.run()?;
    assert!(report.faults.is_empty(), "faults: {:?}", report.faults);

    let winner =
        cluster.node_var_by_name(&Value::str("announce"), "elected").unwrap_or(Value::Null);
    println!(
        "elected leader: {winner} (expected 9) after {} migrations in {:.2} simulated ms",
        report.stats.counter("migrations_out"),
        report.sim_seconds * 1e3
    );
    assert_eq!(winner, Value::Int(9));
    Ok(())
}
