//! # msgr-pvm — the message-passing baseline
//!
//! The paper compares MESSENGERS against PVM 3.3 ("it provides a complete
//! execution environment (an abstract machine), which is much closer to
//! MESSENGERS in its underlying philosophy", §3). This crate is a
//! from-scratch PVM-like library with the pieces the paper's programs
//! use:
//!
//! * **Tasks** — spawned dynamically, identified by [`TaskId`], placed
//!   round-robin over hosts.
//! * **Typed message buffers** ([`Buf`]) — PVM's `pvm_pkint` /
//!   `pvm_upkdouble` pack/unpack discipline. Packing and unpacking are
//!   real copies; that cost (absent in MESSENGERS, whose messenger
//!   variables travel as-is) is one of the paper's key performance
//!   points.
//! * **`send` / `recv` / `mcast`** with tag and source matching, and
//!   dynamic **groups** (`join_group`, `group_tid`) as used by the
//!   matrix-multiplication program of Fig. 9.
//! * **pvmd store-and-forward routing** — PVM 3.3's default message path
//!   (task → local pvmd → remote pvmd → task) pays two extra copies; the
//!   `direct_route` option models `PvmRouteDirect` as an ablation.
//!
//! Two backends: [`sim`] runs task state machines inside the
//! deterministic cluster simulator with the calibrated cost model (used
//! by every benchmark); [`threads`] runs closures on real OS threads
//! (used by examples and cross-checking tests).

#![warn(missing_docs)]

pub mod buf;
pub mod sim;
pub mod threads;

pub use buf::{Buf, UnpackError};
pub use sim::{
    PvmCostModel, PvmError, PvmNet, PvmReport, PvmSim, PvmSimConfig, Status, Task, TaskCtx,
};
pub use threads::{PvmThreads, ThreadTaskCtx, ThreadsReport};

/// A PVM task identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub u32);

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A message tag (PVM `msgtag`).
pub type Tag = i32;

/// A received message: sender, tag, payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Message {
    /// Sending task.
    pub from: TaskId,
    /// Message tag.
    pub tag: Tag,
    /// Payload buffer (position reset for unpacking).
    pub buf: Buf,
}

/// Source/tag selector for `recv` (PVM's −1 wildcards become `None`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Recv {
    /// Match only this sender (None = any).
    pub from: Option<TaskId>,
    /// Match only this tag (None = any).
    pub tag: Option<Tag>,
}

impl Recv {
    /// Receive from anyone, any tag.
    pub fn any() -> Self {
        Recv::default()
    }

    /// Receive any message with this tag.
    pub fn tag(tag: Tag) -> Self {
        Recv { from: None, tag: Some(tag) }
    }

    /// Receive from a specific task, any tag.
    pub fn from(from: TaskId) -> Self {
        Recv { from: Some(from), tag: None }
    }

    /// Fully specified.
    pub fn from_tag(from: TaskId, tag: Tag) -> Self {
        Recv { from: Some(from), tag: Some(tag) }
    }

    /// Whether a message satisfies this selector.
    pub fn matches(&self, m: &Message) -> bool {
        self.from.is_none_or(|f| f == m.from) && self.tag.is_none_or(|t| t == m.tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recv_selectors() {
        let m = Message { from: TaskId(3), tag: 7, buf: Buf::new() };
        assert!(Recv::any().matches(&m));
        assert!(Recv::tag(7).matches(&m));
        assert!(!Recv::tag(8).matches(&m));
        assert!(Recv::from(TaskId(3)).matches(&m));
        assert!(!Recv::from(TaskId(4)).matches(&m));
        assert!(Recv::from_tag(TaskId(3), 7).matches(&m));
        assert!(!Recv::from_tag(TaskId(3), 9).matches(&m));
    }
}
