//! PVM-style typed message buffers.
//!
//! PVM programs marshal data explicitly: `pvm_initsend`, a sequence of
//! `pvm_pk*` calls, `pvm_send`; the receiver mirrors them with `pvm_upk*`
//! in the same order. The packing and unpacking copies are genuine here
//! (`Vec` extends / drains), and [`Buf::byte_len`] is what the transport
//! charges for them.

/// One packed segment.
#[derive(Debug, Clone, PartialEq)]
enum Seg {
    Ints(Vec<i64>),
    Floats(Vec<f64>),
    Str(String),
    Bytes(Vec<u8>),
}

impl Seg {
    fn byte_len(&self) -> u64 {
        match self {
            Seg::Ints(v) => 8 * v.len() as u64 + 4,
            Seg::Floats(v) => 8 * v.len() as u64 + 4,
            Seg::Str(s) => s.len() as u64 + 4,
            Seg::Bytes(b) => b.len() as u64 + 4,
        }
    }
}

/// A typed pack/unpack buffer.
///
/// # Example
///
/// ```
/// use msgr_pvm::Buf;
///
/// let mut b = Buf::new();
/// b.pack_ints(&[1, 2, 3]).pack_floats(&[0.5]).pack_str("go");
/// let mut r = b.clone();
/// assert_eq!(r.unpack_ints().unwrap(), vec![1, 2, 3]);
/// assert_eq!(r.unpack_floats().unwrap(), vec![0.5]);
/// assert_eq!(r.unpack_str().unwrap(), "go");
/// assert!(r.unpack_ints().is_err()); // exhausted
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Buf {
    segs: Vec<Seg>,
    cursor: usize,
}

/// Unpack error: type mismatch or exhausted buffer — PVM's
/// `PvmNoData` / type confusion, surfaced safely.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnpackError(pub &'static str);

impl std::fmt::Display for UnpackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unpack error: {}", self.0)
    }
}

impl std::error::Error for UnpackError {}

impl Buf {
    /// An empty buffer (`pvm_initsend`).
    pub fn new() -> Self {
        Buf::default()
    }

    /// Pack integers (copies the slice).
    pub fn pack_ints(&mut self, v: &[i64]) -> &mut Self {
        self.segs.push(Seg::Ints(v.to_vec()));
        self
    }

    /// Pack a single integer.
    pub fn pack_int(&mut self, v: i64) -> &mut Self {
        self.pack_ints(&[v])
    }

    /// Pack floats (copies the slice).
    pub fn pack_floats(&mut self, v: &[f64]) -> &mut Self {
        self.segs.push(Seg::Floats(v.to_vec()));
        self
    }

    /// Pack a string.
    pub fn pack_str(&mut self, s: &str) -> &mut Self {
        self.segs.push(Seg::Str(s.to_string()));
        self
    }

    /// Pack raw bytes (`pvm_pkbyte`) — copies the slice.
    pub fn pack_bytes(&mut self, b: &[u8]) -> &mut Self {
        self.segs.push(Seg::Bytes(b.to_vec()));
        self
    }

    /// Unpack the next segment as integers (copies out).
    ///
    /// # Errors
    ///
    /// [`UnpackError`] on exhaustion or type mismatch.
    pub fn unpack_ints(&mut self) -> Result<Vec<i64>, UnpackError> {
        match self.segs.get(self.cursor) {
            Some(Seg::Ints(v)) => {
                self.cursor += 1;
                Ok(v.clone())
            }
            Some(_) => Err(UnpackError("expected int segment")),
            None => Err(UnpackError("buffer exhausted")),
        }
    }

    /// Unpack a single integer.
    ///
    /// # Errors
    ///
    /// [`UnpackError`] on exhaustion, type, or count mismatch.
    pub fn unpack_int(&mut self) -> Result<i64, UnpackError> {
        let v = self.unpack_ints()?;
        if v.len() != 1 {
            return Err(UnpackError("expected exactly one int"));
        }
        Ok(v[0])
    }

    /// Unpack the next segment as floats (copies out).
    ///
    /// # Errors
    ///
    /// [`UnpackError`] on exhaustion or type mismatch.
    pub fn unpack_floats(&mut self) -> Result<Vec<f64>, UnpackError> {
        match self.segs.get(self.cursor) {
            Some(Seg::Floats(v)) => {
                self.cursor += 1;
                Ok(v.clone())
            }
            Some(_) => Err(UnpackError("expected float segment")),
            None => Err(UnpackError("buffer exhausted")),
        }
    }

    /// Unpack the next segment as a string.
    ///
    /// # Errors
    ///
    /// [`UnpackError`] on exhaustion or type mismatch.
    pub fn unpack_str(&mut self) -> Result<String, UnpackError> {
        match self.segs.get(self.cursor) {
            Some(Seg::Str(s)) => {
                self.cursor += 1;
                Ok(s.clone())
            }
            Some(_) => Err(UnpackError("expected string segment")),
            None => Err(UnpackError("buffer exhausted")),
        }
    }

    /// Unpack the next segment as raw bytes (copies out).
    ///
    /// # Errors
    ///
    /// [`UnpackError`] on exhaustion or type mismatch.
    pub fn unpack_bytes(&mut self) -> Result<Vec<u8>, UnpackError> {
        match self.segs.get(self.cursor) {
            Some(Seg::Bytes(b)) => {
                self.cursor += 1;
                Ok(b.clone())
            }
            Some(_) => Err(UnpackError("expected byte segment")),
            None => Err(UnpackError("buffer exhausted")),
        }
    }

    /// Serialized size in bytes — charged per copy by the transports.
    pub fn byte_len(&self) -> u64 {
        self.segs.iter().map(Seg::byte_len).sum::<u64>() + 8
    }

    /// Number of packed segments.
    pub fn seg_count(&self) -> usize {
        self.segs.len()
    }

    /// Reset the unpack cursor (delivery hands the receiver a rewound
    /// buffer).
    pub fn rewind(&mut self) {
        self.cursor = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_in_order() {
        let mut b = Buf::new();
        b.pack_int(42).pack_floats(&[1.0, 2.0]).pack_str("hello");
        assert_eq!(b.seg_count(), 3);
        assert_eq!(b.unpack_int().unwrap(), 42);
        assert_eq!(b.unpack_floats().unwrap(), vec![1.0, 2.0]);
        assert_eq!(b.unpack_str().unwrap(), "hello");
    }

    #[test]
    fn type_mismatch_is_an_error() {
        let mut b = Buf::new();
        b.pack_int(1);
        assert_eq!(b.unpack_floats(), Err(UnpackError("expected float segment")));
        // The failed unpack must not consume the segment.
        assert_eq!(b.unpack_int().unwrap(), 1);
    }

    #[test]
    fn exhaustion() {
        let mut b = Buf::new();
        assert!(b.unpack_int().is_err());
        b.pack_int(1);
        b.unpack_int().unwrap();
        assert_eq!(b.unpack_ints(), Err(UnpackError("buffer exhausted")));
    }

    #[test]
    fn multi_int_guard() {
        let mut b = Buf::new();
        b.pack_ints(&[1, 2]);
        assert!(b.unpack_int().is_err());
    }

    #[test]
    fn byte_len_tracks_payload() {
        let mut b = Buf::new();
        let empty = b.byte_len();
        b.pack_floats(&vec![0.0; 1000]);
        assert!(b.byte_len() >= empty + 8000);
    }

    #[test]
    fn bytes_round_trip() {
        let mut b = Buf::new();
        b.pack_bytes(&[1, 2, 3]).pack_int(9);
        assert_eq!(b.unpack_bytes().unwrap(), vec![1, 2, 3]);
        assert_eq!(b.unpack_int().unwrap(), 9);
        let mut c = Buf::new();
        c.pack_int(1);
        assert!(c.unpack_bytes().is_err());
    }

    #[test]
    fn rewind_allows_reread() {
        let mut b = Buf::new();
        b.pack_int(5);
        assert_eq!(b.unpack_int().unwrap(), 5);
        b.rewind();
        assert_eq!(b.unpack_int().unwrap(), 5);
    }
}
