//! The threaded PVM backend: each task is an OS thread; channels carry
//! messages; `recv` blocks with selective matching. Used by examples and
//! by tests that cross-check the simulated backend's semantics.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Condvar, Mutex};

use crate::{Buf, Message, Recv, Tag, TaskId};

struct Inner {
    mailboxes: Mutex<HashMap<TaskId, Sender<Message>>>,
    groups: Mutex<HashMap<String, Vec<TaskId>>>,
    groups_cv: Condvar,
    barriers: Mutex<HashMap<String, (u64, usize)>>, // name -> (generation, waiting)
    barriers_cv: Condvar,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    next_tid: Mutex<u32>,
}

/// A running threaded PVM virtual machine.
///
/// # Example
///
/// ```
/// use msgr_pvm::{PvmThreads, Buf, Recv};
///
/// let report = PvmThreads::run(|ctx| {
///     let me = ctx.mytid();
///     let child = ctx.spawn(move |ctx| {
///         let mut m = ctx.recv(Recv::any());
///         let v = m.buf.unpack_int().unwrap();
///         let mut reply = Buf::new();
///         reply.pack_int(v + 1);
///         ctx.send(m.from, 0, reply);
///     });
///     let mut b = Buf::new();
///     b.pack_int(41);
///     ctx.send(child, 0, b);
///     let mut m = ctx.recv(Recv::from(child));
///     assert_eq!(m.buf.unpack_int().unwrap(), 42);
/// });
/// assert_eq!(report.tasks, 2);
/// ```
pub struct PvmThreads;

/// Summary of a threaded run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThreadsReport {
    /// Total tasks that ran (including the root).
    pub tasks: u32,
    /// Wall-clock seconds.
    pub wall_seconds: f64,
}

/// Per-task handle used inside task bodies.
pub struct ThreadTaskCtx {
    me: TaskId,
    inner: Arc<Inner>,
    inbox: Receiver<Message>,
    stash: Vec<Message>,
}

impl std::fmt::Debug for ThreadTaskCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ThreadTaskCtx({})", self.me)
    }
}

impl PvmThreads {
    /// Start a virtual machine with `root` as task 0; returns when every
    /// task (root and all spawns, transitively) has finished.
    pub fn run(root: impl FnOnce(&mut ThreadTaskCtx) + Send + 'static) -> ThreadsReport {
        let start = std::time::Instant::now();
        let inner = Arc::new(Inner {
            mailboxes: Mutex::new(HashMap::new()),
            groups: Mutex::new(HashMap::new()),
            groups_cv: Condvar::new(),
            barriers: Mutex::new(HashMap::new()),
            barriers_cv: Condvar::new(),
            handles: Mutex::new(Vec::new()),
            next_tid: Mutex::new(0),
        });
        let root_tid = spawn_internal(&inner, Box::new(root));
        debug_assert_eq!(root_tid, TaskId(0));
        // Join until no new threads appear.
        let mut joined = 0u32;
        loop {
            let handle = {
                let mut hs = inner.handles.lock().unwrap();
                if hs.is_empty() {
                    None
                } else {
                    Some(hs.remove(0))
                }
            };
            match handle {
                Some(h) => {
                    h.join().expect("task panicked");
                    joined += 1;
                }
                None => break,
            }
        }
        ThreadsReport { tasks: joined, wall_seconds: start.elapsed().as_secs_f64() }
    }
}

type TaskFn = Box<dyn FnOnce(&mut ThreadTaskCtx) + Send + 'static>;

fn spawn_internal(inner: &Arc<Inner>, f: TaskFn) -> TaskId {
    let tid = {
        let mut n = inner.next_tid.lock().unwrap();
        let t = TaskId(*n);
        *n += 1;
        t
    };
    let (tx, rx) = channel();
    inner.mailboxes.lock().unwrap().insert(tid, tx);
    let inner2 = inner.clone();
    let handle = std::thread::spawn(move || {
        let mut ctx = ThreadTaskCtx { me: tid, inner: inner2, inbox: rx, stash: Vec::new() };
        f(&mut ctx);
        ctx.inner.mailboxes.lock().unwrap().remove(&tid);
    });
    inner.handles.lock().unwrap().push(handle);
    tid
}

impl ThreadTaskCtx {
    /// This task's id.
    pub fn mytid(&self) -> TaskId {
        self.me
    }

    /// Spawn a new task.
    pub fn spawn(&mut self, f: impl FnOnce(&mut ThreadTaskCtx) + Send + 'static) -> TaskId {
        spawn_internal(&self.inner, Box::new(f))
    }

    /// Send a buffer to another task. Messages to exited tasks are
    /// silently dropped (PVM returns an error code; the paper's programs
    /// never send to dead tasks).
    pub fn send(&self, to: TaskId, tag: Tag, mut buf: Buf) {
        buf.rewind();
        let msg = Message { from: self.me, tag, buf };
        if let Some(tx) = self.inner.mailboxes.lock().unwrap().get(&to) {
            let _ = tx.send(msg);
        }
    }

    /// Multicast to several tasks.
    pub fn mcast(&self, to: &[TaskId], tag: Tag, buf: Buf) {
        for t in to {
            self.send(*t, tag, buf.clone());
        }
    }

    /// Blocking selective receive.
    pub fn recv(&mut self, sel: Recv) -> Message {
        if let Some(pos) = self.stash.iter().position(|m| sel.matches(m)) {
            return self.stash.remove(pos);
        }
        loop {
            let msg = self.inbox.recv().expect("mailbox closed while receiving");
            if sel.matches(&msg) {
                return msg;
            }
            self.stash.push(msg);
        }
    }

    /// Non-blocking receive (`pvm_nrecv`).
    pub fn try_recv(&mut self, sel: Recv) -> Option<Message> {
        if let Some(pos) = self.stash.iter().position(|m| sel.matches(m)) {
            return Some(self.stash.remove(pos));
        }
        while let Ok(msg) = self.inbox.try_recv() {
            if sel.matches(&msg) {
                return Some(msg);
            }
            self.stash.push(msg);
        }
        None
    }

    /// Join a named group; returns this task's instance number.
    pub fn join_group(&self, name: &str) -> usize {
        let mut groups = self.inner.groups.lock().unwrap();
        let members = groups.entry(name.to_string()).or_default();
        if let Some(i) = members.iter().position(|t| *t == self.me) {
            return i;
        }
        members.push(self.me);
        let inst = members.len() - 1;
        self.inner.groups_cv.notify_all();
        inst
    }

    /// The task at `inst` in a group, blocking until it has joined.
    ///
    /// # Panics
    ///
    /// Panics after 30 s if the member never joins (deadlock guard).
    pub fn group_tid_blocking(&self, name: &str, inst: usize) -> TaskId {
        let mut groups = self.inner.groups.lock().unwrap();
        loop {
            if let Some(t) = groups.get(name).and_then(|v| v.get(inst)) {
                return *t;
            }
            let (guard, wait) =
                self.inner.groups_cv.wait_timeout(groups, Duration::from_secs(30)).unwrap();
            groups = guard;
            assert!(!wait.timed_out(), "group member {name}[{inst}] never joined");
        }
    }

    /// Current size of a group.
    pub fn group_size(&self, name: &str) -> usize {
        self.inner.groups.lock().unwrap().get(name).map_or(0, Vec::len)
    }

    /// Block until `count` tasks have called `barrier` with the same
    /// name (`pvm_barrier`). Reusable: each full round of `count`
    /// arrivals releases exactly that round.
    ///
    /// # Panics
    ///
    /// Panics after 30 s if the barrier never fills (deadlock guard).
    pub fn barrier(&self, name: &str, count: usize) {
        assert!(count > 0, "barrier needs at least one participant");
        let mut barriers = self.inner.barriers.lock().unwrap();
        let entry = barriers.entry(name.to_string()).or_insert((0, 0));
        let my_generation = entry.0;
        entry.1 += 1;
        if entry.1 >= count {
            entry.0 += 1;
            entry.1 = 0;
            self.inner.barriers_cv.notify_all();
            return;
        }
        loop {
            let (guard, wait) =
                self.inner.barriers_cv.wait_timeout(barriers, Duration::from_secs(30)).unwrap();
            barriers = guard;
            let released =
                barriers.get(name).is_none_or(|(generation, _)| *generation > my_generation);
            if released {
                return;
            }
            assert!(!wait.timed_out(), "barrier `{name}` never filled");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_pong() {
        let report = PvmThreads::run(|ctx| {
            let child = ctx.spawn(|ctx| {
                for _ in 0..10 {
                    let mut m = ctx.recv(Recv::tag(1));
                    let v = m.buf.unpack_int().unwrap();
                    let mut b = Buf::new();
                    b.pack_int(v * 3);
                    ctx.send(m.from, 2, b);
                }
            });
            for i in 0..10 {
                let mut b = Buf::new();
                b.pack_int(i);
                ctx.send(child, 1, b);
                let mut m = ctx.recv(Recv::from_tag(child, 2));
                assert_eq!(m.buf.unpack_int().unwrap(), i * 3);
            }
        });
        assert_eq!(report.tasks, 2);
    }

    #[test]
    fn selective_recv_stashes_nonmatching() {
        PvmThreads::run(|ctx| {
            let me = ctx.mytid();
            let a = ctx.spawn(move |ctx| {
                let mut b = Buf::new();
                b.pack_int(1);
                ctx.send(me, 1, b);
            });
            let b_tid = ctx.spawn(move |ctx| {
                let mut b = Buf::new();
                b.pack_int(2);
                ctx.send(me, 2, b);
            });
            // Receive b's message first regardless of arrival order.
            let mut m2 = ctx.recv(Recv::from(b_tid));
            assert_eq!(m2.buf.unpack_int().unwrap(), 2);
            let mut m1 = ctx.recv(Recv::from(a));
            assert_eq!(m1.buf.unpack_int().unwrap(), 1);
        });
    }

    #[test]
    fn manager_worker_pattern() {
        // A miniature Fig. 2: manager hands out 25 tasks to 4 workers.
        let report = PvmThreads::run(|ctx| {
            let me = ctx.mytid();
            let workers: Vec<TaskId> = (0..4)
                .map(|_| {
                    ctx.spawn(move |ctx| loop {
                        let mut m = ctx.recv(Recv::any());
                        let v = m.buf.unpack_int().unwrap();
                        if v < 0 {
                            return; // poison pill
                        }
                        let mut b = Buf::new();
                        b.pack_int(v * v);
                        ctx.send(me, 1, b);
                    })
                })
                .collect();
            let mut next = 0i64;
            let total = 25i64;
            for w in &workers {
                let mut b = Buf::new();
                b.pack_int(next);
                ctx.send(*w, 0, b);
                next += 1;
            }
            let mut sum = 0i64;
            let mut received = 0i64;
            while received < total {
                let mut m = ctx.recv(Recv::tag(1));
                sum += m.buf.unpack_int().unwrap();
                received += 1;
                if next < total {
                    let mut b = Buf::new();
                    b.pack_int(next);
                    ctx.send(m.from, 0, b);
                    next += 1;
                }
            }
            for w in &workers {
                let mut b = Buf::new();
                b.pack_int(-1);
                ctx.send(*w, 0, b);
            }
            assert_eq!(sum, (0..25).map(|v| v * v).sum::<i64>());
        });
        assert_eq!(report.tasks, 5);
    }

    #[test]
    fn barrier_synchronizes_rounds() {
        use std::sync::atomic::{AtomicU32, Ordering};
        use std::sync::Arc as StdArc;
        let peak_before = StdArc::new(AtomicU32::new(0));
        let pb = peak_before.clone();
        PvmThreads::run(move |ctx| {
            let counter = StdArc::new(AtomicU32::new(0));
            for _ in 0..4 {
                let counter = counter.clone();
                let pb = pb.clone();
                ctx.spawn(move |ctx| {
                    counter.fetch_add(1, Ordering::SeqCst);
                    ctx.barrier("round", 5);
                    // After the barrier, all five increments must be visible.
                    pb.fetch_max(counter.load(Ordering::SeqCst), Ordering::SeqCst);
                });
            }
            counter.fetch_add(1, Ordering::SeqCst);
            ctx.barrier("round", 5);
            pb.fetch_max(counter.load(Ordering::SeqCst), Ordering::SeqCst);
        });
        assert_eq!(peak_before.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn groups_and_blocking_lookup() {
        PvmThreads::run(|ctx| {
            ctx.join_group("mm");
            let me = ctx.mytid();
            for _ in 0..3 {
                ctx.spawn(move |ctx| {
                    ctx.join_group("mm");
                    // Everyone can resolve instance 0 (the root).
                    let leader = ctx.group_tid_blocking("mm", 0);
                    let mut b = Buf::new();
                    b.pack_int(7);
                    ctx.send(leader, 9, b);
                    let _ = me;
                });
            }
            for _ in 0..3 {
                let _ = ctx.recv(Recv::tag(9));
            }
            assert_eq!(ctx.group_size("mm"), 4);
        });
    }
}
