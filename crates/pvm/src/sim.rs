//! The simulated PVM backend: task state machines inside the
//! discrete-event cluster simulator.
//!
//! A task is a [`Task`] state machine: `resume` runs until the task
//! needs a message (returns [`Status::Recv`]) or exits. Everything else —
//! sends, multicasts, spawns, compute — happens through [`TaskCtx`]
//! during `resume`. This mirrors how the benchmarks' PVM programs
//! (Figs. 2 and 9) block only in `recv`.
//!
//! ## Cost model
//!
//! PVM 3.3's default message path is task → local pvmd → remote pvmd →
//! task: the payload is copied into the send buffer at pack time, copied
//! to the local daemon, forwarded over the network, copied to the
//! receiving task, and copied out at unpack time. With
//! [`PvmCostModel::direct_route`] (PvmRouteDirect) the pvmd copies
//! disappear. MESSENGERS, by contrast, serializes messenger variables
//! exactly once per side (§2.1) — this asymmetry is one of the paper's
//! central performance arguments.

use std::collections::VecDeque;

use msgr_sim::{
    Cpu, DetRng, Engine, FaultPlan, HostId, IdealNet, NetModel, SharedBus, SimTime, Stats,
    Switched, MILLI,
};
use msgr_trace::Metric;

use crate::{Buf, Message, Recv, Tag, TaskId};

/// What a task does next.
#[derive(Debug, Clone, PartialEq)]
pub enum Status {
    /// Block until a message matching the selector arrives.
    Recv(Recv),
    /// Block at a named barrier until `count` tasks have arrived
    /// (`pvm_barrier`); all are then resumed with `msg = None`.
    Barrier {
        /// Barrier (group) name.
        name: String,
        /// Number of participants.
        count: usize,
    },
    /// The task is finished.
    Exit,
}

/// A PVM task as a resumable state machine.
pub trait Task: Send {
    /// Run until the next blocking point. `msg` is `None` on first entry
    /// and `Some` when a requested message has been delivered.
    fn resume(&mut self, ctx: &mut TaskCtx<'_>, msg: Option<Message>) -> Status;
}

/// Network model selection (matches `msgr-core`'s cluster options).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PvmNet {
    /// 10 Mbit/s shared Ethernet.
    Ethernet10,
    /// 100 Mbit/s shared Ethernet (the calibrated default testbed).
    Ethernet100,
    /// Switched, per-port bits/second.
    Switched {
        /// Per-port bandwidth.
        bandwidth_bps: f64,
    },
    /// Ideal network.
    Ideal,
}

/// CPU cost constants, in reference nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PvmCostModel {
    /// Fixed send overhead (syscalls, headers).
    pub send_fixed_ns: u64,
    /// Fixed receive overhead.
    pub recv_fixed_ns: u64,
    /// memcpy cost per byte (same constant as the MESSENGERS model).
    pub per_byte_copy_ns: u64,
    /// Extra fixed cost per message at each pvmd when routing through
    /// the daemons.
    pub pvmd_fixed_ns: u64,
    /// Task spawn cost (fork/exec plus pvmd bookkeeping).
    pub spawn_ns: u64,
    /// XDR data conversion per byte (PvmDataDefault); 0 models
    /// PvmDataRaw on a homogeneous cluster, which is what the paper's
    /// SPARC-only LAN would use.
    pub xdr_per_byte_ns: u64,
    /// Per-message wire header bytes.
    pub wire_header_bytes: u64,
    /// pvmd-to-pvmd messages are fragmented at this size; each fragment
    /// is individually acknowledged (PVM 3.3's stop-and-wait daemon
    /// protocol over UDP), which throttles large messages on a shared
    /// medium.
    pub frag_bytes: u64,
    /// If a fragment's acknowledgement takes longer than this (medium
    /// congestion, collision backoff), the pvmd declares it lost and
    /// retransmits after `retrans_ns` — PVM 3.3's UDP retry timer. Set
    /// to 0 to disable the timeout model.
    pub ack_timeout_ns: u64,
    /// Retransmission timer penalty on a presumed-lost fragment.
    pub retrans_ns: u64,
    /// pvmd-to-pvmd sliding window: fragments per acknowledgement.
    pub window_frags: u64,
    /// Minimum number of hosts before ACK timeouts fire: UDP loss on
    /// shared Ethernet is a collision phenomenon, and collision
    /// probability grows with the number of contending stations. Small
    /// virtual machines (the 4–9 host matmul runs) resolve contention
    /// without loss.
    pub collision_hosts: usize,
    /// Route tasks' messages directly (PvmRouteDirect) instead of via
    /// the pvmds.
    pub direct_route: bool,
}

impl Default for PvmCostModel {
    fn default() -> Self {
        PvmCostModel {
            send_fixed_ns: 100_000,
            recv_fixed_ns: 80_000,
            per_byte_copy_ns: 25,
            pvmd_fixed_ns: 60_000,
            spawn_ns: 30_000_000, // ~30 ms fork+exec, paid once per worker
            xdr_per_byte_ns: 0,
            wire_header_bytes: 64,
            frag_bytes: 1500,
            ack_timeout_ns: 30_000_000, // 30 ms before a window is presumed lost
            retrans_ns: 250_000_000,    // 250 ms pvmd retry timer
            window_frags: 8,
            collision_hosts: 12,
            direct_route: false,
        }
    }
}

/// Configuration of a simulated PVM virtual machine.
#[derive(Debug, Clone, PartialEq)]
pub struct PvmSimConfig {
    /// Number of hosts.
    pub hosts: usize,
    /// Network model.
    pub net: PvmNet,
    /// CPU speed relative to the 110 MHz reference.
    pub cpu_speed: f64,
    /// Cost constants.
    pub costs: PvmCostModel,
    /// Event budget before declaring a stall.
    pub max_events: u64,
    /// Injected network faults, for apples-to-apples comparison with the
    /// MESSENGERS cluster under the same plan. PVM's transports are
    /// already reliable (TCP for direct routes, the pvmds' stop-and-wait
    /// retry protocol over UDP), so loss never corrupts a run — it only
    /// stretches it: every lost transmission costs a retry-timer wait
    /// plus a full resend on the critical path. Duplication and
    /// reordering are masked by those same layers at negligible cost and
    /// draw no randomness here. Crash events are **not** supported: PVM
    /// 3.3 has no recovery story for a dead pvmd (the virtual machine
    /// collapses), and modeling that would just abort the run — see
    /// DESIGN.md's fault-model section for the asymmetry with
    /// MESSENGERS, which re-injects messengers after a daemon restart.
    pub faults: FaultPlan,
    /// Seed for the fault-injection RNG. Unused (no draws at all) when
    /// `faults` is [`FaultPlan::none`], so fault-free runs are
    /// bit-identical to a build without this field.
    pub seed: u64,
}

impl PvmSimConfig {
    /// Paper-era defaults for `hosts` hosts.
    ///
    /// # Panics
    ///
    /// Panics if `hosts == 0`.
    pub fn new(hosts: usize) -> Self {
        assert!(hosts > 0, "need at least one host");
        PvmSimConfig {
            hosts,
            net: PvmNet::Ethernet100,
            cpu_speed: 1.0,
            costs: PvmCostModel::default(),
            max_events: 200_000_000,
            faults: FaultPlan::none(),
            seed: 0x5EED,
        }
    }
}

/// A run's outcome.
#[derive(Debug, Clone)]
pub struct PvmReport {
    /// Simulated seconds until the last task exited.
    pub sim_seconds: f64,
    /// Events executed.
    pub events: u64,
    /// Counters (messages, bytes, spawns, …).
    pub stats: Stats,
}

/// Errors from a simulated PVM run.
#[derive(Debug, Clone, PartialEq)]
pub enum PvmError {
    /// Tasks deadlocked: all runnable work drained while some tasks
    /// still waited in `recv`.
    Deadlock {
        /// The stuck task ids.
        waiting: Vec<TaskId>,
    },
    /// Event budget exhausted.
    Stalled {
        /// Events executed before giving up.
        events: u64,
    },
}

impl std::fmt::Display for PvmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PvmError::Deadlock { waiting } => {
                write!(f, "PVM deadlock: {} task(s) blocked in recv", waiting.len())
            }
            PvmError::Stalled { events } => write!(f, "PVM run stalled after {events} events"),
        }
    }
}

impl std::error::Error for PvmError {}

enum SlotState {
    Starting,
    Waiting(Recv),
    AtBarrier,
    Exited,
}

struct Slot {
    task: Option<Box<dyn Task>>,
    host: usize,
    state: SlotState,
    mailbox: VecDeque<Message>,
}

enum Cmd {
    Send { to: TaskId, tag: Tag, buf: Buf },
    Mcast { to: Vec<TaskId>, tag: Tag, buf: Buf },
    Spawn { tid: TaskId, host: usize, task: Box<dyn Task> },
}

/// The interface a resuming task uses to act on the virtual machine.
pub struct TaskCtx<'a> {
    me: TaskId,
    host: usize,
    hosts: usize,
    charged: u64,
    next_tid: &'a mut u32,
    rr_host: &'a mut usize,
    groups: &'a mut Vec<(String, Vec<TaskId>)>,
    cmds: Vec<Cmd>,
}

impl TaskCtx<'_> {
    /// This task's id (`pvm_mytid`).
    pub fn mytid(&self) -> TaskId {
        self.me
    }

    /// The host this task runs on.
    pub fn host(&self) -> usize {
        self.host
    }

    /// Total hosts in the virtual machine (`pvm_config`).
    pub fn nhosts(&self) -> usize {
        self.hosts
    }

    /// Charge `ref_ns` of computation to this task's segment.
    pub fn charge(&mut self, ref_ns: u64) {
        self.charged += ref_ns;
    }

    /// Send a buffer (`pvm_send`). The pack/copy costs are charged to
    /// this segment automatically.
    pub fn send(&mut self, to: TaskId, tag: Tag, buf: Buf) {
        self.cmds.push(Cmd::Send { to, tag, buf });
    }

    /// Multicast to several tasks (`pvm_mcast`): one pack, one wire
    /// message per destination.
    pub fn mcast(&mut self, to: &[TaskId], tag: Tag, buf: Buf) {
        self.cmds.push(Cmd::Mcast { to: to.to_vec(), tag, buf });
    }

    /// Spawn a new task (`pvm_spawn`), placed round-robin over hosts.
    pub fn spawn(&mut self, task: Box<dyn Task>) -> TaskId {
        let host = *self.rr_host % self.hosts;
        *self.rr_host += 1;
        self.spawn_on(host, task)
    }

    /// Spawn on a specific host (`pvm_spawn` with `PvmTaskHost`).
    ///
    /// # Panics
    ///
    /// Panics if `host` is out of range.
    pub fn spawn_on(&mut self, host: usize, task: Box<dyn Task>) -> TaskId {
        assert!(host < self.hosts, "host {host} out of range");
        let tid = TaskId(*self.next_tid);
        *self.next_tid += 1;
        self.cmds.push(Cmd::Spawn { tid, host, task });
        tid
    }

    /// Join a named group (`pvm_joingroup`); returns this task's
    /// instance number.
    pub fn join_group(&mut self, name: &str) -> usize {
        let entry = match self.groups.iter_mut().find(|(n, _)| n == name) {
            Some(e) => e,
            None => {
                self.groups.push((name.to_string(), Vec::new()));
                self.groups.last_mut().expect("just pushed")
            }
        };
        if let Some(i) = entry.1.iter().position(|t| *t == self.me) {
            return i;
        }
        entry.1.push(self.me);
        entry.1.len() - 1
    }

    /// The task at `inst` in a group (`pvm_gettid`).
    pub fn group_tid(&self, name: &str, inst: usize) -> Option<TaskId> {
        self.groups.iter().find(|(n, _)| n == name).and_then(|(_, v)| v.get(inst).copied())
    }

    /// Current size of a group (`pvm_gsize`).
    pub fn group_size(&self, name: &str) -> usize {
        self.groups.iter().find(|(n, _)| n == name).map_or(0, |(_, v)| v.len())
    }
}

struct World {
    cfg: PvmSimConfig,
    slots: Vec<Slot>,
    cpus: Vec<Cpu>,
    net: Box<dyn NetModel>,
    next_tid: u32,
    rr_host: usize,
    groups: Vec<(String, Vec<TaskId>)>,
    barriers: std::collections::HashMap<String, (usize, Vec<TaskId>)>,
    stats: Stats,
    /// `Some` only when `cfg.faults` has a nonzero loss rate; fault-free
    /// runs never draw from it, keeping their event streams untouched.
    rng: Option<DetRng>,
}

impl World {
    /// Draw once: was this transmission lost? `false` without a fault
    /// plan (no RNG consumption).
    fn frame_lost(&mut self) -> bool {
        match &mut self.rng {
            Some(rng) => {
                let p = self.cfg.faults.drop_p;
                rng.chance(p)
            }
            None => false,
        }
    }
}

type En = Engine<World>;

/// A simulated PVM virtual machine.
pub struct PvmSim {
    engine: En,
    world: World,
}

impl std::fmt::Debug for PvmSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PvmSim").field("tasks", &self.world.slots.len()).finish()
    }
}

impl PvmSim {
    /// A fresh virtual machine.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.faults` is invalid or contains crash events (PVM
    /// has no crash-recovery model; see [`PvmSimConfig::faults`]).
    pub fn new(cfg: PvmSimConfig) -> Self {
        cfg.faults.assert_valid();
        assert!(
            cfg.faults.crashes.is_empty(),
            "PVM 3.3 cannot survive a pvmd crash; crash events are only \
             meaningful on the MESSENGERS cluster"
        );
        let net: Box<dyn NetModel> = match cfg.net {
            PvmNet::Ethernet10 => Box::new(SharedBus::ethernet_10mbit()),
            PvmNet::Ethernet100 => Box::new(SharedBus::ethernet_100mbit()),
            PvmNet::Switched { bandwidth_bps } => {
                Box::new(Switched::new(cfg.hosts, bandwidth_bps, MILLI / 10, 60))
            }
            PvmNet::Ideal => Box::new(IdealNet::new(MILLI / 10)),
        };
        let cpus = (0..cfg.hosts).map(|_| Cpu::new(cfg.cpu_speed)).collect();
        let rng = (cfg.faults.drop_p > 0.0).then(|| DetRng::new(cfg.seed).fork(0xFA17));
        PvmSim {
            engine: Engine::new(),
            world: World {
                rng,
                cfg,
                slots: Vec::new(),
                cpus,
                net,
                next_tid: 0,
                rr_host: 0,
                groups: Vec::new(),
                barriers: std::collections::HashMap::new(),
                stats: Stats::new(),
            },
        }
    }

    /// Install the root task on host 0 (it starts when `run` is called).
    pub fn root(&mut self, task: Box<dyn Task>) -> TaskId {
        let tid = TaskId(self.world.next_tid);
        self.world.next_tid += 1;
        self.world.slots.push(Slot {
            task: Some(task),
            host: 0,
            state: SlotState::Starting,
            mailbox: VecDeque::new(),
        });
        self.engine.schedule_at(0, move |en, w| resume_task(en, w, tid, None));
        tid
    }

    /// Run the virtual machine until every task exits.
    ///
    /// # Errors
    ///
    /// [`PvmError::Deadlock`] or [`PvmError::Stalled`].
    pub fn run(&mut self) -> Result<PvmReport, PvmError> {
        let budget = self.world.cfg.max_events;
        if !self.engine.run_bounded(&mut self.world, budget) {
            return Err(PvmError::Stalled { events: self.engine.processed() });
        }
        let waiting: Vec<TaskId> = self
            .world
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s.state, SlotState::Waiting(_) | SlotState::AtBarrier))
            .map(|(i, _)| TaskId(i as u32))
            .collect();
        if !waiting.is_empty() {
            return Err(PvmError::Deadlock { waiting });
        }
        let mut stats = self.world.stats.clone();
        let net = self.world.net.stats();
        stats.add(Metric::NetMessages, net.messages);
        stats.add(Metric::NetPayloadBytes, net.payload_bytes);
        stats.add(Metric::NetQueueingNs, net.queueing_ns);
        Ok(PvmReport {
            sim_seconds: msgr_sim::to_secs(self.engine.now()),
            events: self.engine.processed(),
            stats,
        })
    }
}

fn frags(c: &PvmCostModel, bytes: u64) -> u64 {
    bytes.div_ceil(c.frag_bytes.max(1)).max(1)
}

fn send_cost(c: &PvmCostModel, bytes: u64) -> u64 {
    // pack copy + (pvmd route: task→pvmd copy + per-fragment pvmd
    // handling) + XDR.
    let copies = if c.direct_route { 1 } else { 2 };
    let fixed =
        c.send_fixed_ns + if c.direct_route { 0 } else { c.pvmd_fixed_ns * frags(c, bytes) };
    fixed + bytes * c.per_byte_copy_ns * copies + bytes * c.xdr_per_byte_ns
}

fn recv_cost(c: &PvmCostModel, bytes: u64) -> u64 {
    let copies = if c.direct_route { 1 } else { 2 };
    let fixed =
        c.recv_fixed_ns + if c.direct_route { 0 } else { c.pvmd_fixed_ns * frags(c, bytes) };
    fixed + bytes * c.per_byte_copy_ns * copies + bytes * c.xdr_per_byte_ns
}

fn resume_task(en: &mut En, w: &mut World, tid: TaskId, msg: Option<Message>) {
    let now = en.now();
    let i = tid.0 as usize;
    let host = w.slots[i].host;
    // Take the task out to avoid aliasing the world while it runs.
    let mut task = match w.slots[i].task.take() {
        Some(t) => t,
        None => return, // already exited
    };
    let mut ctx = TaskCtx {
        me: tid,
        host,
        hosts: w.cfg.hosts,
        charged: 0,
        next_tid: &mut w.next_tid,
        rr_host: &mut w.rr_host,
        groups: &mut w.groups,
        cmds: Vec::new(),
    };
    let status = task.resume(&mut ctx, msg);
    let charged = ctx.charged;
    let cmds = std::mem::take(&mut ctx.cmds);
    drop(ctx);
    w.slots[i].task = Some(task);
    w.stats.bump(Metric::Segments);

    // Segment cost: compute plus marshalling for every send issued.
    let mut cost = charged;
    for cmd in &cmds {
        match cmd {
            Cmd::Send { buf, .. } => {
                cost += send_cost(&w.cfg.costs, buf.byte_len());
            }
            Cmd::Mcast { to, buf, .. } => {
                // One pack, then per-destination transmission overhead.
                cost += send_cost(&w.cfg.costs, buf.byte_len());
                cost += (to.len().saturating_sub(1)) as u64 * w.cfg.costs.send_fixed_ns;
            }
            Cmd::Spawn { .. } => {
                cost += w.cfg.costs.spawn_ns;
            }
        }
    }
    let (_, end) = w.cpus[host].run(now, cost);

    // Update state now; transmissions and deliveries happen at `end`.
    w.slots[i].state = match &status {
        Status::Exit => SlotState::Exited,
        Status::Recv(sel) => SlotState::Waiting(*sel),
        Status::Barrier { .. } => SlotState::AtBarrier,
    };
    if matches!(status, Status::Exit) {
        w.slots[i].task = None;
        w.stats.bump(Metric::Exited);
    }
    if let Status::Barrier { name, count } = &status {
        let name = name.clone();
        let count = *count;
        en.schedule_at(end, move |en, w| barrier_arrive(en, w, tid, name, count));
    }

    en.schedule_at(end, move |en, w| {
        for cmd in cmds {
            match cmd {
                Cmd::Send { to, tag, buf } => {
                    transmit(en, w, tid, to, tag, buf);
                }
                Cmd::Mcast { to, tag, buf } => {
                    for t in to {
                        transmit(en, w, tid, t, tag, buf.clone());
                    }
                }
                Cmd::Spawn { tid: new, host, task } => {
                    w.stats.bump(Metric::Spawns);
                    debug_assert_eq!(new.0 as usize, w.slots.len());
                    w.slots.push(Slot {
                        task: Some(task),
                        host,
                        state: SlotState::Starting,
                        mailbox: VecDeque::new(),
                    });
                    // Startup announcement travels to the target host.
                    let src = w.slots[tid.0 as usize].host;
                    let arrival =
                        w.net.transfer(en.now(), HostId(src as u32), HostId(host as u32), 128);
                    en.schedule_at(arrival, move |en, w| resume_task(en, w, new, None));
                }
            }
        }
        // If a message was pending for us before we blocked, consume it.
        try_deliver_from_mailbox(en, w, tid);
    });
}

/// A task reached a barrier: its "here" message travels to the group
/// server (host 0); the last arrival releases everyone with a broadcast.
fn barrier_arrive(en: &mut En, w: &mut World, tid: TaskId, name: String, count: usize) {
    let host = w.slots[tid.0 as usize].host;
    // Arrival notification to the group server.
    let t = w.net.transfer(en.now(), HostId(host as u32), HostId(0), 64);
    en.schedule_at(t, move |en, w| {
        let entry = w.barriers.entry(name.clone()).or_insert_with(|| (count, Vec::new()));
        entry.1.push(tid);
        if entry.1.len() >= entry.0 {
            let waiters = std::mem::take(&mut entry.1);
            w.barriers.remove(&name);
            w.stats.bump(Metric::BarriersReleased);
            for waiter in waiters {
                let dst = w.slots[waiter.0 as usize].host;
                let arr = w.net.transfer(en.now(), HostId(0), HostId(dst as u32), 64);
                en.schedule_at(arr, move |en, w| {
                    if matches!(w.slots[waiter.0 as usize].state, SlotState::AtBarrier) {
                        w.slots[waiter.0 as usize].state = SlotState::Starting;
                        resume_task(en, w, waiter, None);
                    }
                });
            }
        }
    });
}

fn transmit(en: &mut En, w: &mut World, from: TaskId, to: TaskId, tag: Tag, mut buf: Buf) {
    let src = w.slots[from.0 as usize].host;
    let Some(slot) = w.slots.get(to.0 as usize) else {
        w.stats.bump(Metric::DeadLetters);
        return;
    };
    let dst = slot.host;
    let bytes = buf.byte_len() + w.cfg.costs.wire_header_bytes;
    w.stats.bump(Metric::Messages);
    w.stats.add(Metric::MessageBytes, bytes);
    let (src_h, dst_h) = (HostId(src as u32), HostId(dst as u32));
    let arrival = if w.cfg.costs.direct_route || src == dst {
        // Direct TCP route: the message streams as one transfer. Injected
        // loss (same-host traffic never touches the wire) surfaces as
        // TCP retransmission timeouts: the kernel redelivers after the
        // RTO, modeled with the same retry-timer constant as the pvmds.
        let mut t = w.net.transfer(en.now(), src_h, dst_h, bytes);
        while src != dst && w.frame_lost() {
            w.stats.bump(Metric::InjectedLosses);
            w.stats.bump(Metric::Retransmissions);
            t += w.cfg.costs.retrans_ns;
            t = w.net.transfer(t, src_h, dst_h, bytes);
        }
        t
    } else {
        // pvmd store-and-forward: fragments with per-fragment daemon
        // acknowledgements (PVM 3.3's stop-and-wait UDP protocol).
        let frag = w.cfg.costs.frag_bytes.max(1);
        let c = w.cfg.costs;
        let window = frag * c.window_frags.max(1);
        let send_window = |w: &mut World, mut t: SimTime, win: u64| -> SimTime {
            let mut left = win;
            while left > 0 {
                let chunk = left.min(frag);
                t = w.net.transfer(t, src_h, dst_h, chunk);
                left -= chunk;
                w.stats.bump(Metric::Fragments);
            }
            w.net.transfer(t, dst_h, src_h, 48) // pvmd window ACK
        };
        let mut t = en.now();
        let mut remaining = bytes;
        while remaining > 0 {
            // One sliding window of fragments, then a daemon-level ACK.
            let win = remaining.min(window);
            remaining -= win;
            let sent_at = t;
            t = send_window(w, t, win);
            if c.ack_timeout_ns > 0
                && w.cfg.hosts >= c.collision_hosts
                && t - sent_at > c.ack_timeout_ns
            {
                // The ACK outlived the daemon's timer: the window is
                // presumed lost and retransmitted after the retry timer
                // (PVM 3.3's UDP reliability layer). Congestion thus
                // compounds — the paper-era failure mode of PVM on a
                // saturated shared Ethernet.
                w.stats.bump(Metric::Retransmissions);
                t += c.retrans_ns;
                t = send_window(w, t, win);
            }
            // Injected loss (FaultPlan): the pvmd protocol is
            // stop-and-wait per window, so a lost window stalls the
            // whole message behind the 250 ms retry timer and a full
            // resend. This serialized recovery — versus the MESSENGERS
            // transport's 10 ms-scale selective retransmit — is why
            // loss hits PVM's completion times so much harder in
            // `ablation_faults`.
            while w.frame_lost() {
                w.stats.bump(Metric::InjectedLosses);
                w.stats.bump(Metric::Retransmissions);
                t += c.retrans_ns;
                t = send_window(w, t, win);
            }
        }
        t
    };
    buf.rewind();
    let msg = Message { from, tag, buf };
    en.schedule_at(arrival, move |en, w| deliver(en, w, to, msg));
}

fn deliver(en: &mut En, w: &mut World, to: TaskId, msg: Message) {
    let i = to.0 as usize;
    // Receive-side costs are charged when the task actually consumes the
    // message (PVM copies on pvm_recv).
    w.slots[i].mailbox.push_back(msg);
    try_deliver_from_mailbox(en, w, to);
}

fn try_deliver_from_mailbox(en: &mut En, w: &mut World, to: TaskId) {
    let i = to.0 as usize;
    let SlotState::Waiting(sel) = w.slots[i].state else {
        return;
    };
    let Some(pos) = w.slots[i].mailbox.iter().position(|m| sel.matches(m)) else {
        return;
    };
    let msg = w.slots[i].mailbox.remove(pos).expect("position valid");
    let host = w.slots[i].host;
    let cost = recv_cost(&w.cfg.costs, msg.buf.byte_len());
    let now = en.now();
    let (_, end) = w.cpus[host].run(now, cost);
    // Mark as running so a racing delivery doesn't double-resume.
    w.slots[i].state = SlotState::Starting;
    en.schedule_at(end, move |en, w| resume_task(en, w, to, Some(msg)));
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echo server: replies to `n` pings, then exits.
    struct Echo {
        remaining: u32,
    }
    impl Task for Echo {
        fn resume(&mut self, ctx: &mut TaskCtx<'_>, msg: Option<Message>) -> Status {
            if let Some(mut m) = msg {
                let v = m.buf.unpack_int().unwrap();
                let mut reply = Buf::new();
                reply.pack_int(v * 2);
                ctx.send(m.from, 99, reply);
                self.remaining -= 1;
            }
            if self.remaining == 0 {
                Status::Exit
            } else {
                Status::Recv(Recv::any())
            }
        }
    }

    /// Root: spawns Echo, pings it `n` times, checks replies.
    struct Pinger {
        n: u32,
        sent: u32,
        echo: Option<TaskId>,
        got: Vec<i64>,
    }
    impl Task for Pinger {
        fn resume(&mut self, ctx: &mut TaskCtx<'_>, msg: Option<Message>) -> Status {
            if self.echo.is_none() {
                let echo = ctx.spawn(Box::new(Echo { remaining: self.n }));
                self.echo = Some(echo);
            }
            if let Some(mut m) = msg {
                self.got.push(m.buf.unpack_int().unwrap());
            }
            if self.sent < self.n {
                let mut b = Buf::new();
                b.pack_int(self.sent as i64);
                ctx.send(self.echo.unwrap(), 7, b);
                self.sent += 1;
                return Status::Recv(Recv::tag(99));
            }
            if (self.got.len() as u32) < self.n {
                return Status::Recv(Recv::tag(99));
            }
            assert_eq!(self.got, (0..self.n as i64).map(|v| v * 2).collect::<Vec<_>>());
            Status::Exit
        }
    }

    #[test]
    fn ping_pong_round_trips() {
        let mut vm = PvmSim::new(PvmSimConfig::new(2));
        vm.root(Box::new(Pinger { n: 5, sent: 0, echo: None, got: Vec::new() }));
        let report = vm.run().unwrap();
        assert!(report.sim_seconds > 0.0);
        assert_eq!(report.stats.counter("spawns"), 1);
        // 5 pings + 5 replies.
        assert_eq!(report.stats.counter("messages"), 10);
    }

    #[test]
    fn deadlock_detected() {
        struct Stuck;
        impl Task for Stuck {
            fn resume(&mut self, _ctx: &mut TaskCtx<'_>, _msg: Option<Message>) -> Status {
                Status::Recv(Recv::any())
            }
        }
        let mut vm = PvmSim::new(PvmSimConfig::new(1));
        vm.root(Box::new(Stuck));
        match vm.run() {
            Err(PvmError::Deadlock { waiting }) => assert_eq!(waiting.len(), 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn selective_recv_by_source() {
        // Root spawns two senders and receives from a specific one first.
        struct Sender {
            to: TaskId,
            val: i64,
        }
        impl Task for Sender {
            fn resume(&mut self, ctx: &mut TaskCtx<'_>, _msg: Option<Message>) -> Status {
                let mut b = Buf::new();
                b.pack_int(self.val);
                ctx.send(self.to, 1, b);
                Status::Exit
            }
        }
        struct Root {
            phase: u32,
            s2: Option<TaskId>,
        }
        impl Task for Root {
            fn resume(&mut self, ctx: &mut TaskCtx<'_>, msg: Option<Message>) -> Status {
                match self.phase {
                    0 => {
                        let me = ctx.mytid();
                        let _s1 = ctx.spawn(Box::new(Sender { to: me, val: 1 }));
                        let s2 = ctx.spawn(Box::new(Sender { to: me, val: 2 }));
                        self.s2 = Some(s2);
                        self.phase = 1;
                        Status::Recv(Recv::from(s2))
                    }
                    1 => {
                        let mut m = msg.unwrap();
                        assert_eq!(m.from, self.s2.unwrap());
                        assert_eq!(m.buf.unpack_int().unwrap(), 2);
                        self.phase = 2;
                        Status::Recv(Recv::any())
                    }
                    _ => {
                        let mut m = msg.unwrap();
                        assert_eq!(m.buf.unpack_int().unwrap(), 1);
                        Status::Exit
                    }
                }
            }
        }
        let mut vm = PvmSim::new(PvmSimConfig::new(3));
        vm.root(Box::new(Root { phase: 0, s2: None }));
        vm.run().unwrap();
    }

    #[test]
    fn groups_assign_instances_in_join_order() {
        struct Joiner {
            report_to: TaskId,
        }
        impl Task for Joiner {
            fn resume(&mut self, ctx: &mut TaskCtx<'_>, _msg: Option<Message>) -> Status {
                let inst = ctx.join_group("g");
                let mut b = Buf::new();
                b.pack_int(inst as i64);
                ctx.send(self.report_to, 5, b);
                Status::Exit
            }
        }
        struct Root {
            got: Vec<i64>,
        }
        impl Task for Root {
            fn resume(&mut self, ctx: &mut TaskCtx<'_>, msg: Option<Message>) -> Status {
                if self.got.is_empty() && msg.is_none() {
                    assert_eq!(ctx.join_group("g"), 0);
                    let me = ctx.mytid();
                    for _ in 0..3 {
                        ctx.spawn(Box::new(Joiner { report_to: me }));
                    }
                }
                if let Some(mut m) = msg {
                    self.got.push(m.buf.unpack_int().unwrap());
                }
                if self.got.len() == 3 {
                    let mut sorted = self.got.clone();
                    sorted.sort_unstable();
                    assert_eq!(sorted, vec![1, 2, 3]);
                    assert_eq!(ctx.group_size("g"), 4);
                    assert_eq!(ctx.group_tid("g", 0), Some(ctx.mytid()));
                    Status::Exit
                } else {
                    Status::Recv(Recv::tag(5))
                }
            }
        }
        let mut vm = PvmSim::new(PvmSimConfig::new(2));
        vm.root(Box::new(Root { got: Vec::new() }));
        vm.run().unwrap();
    }

    #[test]
    fn pvmd_route_costs_more_than_direct() {
        fn run(direct: bool) -> f64 {
            let mut cfg = PvmSimConfig::new(2);
            cfg.costs.direct_route = direct;
            let mut vm = PvmSim::new(cfg);
            vm.root(Box::new(Pinger { n: 20, sent: 0, echo: None, got: Vec::new() }));
            vm.run().unwrap().sim_seconds
        }
        let routed = run(false);
        let direct = run(true);
        assert!(routed > direct, "routed={routed} direct={direct}");
    }

    /// As [`Pinger`], but pins the echo task to host 1 so every exchange
    /// crosses the (faultable) wire.
    struct RemotePinger {
        n: u32,
        sent: u32,
        echo: Option<TaskId>,
        got: Vec<i64>,
    }
    impl Task for RemotePinger {
        fn resume(&mut self, ctx: &mut TaskCtx<'_>, msg: Option<Message>) -> Status {
            if self.echo.is_none() {
                self.echo = Some(ctx.spawn_on(1, Box::new(Echo { remaining: self.n })));
            }
            if let Some(mut m) = msg {
                self.got.push(m.buf.unpack_int().unwrap());
            }
            if self.sent < self.n {
                let mut b = Buf::new();
                b.pack_int(self.sent as i64);
                ctx.send(self.echo.unwrap(), 7, b);
                self.sent += 1;
                return Status::Recv(Recv::tag(99));
            }
            if (self.got.len() as u32) < self.n {
                return Status::Recv(Recv::tag(99));
            }
            assert_eq!(self.got, (0..self.n as i64).map(|v| v * 2).collect::<Vec<_>>());
            Status::Exit
        }
    }

    #[test]
    fn injected_loss_slows_but_never_corrupts() {
        let run = |drop_p: f64| {
            let mut cfg = PvmSimConfig::new(2);
            cfg.faults = FaultPlan { drop_p, ..FaultPlan::none() };
            let mut vm = PvmSim::new(cfg);
            // Pinger asserts every reply arrives intact and in order.
            vm.root(Box::new(RemotePinger { n: 20, sent: 0, echo: None, got: Vec::new() }));
            vm.run().unwrap()
        };
        let clean = run(0.0);
        let lossy = run(0.3);
        assert_eq!(clean.stats.counter("injected_losses"), 0);
        assert!(lossy.stats.counter("injected_losses") > 0);
        assert!(
            lossy.sim_seconds > clean.sim_seconds,
            "loss must stretch the run: {} vs {}",
            lossy.sim_seconds,
            clean.sim_seconds
        );
    }

    #[test]
    fn injected_loss_is_deterministic() {
        let run = || {
            let mut cfg = PvmSimConfig::new(3);
            cfg.faults = FaultPlan::lossy(0.25);
            cfg.seed = 42;
            let mut vm = PvmSim::new(cfg);
            vm.root(Box::new(RemotePinger { n: 30, sent: 0, echo: None, got: Vec::new() }));
            vm.run().unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.sim_seconds.to_bits(), b.sim_seconds.to_bits());
        assert_eq!(a.events, b.events);
        assert_eq!(a.stats.counter("injected_losses"), b.stats.counter("injected_losses"));
    }

    #[test]
    fn loss_hits_the_direct_route_too() {
        let mut cfg = PvmSimConfig::new(2);
        cfg.costs.direct_route = true;
        cfg.faults = FaultPlan::lossy(0.3);
        let mut vm = PvmSim::new(cfg);
        vm.root(Box::new(RemotePinger { n: 20, sent: 0, echo: None, got: Vec::new() }));
        let report = vm.run().unwrap();
        assert!(report.stats.counter("injected_losses") > 0);
    }

    #[test]
    #[should_panic(expected = "pvmd crash")]
    fn crash_plans_are_rejected() {
        let mut cfg = PvmSimConfig::new(2);
        cfg.faults.crashes.push(msgr_sim::CrashEvent::transient(0, 0, MILLI));
        let _ = PvmSim::new(cfg);
    }

    #[test]
    fn mcast_reaches_everyone() {
        struct Leaf {
            report_to: TaskId,
        }
        impl Task for Leaf {
            fn resume(&mut self, ctx: &mut TaskCtx<'_>, msg: Option<Message>) -> Status {
                match msg {
                    None => Status::Recv(Recv::tag(3)),
                    Some(mut m) => {
                        let v = m.buf.unpack_int().unwrap();
                        let mut b = Buf::new();
                        b.pack_int(v + 1);
                        ctx.send(self.report_to, 4, b);
                        Status::Exit
                    }
                }
            }
        }
        struct Root {
            leaves: Vec<TaskId>,
            acks: u32,
        }
        impl Task for Root {
            fn resume(&mut self, ctx: &mut TaskCtx<'_>, msg: Option<Message>) -> Status {
                if self.leaves.is_empty() {
                    let me = ctx.mytid();
                    self.leaves =
                        (0..4).map(|_| ctx.spawn(Box::new(Leaf { report_to: me }))).collect();
                    let mut b = Buf::new();
                    b.pack_int(10);
                    ctx.mcast(&self.leaves.clone(), 3, b);
                    return Status::Recv(Recv::tag(4));
                }
                let mut m = msg.unwrap();
                assert_eq!(m.buf.unpack_int().unwrap(), 11);
                self.acks += 1;
                if self.acks == 4 {
                    Status::Exit
                } else {
                    Status::Recv(Recv::tag(4))
                }
            }
        }
        let mut vm = PvmSim::new(PvmSimConfig::new(4));
        vm.root(Box::new(Root { leaves: Vec::new(), acks: 0 }));
        let report = vm.run().unwrap();
        // 4 mcast legs + 4 acks.
        assert_eq!(report.stats.counter("messages"), 8);
    }
}
// (Barrier tests live in the test module below via include; appended here
// to keep the barrier machinery and its checks together.)
#[cfg(test)]
mod barrier_tests {
    use super::*;

    /// Phased workers: everyone must finish phase 1 before any enters
    /// phase 2; phases validated through a shared order log.
    struct Phased {
        log: std::sync::Arc<std::sync::Mutex<Vec<(u32, u8)>>>,
        me: u32,
        phase: u8,
        n: usize,
    }
    impl Task for Phased {
        fn resume(&mut self, _ctx: &mut TaskCtx<'_>, _msg: Option<Message>) -> Status {
            if self.phase < 2 {
                self.phase += 1;
                self.log.lock().unwrap().push((self.me, self.phase));
                return Status::Barrier { name: "phase".to_string(), count: self.n };
            }
            Status::Exit
        }
    }

    struct Root {
        log: std::sync::Arc<std::sync::Mutex<Vec<(u32, u8)>>>,
        n: usize,
    }
    impl Task for Root {
        fn resume(&mut self, ctx: &mut TaskCtx<'_>, _msg: Option<Message>) -> Status {
            // Spawn the n barrier participants; the root itself does not
            // take part.
            for k in 0..self.n {
                ctx.spawn(Box::new(Phased {
                    log: self.log.clone(),
                    me: k as u32,
                    phase: 0,
                    n: self.n,
                }));
            }
            Status::Exit
        }
    }

    #[test]
    fn barrier_orders_phases_globally() {
        let n = 5;
        let log = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let mut vm = PvmSim::new(PvmSimConfig::new(3));
        vm.root(Box::new(Root { log: log.clone(), n }));
        let report = vm.run().unwrap();
        assert_eq!(report.stats.counter("barriers_released"), 2);
        let log = log.lock().unwrap();
        // Every phase-1 entry precedes every phase-2 entry.
        let last_p1 = log.iter().rposition(|&(_, p)| p == 1).unwrap();
        let first_p2 = log.iter().position(|&(_, p)| p == 2).unwrap();
        assert!(last_p1 < first_p2, "{log:?}");
    }

    #[test]
    fn unfilled_barrier_is_a_deadlock() {
        struct Lonely;
        impl Task for Lonely {
            fn resume(&mut self, _ctx: &mut TaskCtx<'_>, _msg: Option<Message>) -> Status {
                Status::Barrier { name: "never".to_string(), count: 2 }
            }
        }
        let mut vm = PvmSim::new(PvmSimConfig::new(1));
        vm.root(Box::new(Lonely));
        assert!(matches!(vm.run(), Err(PvmError::Deadlock { .. })));
    }
}
