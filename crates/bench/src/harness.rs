//! In-repo micro-benchmark timing harness.
//!
//! A dependency-free replacement for criterion, scoped to what the
//! `benches/` targets actually need: warm up, pick an iteration count
//! that makes one sample meaningful, take several samples, and report
//! the median ns/iteration (plus min/max and optional throughput).
//!
//! Results are printed as they complete, one line per benchmark:
//!
//! ```text
//! codec/encode/small_messenger           1.234 µs/iter  (min 1.201, max 1.402, 10 samples x 16000 iters)  61.2 MB/s
//! ```
//!
//! Environment knobs: `MSGR_BENCH_SAMPLES` (default 10) and
//! `MSGR_BENCH_SAMPLE_MS` (target wall-clock per sample, default 20).

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Optional per-benchmark throughput annotation.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration (reported as MB/s).
    Bytes(u64),
    /// Abstract elements per iteration (reported as Melem/s).
    Elements(u64),
}

/// One benchmark's timing summary, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Benchmark name.
    pub name: String,
    /// Median over samples.
    pub median_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
    /// Iterations per sample.
    pub iters: u64,
    /// Samples taken.
    pub samples: u32,
}

/// The benchmark runner. Construct one per bench binary, call
/// [`Runner::bench`] / [`Runner::bench_with_setup`] repeatedly; results
/// print immediately and accumulate in [`Runner::results`].
pub struct Runner {
    samples: u32,
    sample_budget: Duration,
    /// All results recorded so far.
    pub results: Vec<Sample>,
}

impl Default for Runner {
    fn default() -> Self {
        Runner::new()
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

impl Runner {
    /// A runner configured from the environment.
    pub fn new() -> Runner {
        Runner {
            samples: env_u64("MSGR_BENCH_SAMPLES", 10).max(1) as u32,
            sample_budget: Duration::from_millis(env_u64("MSGR_BENCH_SAMPLE_MS", 20).max(1)),
            results: Vec::new(),
        }
    }

    /// Benchmark `f`, timing the whole closure.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) {
        self.run(name, None, |iters| {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            start.elapsed()
        });
    }

    /// Benchmark `f` with a throughput annotation.
    pub fn bench_throughput<T>(&mut self, name: &str, tp: Throughput, mut f: impl FnMut() -> T) {
        self.run(name, Some(tp), |iters| {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            start.elapsed()
        });
    }

    /// Benchmark `f` on a fresh input from `setup` each iteration; only
    /// `f` is timed (criterion's `iter_batched`).
    pub fn bench_with_setup<S, T>(
        &mut self,
        name: &str,
        mut setup: impl FnMut() -> S,
        mut f: impl FnMut(S) -> T,
    ) {
        self.run(name, None, |iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let start = Instant::now();
                black_box(f(input));
                total += start.elapsed();
            }
            total
        });
    }

    fn run(&mut self, name: &str, tp: Option<Throughput>, mut timed: impl FnMut(u64) -> Duration) {
        // Warmup + calibration: grow the iteration count until one
        // sample costs at least the per-sample budget.
        let mut iters: u64 = 1;
        loop {
            let t = timed(iters);
            if t >= self.sample_budget || iters >= 1 << 30 {
                break;
            }
            // Aim directly for the budget, with headroom for noise.
            let scale = self.sample_budget.as_secs_f64() / t.as_secs_f64().max(1e-9);
            iters = (iters as f64 * scale.clamp(2.0, 100.0)).ceil() as u64;
        }

        let mut per_iter: Vec<f64> =
            (0..self.samples).map(|_| timed(iters).as_secs_f64() * 1e9 / iters as f64).collect();
        per_iter.sort_by(f64::total_cmp);
        let sample = Sample {
            name: name.to_string(),
            median_ns: per_iter[per_iter.len() / 2],
            min_ns: per_iter[0],
            max_ns: *per_iter.last().unwrap(),
            iters,
            samples: self.samples,
        };
        println!("{}", render(&sample, tp));
        self.results.push(sample);
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.3} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn render(s: &Sample, tp: Option<Throughput>) -> String {
    let mut line = format!(
        "{:<44} {:>12}/iter  (min {}, max {}, {} samples x {} iters)",
        s.name,
        fmt_ns(s.median_ns),
        fmt_ns(s.min_ns),
        fmt_ns(s.max_ns),
        s.samples,
        s.iters,
    );
    match tp {
        Some(Throughput::Bytes(b)) => {
            line.push_str(&format!("  {:.1} MB/s", b as f64 / s.median_ns * 1e9 / 1e6));
        }
        Some(Throughput::Elements(e)) => {
            line.push_str(&format!("  {:.2} Melem/s", e as f64 / s.median_ns * 1e9 / 1e6));
        }
        None => {}
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_produces_positive_timings() {
        std::env::set_var("MSGR_BENCH_SAMPLES", "3");
        std::env::set_var("MSGR_BENCH_SAMPLE_MS", "1");
        let mut r = Runner::new();
        r.bench("spin", || {
            let mut acc = 0u64;
            for i in 0..100u64 {
                acc = acc.wrapping_add(black_box(i));
            }
            acc
        });
        r.bench_with_setup(
            "sort",
            || vec![3u32, 1, 2],
            |mut v| {
                v.sort();
                v
            },
        );
        assert_eq!(r.results.len(), 2);
        assert!(r.results.iter().all(|s| s.median_ns > 0.0));
        assert!(r.results.iter().all(|s| s.min_ns <= s.median_ns && s.median_ns <= s.max_ns));
        std::env::remove_var("MSGR_BENCH_SAMPLES");
        std::env::remove_var("MSGR_BENCH_SAMPLE_MS");
    }

    #[test]
    fn rendering_scales_units() {
        let s = Sample {
            name: "x".into(),
            median_ns: 1_500.0,
            min_ns: 900.0,
            max_ns: 2_000_000.0,
            iters: 10,
            samples: 3,
        };
        let line = render(&s, Some(Throughput::Bytes(1500)));
        assert!(line.contains("1.500 µs"), "{line}");
        assert!(line.contains("900.0 ns"), "{line}");
        assert!(line.contains("2.000 ms"), "{line}");
        assert!(line.contains("MB/s"), "{line}");
    }
}
