//! # msgr-bench — the evaluation harness
//!
//! One function per figure of the paper (§3.1.2, §3.2.2), each returning
//! a [`Table`] with exactly the series the paper plots. The binaries in
//! `src/bin/` print them; EXPERIMENTS.md records the measured outputs
//! next to the paper's claims. Every data point is verified (image
//! checksum / product matrix) before its timing is reported.

pub mod harness;

use std::sync::Arc;

use msgr_apps::calib::Calib;
use msgr_apps::mandel::{render_sequential, MandelScene, MandelWork};
use msgr_apps::matmul::{
    max_abs_diff, multiply_reference, sequential_seconds, test_matrix, MatmulScene,
};
use msgr_apps::{mandel_msgr, mandel_pvm, matmul_msgr, matmul_pvm};
use msgr_core::config::{VtMode, VtService};
use msgr_core::ClusterConfig;
use msgr_pvm::PvmNet;

/// A printable result table (one per figure).
#[derive(Debug, Clone)]
pub struct Table {
    /// Figure id and description.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let line = |f: &mut std::fmt::Formatter<'_>, cells: &[String]| -> std::fmt::Result {
            for (w, c) in widths.iter().zip(cells) {
                write!(f, "{c:>w$}  ", w = w)?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

fn fmt_s(v: f64) -> String {
    format!("{v:.3}")
}

/// Render a histogram's p50/p99/max as JSON fields named `<key>_p50` …,
/// or the same fields as `null` when the run never recorded the metric.
fn quantile_fields(stats: &msgr_sim::Stats, key: &str) -> String {
    match stats.histogram(key) {
        Some(h) => format!(
            "\"{key}_p50\": {}, \"{key}_p99\": {}, \"{key}_max\": {}",
            h.quantile(0.50),
            h.quantile(0.99),
            h.max()
        ),
        None => format!("\"{key}_p50\": null, \"{key}_p99\": null, \"{key}_max\": null"),
    }
}

/// When the `MSGR_BENCH_TRACE` environment variable names a directory,
/// write `run.trace`'s JSONL there as `<figure>.jsonl` (per-figure trace
/// capture for the flight-recorder tooling). Silently a no-op otherwise.
pub fn capture_trace(figure: &str, trace: Option<&msgr_core::Trace>) {
    let Ok(dir) = std::env::var("MSGR_BENCH_TRACE") else {
        return;
    };
    let Some(trace) = trace else {
        return;
    };
    let dir = std::path::PathBuf::from(dir);
    if std::fs::create_dir_all(&dir).is_ok() {
        let _ = std::fs::write(dir.join(format!("{figure}.jsonl")), trace.to_jsonl());
    }
}

/// `true` iff per-figure trace capture is requested ([`capture_trace`]).
/// Benchmarks enable `cfg.trace` only under this flag so the recorder
/// never perturbs normal timing runs.
pub fn trace_requested() -> bool {
    std::env::var("MSGR_BENCH_TRACE").is_ok()
}

/// The processor counts the paper sweeps (1 to 32).
pub const PAPER_PROCS: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// One Mandelbrot figure (Figs. 4, 5, 6): runtime vs processors for the
/// three grid sizes, with the sequential-C time as reference. Series:
/// MESSENGERS, PVM.
pub fn mandel_figure(fig: &str, size: u32, procs: &[usize], grids: &[u32]) -> Table {
    let calib = Calib::default();
    let mut table = Table::new(
        format!("{fig}: Mandelbrot {size}x{size}, 512 colors, region (-2,-1.2,0.4,1.2) [seconds]"),
        &["grid", "procs", "messengers", "pvm", "seq C"],
    );
    for &grid in grids {
        let work = Arc::new(MandelWork::compute(MandelScene::paper(size, grid)));
        let (seq, expected) = render_sequential(&work, &calib);
        for &p in procs {
            let m = mandel_msgr::run_sim(&work, p, &calib, ClusterConfig::new(p))
                .expect("messengers run");
            assert_eq!(m.checksum, expected, "messengers image mismatch at {p} procs");
            let v = mandel_pvm::run_sim(&work, p, &calib, PvmNet::Ethernet100).expect("pvm run");
            assert_eq!(v.checksum, expected, "pvm image mismatch at {p} procs");
            table.row(vec![
                format!("{grid}x{grid}"),
                p.to_string(),
                fmt_s(m.seconds),
                fmt_s(v.seconds),
                fmt_s(seq),
            ]);
        }
    }
    table
}

/// Fig. 7: the most favorable case (1280×1280, 8×8 grid) — runtimes and
/// the MESSENGERS speedup over PVM and over sequential C.
pub fn fig7(procs: &[usize]) -> Table {
    let calib = Calib::default();
    let work = Arc::new(MandelWork::compute(MandelScene::paper(1280, 8)));
    let (seq, expected) = render_sequential(&work, &calib);
    let mut table = Table::new(
        "Fig. 7: Mandelbrot 1280x1280, 8x8 grid (most favorable case) [seconds]",
        &["procs", "messengers", "pvm", "seq C", "pvm/messengers", "speedup vs seq"],
    );
    for &p in procs {
        let m = mandel_msgr::run_sim(&work, p, &calib, ClusterConfig::new(p)).expect("messengers");
        assert_eq!(m.checksum, expected);
        let v = mandel_pvm::run_sim(&work, p, &calib, PvmNet::Ethernet100).expect("pvm");
        assert_eq!(v.checksum, expected);
        table.row(vec![
            p.to_string(),
            fmt_s(m.seconds),
            fmt_s(v.seconds),
            fmt_s(seq),
            format!("{:.2}", v.seconds / m.seconds),
            format!("{:.2}", seq / m.seconds),
        ]);
    }
    table
}

/// One matmul figure (Fig. 12a: m = 2 at 110 MHz; Fig. 12b: m = 3 at
/// 170 MHz): runtime vs block size. Series: MESSENGERS, PVM, naive
/// sequential, blocked sequential.
pub fn matmul_figure(fig: &str, m: u32, block_sizes: &[u32], cpu_speed: f64) -> Table {
    let calib = Calib::default();
    let mut table = Table::new(
        format!("{fig}: matrix multiplication, {m}x{m} grid ({} procs) [seconds]", m * m),
        &["block s", "n", "messengers", "pvm", "seq naive", "seq blocked"],
    );
    for &s in block_sizes {
        let scene = MatmulScene::new(m, s);
        let a = test_matrix(scene.n(), 1);
        let b = test_matrix(scene.n(), 2);
        let reference = multiply_reference(&a, &b);

        let mut cfg = ClusterConfig::new((m * m) as usize);
        cfg.cpu_speed = cpu_speed;
        let mr = matmul_msgr::run_sim(scene, &a, &b, &calib, cfg).expect("messengers matmul");
        assert!(
            max_abs_diff(&mr.product, &reference) < 1e-6,
            "messengers product mismatch at s={s}"
        );
        let pr = matmul_pvm::run_sim(
            scene,
            &a,
            &b,
            &calib,
            (m * m) as usize,
            PvmNet::Ethernet100,
            cpu_speed,
        )
        .expect("pvm matmul");
        assert!(max_abs_diff(&pr.product, &reference) < 1e-6, "pvm product mismatch at s={s}");

        let (naive, blocked) = sequential_seconds(scene, &calib);
        table.row(vec![
            s.to_string(),
            scene.n().to_string(),
            fmt_s(mr.seconds / cpu_speed.max(1e-9) * cpu_speed), // already scaled by cluster
            fmt_s(pr.seconds),
            fmt_s(naive / cpu_speed),
            fmt_s(blocked / cpu_speed),
        ]);
    }
    table
}

/// The §3.2 sequential claim: blocked ≈13% faster than naive at
/// n = 1500 in 3×3 blocks.
pub fn text_seqblock() -> Table {
    let calib = Calib::default();
    let mut table = Table::new(
        "§3.2 text: sequential naive vs block-oriented [seconds, 110 MHz]",
        &["n", "blocks", "naive", "blocked", "speedup"],
    );
    for (n, m) in [(600u32, 3u32), (900, 3), (1500, 3)] {
        let scene = MatmulScene::new(m, n / m);
        let (naive, blocked) = sequential_seconds(scene, &calib);
        table.row(vec![
            n.to_string(),
            format!("{m}x{m}"),
            fmt_s(naive),
            fmt_s(blocked),
            format!("{:.3}", naive / blocked),
        ]);
    }
    table
}

/// The §3.2.2 speedup claims: 4 procs / n=1000 → 3.7 over blocked, 4.5
/// over naive; 9 procs / n=1500 → 5.8 / 6.7.
pub fn text_speedups() -> Table {
    let calib = Calib::default();
    let mut table = Table::new(
        "§3.2.2 text: MESSENGERS speedups over the sequential algorithms",
        &["grid", "n", "messengers", "seq naive", "seq blocked", "vs blocked", "vs naive"],
    );
    for (m, s, speed) in [(2u32, 500u32, 1.0f64), (3, 500, 1.55)] {
        let scene = MatmulScene::new(m, s);
        let a = test_matrix(scene.n(), 1);
        let b = test_matrix(scene.n(), 2);
        let mut cfg = ClusterConfig::new((m * m) as usize);
        cfg.cpu_speed = speed;
        let mr = matmul_msgr::run_sim(scene, &a, &b, &calib, cfg).expect("messengers matmul");
        let (naive, blocked) = sequential_seconds(scene, &calib);
        let (naive, blocked) = (naive / speed, blocked / speed);
        table.row(vec![
            format!("{m}x{m}"),
            scene.n().to_string(),
            fmt_s(mr.seconds),
            fmt_s(naive),
            fmt_s(blocked),
            format!("{:.2}", blocked / mr.seconds),
            format!("{:.2}", naive / mr.seconds),
        ]);
    }
    table
}

/// Ablation: shared code registry vs carrying code on every migration
/// (the WAVE-style design), on the fine-grained Mandelbrot workload
/// where per-hop bytes matter most.
pub fn ablation_carrycode() -> Table {
    let calib = Calib::default();
    let work = Arc::new(MandelWork::compute(MandelScene::paper(320, 32)));
    let mut table = Table::new(
        "Ablation: shared code registry vs carry-code (Mandelbrot 320x320, 32x32 grid)",
        &["procs", "registry [s]", "carry-code [s]", "registry MB", "carry MB"],
    );
    for p in [4usize, 16] {
        let run = |carry: bool| {
            let mut cfg = ClusterConfig::new(p);
            cfg.carry_code = carry;
            mandel_msgr::run_sim(&work, p, &calib, cfg).expect("run")
        };
        let lean = run(false);
        let fat = run(true);
        table.row(vec![
            p.to_string(),
            fmt_s(lean.seconds),
            fmt_s(fat.seconds),
            format!("{:.2}", lean.stats.counter("migration_bytes") as f64 / 1e6),
            format!("{:.2}", fat.stats.counter("migration_bytes") as f64 / 1e6),
        ]);
    }
    table
}

/// Ablation: the GVT protocol's cost — matmul with the message-based
/// conservative protocol at different round intervals, and optimistic
/// Time Warp.
pub fn ablation_gvt() -> Table {
    let calib = Calib::default();
    let mut table = Table::new(
        "Ablation: virtual-time machinery (matmul 3x3, s=50, Ethernet)",
        &["mode", "gvt interval [ms]", "seconds", "gvt rounds", "rollbacks"],
    );
    let scene = MatmulScene::new(3, 50);
    let a = test_matrix(scene.n(), 1);
    let b = test_matrix(scene.n(), 2);
    let reference = multiply_reference(&a, &b);
    for (mode, interval_ms) in [
        (VtMode::Conservative, 1u64),
        (VtMode::Conservative, 5),
        (VtMode::Conservative, 20),
        (VtMode::Optimistic, 5),
    ] {
        let mut cfg = ClusterConfig::new(9);
        cfg.vt_mode = mode;
        cfg.vt_service = VtService::On;
        cfg.gvt_interval = interval_ms * 1_000_000;
        let run = matmul_msgr::run_sim(scene, &a, &b, &calib, cfg).expect("run");
        assert!(max_abs_diff(&run.product, &reference) < 1e-6);
        table.row(vec![
            format!("{mode:?}"),
            interval_ms.to_string(),
            fmt_s(run.seconds),
            run.stats.counter("gvt_rounds").to_string(),
            run.stats.counter("rollbacks").to_string(),
        ]);
    }
    table
}

/// Ablation: PVM routing via the pvmds (3.3 default) vs direct task
/// TCP routes, on the coarse Mandelbrot workload.
pub fn ablation_pvmroute() -> Table {
    let calib = Calib::default();
    let work = Arc::new(MandelWork::compute(MandelScene::paper(640, 8)));
    let mut table = Table::new(
        "Ablation: PVM pvmd store-and-forward vs direct routing (Mandelbrot 640x640, 8x8)",
        &["procs", "pvmd route [s]", "direct route [s]"],
    );
    for p in [4usize, 16] {
        let routed = mandel_pvm::run_sim(&work, p, &calib, PvmNet::Ethernet100).expect("routed");
        // Direct routing (PvmRouteDirect) is a cost-model switch.
        let direct = mandel_pvm::run_sim_routed(&work, p, &calib, PvmNet::Ethernet100, true)
            .expect("direct");
        table.row(vec![p.to_string(), fmt_s(routed.seconds), fmt_s(direct.seconds)]);
    }
    table
}

/// Ablation: the network medium — 10 Mbit shared, 100 Mbit shared
/// (calibrated default), and a full-duplex switch — for both systems on
/// the coarse Mandelbrot workload at 16 processors.
pub fn ablation_network() -> Table {
    use msgr_core::config::NetKind;
    let calib = Calib::default();
    let work = Arc::new(MandelWork::compute(MandelScene::paper(640, 8)));
    let mut table = Table::new(
        "Ablation: network medium (Mandelbrot 640x640, 8x8 grid, 16 procs)",
        &["medium", "messengers [s]", "pvm [s]"],
    );
    let cases: [(&str, NetKind, PvmNet); 3] = [
        ("10 Mbit shared", NetKind::Ethernet10, PvmNet::Ethernet10),
        ("100 Mbit shared", NetKind::Ethernet100, PvmNet::Ethernet100),
        (
            "100 Mbit switched",
            NetKind::Switched { bandwidth_bps: 100e6 },
            PvmNet::Switched { bandwidth_bps: 100e6 },
        ),
    ];
    for (name, mk, pk) in cases {
        let mut cfg = ClusterConfig::new(16);
        cfg.net = mk;
        let m = mandel_msgr::run_sim(&work, 16, &calib, cfg).expect("messengers");
        let v = mandel_pvm::run_sim(&work, 16, &calib, pk).expect("pvm");
        table.row(vec![name.to_string(), fmt_s(m.seconds), fmt_s(v.seconds)]);
    }
    table
}

/// Ablation: conservative GVT vs optimistic Time Warp across workload
/// density (the swarm individual-based simulation). Sparse swarms give
/// optimism its win; the fully synchronized matmul (see
/// [`ablation_gvt`]) is the opposing case.
pub fn ablation_timewarp() -> Table {
    use msgr_apps::swarm::{run, SwarmScene};
    let mut table = Table::new(
        "Ablation: conservative vs Time Warp on the swarm (6x6 torus, 16 ticks, 4 daemons)",
        &["ants", "conservative [s]", "time warp [s]", "rollbacks", "winner"],
    );
    for ants in [6i64, 12, 24, 48, 96] {
        let scene = SwarmScene { side: 6, ants, ticks: 16, daemons: 4 };
        let cons = run(scene, VtMode::Conservative).expect("conservative");
        let opt = run(scene, VtMode::Optimistic).expect("optimistic");
        assert_eq!(cons.field, opt.field, "modes must agree at {ants} ants");
        table.row(vec![
            ants.to_string(),
            fmt_s(cons.seconds),
            fmt_s(opt.seconds),
            opt.stats.counter("rollbacks").to_string(),
            if opt.seconds < cons.seconds { "time warp" } else { "conservative" }.to_string(),
        ]);
    }
    table
}

/// Ablation: completion time under injected frame loss, MESSENGERS vs
/// PVM on the coarse Mandelbrot workload. Returns JSON (one object per
/// loss rate) rather than a [`Table`] so the numbers can feed plots
/// directly.
///
/// Both systems see the same loss rates but recover differently: the
/// MESSENGERS transport retransmits selectively on a ~10 ms timer with
/// exponential backoff, while PVM 3.3's pvmd protocol is stop-and-wait
/// with a 250 ms retry timer that stalls the whole message. Every
/// messenger run's image checksum is asserted against the sequential
/// render — loss may slow the run but must never corrupt it
/// (exactly-once delivery).
///
/// Don't be surprised if the MESSENGERS times wobble a few percent
/// *either way* as loss rises: Mandelbrot is a dynamic task farm, so a
/// delayed frame changes which worker pulls which (variable-cost)
/// block, and the makespan moves with the reshuffle. The PVM times,
/// serialized through the manager and the 250 ms retry timer, only go
/// up.
///
/// # Panics
///
/// Panics if any run fails or produces a wrong image.
pub fn ablation_faults() -> String {
    use msgr_sim::FaultPlan;
    let calib = Calib::default();
    let procs = 8usize;
    let work = Arc::new(MandelWork::compute(MandelScene::paper(128, 8)));
    let (_, expected) = render_sequential(&work, &calib);
    let mut runs = Vec::new();
    for loss in [0.0f64, 0.01, 0.05, 0.10] {
        let mut cfg = ClusterConfig::new(procs);
        cfg.faults = FaultPlan::lossy(loss);
        if trace_requested() {
            cfg.trace = msgr_core::TraceConfig::on();
        }
        let msgr = mandel_msgr::run_sim(&work, procs, &calib, cfg).expect("messenger run");
        assert_eq!(msgr.checksum, expected, "image corrupted at loss={loss}");
        capture_trace(
            &format!("ablation_faults_loss{:02}", (loss * 100.0) as u32),
            msgr.trace.as_ref(),
        );

        let mut pcfg = msgr_pvm::PvmSimConfig::new(procs);
        pcfg.faults = FaultPlan::lossy(loss);
        let pvm = mandel_pvm::run_sim_cfg(&work, &calib, pcfg).expect("pvm run");
        assert_eq!(pvm.checksum, expected, "pvm image corrupted at loss={loss}");

        runs.push(format!(
            concat!(
                "    {{\"loss\": {:.2}, \"messengers_s\": {:.6}, \"pvm_s\": {:.6}, ",
                "\"msgr_retransmits\": {}, \"msgr_frames_lost\": {}, ",
                "\"pvm_retransmissions\": {}, {}}}"
            ),
            loss,
            msgr.seconds,
            pvm.seconds,
            msgr.stats.counter("xport_retransmits"),
            msgr.stats.counter("net_frames_lost"),
            pvm.stats.counter("retransmissions"),
            quantile_fields(&msgr.stats, "xport_delivery_ns"),
        ));
    }
    format!(
        "{{\n  \"ablation\": \"faults\",\n  \"workload\": \"mandelbrot 128x128, 8x8 grid, {procs} procs\",\n  \"runs\": [\n{}\n  ]\n}}",
        runs.join(",\n")
    )
}

/// Ablation: permanent daemon death — failure detection, failover, and
/// replay cost as a function of when the worker dies. Emits JSON.
///
/// One Mandelbrot workload, one victim daemon, kill times swept from
/// "almost at startup" to "deep into the run". Later kills lose more
/// uncheckpointed work and replay more blocks, so `seconds` degrades
/// visibly relative to the fault-free baseline while the image checksum
/// stays exact. Counters expose the recovery pipeline: `fd_deaths`
/// (detector verdicts), `restores`/`restored_*` (failover),
/// `xport_redirected` (in-flight reroute), `recovery_latency_ms`
/// (death verdict → daemon restored).
///
/// # Panics
///
/// Panics if any run fails or produces a wrong image.
pub fn ablation_recovery() -> String {
    use msgr_sim::{CrashEvent, FaultPlan, MILLI};
    let calib = Calib::default();
    let procs = 8usize;
    let work = Arc::new(MandelWork::compute(MandelScene::paper(128, 8)));
    let (_, expected) = render_sequential(&work, &calib);

    let run_with = |plan: FaultPlan| {
        let mut cfg = ClusterConfig::new(procs);
        cfg.seed = 42;
        cfg.faults = plan;
        if trace_requested() {
            cfg.trace = msgr_core::TraceConfig::on();
        }
        mandel_msgr::run_sim(&work, procs, &calib, cfg).expect("messenger run")
    };

    let baseline = run_with(FaultPlan::none());
    assert_eq!(baseline.checksum, expected, "baseline image corrupted");

    let mut runs = vec![format!(
        "    {{\"kill_at_ms\": null, \"seconds\": {:.6}, \"slowdown\": 1.0}}",
        baseline.seconds
    )];
    for at_ms in [5u64, 20, 50, 100] {
        let plan =
            FaultPlan { crashes: vec![CrashEvent::kill(3, at_ms * MILLI)], ..FaultPlan::none() };
        let r = run_with(plan);
        assert_eq!(r.checksum, expected, "image corrupted with kill at {at_ms} ms");
        assert_eq!(r.stats.counter("kills"), 1, "kill at {at_ms} ms never fired");
        assert_eq!(r.stats.counter("restores"), 1, "no failover for kill at {at_ms} ms");
        capture_trace(&format!("ablation_recovery_kill{at_ms}ms"), r.trace.as_ref());
        runs.push(format!(
            concat!(
                "    {{\"kill_at_ms\": {}, \"seconds\": {:.6}, \"slowdown\": {:.4}, ",
                "\"checkpoints\": {}, \"fd_deaths\": {}, \"evictions\": {}, ",
                "\"restored_nodes\": {}, \"restored_messengers\": {}, ",
                "\"xport_redirected\": {}, \"recovery_latency_ms\": {:.3}, {}}}"
            ),
            at_ms,
            r.seconds,
            r.seconds / baseline.seconds,
            r.stats.counter("checkpoints"),
            r.stats.counter("fd_deaths"),
            r.stats.counter("evictions"),
            r.stats.counter("restored_nodes"),
            r.stats.counter("restored_messengers"),
            r.stats.counter("xport_redirected"),
            r.stats.counter("recovery_latency_ns") as f64 / 1e6,
            quantile_fields(&r.stats, "recovery_latency_ns"),
        ));
    }
    format!(
        "{{\n  \"ablation\": \"recovery\",\n  \"workload\": \"mandelbrot 128x128, 8x8 grid, {procs} procs, kill daemon 3\",\n  \"runs\": [\n{}\n  ]\n}}",
        runs.join(",\n")
    )
}

/// BENCH_0009 — quorum succession and `k`-replicated checkpoints vs the
/// deterministic next-alive baseline. Emits JSON.
///
/// One Mandelbrot workload, one victim daemon, a sweep of kill times ×
/// cluster seeds; each `(succession, k)` configuration runs the whole
/// sweep and reports recovery-latency p50/p99 **across the sweep** (one
/// death verdict → restore latency per run) plus replication cost
/// counters. The headline numbers are the quorum/deterministic latency
/// ratios at `k = 2`: consensus adds a round of proposals and promises
/// before the heir may act, and the acceptance bar is that this costs
/// at most 3× the baseline's detector-to-restore latency (full mode).
/// Every run's image checksum is asserted against the sequential
/// render — burial by majority may be slower, never wrong.
///
/// # Panics
///
/// Panics if any run fails, produces a wrong image, or never recovers.
pub fn ablation_quorum(smoke: bool) -> String {
    use msgr_core::Succession;
    use msgr_sim::{CrashEvent, FaultPlan, MILLI};
    let calib = Calib::default();
    let procs = 8usize;
    let work = if smoke {
        Arc::new(MandelWork::compute(MandelScene::paper(64, 4)))
    } else {
        Arc::new(MandelWork::compute(MandelScene::paper(128, 8)))
    };
    let (_, expected) = render_sequential(&work, &calib);
    let kill_times: &[u64] = if smoke { &[5, 50] } else { &[5, 20, 50, 100] };
    let seeds: &[u64] = if smoke { &[42] } else { &[42, 7, 1234] };

    let quantile = |sorted: &[f64], q: f64| -> f64 {
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        sorted[idx]
    };

    let mut rows = Vec::new();
    // `(succession, k) → p50 latency` for the summary ratios.
    let mut p50 = std::collections::HashMap::new();
    for succession in [Succession::Deterministic, Succession::Quorum] {
        for k in [1usize, 2, 3] {
            let mut latencies_ms = Vec::new();
            let mut seconds = 0.0f64;
            let mut replicas = 0u64;
            let mut replica_bytes = 0u64;
            let mut gossip_merges = 0u64;
            for &seed in seeds {
                for &at_ms in kill_times {
                    let mut cfg = ClusterConfig::new(procs);
                    cfg.seed = seed;
                    cfg.succession = succession;
                    cfg.replication = k;
                    cfg.faults = FaultPlan {
                        crashes: vec![CrashEvent::kill(3, at_ms * MILLI)],
                        ..FaultPlan::none()
                    };
                    let r = mandel_msgr::run_sim(&work, procs, &calib, cfg).expect("run");
                    assert_eq!(
                        r.checksum, expected,
                        "image corrupted ({succession:?}, k={k}, kill at {at_ms} ms)"
                    );
                    assert_eq!(r.stats.counter("kills"), 1);
                    assert_eq!(
                        r.stats.counter("restores"),
                        1,
                        "no failover ({succession:?}, k={k})"
                    );
                    latencies_ms.push(r.stats.counter("recovery_latency_ns") as f64 / 1e6);
                    seconds += r.seconds;
                    replicas += r.stats.counter("ckpt_replicas");
                    replica_bytes += r.stats.counter("ckpt_replica_bytes");
                    gossip_merges += r.stats.counter("gossip_merges");
                }
            }
            latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let (lp50, lp99) = (quantile(&latencies_ms, 0.50), quantile(&latencies_ms, 0.99));
            p50.insert((succession, k), lp50);
            let name = match succession {
                Succession::Deterministic => "deterministic",
                Succession::Quorum => "quorum",
            };
            rows.push(format!(
                concat!(
                    "    {{\"succession\": \"{}\", \"replication\": {}, \"runs\": {}, ",
                    "\"recovery_latency_ms_p50\": {:.3}, \"recovery_latency_ms_p99\": {:.3}, ",
                    "\"mean_seconds\": {:.6}, \"ckpt_replicas\": {}, ",
                    "\"ckpt_replica_bytes\": {}, \"gossip_merges\": {}}}"
                ),
                name,
                k,
                latencies_ms.len(),
                lp50,
                lp99,
                seconds / latencies_ms.len() as f64,
                replicas,
                replica_bytes,
                gossip_merges,
            ));
        }
    }
    let ratio = |k: usize| p50[&(Succession::Quorum, k)] / p50[&(Succession::Deterministic, k)];
    format!(
        concat!(
            "{{\n  \"bench\": \"BENCH_0009\",\n  \"ablation\": \"quorum\",\n",
            "  \"mode\": \"{}\",\n",
            "  \"workload\": \"mandelbrot {}, {} procs, kill daemon 3 at {:?} ms x seeds {:?}\",\n",
            "  \"rows\": [\n{}\n  ],\n",
            "  \"latency_ratio_p50_k1\": {:.4},\n",
            "  \"latency_ratio_p50_k2\": {:.4},\n",
            "  \"latency_ratio_p50_k3\": {:.4}\n}}"
        ),
        if smoke { "smoke" } else { "full" },
        if smoke { "64x64, 4x4 grid" } else { "128x128, 8x8 grid" },
        procs,
        kill_times,
        seeds,
        rows.join(",\n"),
        ratio(1),
        ratio(2),
        ratio(3),
    )
}

/// Schema check for a `BENCH_0009.json` produced by [`ablation_quorum`]:
/// required keys present, both succession modes recorded at `k` ∈
/// {1, 2, 3}, every latency and counter finite and non-negative, the
/// quorum rows actually replicated checkpoints, and — for a
/// `"mode": "full"` file — the `k = 2` quorum/deterministic p50 latency
/// ratio at most 3×.
///
/// # Errors
///
/// A human-readable description of the first violation found.
pub fn validate_bench_0009(json: &str) -> Result<(), String> {
    fn number_after(json: &str, key: &str, from: usize) -> Result<f64, String> {
        let pat = format!("\"{key}\":");
        let at = json[from..]
            .find(&pat)
            .map(|i| from + i + pat.len())
            .ok_or_else(|| format!("missing key {key:?}"))?;
        let rest = json[at..].trim_start();
        let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
        let tok = rest[..end].trim();
        if tok == "null" {
            return Err(format!("key {key:?} is null"));
        }
        tok.parse::<f64>().map_err(|_| format!("key {key:?} holds non-number {tok:?}"))
    }

    if !json.contains("\"bench\": \"BENCH_0009\"") {
        return Err("missing \"bench\": \"BENCH_0009\"".to_string());
    }
    for key in ["ablation", "mode", "workload", "rows"] {
        if !json.contains(&format!("\"{key}\":")) {
            return Err(format!("missing key {key:?}"));
        }
    }
    for succession in ["deterministic", "quorum"] {
        if !json.contains(&format!("\"succession\": \"{succession}\"")) {
            return Err(format!("missing rows for succession {succession:?}"));
        }
    }
    for k in [1, 2, 3] {
        if !json.contains(&format!("\"replication\": {k},")) {
            return Err(format!("missing rows for replication k={k}"));
        }
    }
    let mut max_replicas = 0.0f64;
    for key in [
        "recovery_latency_ms_p50",
        "recovery_latency_ms_p99",
        "mean_seconds",
        "ckpt_replicas",
        "ckpt_replica_bytes",
        "gossip_merges",
    ] {
        let pat = format!("\"{key}\":");
        let mut from = 0usize;
        let mut seen = false;
        while let Some(i) = json[from..].find(&pat) {
            let at = from + i;
            let v = number_after(json, key, at)?;
            if !(v.is_finite() && v >= 0.0) {
                return Err(format!("field {key:?} is negative or non-finite: {v}"));
            }
            if key == "ckpt_replicas" {
                max_replicas = max_replicas.max(v);
            }
            seen = true;
            from = at + pat.len();
        }
        if !seen {
            return Err(format!("missing field {key:?}"));
        }
    }
    if max_replicas < 1.0 {
        return Err("no row records a pushed replica — write-ahead replication never ran".into());
    }
    for key in ["latency_ratio_p50_k1", "latency_ratio_p50_k2", "latency_ratio_p50_k3"] {
        let v = number_after(json, key, 0)?;
        if v <= 0.0 {
            return Err(format!("{key} must be positive, got {v}"));
        }
    }
    let k2 = number_after(json, "latency_ratio_p50_k2", 0)?;
    if json.contains("\"mode\": \"full\"") && k2 > 3.0 {
        return Err(format!(
            "full-mode k=2 quorum/deterministic p50 latency ratio {k2:.3} above the 3x bar"
        ));
    }
    Ok(())
}

/// BENCH_0006 — execution lanes + frame batching + local-move hops.
///
/// Three workloads, one JSON file:
///
/// * **threads / ring**: walkers circulate a ring whose nodes are placed
///   in contiguous per-daemon blocks, each carrying a payload string —
///   so most hops are same-daemon and encode/decode cost is visible.
///   Run once as the `baseline` (lanes=1, no batching, no local move)
///   and once `optimized` (lanes=4 + batching + local move); the
///   messengers/sec ratio between the two rows is the PR's headline
///   speedup and must reach ≥1.5× in full mode.
/// * **threads / scatter**: messengers at a hub replicate to 16 spokes
///   on one remote daemon, so every flush coalesces a full batch —
///   proving `batch_flushes`/`batch_frames` move under the optimized
///   config (asserted even in smoke mode; it is deterministic).
/// * **sim / lossy ring**: the same ring under 5% frame loss with the
///   reliable transport, recording the xport delivery p50/p99 the
///   trajectory tracks.
///
/// Every data point is verified before its timing is reported (visit /
/// delivery counts), mirroring the rest of this harness.
///
/// # Panics
///
/// Panics if any run fails, any verification count is off, or the
/// optimized threads run never forms a batch.
pub fn ablation_lanes(smoke: bool) -> String {
    use msgr_core::topology::LogicalTopology;
    use msgr_core::{BatchPolicy, DaemonId, ThreadCluster};
    use msgr_sim::FaultPlan;
    use msgr_vm::{Dir, Value};

    const LANE_WALK: &str = r#"
    lanewalk(passes, payload) {
        int i = 0;
        node int visits;
        visits = visits + 1;
        while (i < passes) {
            hop(ll = "ring"; ldir = +);
            visits = visits + 1;
            i = i + 1;
        }
    }
    "#;
    const SCATTER: &str = r#"
    scatter() {
        node int seen;
        hop(ll = "out"; ldir = +);
        seen = seen + 1;
    }
    "#;

    let daemons = 4usize;
    let (nodes, walkers, passes, payload_len) =
        if smoke { (16usize, 16usize, 12i64, 512usize) } else { (64, 256, 192, 4096) };
    let (spokes, scatters) = if smoke { (8usize, 8usize) } else { (16, 128) };
    let repeats = if smoke { 1 } else { 3 };

    let ring_topo = |nodes: usize| {
        let block = nodes.div_ceil(daemons);
        let mut topo = LogicalTopology::new();
        for i in 0..nodes {
            topo.node(Value::str(format!("p{i}")), DaemonId((i / block) as u16));
        }
        for i in 0..nodes {
            topo.link(
                Value::str(format!("p{i}")),
                Value::str(format!("p{}", (i + 1) % nodes)),
                Value::str("ring"),
                Dir::Forward,
            );
        }
        topo
    };
    let lane_cfg = |lanes: usize, batch: bool, local_move: bool| {
        let mut cfg = ClusterConfig::new(daemons);
        cfg.seed = 42;
        cfg.lanes = lanes;
        cfg.batch = if batch { BatchPolicy::on() } else { BatchPolicy::off() };
        cfg.local_move = local_move;
        cfg
    };
    let payload = Value::str("x".repeat(payload_len));

    // One verified threads ring run; returns (wall seconds, merged stats).
    let ring_threads = |lanes: usize, batch: bool, local_move: bool| {
        let mut cluster =
            ThreadCluster::new(lane_cfg(lanes, batch, local_move)).expect("threads cluster");
        cluster.build(&ring_topo(nodes)).expect("build ring");
        let pid = cluster.register_program(&msgr_lang::compile(LANE_WALK).expect("compile"));
        for m in 0..walkers {
            cluster
                .inject_at(
                    &Value::str(format!("p{}", m % nodes)),
                    pid,
                    &[Value::Int(passes), payload.clone()],
                )
                .expect("inject");
        }
        let rep = cluster.run().expect("threads run");
        assert!(rep.faults.is_empty(), "ring faults: {:?}", rep.faults);
        let mut visits = 0i64;
        for i in 0..nodes {
            if let Some(Value::Int(v)) =
                cluster.node_var_by_name(&Value::str(format!("p{i}")), "visits")
            {
                visits += v;
            }
        }
        assert_eq!(
            visits,
            walkers as i64 * (passes + 1),
            "ring visits wrong (lanes={lanes} batch={batch} move={local_move})"
        );
        (rep.wall_seconds, rep.stats)
    };
    // Best-of-N to shave scheduler noise off the wall-clock rows.
    let ring_best = |lanes: usize, batch: bool, local_move: bool| {
        let mut best: Option<(f64, msgr_sim::Stats)> = None;
        for _ in 0..repeats {
            let (w, s) = ring_threads(lanes, batch, local_move);
            if best.as_ref().is_none_or(|(bw, _)| w < *bw) {
                best = Some((w, s));
            }
        }
        best.expect("at least one repeat")
    };

    let ring_row = |config: &str,
                    lanes: usize,
                    batch: bool,
                    local_move: bool,
                    wall: f64,
                    stats: &msgr_sim::Stats| {
        let retired = stats.counter("terminated");
        let hops = stats.counter("hops");
        format!(
            concat!(
                "    {{\"platform\": \"threads\", \"workload\": \"ring\", \"config\": \"{}\", ",
                "\"lanes\": {}, \"batch\": {}, \"local_move\": {}, ",
                "\"wall_seconds\": {:.6}, \"messengers_per_sec\": {:.1}, \"hops_per_sec\": {:.1}, ",
                "\"hops\": {}, \"retired\": {}, \"migration_bytes\": {}, \"lane_steals\": {}, ",
                "\"batch_flushes\": {}, \"batch_frames\": {}, \"batch_bytes_saved\": {}}}"
            ),
            config,
            lanes,
            batch,
            local_move,
            wall,
            retired as f64 / wall.max(1e-9),
            hops as f64 / wall.max(1e-9),
            hops,
            retired,
            stats.counter("migration_bytes"),
            stats.counter("lane_steals"),
            stats.counter("batch_flushes"),
            stats.counter("batch_frames"),
            stats.counter("batch_bytes_saved"),
        )
    };

    let (base_wall, base_stats) = ring_best(1, false, false);
    let (opt_wall, opt_stats) = ring_best(4, true, true);
    let base_rate = base_stats.counter("terminated") as f64 / base_wall.max(1e-9);
    let opt_rate = opt_stats.counter("terminated") as f64 / opt_wall.max(1e-9);
    let speedup = opt_rate / base_rate.max(1e-9);

    // Scatter: hub on daemon 0, all spokes on daemon 1 — every hop is a
    // 16-way replicate to one peer, so batching must fire.
    let scatter_run = || {
        let mut cluster = ThreadCluster::new(lane_cfg(4, true, true)).expect("threads cluster");
        let mut topo = LogicalTopology::new();
        topo.node(Value::str("hub"), DaemonId(0));
        for i in 0..spokes {
            topo.node(Value::str(format!("s{i}")), DaemonId(1));
            topo.link(
                Value::str("hub"),
                Value::str(format!("s{i}")),
                Value::str("out"),
                Dir::Forward,
            );
        }
        cluster.build(&topo).expect("build star");
        let pid = cluster.register_program(&msgr_lang::compile(SCATTER).expect("compile"));
        for _ in 0..scatters {
            cluster.inject_at(&Value::str("hub"), pid, &[]).expect("inject");
        }
        let rep = cluster.run().expect("threads run");
        assert!(rep.faults.is_empty(), "scatter faults: {:?}", rep.faults);
        let mut seen = 0i64;
        for i in 0..spokes {
            if let Some(Value::Int(v)) =
                cluster.node_var_by_name(&Value::str(format!("s{i}")), "seen")
            {
                seen += v;
            }
        }
        assert_eq!(seen, (scatters * spokes) as i64, "scatter deliveries wrong");
        assert!(
            rep.stats.counter("batch_frames") >= (scatters * 2) as u64,
            "scatter fan-out never batched: {} frames",
            rep.stats.counter("batch_frames")
        );
        rep
    };
    let sc = scatter_run();
    let scatter_row = format!(
        concat!(
            "    {{\"platform\": \"threads\", \"workload\": \"scatter\", ",
            "\"config\": \"lanes4_batch_move\", \"lanes\": 4, \"batch\": true, ",
            "\"local_move\": true, \"wall_seconds\": {:.6}, \"messengers_per_sec\": {:.1}, ",
            "\"hops_per_sec\": {:.1}, \"hops\": {}, \"retired\": {}, \"migration_bytes\": {}, ",
            "\"lane_steals\": {}, \"batch_flushes\": {}, \"batch_frames\": {}, ",
            "\"batch_bytes_saved\": {}}}"
        ),
        sc.wall_seconds,
        sc.stats.counter("terminated") as f64 / sc.wall_seconds.max(1e-9),
        sc.stats.counter("hops") as f64 / sc.wall_seconds.max(1e-9),
        sc.stats.counter("hops"),
        sc.stats.counter("terminated"),
        sc.stats.counter("migration_bytes"),
        sc.stats.counter("lane_steals"),
        sc.stats.counter("batch_flushes"),
        sc.stats.counter("batch_frames"),
        sc.stats.counter("batch_bytes_saved"),
    );

    // Sim row: the same ring under 5% loss, reliable transport — the
    // delivery-latency quantiles the trajectory tracks.
    let sim_row = {
        let (sim_nodes, sim_walkers, sim_passes) =
            if smoke { (8usize, 4usize, 10i64) } else { (16, 8, 30) };
        let mut cfg = lane_cfg(4, true, false);
        cfg.faults = FaultPlan::lossy(0.05);
        let mut cluster = msgr_core::SimCluster::new(cfg);
        cluster.build(&ring_topo(sim_nodes)).expect("build sim ring");
        let pid = cluster.register_program(&msgr_lang::compile(LANE_WALK).expect("compile"));
        for m in 0..sim_walkers {
            cluster
                .inject_at(
                    &Value::str(format!("p{}", m % sim_nodes)),
                    pid,
                    &[Value::Int(sim_passes), Value::str("x".repeat(256))],
                )
                .expect("inject");
        }
        let rep = cluster.run().expect("sim run");
        assert!(rep.faults.is_empty(), "sim faults: {:?}", rep.faults);
        assert_eq!(rep.stats.counter("xport_gave_up"), 0);
        format!(
            concat!(
                "    {{\"platform\": \"sim\", \"workload\": \"lossy_ring\", ",
                "\"config\": \"lanes4_batch\", \"lanes\": 4, \"batch\": true, ",
                "\"local_move\": false, \"loss\": 0.05, \"sim_seconds\": {:.6}, ",
                "\"hops\": {}, \"retired\": {}, \"xport_retransmits\": {}, {}}}"
            ),
            rep.sim_seconds,
            rep.stats.counter("hops"),
            rep.stats.counter("terminated"),
            rep.stats.counter("xport_retransmits"),
            quantile_fields(&rep.stats, "xport_delivery_ns"),
        )
    };

    let base_row = ring_row("baseline", 1, false, false, base_wall, &base_stats);
    let opt_row = ring_row("lanes4_batch_move", 4, true, true, opt_wall, &opt_stats);
    format!(
        concat!(
            "{{\n  \"bench\": \"BENCH_0006\",\n  \"ablation\": \"lanes\",\n",
            "  \"mode\": \"{}\",\n",
            "  \"workload\": \"ring {} nodes x {} walkers x {} hops (payload {} B), ",
            "scatter {}x{}, {} daemons\",\n",
            "  \"rows\": [\n{},\n{},\n{},\n{}\n  ],\n",
            "  \"speedup_messengers_per_sec\": {:.3}\n}}"
        ),
        if smoke { "smoke" } else { "full" },
        nodes,
        walkers,
        passes,
        payload_len,
        scatters,
        spokes,
        daemons,
        base_row,
        opt_row,
        scatter_row,
        sim_row,
        speedup,
    )
}

/// Schema check for a `BENCH_0006.json` produced by [`ablation_lanes`]:
/// required top-level and per-row keys present, every counter
/// non-negative and parseable, and — for a `"mode": "full"` file — the
/// recorded threads speedup at least 1.5×.
///
/// # Errors
///
/// A human-readable description of the first violation found.
pub fn validate_bench_0006(json: &str) -> Result<(), String> {
    fn number_after(json: &str, key: &str, from: usize) -> Result<f64, String> {
        let pat = format!("\"{key}\":");
        let at = json[from..]
            .find(&pat)
            .map(|i| from + i + pat.len())
            .ok_or_else(|| format!("missing key {key:?}"))?;
        let rest = json[at..].trim_start();
        let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
        let tok = rest[..end].trim();
        if tok == "null" {
            return Err(format!("key {key:?} is null"));
        }
        tok.parse::<f64>().map_err(|_| format!("key {key:?} holds non-number {tok:?}"))
    }

    if !json.contains("\"bench\": \"BENCH_0006\"") {
        return Err("missing \"bench\": \"BENCH_0006\"".to_string());
    }
    for key in ["ablation", "mode", "workload", "rows"] {
        if !json.contains(&format!("\"{key}\":")) {
            return Err(format!("missing key {key:?}"));
        }
    }
    // Rate metrics must exist somewhere in the rows.
    for key in
        ["messengers_per_sec", "hops_per_sec", "xport_delivery_ns_p50", "xport_delivery_ns_p99"]
    {
        number_after(json, key, 0)?;
    }
    // Counters: every occurrence parses and is non-negative.
    for key in [
        "hops",
        "retired",
        "migration_bytes",
        "lane_steals",
        "batch_flushes",
        "batch_frames",
        "batch_bytes_saved",
        "xport_retransmits",
    ] {
        let pat = format!("\"{key}\":");
        let mut from = 0usize;
        let mut seen = false;
        while let Some(i) = json[from..].find(&pat) {
            let at = from + i;
            let v = number_after(json, key, at)?;
            if !(v.is_finite() && v >= 0.0) {
                return Err(format!("counter {key:?} is negative or non-finite: {v}"));
            }
            seen = true;
            from = at + pat.len();
        }
        if !seen {
            return Err(format!("missing counter {key:?}"));
        }
    }
    let speedup = number_after(json, "speedup_messengers_per_sec", 0)?;
    if json.contains("\"mode\": \"full\"") && speedup < 1.5 {
        return Err(format!("full-mode speedup {speedup:.3} below the 1.5x acceptance bar"));
    }
    if speedup <= 0.0 {
        return Err(format!("speedup must be positive, got {speedup}"));
    }
    Ok(())
}

// The Douady-rabbit parameter keeps the orbit bounded, so the floats
// stay finite and every iteration does real arithmetic. Shared by
// BENCH_0007 (compiled vs interp) and BENCH_0008 (summaries on vs off):
// both inner loops are call-free, counted, and Add/Sub/Mul-only, so the
// interprocedural analysis licenses the typed-loop fusion on them.
const MANDEL_LOOP: &str = r#"
    mloop(passes, iters) {
        int i = 0;
        int k;
        float zr; float zi; float cr; float ci; float t;
        float acc = 0.0;
        node float field;
        node int visits;
        visits = visits + 1;
        while (i < passes) {
            cr = 0.0 - 0.1226;
            ci = 0.7449;
            zr = 0.0;
            zi = 0.0;
            k = 0;
            while (k < iters) {
                t = zr * zr - zi * zi + cr;
                zi = 2.0 * zr * zi + ci;
                zr = t;
                k = k + 1;
            }
            acc = acc + zr + zi;
            hop(ll = "ring"; ldir = +);
            field = field + acc;
            visits = visits + 1;
            i = i + 1;
        }
    }
    "#;
const MATMUL_LOOP: &str = r#"
    dloop(passes, n) {
        int i = 0;
        int k;
        float sum; float aa; float bb;
        node float cell;
        node int visits;
        visits = visits + 1;
        while (i < passes) {
            sum = 0.0;
            aa = 1.25;
            bb = 0.75;
            k = 0;
            while (k < n) {
                sum = sum + aa * bb;
                aa = aa + 0.125;
                bb = bb - 0.0625;
                k = k + 1;
            }
            hop(ll = "ring"; ldir = +);
            cell = cell + sum;
            visits = visits + 1;
            i = i + 1;
        }
    }
    "#;

/// BENCH_0007 — closure-compiled execution vs the interpreter.
///
/// Two ring-walker workloads on the threads platform whose per-hop
/// segment is a tight arithmetic inner loop written in MSGR-C — the
/// shapes the closure compiler's superinstructions target:
///
/// * **mandel_loop**: the Mandelbrot escape iteration (`z = z² + c` on
///   a bounded orbit) — float mul/add chains through locals, a
///   compare-and-branch loop head, and a fused `load/hop`.
/// * **matmul_loop**: a dot-product accumulation (`sum += a·b` with
///   strided updates) — the matmul block kernel's inner shape.
///
/// Each workload runs under `ExecMode::Interp` and `ExecMode::Compiled`
/// with identical seed and topology. Before any timing is reported the
/// same program is run on the *sim* platform under both engines and the
/// node-variable state (every `field`/`visits` value, bit for bit) plus
/// the simulated clock must match exactly — the bench refuses to time
/// engines that disagree. Wall-clock rows then come from best-of-N
/// threads runs, each verified by its exact visit count.
///
/// The artifact records the interpreter baseline and the compiled rows
/// side by side; the headline `speedup_min_hops_per_sec` is the *worst*
/// compiled/interp hops-per-sec ratio across the workloads and must
/// reach ≥3× in full mode (the PR's acceptance bar).
///
/// # Panics
///
/// Panics if any run fails, any verification count is off, or the two
/// engines produce different sim-platform state.
pub fn ablation_compile(smoke: bool) -> String {
    use msgr_core::topology::LogicalTopology;
    use msgr_core::{DaemonId, ExecMode, SimCluster, ThreadCluster};
    use msgr_vm::{Dir, Value};

    let daemons = 4usize;
    let (nodes, walkers, passes, iters) =
        if smoke { (8usize, 8usize, 6i64, 64i64) } else { (16, 32, 64, 1024) };
    let repeats = if smoke { 1 } else { 3 };

    let ring_topo = |nodes: usize| {
        let block = nodes.div_ceil(daemons);
        let mut topo = LogicalTopology::new();
        for i in 0..nodes {
            topo.node(Value::str(format!("p{i}")), DaemonId((i / block) as u16));
        }
        for i in 0..nodes {
            topo.link(
                Value::str(format!("p{i}")),
                Value::str(format!("p{}", (i + 1) % nodes)),
                Value::str("ring"),
                Dir::Forward,
            );
        }
        topo
    };
    let cfg_for = |exec: ExecMode| {
        let mut cfg = ClusterConfig::new(daemons);
        cfg.seed = 42;
        cfg.exec = exec;
        cfg
    };
    let fnv = |h: &mut u64, bytes: &[u8]| {
        for &b in bytes {
            *h = (*h ^ b as u64).wrapping_mul(0x100000001b3);
        }
    };

    // Deterministic cross-engine gate: run the workload on the sim
    // platform under `exec` and digest every node variable bit plus the
    // simulated clock. Interp and Compiled must produce the same u64.
    let sim_digest = |script: &str, exec: ExecMode| -> u64 {
        let (d_nodes, d_walkers, d_passes, d_iters) = (8usize, 4usize, 4i64, iters.min(128));
        let mut cluster = SimCluster::new(cfg_for(exec));
        cluster.build(&ring_topo(d_nodes)).expect("build sim ring");
        let pid = cluster.register_program(&msgr_lang::compile(script).expect("compile"));
        for m in 0..d_walkers {
            cluster
                .inject_at(
                    &Value::str(format!("p{}", m % d_nodes)),
                    pid,
                    &[Value::Int(d_passes), Value::Int(d_iters)],
                )
                .expect("inject");
        }
        let rep = cluster.run().expect("sim run");
        assert!(rep.faults.is_empty(), "sim faults: {:?}", rep.faults);
        let mut h: u64 = 0xcbf29ce484222325;
        fnv(&mut h, &rep.sim_seconds.to_bits().to_le_bytes());
        for i in 0..d_nodes {
            for var in ["field", "cell", "visits"] {
                match cluster.node_var_by_name(&Value::str(format!("p{i}")), var) {
                    Some(Value::Float(f)) => fnv(&mut h, &f.to_bits().to_le_bytes()),
                    Some(Value::Int(v)) => fnv(&mut h, &v.to_le_bytes()),
                    _ => fnv(&mut h, &[0xFF]),
                }
            }
        }
        h
    };

    // One verified threads run; returns (wall seconds, merged stats).
    let run_threads = |script: &str, exec: ExecMode| {
        let mut cluster = ThreadCluster::new(cfg_for(exec)).expect("threads cluster");
        cluster.build(&ring_topo(nodes)).expect("build ring");
        let pid = cluster.register_program(&msgr_lang::compile(script).expect("compile"));
        for m in 0..walkers {
            cluster
                .inject_at(
                    &Value::str(format!("p{}", m % nodes)),
                    pid,
                    &[Value::Int(passes), Value::Int(iters)],
                )
                .expect("inject");
        }
        let rep = cluster.run().expect("threads run");
        assert!(rep.faults.is_empty(), "ring faults: {:?}", rep.faults);
        let mut visits = 0i64;
        for i in 0..nodes {
            if let Some(Value::Int(v)) =
                cluster.node_var_by_name(&Value::str(format!("p{i}")), "visits")
            {
                visits += v;
            }
        }
        assert_eq!(visits, walkers as i64 * (passes + 1), "visit count wrong ({exec:?})");
        (rep.wall_seconds, rep.stats)
    };
    // Best-of-N to shave scheduler noise off the wall-clock rows.
    let best_of = |script: &str, exec: ExecMode| {
        let mut best: Option<(f64, msgr_sim::Stats)> = None;
        for _ in 0..repeats {
            let (w, s) = run_threads(script, exec);
            if best.as_ref().is_none_or(|(bw, _)| w < *bw) {
                best = Some((w, s));
            }
        }
        best.expect("at least one repeat")
    };

    let row = |workload: &str, engine: &str, wall: f64, stats: &msgr_sim::Stats| {
        let hops = stats.counter("hops");
        let ops = stats.counter("ops");
        format!(
            concat!(
                "    {{\"platform\": \"threads\", \"workload\": \"{}\", \"engine\": \"{}\", ",
                "\"wall_seconds\": {:.6}, \"hops_per_sec\": {:.1}, \"ops_per_sec\": {:.1}, ",
                "\"hops\": {}, \"ops\": {}, \"compile_programs\": {}, ",
                "\"compile_superinsts\": {}, \"compile_steps\": {}, \"compile_cache_hits\": {}}}"
            ),
            workload,
            engine,
            wall,
            hops as f64 / wall.max(1e-9),
            ops as f64 / wall.max(1e-9),
            hops,
            ops,
            stats.counter("compile_programs"),
            stats.counter("compile_superinsts"),
            stats.counter("compile_steps"),
            stats.counter("compile_cache_hits"),
        )
    };

    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    for (name, script) in [("mandel_loop", MANDEL_LOOP), ("matmul_loop", MATMUL_LOOP)] {
        let di = sim_digest(script, ExecMode::Interp);
        let dc = sim_digest(script, ExecMode::Compiled);
        assert_eq!(di, dc, "{name}: engines disagree on sim-platform state — refusing to time");
        let (iw, is) = best_of(script, ExecMode::Interp);
        let (cw, cs) = best_of(script, ExecMode::Compiled);
        assert!(cs.counter("compile_programs") > 0, "{name}: compiled run never compiled anything");
        assert!(cs.counter("compile_superinsts") > 0, "{name}: no superinstructions formed");
        let interp_rate = is.counter("hops") as f64 / iw.max(1e-9);
        let compiled_rate = cs.counter("hops") as f64 / cw.max(1e-9);
        rows.push(row(name, "interp", iw, &is));
        rows.push(row(name, "compiled", cw, &cs));
        speedups.push((name, compiled_rate / interp_rate.max(1e-9)));
    }
    let min_speedup = speedups.iter().map(|&(_, s)| s).fold(f64::INFINITY, f64::min);

    format!(
        concat!(
            "{{\n  \"bench\": \"BENCH_0007\",\n  \"ablation\": \"compile\",\n",
            "  \"mode\": \"{}\",\n",
            "  \"workload\": \"ring {} nodes x {} walkers x {} hops, {} inner iters/hop, ",
            "{} daemons\",\n",
            "  \"rows\": [\n{}\n  ],\n",
            "  \"speedup_mandel_hops_per_sec\": {:.3},\n",
            "  \"speedup_matmul_hops_per_sec\": {:.3},\n",
            "  \"speedup_min_hops_per_sec\": {:.3}\n}}"
        ),
        if smoke { "smoke" } else { "full" },
        nodes,
        walkers,
        passes,
        iters,
        daemons,
        rows.join(",\n"),
        speedups[0].1,
        speedups[1].1,
        min_speedup,
    )
}

/// Schema check for a `BENCH_0007.json` produced by [`ablation_compile`]:
/// required top-level and per-row keys present, both engines recorded for
/// both workloads, every counter non-negative and parseable, and — for a
/// `"mode": "full"` file — the recorded worst-case compiled/interp
/// hops-per-sec speedup at least 3×.
///
/// # Errors
///
/// A human-readable description of the first violation found.
pub fn validate_bench_0007(json: &str) -> Result<(), String> {
    fn number_after(json: &str, key: &str, from: usize) -> Result<f64, String> {
        let pat = format!("\"{key}\":");
        let at = json[from..]
            .find(&pat)
            .map(|i| from + i + pat.len())
            .ok_or_else(|| format!("missing key {key:?}"))?;
        let rest = json[at..].trim_start();
        let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
        let tok = rest[..end].trim();
        if tok == "null" {
            return Err(format!("key {key:?} is null"));
        }
        tok.parse::<f64>().map_err(|_| format!("key {key:?} holds non-number {tok:?}"))
    }

    if !json.contains("\"bench\": \"BENCH_0007\"") {
        return Err("missing \"bench\": \"BENCH_0007\"".to_string());
    }
    for key in ["ablation", "mode", "workload", "rows"] {
        if !json.contains(&format!("\"{key}\":")) {
            return Err(format!("missing key {key:?}"));
        }
    }
    // Both engines must appear for both workloads — the artifact records
    // the interpreter baseline next to the compiled numbers by design.
    for workload in ["mandel_loop", "matmul_loop"] {
        if !json.contains(&format!("\"workload\": \"{workload}\"")) {
            return Err(format!("missing rows for workload {workload:?}"));
        }
    }
    for engine in ["interp", "compiled"] {
        if !json.contains(&format!("\"engine\": \"{engine}\"")) {
            return Err(format!("missing rows for engine {engine:?}"));
        }
    }
    // Rate metrics must exist somewhere in the rows.
    for key in ["hops_per_sec", "ops_per_sec", "wall_seconds"] {
        number_after(json, key, 0)?;
    }
    // Counters: every occurrence parses and is non-negative.
    for key in [
        "hops",
        "ops",
        "compile_programs",
        "compile_superinsts",
        "compile_steps",
        "compile_cache_hits",
    ] {
        let pat = format!("\"{key}\":");
        let mut from = 0usize;
        let mut seen = false;
        while let Some(i) = json[from..].find(&pat) {
            let at = from + i;
            let v = number_after(json, key, at)?;
            if !(v.is_finite() && v >= 0.0) {
                return Err(format!("counter {key:?} is negative or non-finite: {v}"));
            }
            seen = true;
            from = at + pat.len();
        }
        if !seen {
            return Err(format!("missing counter {key:?}"));
        }
    }
    for key in ["speedup_mandel_hops_per_sec", "speedup_matmul_hops_per_sec"] {
        let v = number_after(json, key, 0)?;
        if v <= 0.0 {
            return Err(format!("{key} must be positive, got {v}"));
        }
    }
    let min_speedup = number_after(json, "speedup_min_hops_per_sec", 0)?;
    if json.contains("\"mode\": \"full\"") && min_speedup < 3.0 {
        return Err(format!(
            "full-mode worst-case speedup {min_speedup:.3} below the 3x acceptance bar"
        ));
    }
    if min_speedup <= 0.0 {
        return Err(format!("speedup must be positive, got {min_speedup}"));
    }
    Ok(())
}

/// BENCH_0008 — summary-guided compilation vs plain compilation.
///
/// The interprocedural-analysis ablation: the same two ring-walker
/// workloads as BENCH_0007, both run under `ExecMode::Compiled`, with
/// the whole-program effect analysis toggled per run
/// (`ClusterConfig::analysis`). Summaries license the typed register
/// loop (unboxed `i64`/`f64` execution of the proven-pure counted
/// inner loops), call fusion, and Time-Warp snapshot elision; with
/// analysis off the engine is exactly the PR 7 compiled mode.
///
/// The same cross-engine gate as BENCH_0007 applies before timing: a
/// sim-platform run under each configuration must produce bit-identical
/// node-variable state and simulated clock — analysis is an
/// optimization fact table, never an observable.
///
/// The headline `speedup_min_hops_per_sec` is the worst
/// summaries-on/summaries-off hops-per-sec ratio across the workloads
/// and must reach ≥1.15× in full mode (this PR's acceptance bar).
///
/// # Panics
///
/// Panics if any run fails, verification counts are off, the two
/// configurations disagree on sim-platform state, or the summaries-on
/// runs never exercised the analysis (no summaries, no typed loops).
pub fn ablation_summaries(smoke: bool) -> String {
    use msgr_core::topology::LogicalTopology;
    use msgr_core::{DaemonId, ExecMode, SimCluster, ThreadCluster};
    use msgr_vm::{Dir, Value};

    let daemons = 4usize;
    let (nodes, walkers, passes, iters) =
        if smoke { (8usize, 8usize, 6i64, 64i64) } else { (16, 32, 64, 1024) };
    let repeats = if smoke { 1 } else { 3 };

    let ring_topo = |nodes: usize| {
        let block = nodes.div_ceil(daemons);
        let mut topo = LogicalTopology::new();
        for i in 0..nodes {
            topo.node(Value::str(format!("p{i}")), DaemonId((i / block) as u16));
        }
        for i in 0..nodes {
            topo.link(
                Value::str(format!("p{i}")),
                Value::str(format!("p{}", (i + 1) % nodes)),
                Value::str("ring"),
                Dir::Forward,
            );
        }
        topo
    };
    let cfg_for = |analysis: bool| {
        let mut cfg = ClusterConfig::new(daemons);
        cfg.seed = 42;
        cfg.exec = ExecMode::Compiled;
        cfg.analysis = analysis;
        cfg
    };
    let fnv = |h: &mut u64, bytes: &[u8]| {
        for &b in bytes {
            *h = (*h ^ b as u64).wrapping_mul(0x100000001b3);
        }
    };

    // Deterministic gate: summaries must not be observable. Run on the
    // sim platform with analysis on/off and digest every node-variable
    // bit plus the simulated clock.
    let sim_digest = |script: &str, analysis: bool| -> u64 {
        let (d_nodes, d_walkers, d_passes, d_iters) = (8usize, 4usize, 4i64, iters.min(128));
        let mut cluster = SimCluster::new(cfg_for(analysis));
        cluster.build(&ring_topo(d_nodes)).expect("build sim ring");
        let pid = cluster.register_program(&msgr_lang::compile(script).expect("compile"));
        for m in 0..d_walkers {
            cluster
                .inject_at(
                    &Value::str(format!("p{}", m % d_nodes)),
                    pid,
                    &[Value::Int(d_passes), Value::Int(d_iters)],
                )
                .expect("inject");
        }
        let rep = cluster.run().expect("sim run");
        assert!(rep.faults.is_empty(), "sim faults: {:?}", rep.faults);
        let mut h: u64 = 0xcbf29ce484222325;
        fnv(&mut h, &rep.sim_seconds.to_bits().to_le_bytes());
        for i in 0..d_nodes {
            for var in ["field", "cell", "visits"] {
                match cluster.node_var_by_name(&Value::str(format!("p{i}")), var) {
                    Some(Value::Float(f)) => fnv(&mut h, &f.to_bits().to_le_bytes()),
                    Some(Value::Int(v)) => fnv(&mut h, &v.to_le_bytes()),
                    _ => fnv(&mut h, &[0xFF]),
                }
            }
        }
        h
    };

    let run_threads = |script: &str, analysis: bool| {
        let mut cluster = ThreadCluster::new(cfg_for(analysis)).expect("threads cluster");
        cluster.build(&ring_topo(nodes)).expect("build ring");
        let pid = cluster.register_program(&msgr_lang::compile(script).expect("compile"));
        for m in 0..walkers {
            cluster
                .inject_at(
                    &Value::str(format!("p{}", m % nodes)),
                    pid,
                    &[Value::Int(passes), Value::Int(iters)],
                )
                .expect("inject");
        }
        let rep = cluster.run().expect("threads run");
        assert!(rep.faults.is_empty(), "ring faults: {:?}", rep.faults);
        let mut visits = 0i64;
        for i in 0..nodes {
            if let Some(Value::Int(v)) =
                cluster.node_var_by_name(&Value::str(format!("p{i}")), "visits")
            {
                visits += v;
            }
        }
        assert_eq!(
            visits,
            walkers as i64 * (passes + 1),
            "visit count wrong (analysis={analysis})"
        );
        (rep.wall_seconds, rep.stats)
    };
    let best_of = |script: &str, analysis: bool| {
        let mut best: Option<(f64, msgr_sim::Stats)> = None;
        for _ in 0..repeats {
            let (w, s) = run_threads(script, analysis);
            if best.as_ref().is_none_or(|(bw, _)| w < *bw) {
                best = Some((w, s));
            }
        }
        best.expect("at least one repeat")
    };

    let row = |workload: &str, engine: &str, wall: f64, stats: &msgr_sim::Stats| {
        let hops = stats.counter("hops");
        let ops = stats.counter("ops");
        format!(
            concat!(
                "    {{\"platform\": \"threads\", \"workload\": \"{}\", \"engine\": \"{}\", ",
                "\"wall_seconds\": {:.6}, \"hops_per_sec\": {:.1}, \"ops_per_sec\": {:.1}, ",
                "\"hops\": {}, \"ops\": {}, \"analysis_summaries\": {}, ",
                "\"analysis_inlined_calls\": {}, \"analysis_typed_loops\": {}, ",
                "\"analysis_snapshots_elided\": {}}}"
            ),
            workload,
            engine,
            wall,
            hops as f64 / wall.max(1e-9),
            ops as f64 / wall.max(1e-9),
            hops,
            ops,
            stats.counter("analysis_summaries"),
            stats.counter("analysis_inlined_calls"),
            stats.counter("analysis_typed_loops"),
            stats.counter("analysis_snapshots_elided"),
        )
    };

    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    for (name, script) in [("mandel_loop", MANDEL_LOOP), ("matmul_loop", MATMUL_LOOP)] {
        let off_digest = sim_digest(script, false);
        let on_digest = sim_digest(script, true);
        assert_eq!(
            off_digest, on_digest,
            "{name}: summaries changed sim-platform state — refusing to time"
        );
        let (ow, os) = best_of(script, false);
        let (sw, ss) = best_of(script, true);
        assert_eq!(os.counter("analysis_summaries"), 0, "{name}: baseline ran the analysis");
        assert!(ss.counter("analysis_summaries") > 0, "{name}: summaries-on run never analyzed");
        assert!(
            ss.counter("analysis_typed_loops") > 0,
            "{name}: the proven-pure inner loop was not typed"
        );
        let off_rate = os.counter("hops") as f64 / ow.max(1e-9);
        let on_rate = ss.counter("hops") as f64 / sw.max(1e-9);
        rows.push(row(name, "compiled", ow, &os));
        rows.push(row(name, "compiled+summaries", sw, &ss));
        speedups.push((name, on_rate / off_rate.max(1e-9)));
    }
    let min_speedup = speedups.iter().map(|&(_, s)| s).fold(f64::INFINITY, f64::min);

    format!(
        concat!(
            "{{\n  \"bench\": \"BENCH_0008\",\n  \"ablation\": \"summaries\",\n",
            "  \"mode\": \"{}\",\n",
            "  \"workload\": \"ring {} nodes x {} walkers x {} hops, {} inner iters/hop, ",
            "{} daemons\",\n",
            "  \"rows\": [\n{}\n  ],\n",
            "  \"speedup_mandel_hops_per_sec\": {:.3},\n",
            "  \"speedup_matmul_hops_per_sec\": {:.3},\n",
            "  \"speedup_min_hops_per_sec\": {:.3}\n}}"
        ),
        if smoke { "smoke" } else { "full" },
        nodes,
        walkers,
        passes,
        iters,
        daemons,
        rows.join(",\n"),
        speedups[0].1,
        speedups[1].1,
        min_speedup,
    )
}

/// Schema check for a `BENCH_0008.json` produced by
/// [`ablation_summaries`]: required keys present, both configurations
/// recorded for both workloads, every counter non-negative and
/// parseable, the summaries-on rows actually exercised the analysis,
/// and — for a `"mode": "full"` file — the worst-case
/// summaries-on/summaries-off hops-per-sec speedup at least 1.15×.
///
/// # Errors
///
/// A human-readable description of the first violation found.
pub fn validate_bench_0008(json: &str) -> Result<(), String> {
    fn number_after(json: &str, key: &str, from: usize) -> Result<f64, String> {
        let pat = format!("\"{key}\":");
        let at = json[from..]
            .find(&pat)
            .map(|i| from + i + pat.len())
            .ok_or_else(|| format!("missing key {key:?}"))?;
        let rest = json[at..].trim_start();
        let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
        let tok = rest[..end].trim();
        if tok == "null" {
            return Err(format!("key {key:?} is null"));
        }
        tok.parse::<f64>().map_err(|_| format!("key {key:?} holds non-number {tok:?}"))
    }

    if !json.contains("\"bench\": \"BENCH_0008\"") {
        return Err("missing \"bench\": \"BENCH_0008\"".to_string());
    }
    for key in ["ablation", "mode", "workload", "rows"] {
        if !json.contains(&format!("\"{key}\":")) {
            return Err(format!("missing key {key:?}"));
        }
    }
    for workload in ["mandel_loop", "matmul_loop"] {
        if !json.contains(&format!("\"workload\": \"{workload}\"")) {
            return Err(format!("missing rows for workload {workload:?}"));
        }
    }
    for engine in ["compiled", "compiled+summaries"] {
        if !json.contains(&format!("\"engine\": \"{engine}\"")) {
            return Err(format!("missing rows for engine {engine:?}"));
        }
    }
    for key in ["hops_per_sec", "ops_per_sec", "wall_seconds"] {
        number_after(json, key, 0)?;
    }
    let mut max_summaries = 0.0f64;
    let mut max_typed = 0.0f64;
    for key in [
        "hops",
        "ops",
        "analysis_summaries",
        "analysis_inlined_calls",
        "analysis_typed_loops",
        "analysis_snapshots_elided",
    ] {
        let pat = format!("\"{key}\":");
        let mut from = 0usize;
        let mut seen = false;
        while let Some(i) = json[from..].find(&pat) {
            let at = from + i;
            let v = number_after(json, key, at)?;
            if !(v.is_finite() && v >= 0.0) {
                return Err(format!("counter {key:?} is negative or non-finite: {v}"));
            }
            if key == "analysis_summaries" {
                max_summaries = max_summaries.max(v);
            }
            if key == "analysis_typed_loops" {
                max_typed = max_typed.max(v);
            }
            seen = true;
            from = at + pat.len();
        }
        if !seen {
            return Err(format!("missing counter {key:?}"));
        }
    }
    if max_summaries < 1.0 {
        return Err("no row records a computed summary — the ablation never ran".to_string());
    }
    if max_typed < 1.0 {
        return Err("no row records a typed loop — the analysis licensed nothing".to_string());
    }
    for key in ["speedup_mandel_hops_per_sec", "speedup_matmul_hops_per_sec"] {
        let v = number_after(json, key, 0)?;
        if v <= 0.0 {
            return Err(format!("{key} must be positive, got {v}"));
        }
    }
    let min_speedup = number_after(json, "speedup_min_hops_per_sec", 0)?;
    if json.contains("\"mode\": \"full\"") && min_speedup < 1.15 {
        return Err(format!(
            "full-mode worst-case speedup {min_speedup:.3} below the 1.15x acceptance bar"
        ));
    }
    if min_speedup <= 0.0 {
        return Err(format!("speedup must be positive, got {min_speedup}"));
    }
    Ok(())
}

/// The code-size comparison (§3.1.1 / §3.2.1).
pub fn text_codesize() -> Table {
    let mut table = Table::new(
        "§3.1.1/§3.2.1: program sizes (non-blank, non-comment lines)",
        &[
            "application",
            "MSGR-C (executable)",
            "PVM pseudo-code (paper)",
            "PVM executable (this repo)",
        ],
    );
    for row in msgr_apps::codesize::comparison() {
        table.row(vec![
            row.app.to_string(),
            row.messengers_lines.to_string(),
            row.pvm_lines.to_string(),
            row.pvm_real_lines.to_string(),
        ]);
    }
    table
}

/// BENCH_0010 — the cost-attribution profiler itself.
///
/// The observability ablation: the BENCH_0007 ring-walker workloads
/// (mandel_loop, matmul_loop) on the *sim* platform under both engines,
/// with `ClusterConfig::profile` toggled per run. Profiling is pure
/// bookkeeping — it charges nothing to the cost model — so the bench
/// verifies the four properties the PR promises, then records where the
/// messenger-nanoseconds actually went:
///
/// * **Inertness**: simulated clock and every node variable are
///   bit-identical with profiling on and off (`profile_state_identical`),
///   and the two engines agree with each other (`engines_agree`).
/// * **Determinism**: two same-seed profiled runs produce byte-identical
///   traces and byte-identical `msgr profile` reports
///   (`profile_report_deterministic`).
/// * **Additivity**: the profiled trace is the unprofiled trace plus
///   only `phase_ledger`/`pc_sample` events (`profile_adds_only`).
/// * **Cheapness**: wall-clock overhead of profiling stays under 5%.
///   Each cell's overhead is the minimum ratio over N paired adjacent
///   off/on runs (both halves of a pair share the host's frequency and
///   cache state, so drift cancels; noise is additive-positive, so the
///   cleanest pair is the best estimate). The enforced bound is
///   `overhead_frac_interp_max` — the interpreter cells, whose runs are
///   an order of magnitude longer than the compiled ones, are where the
///   ratio's denominator towers over scheduler jitter; the
///   instrumentation (one predictable branch per dispatch plus the
///   daemon-side ledger hooks) is identical across engines.
///   `overhead_frac_max` over all cells is recorded unbounded, as the
///   compiled cells' short runs make their ratios noise-dominated.
///
/// Each row then reports the phase decomposition — queue / verify /
/// exec / enc / xport / park / stall as fractions of the attributed
/// total — plus the pc-sample site count and the critical path. The
/// fractions sum to 1 by construction (each ledger's `total` is its
/// phase sum); the bench asserts the printed row stays within 1%.
///
/// # Panics
///
/// Panics if any run fails, any invariant above does not hold, or a
/// profiled run produced no ledgers / no pc samples.
pub fn ablation_profile(smoke: bool) -> String {
    use msgr_core::topology::LogicalTopology;
    use msgr_core::{DaemonId, ExecMode, SimCluster, TraceConfig};
    use msgr_prof::{Profile, PHASES};
    use msgr_vm::{Dir, Value};

    let daemons = 4usize;
    // Sized so even the smoke interpreter runs take ~0.1s of host time:
    // the overhead ratio needs a denominator well above scheduler jitter.
    let (nodes, walkers, passes, iters) =
        if smoke { (8usize, 8usize, 8i64, 8192i64) } else { (16, 16, 32, 8192) };
    let repeats = 5;

    let ring_topo = |nodes: usize| {
        let block = nodes.div_ceil(daemons);
        let mut topo = LogicalTopology::new();
        for i in 0..nodes {
            topo.node(Value::str(format!("p{i}")), DaemonId((i / block) as u16));
        }
        for i in 0..nodes {
            topo.link(
                Value::str(format!("p{i}")),
                Value::str(format!("p{}", (i + 1) % nodes)),
                Value::str("ring"),
                Dir::Forward,
            );
        }
        topo
    };
    let cfg_for = |exec: ExecMode, profile: bool| {
        let mut cfg = ClusterConfig::new(daemons);
        cfg.seed = 42;
        cfg.exec = exec;
        cfg.trace = TraceConfig::on();
        cfg.profile = profile;
        // Sample densely enough that even the smoke-sized inner loops
        // hit the pc sampler several times per segment.
        cfg.profile_interval = 512;
        cfg
    };
    let fnv = |h: &mut u64, bytes: &[u8]| {
        for &b in bytes {
            *h = (*h ^ b as u64).wrapping_mul(0x100000001b3);
        }
    };

    // One sim run; returns (report, host wall seconds, state digest).
    // The digest covers the simulated clock and every node variable bit
    // — the profiler must not move any of it.
    let run_sim = |script: &str, exec: ExecMode, profile: bool| {
        let mut cluster = SimCluster::new(cfg_for(exec, profile));
        cluster.build(&ring_topo(nodes)).expect("build sim ring");
        let pid = cluster.register_program(&msgr_lang::compile(script).expect("compile"));
        for m in 0..walkers {
            cluster
                .inject_at(
                    &Value::str(format!("p{}", m % nodes)),
                    pid,
                    &[Value::Int(passes), Value::Int(iters)],
                )
                .expect("inject");
        }
        let t0 = std::time::Instant::now();
        let rep = cluster.run().expect("sim run");
        let wall = t0.elapsed().as_secs_f64();
        assert!(rep.faults.is_empty(), "sim faults: {:?}", rep.faults);
        let mut h: u64 = 0xcbf29ce484222325;
        fnv(&mut h, &rep.sim_seconds.to_bits().to_le_bytes());
        for i in 0..nodes {
            for var in ["field", "cell", "visits"] {
                match cluster.node_var_by_name(&Value::str(format!("p{i}")), var) {
                    Some(Value::Float(f)) => fnv(&mut h, &f.to_bits().to_le_bytes()),
                    Some(Value::Int(v)) => fnv(&mut h, &v.to_le_bytes()),
                    _ => fnv(&mut h, &[0xFF]),
                }
            }
        }
        (rep, wall, h)
    };

    let is_prof_event = |line: &str| {
        line.contains("\"ev\":\"phase_ledger\"") || line.contains("\"ev\":\"pc_sample\"")
    };

    let mut rows = Vec::new();
    let mut overhead_max = f64::NEG_INFINITY;
    let mut overhead_interp_max = f64::NEG_INFINITY;
    let mut state_identical = true;
    let mut adds_only = true;
    let mut report_deterministic = true;
    let mut digests: Vec<(String, u64)> = Vec::new();

    for (name, script) in [("mandel_loop", MANDEL_LOOP), ("matmul_loop", MATMUL_LOOP)] {
        for exec in [ExecMode::Interp, ExecMode::Compiled] {
            let engine = match exec {
                ExecMode::Interp => "interp",
                ExecMode::Compiled => "compiled",
            };
            // Overhead is measured on *paired* adjacent off/on runs —
            // both halves of a pair share the host's thermal/frequency
            // state, so drift across the bench cancels out of the ratio.
            // The cell's overhead is the median of the per-pair ratios
            // (a lone noisy pair cannot move the median). One untimed
            // warmup run absorbs cold caches and lazy page faults.
            run_sim(script, exec, false);
            let mut ratios = Vec::new();
            let mut off_digest = 0u64;
            let mut off_trace = String::new();
            let mut on_digest = 0u64;
            let mut on_traces: Vec<String> = Vec::new();
            let mut on_reports: Vec<String> = Vec::new();
            let mut profile = Profile::default();
            for r in 0..repeats {
                let (rep, off_w, h) = run_sim(script, exec, false);
                off_digest = h;
                if r == 0 {
                    off_trace = rep.trace.as_ref().expect("trace on").to_jsonl();
                }
                let (rep, on_w, h) = run_sim(script, exec, true);
                ratios.push(on_w / off_w.max(1e-9));
                on_digest = h;
                if r < 2 {
                    let t = rep.trace.as_ref().expect("trace on");
                    on_traces.push(t.to_jsonl());
                    on_reports.push(Profile::from_trace(t).report());
                    if r == 0 {
                        profile = Profile::from_trace(t);
                    }
                }
            }
            // The cell's overhead is the *cleanest pair observed* (the
            // minimum ratio): host noise is additive and positive, so
            // every pair overestimates and the minimum is the best
            // estimate of the true ratio. A real instrumentation
            // regression — say a per-op event emission — inflates every
            // pair and still trips the bound.
            ratios.sort_by(f64::total_cmp);
            let overhead = ratios[0] - 1.0;
            state_identical &= off_digest == on_digest;
            report_deterministic &= on_traces[0] == on_traces[1] && on_reports[0] == on_reports[1];
            // The profiled trace minus the profiler's own events must
            // carry exactly the unprofiled events (seq renumbering
            // aside): same count, same kinds in order.
            let kind_of = |line: &str| {
                line.split("\"ev\":\"")
                    .nth(1)
                    .and_then(|s| s.split('"').next())
                    .unwrap_or("")
                    .to_string()
            };
            let off_kinds: Vec<String> =
                off_trace.lines().filter(|l| l.contains("\"ev\"")).map(kind_of).collect();
            let on_kinds: Vec<String> = on_traces[0]
                .lines()
                .filter(|l| l.contains("\"ev\"") && !is_prof_event(l))
                .map(kind_of)
                .collect();
            assert!(
                !off_kinds.is_empty(),
                "{name}/{engine}: adds-only check matched no event lines"
            );
            adds_only &= off_kinds == on_kinds;
            digests.push((format!("{name}/{engine}"), off_digest));
            overhead_max = overhead_max.max(overhead);
            if exec == ExecMode::Interp {
                overhead_interp_max = overhead_interp_max.max(overhead);
            }

            assert!(!profile.ledgers.is_empty(), "{name}/{engine}: no full ledgers");
            assert!(!profile.samples.is_empty(), "{name}/{engine}: no pc samples");
            let totals = profile.phase_totals();
            let denom = profile.attributed_total().max(1) as f64;
            let fracs: Vec<f64> = totals.iter().map(|&ns| ns as f64 / denom).collect();
            let frac_sum: f64 = fracs.iter().sum();
            assert!(
                (frac_sum - 1.0).abs() <= 0.01,
                "{name}/{engine}: phase fractions sum to {frac_sum}, off by more than 1%"
            );
            let chain = profile.critical_chain();
            let chain_ns: u64 = chain.iter().map(|(l, e)| l.total + e).sum();
            let frac_fields: Vec<String> =
                PHASES.iter().zip(&fracs).map(|(p, f)| format!("\"frac_{p}\": {f:.4}")).collect();
            rows.push(format!(
                concat!(
                    "    {{\"platform\": \"sim\", \"workload\": \"{}\", \"engine\": \"{}\", ",
                    "\"ledgers\": {}, \"partial_ledgers\": {}, \"attributed_ns\": {}, ",
                    "\"pc_sites\": {}, \"critical_path_hops\": {}, \"critical_path_ns\": {}, ",
                    "{}, \"frac_sum\": {:.4}, \"overhead_frac\": {:.4}}}"
                ),
                name,
                engine,
                profile.ledgers.len(),
                profile.forks.len(),
                profile.attributed_total(),
                profile.samples.len(),
                chain.len(),
                chain_ns,
                frac_fields.join(", "),
                frac_sum,
                overhead,
            ));
        }
    }

    // Cross-engine gate, as in BENCH_0007: interp and compiled must agree
    // on the simulated state before the profile numbers mean anything.
    let engines_agree = ["mandel_loop", "matmul_loop"].iter().all(|name| {
        let d: Vec<u64> =
            digests.iter().filter(|(k, _)| k.starts_with(*name)).map(|&(_, d)| d).collect();
        d.windows(2).all(|w| w[0] == w[1])
    });
    assert!(engines_agree, "engines disagree on sim-platform state");
    assert!(state_identical, "profiling moved the simulated state");
    assert!(adds_only, "profiling perturbed the non-profiler event stream");
    assert!(report_deterministic, "same-seed profiled runs diverged");

    format!(
        concat!(
            "{{\n  \"bench\": \"BENCH_0010\",\n  \"ablation\": \"profile\",\n",
            "  \"mode\": \"{}\",\n",
            "  \"workload\": \"ring {} nodes x {} walkers x {} hops, {} inner iters/hop, ",
            "{} daemons\",\n",
            "  \"rows\": [\n{}\n  ],\n",
            "  \"engines_agree\": {},\n",
            "  \"profile_state_identical\": {},\n",
            "  \"profile_adds_only\": {},\n",
            "  \"profile_report_deterministic\": {},\n",
            "  \"overhead_frac_max\": {:.4},\n",
            "  \"overhead_frac_interp_max\": {:.4}\n}}"
        ),
        if smoke { "smoke" } else { "full" },
        nodes,
        walkers,
        passes,
        iters,
        daemons,
        rows.join(",\n"),
        engines_agree,
        state_identical,
        adds_only,
        report_deterministic,
        overhead_max,
        overhead_interp_max,
    )
}

/// Schema check for a `BENCH_0010.json` produced by [`ablation_profile`]:
/// required keys present, all four workload × engine rows recorded, every
/// phase fraction in `[0, 1]` with each row's `frac_sum` within 1% of 1,
/// ledgers and pc-sample sites non-empty everywhere, the four invariant
/// flags `true`, and the worst-case profiling overhead at most 5%.
///
/// # Errors
///
/// A human-readable description of the first violation found.
pub fn validate_bench_0010(json: &str) -> Result<(), String> {
    fn number_after(json: &str, key: &str, from: usize) -> Result<f64, String> {
        let pat = format!("\"{key}\":");
        let at = json[from..]
            .find(&pat)
            .map(|i| from + i + pat.len())
            .ok_or_else(|| format!("missing key {key:?}"))?;
        let rest = json[at..].trim_start();
        let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
        let tok = rest[..end].trim();
        if tok == "null" {
            return Err(format!("key {key:?} is null"));
        }
        tok.parse::<f64>().map_err(|_| format!("key {key:?} holds non-number {tok:?}"))
    }
    fn every_occurrence(
        json: &str,
        key: &str,
        check: impl Fn(f64) -> Result<(), String>,
    ) -> Result<(), String> {
        let pat = format!("\"{key}\":");
        let mut from = 0usize;
        let mut seen = false;
        while let Some(i) = json[from..].find(&pat) {
            let at = from + i;
            check(number_after(json, key, at)?).map_err(|e| format!("key {key:?}: {e}"))?;
            seen = true;
            from = at + pat.len();
        }
        if seen {
            Ok(())
        } else {
            Err(format!("missing key {key:?}"))
        }
    }

    if !json.contains("\"bench\": \"BENCH_0010\"") {
        return Err("missing \"bench\": \"BENCH_0010\"".to_string());
    }
    for key in ["ablation", "mode", "workload", "rows"] {
        if !json.contains(&format!("\"{key}\":")) {
            return Err(format!("missing key {key:?}"));
        }
    }
    for workload in ["mandel_loop", "matmul_loop"] {
        if !json.contains(&format!("\"workload\": \"{workload}\"")) {
            return Err(format!("missing rows for workload {workload:?}"));
        }
    }
    for engine in ["interp", "compiled"] {
        if !json.contains(&format!("\"engine\": \"{engine}\"")) {
            return Err(format!("missing rows for engine {engine:?}"));
        }
    }
    // Every phase fraction is a valid fraction; every row's sum is
    // within 1% of the end-to-end attributed total.
    for phase in ["queue", "verify", "exec", "enc", "xport", "park", "stall"] {
        every_occurrence(json, &format!("frac_{phase}"), |v| {
            if (0.0..=1.0).contains(&v) {
                Ok(())
            } else {
                Err(format!("fraction out of [0,1]: {v}"))
            }
        })?;
    }
    every_occurrence(json, "frac_sum", |v| {
        if (v - 1.0).abs() <= 0.01 {
            Ok(())
        } else {
            Err(format!("phase fractions sum to {v}, off by more than 1%"))
        }
    })?;
    every_occurrence(json, "ledgers", |v| {
        if v >= 1.0 {
            Ok(())
        } else {
            Err("profiled run recorded no ledgers".to_string())
        }
    })?;
    every_occurrence(json, "pc_sites", |v| {
        if v >= 1.0 {
            Ok(())
        } else {
            Err("profiled run recorded no pc samples".to_string())
        }
    })?;
    every_occurrence(json, "attributed_ns", |v| {
        if v > 0.0 {
            Ok(())
        } else {
            Err("no attributed time".to_string())
        }
    })?;
    every_occurrence(json, "critical_path_ns", |v| {
        if v > 0.0 {
            Ok(())
        } else {
            Err("empty critical path".to_string())
        }
    })?;
    for flag in [
        "engines_agree",
        "profile_state_identical",
        "profile_adds_only",
        "profile_report_deterministic",
    ] {
        if !json.contains(&format!("\"{flag}\": true")) {
            return Err(format!("invariant {flag:?} is not recorded as true"));
        }
    }
    number_after(json, "overhead_frac_max", 0)?;
    let overhead = number_after(json, "overhead_frac_interp_max", 0)?;
    if overhead > 0.05 {
        return Err(format!(
            "worst-case interpreter-cell profiling overhead {overhead:.4} exceeds the 5% bound"
        ));
    }
    Ok(())
}
