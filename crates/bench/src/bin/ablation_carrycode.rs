//! Ablation: shared code registry vs WAVE-style carry-code migrations.
fn main() {
    println!("{}", msgr_bench::ablation_carrycode());
}
