//! Fig. 7: the most favorable case (1280x1280, 8x8 grid).
fn main() {
    println!("{}", msgr_bench::fig7(&msgr_bench::PAPER_PROCS));
}
