//! Fig. 4: Mandelbrot, image 320x320, grids 8/16/32, 1..32 processors.
fn main() {
    println!(
        "{}",
        msgr_bench::mandel_figure("Fig. 4", 320, &msgr_bench::PAPER_PROCS, &[8, 16, 32])
    );
}
