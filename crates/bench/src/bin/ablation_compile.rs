//! Ablation: closure-compiled execution vs the interpreter
//! (BENCH_0007). Emits JSON on stdout; `--smoke` runs a scaled-down
//! version for CI, `--check <path>` schema-validates an existing file
//! instead of running anything.
//!
//! Exit codes follow the workspace contract: `0` clean, `1` findings
//! (schema violation, speedup below the bar), `2` usage/internal error.
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--check") {
        let Some(path) = args.get(1) else {
            eprintln!("usage: ablation_compile --check <path>");
            std::process::exit(2);
        };
        let body = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        });
        match msgr_bench::validate_bench_0007(&body) {
            Ok(()) => println!("{path}: ok"),
            Err(e) => {
                eprintln!("{path}: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    if let Some(bad) = args.iter().find(|a| *a != "--smoke") {
        eprintln!("unknown flag: {bad}\nusage: ablation_compile [--smoke | --check <path>]");
        std::process::exit(2);
    }
    let smoke = !args.is_empty();
    println!("{}", msgr_bench::ablation_compile(smoke));
}
