//! Ablation: closure-compiled execution vs the interpreter
//! (BENCH_0007), and summary-guided compilation vs plain compilation
//! (BENCH_0008, via `--summaries`). Emits JSON on stdout; `--smoke`
//! runs a scaled-down version for CI, `--check <path>`
//! schema-validates an existing file instead of running anything —
//! dispatching on the `"bench"` tag inside the file, so one entry
//! point checks both artifacts.
//!
//! Exit codes follow the workspace contract: `0` clean, `1` findings
//! (schema violation, speedup below the bar), `2` usage/internal error.
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--check") {
        let Some(path) = args.get(1) else {
            eprintln!("usage: ablation_compile --check <path>");
            std::process::exit(2);
        };
        let body = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        });
        let result = if body.contains("\"bench\": \"BENCH_0008\"") {
            msgr_bench::validate_bench_0008(&body)
        } else {
            msgr_bench::validate_bench_0007(&body)
        };
        match result {
            Ok(()) => println!("{path}: ok"),
            Err(e) => {
                eprintln!("{path}: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    if let Some(bad) = args.iter().find(|a| *a != "--smoke" && *a != "--summaries") {
        eprintln!(
            "unknown flag: {bad}\nusage: ablation_compile [--smoke] [--summaries] [--check <path>]"
        );
        std::process::exit(2);
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    if args.iter().any(|a| a == "--summaries") {
        println!("{}", msgr_bench::ablation_summaries(smoke));
    } else {
        println!("{}", msgr_bench::ablation_compile(smoke));
    }
}
