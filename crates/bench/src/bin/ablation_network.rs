//! Ablation: shared vs switched media for both systems.
fn main() {
    println!("{}", msgr_bench::ablation_network());
}
