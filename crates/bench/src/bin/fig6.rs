//! Fig. 6: Mandelbrot, image 1280x1280, grids 8/16/32, 1..32 processors.
fn main() {
    println!(
        "{}",
        msgr_bench::mandel_figure("Fig. 6", 1280, &msgr_bench::PAPER_PROCS, &[8, 16, 32])
    );
}
