//! Fig. 12(b): matrix multiplication on a 3x3 grid (9 procs, 170 MHz).
fn main() {
    println!(
        "{}",
        msgr_bench::matmul_figure(
            "Fig. 12(b)",
            3,
            &[10, 20, 50, 100, 150, 200, 300, 400, 500],
            1.55
        )
    );
}
