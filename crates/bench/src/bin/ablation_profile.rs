//! Ablation: the deterministic cost-attribution profiler (BENCH_0010).
//! Emits JSON on stdout; `--smoke` runs a scaled-down version for CI,
//! `--check <path>` schema-validates an existing file instead of
//! running anything.
//!
//! Exit codes follow the workspace contract: `0` clean, `1` findings
//! (schema violation, invariant broken, overhead over the bound), `2`
//! usage/internal error.
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--check") {
        let Some(path) = args.get(1) else {
            eprintln!("usage: ablation_profile --check <path>");
            std::process::exit(2);
        };
        let body = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        });
        match msgr_bench::validate_bench_0010(&body) {
            Ok(()) => println!("{path}: ok"),
            Err(e) => {
                eprintln!("{path}: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    if let Some(bad) = args.iter().find(|a| *a != "--smoke") {
        eprintln!("unknown flag: {bad}\nusage: ablation_profile [--smoke] [--check <path>]");
        std::process::exit(2);
    }
    println!("{}", msgr_bench::ablation_profile(args.iter().any(|a| a == "--smoke")));
}
