//! Ablation: conservative GVT round interval and optimistic Time Warp.
fn main() {
    println!("{}", msgr_bench::ablation_gvt());
}
