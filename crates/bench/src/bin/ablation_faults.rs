//! Ablation: injected frame loss — MESSENGERS reliable transport vs
//! PVM's stop-and-wait pvmd protocol. Emits JSON.
fn main() {
    println!("{}", msgr_bench::ablation_faults());
}
