//! §3.2 text claim: blocked sequential ≈13% faster than naive at n=1500.
fn main() {
    println!("{}", msgr_bench::text_seqblock());
}
