//! Ablation: where optimistic Time Warp beats conservative GVT.
fn main() {
    println!("{}", msgr_bench::ablation_timewarp());
}
