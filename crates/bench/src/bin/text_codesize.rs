//! §3.1.1/§3.2.1: the program-size comparison.
fn main() {
    println!("{}", msgr_bench::text_codesize());
}
