//! Fig. 5: Mandelbrot, image 640x640, grids 8/16/32, 1..32 processors.
fn main() {
    println!(
        "{}",
        msgr_bench::mandel_figure("Fig. 5", 640, &msgr_bench::PAPER_PROCS, &[8, 16, 32])
    );
}
