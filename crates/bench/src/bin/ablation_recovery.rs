//! Ablation: permanent daemon death — detection, failover, and replay
//! cost vs when the worker dies. Emits JSON.
fn main() {
    println!("{}", msgr_bench::ablation_recovery());
}
