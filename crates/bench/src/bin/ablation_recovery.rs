//! Ablation: permanent daemon death — detection, failover, and replay
//! cost vs when the worker dies; with `--quorum`, succession by
//! majority decree and `k`-replicated checkpoints vs the deterministic
//! baseline (BENCH_0009). Emits JSON on stdout; `--smoke` runs a
//! scaled-down sweep for CI, `--check <path>` schema-validates an
//! existing BENCH_0009 file instead of running anything.
//!
//! Exit codes follow the workspace contract: `0` clean, `1` findings
//! (schema violation, latency ratio above the bar), `2` usage/internal
//! error.
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--check") {
        let Some(path) = args.get(1) else {
            eprintln!("usage: ablation_recovery --check <path>");
            std::process::exit(2);
        };
        let body = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        });
        match msgr_bench::validate_bench_0009(&body) {
            Ok(()) => println!("{path}: ok"),
            Err(e) => {
                eprintln!("{path}: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    if let Some(bad) = args.iter().find(|a| *a != "--smoke" && *a != "--quorum") {
        eprintln!(
            "unknown flag: {bad}\nusage: ablation_recovery [--smoke] [--quorum] [--check <path>]"
        );
        std::process::exit(2);
    }
    if args.iter().any(|a| a == "--quorum") {
        println!("{}", msgr_bench::ablation_quorum(args.iter().any(|a| a == "--smoke")));
    } else {
        println!("{}", msgr_bench::ablation_recovery());
    }
}
