//! Fig. 12(a): matrix multiplication on a 2x2 grid (4 procs, 110 MHz).
fn main() {
    println!(
        "{}",
        msgr_bench::matmul_figure(
            "Fig. 12(a)",
            2,
            &[10, 20, 50, 100, 150, 200, 300, 400, 500],
            1.0
        )
    );
}
