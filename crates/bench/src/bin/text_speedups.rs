//! §3.2.2 text claims: speedups over the sequential algorithms.
fn main() {
    println!("{}", msgr_bench::text_speedups());
}
