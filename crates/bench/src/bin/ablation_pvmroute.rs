//! Ablation: PVM pvmd store-and-forward vs direct routing.
fn main() {
    println!("{}", msgr_bench::ablation_pvmroute());
}
