//! Component-level criterion benchmarks: the costs that the simulation
//! models (interpreter dispatch, wire codec, GVT round) measured for
//! real on the host machine.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use msgr_gvt::{Coordinator, CoordinatorAction, CtrlMsg, Participant};
use msgr_vm::{interp, wire, Matrix, MessengerState, NullEnv, Value, Vt};

fn vm_dispatch(c: &mut Criterion) {
    // A tight MSGR-C loop: measures interpreter ops/second.
    let program = msgr_lang::compile(
        "main(n) { int i, acc; for (i = 0; i < n; i = i + 1) { acc = acc + i; } return acc; }",
    )
    .unwrap();
    let mut g = c.benchmark_group("vm");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("dispatch_10k_iterations", |b| {
        b.iter_batched(
            || MessengerState::launch(&program, 1.into(), &[Value::Int(10_000)]).unwrap(),
            |mut m| interp::run(&program, &mut m, &mut NullEnv, u64::MAX).unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn wire_codec(c: &mut Criterion) {
    let program = msgr_lang::compile("main(a, b) { return a; }").unwrap();
    let small =
        MessengerState::launch(&program, 1.into(), &[Value::Int(1), Value::str("state")]).unwrap();
    let big = MessengerState::launch(
        &program,
        1.into(),
        &[Value::Mat(Matrix::zeros(128, 128)), Value::Int(0)],
    )
    .unwrap();
    let mut g = c.benchmark_group("codec");
    for (name, state) in [("small_messenger", &small), ("128x128_block_messenger", &big)] {
        let bytes = wire::encode_messenger(state);
        g.throughput(Throughput::Bytes(bytes.len() as u64));
        g.bench_function(format!("encode/{name}"), |b| {
            b.iter(|| wire::encode_messenger(std::hint::black_box(state)))
        });
        g.bench_function(format!("decode/{name}"), |b| {
            b.iter(|| wire::decode_messenger(std::hint::black_box(bytes.clone())).unwrap())
        });
    }
    g.finish();
}

fn gvt_round(c: &mut Criterion) {
    c.bench_function("gvt/round_32_participants", |b| {
        b.iter_batched(
            || {
                let parts: Vec<Participant> = (0..32).map(Participant::new).collect();
                (Coordinator::new(32), parts)
            },
            |(mut coord, mut parts)| {
                let CtrlMsg::Cut { round } = coord.begin_round().unwrap() else {
                    unreachable!()
                };
                let mut out = None;
                for p in &mut parts {
                    let ack = p.on_cut(round, Vt::new(1.0));
                    if let CoordinatorAction::Advance { gvt } = coord.on_ack(&ack) {
                        out = Some(gvt);
                    }
                }
                out.expect("round completes")
            },
            BatchSize::SmallInput,
        )
    });
}

fn kernels(c: &mut Criterion) {
    use msgr_apps::mandel::mandel_iters;
    use msgr_apps::matmul::{multiply_accumulate, test_matrix};
    let mut g = c.benchmark_group("kernels");
    g.bench_function("mandel_row_64px", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for i in 0..64 {
                acc += mandel_iters(-1.5 + i as f64 * 0.03, 0.05, 512);
            }
            acc
        })
    });
    let a = test_matrix(64, 1);
    let bm = test_matrix(64, 2);
    g.bench_function("block_multiply_64", |b| {
        b.iter_batched(
            || Matrix::zeros(64, 64),
            |mut cmat| {
                multiply_accumulate(&mut cmat, &a, &bm);
                cmat
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn hop_roundtrip(c: &mut Criterion) {
    // Host-side cost of simulating messenger traffic: a walker doing
    // 100 ring hops across 4 daemons (events, encode/decode, matching).
    use msgr_core::topology::LogicalTopology;
    use msgr_core::{ClusterConfig, DaemonId, SimCluster};
    use msgr_vm::Dir;
    let program = msgr_lang::compile(
        r#"walk(n) {
            int i;
            for (i = 0; i < n; i = i + 1) hop(ll = "ring"; ldir = +);
        }"#,
    )
    .unwrap();
    c.bench_function("sim/hop_walk_100", |b| {
        b.iter(|| {
            let mut cfg = ClusterConfig::new(4);
            cfg.net = msgr_core::config::NetKind::Ideal;
            let mut cluster = SimCluster::new(cfg);
            let mut topo = LogicalTopology::new();
            for i in 0..4 {
                topo.node(Value::str(format!("r{i}")), DaemonId(i as u16));
            }
            for i in 0..4 {
                topo.link(
                    Value::str(format!("r{i}")),
                    Value::str(format!("r{}", (i + 1) % 4)),
                    Value::str("ring"),
                    Dir::Forward,
                );
            }
            cluster.build(&topo).unwrap();
            let pid = cluster.register_program(&program);
            cluster.inject_at(&Value::str("r0"), pid, &[Value::Int(100)]).unwrap();
            cluster.run().unwrap()
        })
    });
}

criterion_group!(benches, vm_dispatch, wire_codec, gvt_round, kernels, hop_roundtrip);
criterion_main!(benches);
