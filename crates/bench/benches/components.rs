//! Component-level benchmarks: the costs that the simulation models
//! (interpreter dispatch, wire codec, GVT round) measured for real on
//! the host machine. Plain `harness = false` binary using the in-repo
//! timing harness (`msgr_bench::harness`).

use msgr_bench::harness::{Runner, Throughput};

use msgr_gvt::{Coordinator, CoordinatorAction, CtrlMsg, Participant};
use msgr_vm::{interp, wire, Matrix, MessengerState, NullEnv, Value, Vt};

fn vm_dispatch(r: &mut Runner) {
    // A tight MSGR-C loop: measures interpreter ops/second.
    let program = msgr_lang::compile(
        "main(n) { int i, acc; for (i = 0; i < n; i = i + 1) { acc = acc + i; } return acc; }",
    )
    .unwrap();
    r.bench_throughput("vm/dispatch_10k_iterations", Throughput::Elements(10_000), || {
        let mut m = MessengerState::launch(&program, 1.into(), &[Value::Int(10_000)]).unwrap();
        interp::run(&program, &mut m, &mut NullEnv, u64::MAX).unwrap()
    });
}

fn wire_codec(r: &mut Runner) {
    let program = msgr_lang::compile("main(a, b) { return a; }").unwrap();
    let small =
        MessengerState::launch(&program, 1.into(), &[Value::Int(1), Value::str("state")]).unwrap();
    let big = MessengerState::launch(
        &program,
        1.into(),
        &[Value::Mat(Matrix::zeros(128, 128)), Value::Int(0)],
    )
    .unwrap();
    for (name, state) in [("small_messenger", &small), ("128x128_block_messenger", &big)] {
        let bytes = wire::encode_messenger(state);
        let tp = Throughput::Bytes(bytes.len() as u64);
        r.bench_throughput(&format!("codec/encode/{name}"), tp, || {
            wire::encode_messenger(std::hint::black_box(state))
        });
        r.bench_throughput(&format!("codec/decode/{name}"), tp, || {
            wire::decode_messenger(std::hint::black_box(bytes.clone())).unwrap()
        });
    }
}

fn gvt_round(r: &mut Runner) {
    r.bench_with_setup(
        "gvt/round_32_participants",
        || {
            let parts: Vec<Participant> = (0..32).map(Participant::new).collect();
            (Coordinator::new(32), parts)
        },
        |(mut coord, mut parts)| {
            let CtrlMsg::Cut { round } = coord.begin_round().unwrap() else { unreachable!() };
            let mut out = None;
            for p in &mut parts {
                let ack = p.on_cut(round, Vt::new(1.0));
                if let CoordinatorAction::Advance { gvt } = coord.on_ack(&ack) {
                    out = Some(gvt);
                }
            }
            out.expect("round completes")
        },
    );
}

fn kernels(r: &mut Runner) {
    use msgr_apps::mandel::mandel_iters;
    use msgr_apps::matmul::{multiply_accumulate, test_matrix};
    r.bench("kernels/mandel_row_64px", || {
        let mut acc = 0u32;
        for i in 0..64 {
            acc += mandel_iters(-1.5 + i as f64 * 0.03, 0.05, 512);
        }
        acc
    });
    let a = test_matrix(64, 1);
    let bm = test_matrix(64, 2);
    r.bench_with_setup(
        "kernels/block_multiply_64",
        || Matrix::zeros(64, 64),
        |mut cmat| {
            multiply_accumulate(&mut cmat, &a, &bm);
            cmat
        },
    );
}

fn hop_roundtrip(r: &mut Runner) {
    // Host-side cost of simulating messenger traffic: a walker doing
    // 100 ring hops across 4 daemons (events, encode/decode, matching).
    use msgr_core::topology::LogicalTopology;
    use msgr_core::{ClusterConfig, DaemonId, SimCluster};
    use msgr_vm::Dir;
    let program = msgr_lang::compile(
        r#"walk(n) {
            int i;
            for (i = 0; i < n; i = i + 1) hop(ll = "ring"; ldir = +);
        }"#,
    )
    .unwrap();
    r.bench("sim/hop_walk_100", || {
        let mut cfg = ClusterConfig::new(4);
        cfg.net = msgr_core::config::NetKind::Ideal;
        let mut cluster = SimCluster::new(cfg);
        let mut topo = LogicalTopology::new();
        for i in 0..4 {
            topo.node(Value::str(format!("r{i}")), DaemonId(i as u16));
        }
        for i in 0..4 {
            topo.link(
                Value::str(format!("r{i}")),
                Value::str(format!("r{}", (i + 1) % 4)),
                Value::str("ring"),
                Dir::Forward,
            );
        }
        cluster.build(&topo).unwrap();
        let pid = cluster.register_program(&program);
        cluster.inject_at(&Value::str("r0"), pid, &[Value::Int(100)]).unwrap();
        cluster.run().unwrap()
    });
}

fn verifier(r: &mut Runner) {
    // Load-time cost of the mobile-code trust boundary: full verify +
    // lint pass over a real application program. Throughput is bytecode
    // ops, so this reads as "ops verified per second" next to the
    // interpreter's "ops dispatched per second".
    let program = msgr_lang::compile(msgr_apps::mandel_msgr::MANAGER_WORKER_SCRIPT).unwrap();
    let ops = program.instruction_count() as u64;
    r.bench_throughput("analyze/verify_manager_worker", Throughput::Elements(ops), || {
        msgr_analyze::verify(std::hint::black_box(&program)).unwrap()
    });
    r.bench_throughput("analyze/full_lint_manager_worker", Throughput::Elements(ops), || {
        msgr_analyze::analyze(std::hint::black_box(&program))
    });
}

fn main() {
    let mut r = Runner::new();
    vm_dispatch(&mut r);
    wire_codec(&mut r);
    gvt_round(&mut r);
    kernels(&mut r);
    hop_roundtrip(&mut r);
    verifier(&mut r);
}
