//! Reduced-scale versions of the paper's figures, as criterion
//! benchmarks: these measure the *host* cost of regenerating each data
//! point (the simulations themselves are deterministic). Run the
//! `fig4`…`fig12b` binaries for the full-scale tables.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use msgr_apps::calib::Calib;
use msgr_apps::mandel::{MandelScene, MandelWork};
use msgr_apps::matmul::{test_matrix, MatmulScene};
use msgr_apps::{mandel_msgr, mandel_pvm, matmul_msgr, matmul_pvm};
use msgr_core::ClusterConfig;
use msgr_pvm::PvmNet;

fn mandel_smoke(c: &mut Criterion) {
    let calib = Calib::default();
    let work = Arc::new(MandelWork::compute(MandelScene::paper(128, 8)));
    let mut g = c.benchmark_group("fig4_smoke_128px");
    g.sample_size(10);
    g.bench_function("messengers_8procs", |b| {
        b.iter(|| mandel_msgr::run_sim(&work, 8, &calib, ClusterConfig::new(8)).unwrap())
    });
    g.bench_function("pvm_8procs", |b| {
        b.iter(|| mandel_pvm::run_sim(&work, 8, &calib, PvmNet::Ethernet100).unwrap())
    });
    g.finish();
}

fn matmul_smoke(c: &mut Criterion) {
    let calib = Calib::default();
    let scene = MatmulScene::new(2, 24);
    let a = test_matrix(scene.n(), 1);
    let b = test_matrix(scene.n(), 2);
    let mut g = c.benchmark_group("fig12_smoke_s24");
    g.sample_size(10);
    g.bench_function("messengers_2x2", |bch| {
        bch.iter(|| {
            matmul_msgr::run_sim(scene, &a, &b, &calib, ClusterConfig::new(4)).unwrap()
        })
    });
    g.bench_function("pvm_2x2", |bch| {
        bch.iter(|| {
            matmul_pvm::run_sim(scene, &a, &b, &calib, 4, PvmNet::Ethernet100, 1.0).unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, mandel_smoke, matmul_smoke);
criterion_main!(benches);
