//! Reduced-scale versions of the paper's figures: these measure the
//! *host* cost of regenerating each data point (the simulations
//! themselves are deterministic). Run the `fig4`…`fig12b` binaries for
//! the full-scale tables.

use std::sync::Arc;

use msgr_bench::harness::Runner;

use msgr_apps::calib::Calib;
use msgr_apps::mandel::{MandelScene, MandelWork};
use msgr_apps::matmul::{test_matrix, MatmulScene};
use msgr_apps::{mandel_msgr, mandel_pvm, matmul_msgr, matmul_pvm};
use msgr_core::ClusterConfig;
use msgr_pvm::PvmNet;

fn mandel_smoke(r: &mut Runner) {
    let calib = Calib::default();
    let work = Arc::new(MandelWork::compute(MandelScene::paper(128, 8)));
    r.bench("fig4_smoke_128px/messengers_8procs", || {
        mandel_msgr::run_sim(&work, 8, &calib, ClusterConfig::new(8)).unwrap()
    });
    r.bench("fig4_smoke_128px/pvm_8procs", || {
        mandel_pvm::run_sim(&work, 8, &calib, PvmNet::Ethernet100).unwrap()
    });
}

fn matmul_smoke(r: &mut Runner) {
    let calib = Calib::default();
    let scene = MatmulScene::new(2, 24);
    let a = test_matrix(scene.n(), 1);
    let b = test_matrix(scene.n(), 2);
    r.bench("fig12_smoke_s24/messengers_2x2", || {
        matmul_msgr::run_sim(scene, &a, &b, &calib, ClusterConfig::new(4)).unwrap()
    });
    r.bench("fig12_smoke_s24/pvm_2x2", || {
        matmul_pvm::run_sim(scene, &a, &b, &calib, 4, PvmNet::Ethernet100, 1.0).unwrap()
    });
}

fn main() {
    let mut r = Runner::new();
    mandel_smoke(&mut r);
    matmul_smoke(&mut r);
}
