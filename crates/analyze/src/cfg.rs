//! Control-flow structure of a single function: jump targets,
//! successor edges, and block labels.
//!
//! Offsets in [`Op::Jump`] and friends are relative to the *next*
//! instruction; an absolute target equal to `code.len()` is legal and
//! means "fall off the end" (the implicit `return NULL`).

use std::collections::BTreeMap;

use msgr_vm::{Function, Op};

/// Absolute jump target of `op` at `pc`, or `None` for non-jumps.
/// The result may be out of bounds — the verifier checks that.
pub fn jump_target(pc: usize, op: &Op) -> Option<isize> {
    let off = match *op {
        Op::Jump(o) | Op::JumpIfFalse(o) | Op::JumpIfTruePeek(o) | Op::JumpIfFalsePeek(o) => o,
        _ => return None,
    };
    Some(pc as isize + 1 + off as isize)
}

/// Successor pcs of the instruction at `pc`. A successor equal to
/// `code.len()` is the function exit (implicit return). Call only on
/// code whose jump targets have passed the structural check.
pub fn successors(code: &[Op], pc: usize) -> Vec<usize> {
    let op = &code[pc];
    match op {
        Op::Ret | Op::Halt => Vec::new(),
        Op::Jump(_) => vec![jump_target(pc, op).unwrap() as usize],
        Op::JumpIfFalse(_) | Op::JumpIfTruePeek(_) | Op::JumpIfFalsePeek(_) => {
            let t = jump_target(pc, op).unwrap() as usize;
            if t == pc + 1 {
                vec![pc + 1]
            } else {
                vec![pc + 1, t]
            }
        }
        _ => vec![pc + 1],
    }
}

/// Map `pc -> label index` for every in-range jump target of `f`, in
/// address order: the `L0:`, `L1:`, … labels printed by the
/// disassembler and referenced by diagnostics.
pub fn block_labels(f: &Function) -> BTreeMap<usize, usize> {
    let mut targets = BTreeMap::new();
    for (pc, op) in f.code.iter().enumerate() {
        if let Some(t) = jump_target(pc, op) {
            if t >= 0 && t <= f.code.len() as isize {
                targets.insert(t as usize, 0);
            }
        }
    }
    for (i, (_, label)) in targets.iter_mut().enumerate() {
        *label = i;
    }
    targets
}

/// True when `pc` lies on a control-flow cycle (can reach itself).
/// Used by the `create(...; ALL)`-in-loop lint.
pub fn on_cycle(code: &[Op], pc: usize) -> bool {
    let len = code.len();
    let mut seen = vec![false; len + 1];
    let mut stack: Vec<usize> = successors(code, pc).into_iter().filter(|&s| s < len).collect();
    while let Some(s) = stack.pop() {
        if s == pc {
            return true;
        }
        if std::mem::replace(&mut seen[s], true) {
            continue;
        }
        stack.extend(successors(code, s).into_iter().filter(|&n| n < len));
    }
    false
}
