//! Verifier and lint unit tests: hand-crafted invalid bytecode (one
//! fixture per diagnostic code), edge cases, and lint positives /
//! negatives on compiled MSGR-C.

use super::*;
use msgr_vm::{Builder, FuncId, Value};

fn codes(diags: &[Diag]) -> Vec<&'static str> {
    diags.iter().map(|d| d.code).collect()
}

fn reject(p: &Program) -> Vec<Diag> {
    verify(p).expect_err("program should fail verification")
}

// ---- invalid fixtures: one per diagnostic code -------------------------

#[test]
fn v001_bad_entry() {
    let mut b = Builder::new();
    let f = b.function("main", 0, 0, vec![]);
    let mut p = b.finish(f);
    p.entry = FuncId(9);
    assert_eq!(codes(&reject(&p)), ["V001"]);
}

#[test]
fn v002_bad_jump_target() {
    let mut b = Builder::new();
    let f = b.function("main", 0, 0, vec![Op::Jump(100)]);
    let p = b.finish(f);
    let diags = reject(&p);
    assert_eq!(codes(&diags), ["V002"]);
    assert_eq!(diags[0].pc, Some(0));
}

#[test]
fn v002_backward_out_of_bounds() {
    let mut b = Builder::new();
    let f = b.function("main", 0, 0, vec![Op::Jump(-5)]);
    let p = b.finish(f);
    assert_eq!(codes(&reject(&p)), ["V002"]);
}

#[test]
fn v003_stack_underflow() {
    let mut b = Builder::new();
    let f = b.function("main", 0, 0, vec![Op::Pop]);
    let p = b.finish(f);
    let diags = reject(&p);
    assert_eq!(codes(&diags), ["V003"]);
    assert!(diags[0].message.contains("underflow"));
}

#[test]
fn v004_merge_depth_mismatch() {
    let mut b = Builder::new();
    let c = b.constant(Value::Int(1));
    // pc0 Const (d=1); pc1 JumpIfFalse pops and branches to pc3 with
    // d=0; the fallthrough path pushes at pc2 and reaches pc3 with
    // d=1. Inconsistent depth at the merge point pc3.
    let f = b.function(
        "main",
        0,
        0,
        vec![Op::Const(c), Op::JumpIfFalse(1), Op::Const(c), Op::Const(c), Op::Ret],
    );
    let p = b.finish(f);
    let diags = reject(&p);
    assert_eq!(codes(&diags), ["V004"]);
    assert_eq!(diags[0].pc, Some(3));
}

#[test]
fn v005_bad_const_index() {
    let mut b = Builder::new();
    let f = b.function("main", 0, 0, vec![Op::Const(7), Op::Ret]);
    let p = b.finish(f);
    assert_eq!(codes(&reject(&p)), ["V005"]);
}

#[test]
fn v006_bad_local_index() {
    let mut b = Builder::new();
    let c = b.constant(Value::Int(0));
    let f = b.function("main", 0, 0, vec![Op::Const(c), Op::StoreLocal(9)]);
    let p = b.finish(f);
    assert_eq!(codes(&reject(&p)), ["V006"]);
}

#[test]
fn v007_bad_call_target() {
    let mut b = Builder::new();
    let f = b.function("main", 0, 0, vec![Op::Call { f: 5, argc: 0 }, Op::Ret]);
    let p = b.finish(f);
    assert_eq!(codes(&reject(&p)), ["V007"]);
}

#[test]
fn v008_call_arity_mismatch() {
    let mut b = Builder::new();
    let c = b.constant(Value::Int(1));
    let main = b.function("main", 0, 0, vec![Op::Const(c), Op::Call { f: 1, argc: 1 }, Op::Ret]);
    let _helper = b.function("helper", 2, 0, vec![Op::LoadLocal(0), Op::Ret]);
    let p = b.finish(main);
    let diags = reject(&p);
    assert_eq!(codes(&diags), ["V008"]);
    assert!(diags[0].message.contains("helper"));
}

#[test]
fn v009_bad_spec_index() {
    let mut b = Builder::new();
    let f = b.function("main", 0, 0, vec![Op::Hop(0)]);
    let p = b.finish(f);
    assert_eq!(codes(&reject(&p)), ["V009"]);
    let mut b = Builder::new();
    let f = b.function("main", 0, 0, vec![Op::Create(3)]);
    let p = b.finish(f);
    assert_eq!(codes(&reject(&p)), ["V009"]);
}

#[test]
fn v010_node_name_not_a_string() {
    let mut b = Builder::new();
    let c = b.constant(Value::Int(3));
    let f = b.function("main", 0, 0, vec![Op::LoadNode(c), Op::Ret]);
    let p = b.finish(f);
    assert_eq!(codes(&reject(&p)), ["V010"]);
}

#[test]
fn v011_arity_exceeds_slots() {
    let mut b = Builder::new();
    let f = b.function("main", 0, 0, vec![]);
    let mut p = b.finish(f);
    p.funcs[0].arity = 2; // n_slots stays 0
    assert_eq!(codes(&reject(&p)), ["V011"]);
}

#[test]
fn v012_stack_bound_exceeded() {
    let mut b = Builder::new();
    let c = b.constant(Value::Int(0));
    let f = b.function("main", 0, 0, vec![Op::Const(c); MAX_STACK + 1]);
    let p = b.finish(f);
    let diags = reject(&p);
    assert_eq!(codes(&diags), ["V012"]);
    assert!(diags[0].message.contains(&MAX_STACK.to_string()));
}

#[test]
fn v013_bad_line_table() {
    let mut b = Builder::new();
    let c = b.constant(Value::Int(0));
    let f = b.function_with_lines("main", 0, 0, vec![Op::Const(c), Op::Ret], vec![1]);
    let p = b.finish(f);
    assert_eq!(codes(&reject(&p)), ["V013"]);
}

// ---- verifier edge cases ----------------------------------------------

#[test]
fn empty_function_verifies() {
    let mut b = Builder::new();
    let f = b.function("main", 0, 0, vec![]);
    let p = b.finish(f);
    let infos = verify(&p).unwrap();
    assert_eq!(infos[0], FuncInfo { max_stack: 0, blocks: 1 });
}

#[test]
fn jump_to_end_is_implicit_return() {
    let mut b = Builder::new();
    let f = b.function("main", 0, 0, vec![Op::Jump(0)]);
    let p = b.finish(f);
    assert!(verify(&p).is_ok());
}

#[test]
fn while_true_with_no_exit_verifies() {
    let p = msgr_lang::compile("main() { while (1) { } }").unwrap();
    let infos = verify(&p).unwrap();
    assert!(infos[0].blocks >= 2);
}

#[test]
fn break_continue_stack_balance() {
    let p = msgr_lang::compile(
        r#"main() {
            int i, acc = 0;
            for (i = 0; i < 100; i = i + 1) {
                if (i % 2 == 0 && acc < 50) continue;
                while (acc > 10) { acc = acc - 1; if (acc == 11) break; }
                if (i > 10) break;
                acc = acc + i;
            }
            return acc;
        }"#,
    )
    .unwrap();
    assert!(verify(&p).is_ok());
}

#[test]
fn recursive_and_mutually_recursive_calls_verify() {
    let p = msgr_lang::compile(
        r#"fib(n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
           even(n) { if (n == 0) return true; return odd(n - 1); }
           odd(n) { if (n == 0) return false; return even(n - 1); }"#,
    )
    .unwrap();
    assert!(verify(&p).is_ok());
}

#[test]
fn max_stack_is_reported() {
    let mut b = Builder::new();
    let c = b.constant(Value::Int(1));
    // Pushes 4, consumes via 3 Adds, returns: peak depth 4.
    let f = b.function(
        "main",
        0,
        0,
        vec![
            Op::Const(c),
            Op::Const(c),
            Op::Const(c),
            Op::Const(c),
            Op::Add,
            Op::Add,
            Op::Add,
            Op::Ret,
        ],
    );
    let p = b.finish(f);
    let infos = verify(&p).unwrap();
    assert_eq!(infos[0].max_stack, 4);
}

#[test]
fn short_circuit_merges_consistently() {
    let p =
        msgr_lang::compile("main(a, b) { if (a && b || !a) return 1; return a || b; }").unwrap();
    assert!(verify(&p).is_ok());
}

// ---- lints -------------------------------------------------------------

fn lint_codes(src: &str) -> Vec<&'static str> {
    let p = msgr_lang::compile(src).unwrap();
    let report = analyze(&p);
    assert!(report.is_verified(), "lint fixtures must verify");
    report.warnings().map(|d| d.code).collect()
}

#[test]
fn n201_unreachable_code_after_return() {
    let codes = lint_codes(
        r#"main() {
            return 1;
            int x;
            x = helper(2);
            return x;
        }
        helper(n) { return n; }"#,
    );
    assert!(codes.contains(&"N201"), "got {codes:?}");
}

#[test]
fn n201_exempts_terminate_artifacts() {
    assert_eq!(lint_codes("main() { terminate(); }"), Vec::<&str>::new());
}

#[test]
fn n202_create_all_in_loop() {
    let codes = lint_codes(
        r#"main() {
            int i;
            while (i < 3) { create(ALL); i = i + 1; }
        }"#,
    );
    assert_eq!(codes, ["N202"]);
}

#[test]
fn n202_create_all_outside_loop_is_fine() {
    assert_eq!(lint_codes("main() { create(ALL); hop(); }"), Vec::<&str>::new());
}

#[test]
fn n203_hop_destination_cannot_match() {
    let codes = lint_codes(r#"main() { hop(ln = true); }"#);
    assert_eq!(codes, ["N203"]);
}

#[test]
fn n203_string_destinations_are_fine() {
    assert_eq!(lint_codes(r#"main() { hop(ln = "alpha"; ll = "row"); }"#), Vec::<&str>::new());
}

#[test]
fn n301_lost_update_across_hop() {
    let p = msgr_lang::compile(
        r#"main() {
            node int count;
            int c;
            c = count;
            hop(ll = "ring");
            count = c + 1;
        }"#,
    )
    .unwrap();
    let report = analyze(&p);
    let warns: Vec<_> = report.warnings().collect();
    assert_eq!(warns.len(), 1);
    assert_eq!(warns[0].code, "N301");
    assert!(warns[0].message.contains("count"));
    // Source span threaded from msgr-lang: the stale write is on line 6.
    assert_eq!(warns[0].line, Some(6));
}

#[test]
fn n301_not_fired_when_value_rereads_after_hop() {
    let codes = lint_codes(
        r#"main() {
            node int count;
            count = count + 1;
            hop(ll = "ring");
            count = count + 1;
        }"#,
    );
    assert_eq!(codes, Vec::<&str>::new());
}

#[test]
fn n301_fires_through_sched_yield() {
    let p = msgr_lang::compile(
        r#"main() {
            node int acc;
            int c;
            c = acc;
            M_sched_time_dlt(1.0);
            acc = c;
        }"#,
    )
    .unwrap();
    let report = analyze(&p);
    assert_eq!(report.warnings().map(|d| d.code).collect::<Vec<_>>(), ["N301"]);
}

#[test]
fn n301_fires_when_a_called_function_hops() {
    let p = msgr_lang::compile(
        r#"main() {
            node int acc;
            int c;
            c = acc;
            go();
            acc = c;
        }
        go() { hop(ll = "ring"); return 0; }"#,
    )
    .unwrap();
    let report = analyze(&p);
    assert_eq!(report.warnings().map(|d| d.code).collect::<Vec<_>>(), ["N301"]);
}

#[test]
fn n302_lost_update_across_writing_call() {
    let p = msgr_lang::compile(
        r#"main() {
            node int acc;
            int c;
            c = acc;
            bump();
            acc = c + 1;
        }
        bump() { node int acc; acc = acc + 1; return 0; }"#,
    )
    .unwrap();
    let report = analyze(&p);
    let warns: Vec<_> = report.warnings().collect();
    assert_eq!(warns.iter().map(|d| d.code).collect::<Vec<_>>(), ["N302"]);
    assert!(warns[0].message.contains("acc"), "{}", warns[0].message);
}

#[test]
fn n302_not_fired_when_callee_writes_other_var() {
    let codes = lint_codes(
        r#"main() {
            node int acc;
            int c;
            c = acc;
            bump();
            acc = c + 1;
        }
        bump() { node int other; other = other + 1; return 0; }"#,
    );
    assert_eq!(codes, Vec::<&str>::new());
}

#[test]
fn n303_dead_node_variable_write() {
    let codes = lint_codes(
        r#"main() {
            node int x;
            x = 1;
            x = 2;
        }"#,
    );
    assert_eq!(codes, ["N303"]);
}

#[test]
fn n303_not_fired_when_a_call_intervenes() {
    // The callee could read `x`: the first write is observable.
    let codes = lint_codes(
        r#"main() {
            node int x;
            x = 1;
            peek();
            x = 2;
        }
        peek() { node int x; return x; }"#,
    );
    assert_eq!(codes, Vec::<&str>::new());
}

#[test]
fn n401_hop_destination_from_callee_return() {
    let p = msgr_lang::compile(
        r#"main() { hop(ln = pick()); }
        pick() { return true; }"#,
    )
    .unwrap();
    let report = analyze(&p);
    let warns: Vec<_> = report.warnings().collect();
    assert_eq!(warns.iter().map(|d| d.code).collect::<Vec<_>>(), ["N401"]);
    assert!(warns[0].message.contains("returned by a called function"), "{}", warns[0].message);
}

#[test]
fn n401_not_fired_for_string_returning_callee() {
    assert_eq!(
        lint_codes(
            r#"main() { hop(ln = pick()); }
            pick() { return "alpha"; }"#,
        ),
        Vec::<&str>::new()
    );
}

#[test]
fn n402_guaranteed_unbounded_recursion() {
    let p = msgr_lang::compile(
        r#"main() { spin(); }
        spin() { spin(); return 0; }"#,
    )
    .unwrap();
    let report = analyze(&p);
    let warns: Vec<_> = report.warnings().collect();
    assert_eq!(warns.iter().map(|d| d.code).collect::<Vec<_>>(), ["N402"]);
    assert_eq!(warns[0].func_name, "spin");
}

#[test]
fn n402_not_fired_for_base_case_recursion() {
    let codes = lint_codes(
        r#"main() { return countdown(3); }
        countdown(n) { if (n < 1) return 0; return countdown(n - 1); }"#,
    );
    assert_eq!(codes, Vec::<&str>::new());
}

// ---- diagnostics rendering --------------------------------------------

#[test]
fn render_includes_label_and_line() {
    let p = msgr_lang::compile(
        r#"main() {
            node int count;
            int c;
            c = count;
            hop(ll = "ring");
            count = c + 1;
        }"#,
    )
    .unwrap();
    let report = analyze(&p);
    let w = report.warnings().next().unwrap();
    let text = w.render(&p);
    assert!(text.starts_with("warning[N301] in main @ pc "), "{text}");
    assert!(text.contains("line 6"), "{text}");
}

#[test]
fn block_labels_are_dense_and_ordered() {
    let p = msgr_lang::compile("main() { int i; while (i < 2) { i = i + 1; } }").unwrap();
    let labels = block_labels(&p.funcs[0]);
    let seq: Vec<usize> = labels.values().copied().collect();
    assert_eq!(seq, (0..labels.len()).collect::<Vec<_>>());
}

#[test]
fn doc_example_program_verifies() {
    let p = msgr_lang::compile(
        "main(n) { int i, acc; for (i = 0; i < n; i = i + 1) { acc = acc + i; } return acc; }",
    )
    .unwrap();
    let infos = verify(&p).unwrap();
    assert_eq!(infos.len(), 1);
    assert!(infos[0].max_stack >= 2);
}
