//! The verifier core: abstract interpretation of one function's
//! operand stack and locals over all control-flow paths.
//!
//! The abstract domain per value is a *kind* (flat lattice over the
//! `Value` variants, `Top` = unknown) plus a *taint set* recording
//! which node variables the value was read from and whether it has
//! crossed a yield (`hop`/`create`/`delete`/`sched`) since. The kind
//! feeds the hop-destination lint; the taint feeds the §2.1
//! lost-update lint; the stack depth itself is what verification
//! proves (no underflow, merge-point consistency, a static bound).

use std::collections::{BTreeMap, BTreeSet};

use msgr_vm::Value;
use msgr_vm::{Function, LinkPat, NetVar, NodePat, Op, Program};

use crate::Diag;

/// Hard bound on the statically-proven operand-stack depth. Deeper
/// programs are rejected (V012): a daemon must be able to preallocate.
pub const MAX_STACK: usize = 1024;

/// Flat lattice over runtime value types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Unknown / any.
    Top,
    /// Definitely NULL on every path.
    Null,
    /// Boolean.
    Bool,
    /// Integer.
    Int,
    /// Float.
    Float,
    /// String.
    Str,
    /// Matrix block.
    Mat,
    /// Byte blob.
    Blob,
    /// Array.
    Arr,
    /// Link instance.
    Link,
}

impl Kind {
    fn of(v: &Value) -> Kind {
        match v {
            Value::Null => Kind::Null,
            Value::Bool(_) => Kind::Bool,
            Value::Int(_) => Kind::Int,
            Value::Float(_) => Kind::Float,
            Value::Str(_) => Kind::Str,
            Value::Mat(_) => Kind::Mat,
            Value::Blob(_) => Kind::Blob,
            Value::Arr(_) => Kind::Arr,
            Value::Link(_) => Kind::Link,
        }
    }

    fn join(self, other: Kind) -> Kind {
        if self == other {
            self
        } else {
            Kind::Top
        }
    }
}

/// Taint: node-variable name constants this value was derived from,
/// with a flag set once the value survives a yield.
type Taint = BTreeMap<u16, bool>;

#[derive(Debug, Clone, PartialEq)]
struct AbsVal {
    kind: Kind,
    taint: Taint,
}

impl AbsVal {
    fn top() -> AbsVal {
        AbsVal { kind: Kind::Top, taint: Taint::new() }
    }

    fn of_kind(kind: Kind) -> AbsVal {
        AbsVal { kind, taint: Taint::new() }
    }

    fn join(&self, other: &AbsVal) -> AbsVal {
        let mut taint = self.taint.clone();
        for (&k, &crossed) in &other.taint {
            let e = taint.entry(k).or_insert(false);
            *e |= crossed;
        }
        AbsVal { kind: self.kind.join(other.kind), taint }
    }
}

fn union(a: &Taint, b: &Taint) -> Taint {
    let mut out = a.clone();
    for (&k, &crossed) in b {
        let e = out.entry(k).or_insert(false);
        *e |= crossed;
    }
    out
}

#[derive(Debug, Clone, PartialEq)]
struct State {
    stack: Vec<AbsVal>,
    locals: Vec<AbsVal>,
}

impl State {
    fn join(&self, other: &State) -> Option<State> {
        if self.stack.len() != other.stack.len() {
            return None;
        }
        let zip = |a: &[AbsVal], b: &[AbsVal]| {
            a.iter().zip(b).map(|(x, y)| x.join(y)).collect::<Vec<_>>()
        };
        Some(State {
            stack: zip(&self.stack, &other.stack),
            locals: zip(&self.locals, &other.locals),
        })
    }

    /// A yield point: everything still held crossed it.
    fn cross_yield(&mut self) {
        for v in self.stack.iter_mut().chain(self.locals.iter_mut()) {
            for crossed in v.taint.values_mut() {
                *crossed = true;
            }
        }
    }
}

/// Everything the dataflow learned about one function.
pub(crate) struct Flow {
    /// Whether each pc was reached along some path.
    pub reach: Vec<bool>,
    /// Maximum operand-stack depth on any path.
    pub max_stack: usize,
    /// Joined operand kinds `(ln, ll)` observed at each `Hop`/`Delete`.
    pub hop_operands: BTreeMap<usize, (Option<Kind>, Option<Kind>)>,
    /// Lint diagnostics produced during interpretation (N301).
    pub lints: Vec<Diag>,
}

/// Abstractly interpret `f`, verifying stack discipline.
///
/// `structural_check` must have passed: indices and jump targets are
/// assumed in range here.
pub(crate) fn interpret(p: &Program, fi: usize, f: &Function) -> Result<Flow, Vec<Diag>> {
    let yielders = may_yield(p);
    let len = f.code.len();
    let mut states: Vec<Option<State>> = vec![None; len];
    let mut reach = vec![false; len];
    let mut max_stack = 0usize;
    let mut hop_operands: BTreeMap<usize, (Option<Kind>, Option<Kind>)> = BTreeMap::new();
    let mut stale_writes: BTreeSet<(usize, u16)> = BTreeSet::new();

    let entry = State {
        stack: Vec::new(),
        // Parameters and uninitialized slots are both Top: `LoadLocal`
        // of a never-stored slot reads NULL at runtime, but treating it
        // as Top avoids spurious never-matches lints.
        locals: vec![AbsVal::top(); f.n_slots as usize],
    };
    let mut work: Vec<usize> = Vec::new();
    if len > 0 {
        states[0] = Some(entry);
        work.push(0);
    }

    while let Some(pc) = work.pop() {
        reach[pc] = true;
        let mut st = states[pc].clone().expect("worklist pc has state");
        let op = &f.code[pc];

        macro_rules! pop {
            () => {
                match st.stack.pop() {
                    Some(v) => v,
                    None => {
                        return Err(vec![Diag::error(
                            "V003",
                            fi,
                            f,
                            pc,
                            format!("stack underflow at `{op:?}`"),
                        )])
                    }
                }
            };
        }

        match *op {
            Op::Const(i) => {
                st.stack.push(AbsVal::of_kind(Kind::of(&p.consts[i as usize])));
            }
            Op::LoadLocal(i) => {
                let v = st.locals[i as usize].clone();
                st.stack.push(v);
            }
            Op::StoreLocal(i) => {
                let v = pop!();
                st.locals[i as usize] = v;
            }
            Op::LoadNode(i) => {
                st.stack.push(AbsVal { kind: Kind::Top, taint: Taint::from([(i, false)]) });
            }
            Op::StoreNode(i) => {
                let v = pop!();
                if v.taint.get(&i) == Some(&true) {
                    stale_writes.insert((pc, i));
                }
            }
            Op::LoadNet(var) => {
                let kind = match var {
                    NetVar::Time => Kind::Float,
                    NetVar::Address | NetVar::Last | NetVar::Node => Kind::Top,
                };
                st.stack.push(AbsVal::of_kind(kind));
            }
            Op::Dup => {
                let v = st.stack.last().cloned();
                match v {
                    Some(v) => st.stack.push(v),
                    None => {
                        return Err(vec![Diag::error(
                            "V003",
                            fi,
                            f,
                            pc,
                            "stack underflow at `Dup`".into(),
                        )])
                    }
                }
            }
            Op::Pop => {
                pop!();
            }
            Op::Add => {
                let b = pop!();
                let a = pop!();
                let kind = match (a.kind, b.kind) {
                    (Kind::Str, _) | (_, Kind::Str) => Kind::Str,
                    (Kind::Int, Kind::Int) => Kind::Int,
                    (Kind::Int | Kind::Float, Kind::Int | Kind::Float) => Kind::Float,
                    _ => Kind::Top,
                };
                st.stack.push(AbsVal { kind, taint: union(&a.taint, &b.taint) });
            }
            Op::Sub | Op::Mul | Op::Div | Op::Mod => {
                let b = pop!();
                let a = pop!();
                let kind = match (a.kind, b.kind) {
                    (Kind::Int, Kind::Int) => Kind::Int,
                    (Kind::Int | Kind::Float, Kind::Int | Kind::Float) => Kind::Float,
                    _ => Kind::Top,
                };
                st.stack.push(AbsVal { kind, taint: union(&a.taint, &b.taint) });
            }
            Op::Neg => {
                let a = pop!();
                let kind = match a.kind {
                    Kind::Int => Kind::Int,
                    Kind::Float | Kind::Bool => Kind::Float,
                    _ => Kind::Top,
                };
                st.stack.push(AbsVal { kind, taint: a.taint });
            }
            Op::Not => {
                let a = pop!();
                st.stack.push(AbsVal { kind: Kind::Bool, taint: a.taint });
            }
            Op::Eq | Op::Ne | Op::Lt | Op::Le | Op::Gt | Op::Ge => {
                let b = pop!();
                let a = pop!();
                st.stack.push(AbsVal { kind: Kind::Bool, taint: union(&a.taint, &b.taint) });
            }
            Op::Jump(_) => {}
            Op::JumpIfFalse(_) => {
                pop!();
            }
            Op::JumpIfTruePeek(_) | Op::JumpIfFalsePeek(_) => {
                if st.stack.is_empty() {
                    return Err(vec![Diag::error(
                        "V003",
                        fi,
                        f,
                        pc,
                        "stack underflow at conditional peek".into(),
                    )]);
                }
            }
            Op::Call { f: callee, argc } => {
                let mut taint = Taint::new();
                for _ in 0..argc {
                    let v = pop!();
                    taint = union(&taint, &v.taint);
                }
                if yielders.contains(&(callee as usize)) {
                    // The callee can hop/create/sched: everything we
                    // still hold crosses a yield inside it.
                    st.cross_yield();
                    for crossed in taint.values_mut() {
                        *crossed = true;
                    }
                }
                // Return-value taint is dropped deliberately: carrying
                // the union of argument taints would flag fresh values
                // computed by helpers. Under-approximate instead.
                let _ = taint;
                st.stack.push(AbsVal::top());
            }
            Op::CallNative { argc, .. } => {
                for _ in 0..argc {
                    pop!();
                }
                st.stack.push(AbsVal::top());
            }
            Op::Ret => {
                pop!();
            }
            Op::Hop(i) | Op::Delete(i) => {
                let spec = &p.hop_specs[i as usize];
                // Pushed ln-then-ll; popped in reverse.
                let ll = if spec.ll == LinkPat::Expr { Some(pop!().kind) } else { None };
                let ln = if spec.ln == NodePat::Expr { Some(pop!().kind) } else { None };
                let e = hop_operands.entry(pc).or_insert((ln, ll));
                e.0 = joined(e.0, ln);
                e.1 = joined(e.1, ll);
                st.cross_yield();
            }
            Op::Create(i) => {
                let spec = &p.create_specs[i as usize];
                for _ in 0..spec.operand_count() {
                    pop!();
                }
                st.cross_yield();
            }
            Op::SchedAbs | Op::SchedDlt => {
                pop!();
                st.cross_yield();
            }
            Op::Halt => {}
            Op::MakeArr => {
                let default = pop!();
                let _n = pop!();
                st.stack.push(AbsVal { kind: Kind::Arr, taint: default.taint });
            }
            Op::IndexGet => {
                let _idx = pop!();
                let arr = pop!();
                st.stack.push(AbsVal { kind: Kind::Top, taint: arr.taint });
            }
            Op::IndexSet => {
                let value = pop!();
                let _idx = pop!();
                let arr = pop!();
                st.stack.push(AbsVal { kind: Kind::Arr, taint: union(&arr.taint, &value.taint) });
            }
        }

        if st.stack.len() > MAX_STACK {
            return Err(vec![Diag::error(
                "V012",
                fi,
                f,
                pc,
                format!("operand stack depth {} exceeds the bound of {MAX_STACK}", st.stack.len()),
            )]);
        }
        max_stack = max_stack.max(st.stack.len());

        for succ in crate::cfg::successors(&f.code, pc) {
            if succ == len {
                continue; // fall off the end: implicit return NULL
            }
            let merged = match &states[succ] {
                None => st.clone(),
                Some(prev) => match prev.join(&st) {
                    Some(m) => m,
                    None => {
                        return Err(vec![Diag::error(
                            "V004",
                            fi,
                            f,
                            succ,
                            format!(
                                "inconsistent stack depth at merge point: {} vs {}",
                                prev.stack.len(),
                                st.stack.len()
                            ),
                        )])
                    }
                },
            };
            if states[succ].as_ref() != Some(&merged) {
                states[succ] = Some(merged);
                work.push(succ);
            }
        }
    }

    let lints = stale_writes
        .into_iter()
        .map(|(pc, name_idx)| {
            let name = match &p.consts[name_idx as usize] {
                Value::Str(s) => s.to_string(),
                other => other.type_name().to_string(),
            };
            Diag::warning(
                "N301",
                fi,
                f,
                pc,
                format!(
                    "node variable `{name}` is written with a value read before a yield — \
                     updates made by other messengers in between are lost (re-read \
                     `{name}` after arriving)"
                ),
            )
        })
        .collect();

    Ok(Flow { reach, max_stack, hop_operands, lints })
}

fn joined(a: Option<Kind>, b: Option<Kind>) -> Option<Kind> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.join(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

/// Function indices that can yield (hop/create/delete/sched), directly
/// or through calls — transitive closure over the call graph.
fn may_yield(p: &Program) -> BTreeSet<usize> {
    let mut set: BTreeSet<usize> = BTreeSet::new();
    for (i, f) in p.funcs.iter().enumerate() {
        if f.code.iter().any(|op| {
            matches!(op, Op::Hop(_) | Op::Create(_) | Op::Delete(_) | Op::SchedAbs | Op::SchedDlt)
        }) {
            set.insert(i);
        }
    }
    loop {
        let mut grew = false;
        for (i, f) in p.funcs.iter().enumerate() {
            if set.contains(&i) {
                continue;
            }
            let calls_yielder = f.code.iter().any(
                |op| matches!(op, Op::Call { f: callee, .. } if set.contains(&(*callee as usize))),
            );
            if calls_yielder {
                set.insert(i);
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }
    set
}
