//! The verifier core: abstract interpretation of one function's
//! operand stack and locals over all control-flow paths.
//!
//! The abstract domain per value is a *kind* (flat lattice over the
//! `Value` variants, `Top` = unknown) plus a *taint set* recording
//! which node variables the value was read from and whether it has
//! crossed a yield (`hop`/`create`/`delete`/`sched`) since. The kind
//! feeds the hop-destination lint; the taint feeds the §2.1
//! lost-update lint; the stack depth itself is what verification
//! proves (no underflow, merge-point consistency, a static bound).

use std::collections::{BTreeMap, BTreeSet};

use msgr_vm::Value;
use msgr_vm::{Function, LinkPat, NetVar, NodePat, Op, Program, SumKind, SummaryTable};

use crate::Diag;

/// Hard bound on the statically-proven operand-stack depth. Deeper
/// programs are rejected (V012): a daemon must be able to preallocate.
pub const MAX_STACK: usize = 1024;

/// Flat lattice over runtime value types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Unknown / any.
    Top,
    /// Definitely NULL on every path.
    Null,
    /// Boolean.
    Bool,
    /// Integer.
    Int,
    /// Float.
    Float,
    /// String.
    Str,
    /// Matrix block.
    Mat,
    /// Byte blob.
    Blob,
    /// Array.
    Arr,
    /// Link instance.
    Link,
}

impl Kind {
    /// Lift a summary return-kind into the verifier's lattice.
    fn of_sum(k: SumKind) -> Kind {
        match k {
            SumKind::Top => Kind::Top,
            SumKind::Null => Kind::Null,
            SumKind::Bool => Kind::Bool,
            SumKind::Int => Kind::Int,
            SumKind::Float => Kind::Float,
            SumKind::Str => Kind::Str,
            SumKind::Mat => Kind::Mat,
            SumKind::Blob => Kind::Blob,
            SumKind::Arr => Kind::Arr,
            SumKind::Link => Kind::Link,
        }
    }

    fn of(v: &Value) -> Kind {
        match v {
            Value::Null => Kind::Null,
            Value::Bool(_) => Kind::Bool,
            Value::Int(_) => Kind::Int,
            Value::Float(_) => Kind::Float,
            Value::Str(_) => Kind::Str,
            Value::Mat(_) => Kind::Mat,
            Value::Blob(_) => Kind::Blob,
            Value::Arr(_) => Kind::Arr,
            Value::Link(_) => Kind::Link,
        }
    }

    fn join(self, other: Kind) -> Kind {
        if self == other {
            self
        } else {
            Kind::Top
        }
    }
}

/// Taint flag: the value crossed a yield (`hop`/`create`/`sched`)
/// since it was read from its node variable.
pub(crate) const CROSSED: u8 = 1;
/// Taint flag: a call to a function that *writes* the same node
/// variable happened while the value was held.
pub(crate) const CLOBBERED: u8 = 2;

/// Taint: node-variable name constants this value was derived from,
/// with [`CROSSED`]/[`CLOBBERED`] flags accumulated while it is held.
type Taint = BTreeMap<u16, u8>;

#[derive(Debug, Clone, PartialEq)]
struct AbsVal {
    kind: Kind,
    taint: Taint,
    /// The kind was (partly) learned from a callee's return-kind
    /// summary — distinguishes the interprocedural hop lint (N401)
    /// from the local one (N203).
    via_call: bool,
}

impl AbsVal {
    fn top() -> AbsVal {
        AbsVal { kind: Kind::Top, taint: Taint::new(), via_call: false }
    }

    fn of_kind(kind: Kind) -> AbsVal {
        AbsVal { kind, taint: Taint::new(), via_call: false }
    }

    fn join(&self, other: &AbsVal) -> AbsVal {
        AbsVal {
            kind: self.kind.join(other.kind),
            taint: union(&self.taint, &other.taint),
            via_call: self.via_call || other.via_call,
        }
    }
}

fn union(a: &Taint, b: &Taint) -> Taint {
    let mut out = a.clone();
    for (&k, &flags) in b {
        *out.entry(k).or_insert(0) |= flags;
    }
    out
}

#[derive(Debug, Clone, PartialEq)]
struct State {
    stack: Vec<AbsVal>,
    locals: Vec<AbsVal>,
}

impl State {
    fn join(&self, other: &State) -> Option<State> {
        if self.stack.len() != other.stack.len() {
            return None;
        }
        let zip = |a: &[AbsVal], b: &[AbsVal]| {
            a.iter().zip(b).map(|(x, y)| x.join(y)).collect::<Vec<_>>()
        };
        Some(State {
            stack: zip(&self.stack, &other.stack),
            locals: zip(&self.locals, &other.locals),
        })
    }

    /// A yield point: everything still held crossed it.
    fn cross_yield(&mut self) {
        for v in self.stack.iter_mut().chain(self.locals.iter_mut()) {
            for flags in v.taint.values_mut() {
                *flags |= CROSSED;
            }
        }
    }

    /// A call to a function whose summary says it writes `writes`:
    /// held values read from those variables are now stale.
    fn cross_writer(&mut self, writes: &BTreeSet<u16>) {
        for v in self.stack.iter_mut().chain(self.locals.iter_mut()) {
            for (var, flags) in v.taint.iter_mut() {
                if writes.contains(var) {
                    *flags |= CLOBBERED;
                }
            }
        }
    }
}

/// One joined hop/delete destination operand: its kind, and whether
/// the kind was learned from a callee's return-kind summary.
pub(crate) type HopOp = Option<(Kind, bool)>;

/// Everything the dataflow learned about one function.
pub(crate) struct Flow {
    /// Whether each pc was reached along some path.
    pub reach: Vec<bool>,
    /// Maximum operand-stack depth on any path.
    pub max_stack: usize,
    /// Joined operand kinds `(ln, ll)` observed at each `Hop`/`Delete`.
    pub hop_operands: BTreeMap<usize, (HopOp, HopOp)>,
    /// Lint diagnostics produced during interpretation (N301/N302).
    pub lints: Vec<Diag>,
}

/// Abstractly interpret `f`, verifying stack discipline.
///
/// `structural_check` must have passed: indices and jump targets are
/// assumed in range here. With `summaries` (from
/// [`crate::summary::summarize`]) the interpretation is
/// *interprocedural*: call returns carry the callee's return kind, and
/// calls to node-variable writers taint held values — enabling the
/// N302/N401 lint family. Summaries never affect verification verdicts,
/// only lints; [`crate::verify`] passes `None`.
pub(crate) fn interpret(
    p: &Program,
    fi: usize,
    f: &Function,
    summaries: Option<&SummaryTable>,
) -> Result<Flow, Vec<Diag>> {
    let yielders = may_yield(p);
    let len = f.code.len();
    let mut states: Vec<Option<State>> = vec![None; len];
    let mut reach = vec![false; len];
    let mut max_stack = 0usize;
    let mut hop_operands: BTreeMap<usize, (HopOp, HopOp)> = BTreeMap::new();
    let mut stale_writes: BTreeSet<(usize, u16)> = BTreeSet::new();
    let mut clobbered_writes: BTreeSet<(usize, u16)> = BTreeSet::new();

    let entry = State {
        stack: Vec::new(),
        // Parameters and uninitialized slots are both Top: `LoadLocal`
        // of a never-stored slot reads NULL at runtime, but treating it
        // as Top avoids spurious never-matches lints.
        locals: vec![AbsVal::top(); f.n_slots as usize],
    };
    let mut work: Vec<usize> = Vec::new();
    if len > 0 {
        states[0] = Some(entry);
        work.push(0);
    }

    while let Some(pc) = work.pop() {
        reach[pc] = true;
        let mut st = states[pc].clone().expect("worklist pc has state");
        let op = &f.code[pc];

        macro_rules! pop {
            () => {
                match st.stack.pop() {
                    Some(v) => v,
                    None => {
                        return Err(vec![Diag::error(
                            "V003",
                            fi,
                            f,
                            pc,
                            format!("stack underflow at `{op:?}`"),
                        )])
                    }
                }
            };
        }

        match *op {
            Op::Const(i) => {
                st.stack.push(AbsVal::of_kind(Kind::of(&p.consts[i as usize])));
            }
            Op::LoadLocal(i) => {
                let v = st.locals[i as usize].clone();
                st.stack.push(v);
            }
            Op::StoreLocal(i) => {
                let v = pop!();
                st.locals[i as usize] = v;
            }
            Op::LoadNode(i) => {
                st.stack.push(AbsVal {
                    kind: Kind::Top,
                    taint: Taint::from([(i, 0)]),
                    via_call: false,
                });
            }
            Op::StoreNode(i) => {
                let v = pop!();
                let flags = v.taint.get(&i).copied().unwrap_or(0);
                if flags & CROSSED != 0 {
                    stale_writes.insert((pc, i));
                } else if flags & CLOBBERED != 0 {
                    clobbered_writes.insert((pc, i));
                }
            }
            Op::LoadNet(var) => {
                let kind = match var {
                    NetVar::Time => Kind::Float,
                    NetVar::Address | NetVar::Last | NetVar::Node => Kind::Top,
                };
                st.stack.push(AbsVal::of_kind(kind));
            }
            Op::Dup => {
                let v = st.stack.last().cloned();
                match v {
                    Some(v) => st.stack.push(v),
                    None => {
                        return Err(vec![Diag::error(
                            "V003",
                            fi,
                            f,
                            pc,
                            "stack underflow at `Dup`".into(),
                        )])
                    }
                }
            }
            Op::Pop => {
                pop!();
            }
            Op::Add => {
                let b = pop!();
                let a = pop!();
                let kind = match (a.kind, b.kind) {
                    (Kind::Str, _) | (_, Kind::Str) => Kind::Str,
                    (Kind::Int, Kind::Int) => Kind::Int,
                    (Kind::Int | Kind::Float, Kind::Int | Kind::Float) => Kind::Float,
                    _ => Kind::Top,
                };
                st.stack.push(AbsVal {
                    kind,
                    taint: union(&a.taint, &b.taint),
                    via_call: a.via_call || b.via_call,
                });
            }
            Op::Sub | Op::Mul | Op::Div | Op::Mod => {
                let b = pop!();
                let a = pop!();
                let kind = match (a.kind, b.kind) {
                    (Kind::Int, Kind::Int) => Kind::Int,
                    (Kind::Int | Kind::Float, Kind::Int | Kind::Float) => Kind::Float,
                    _ => Kind::Top,
                };
                st.stack.push(AbsVal {
                    kind,
                    taint: union(&a.taint, &b.taint),
                    via_call: a.via_call || b.via_call,
                });
            }
            Op::Neg => {
                let a = pop!();
                let kind = match a.kind {
                    Kind::Int => Kind::Int,
                    Kind::Float | Kind::Bool => Kind::Float,
                    _ => Kind::Top,
                };
                st.stack.push(AbsVal { kind, taint: a.taint, via_call: a.via_call });
            }
            Op::Not => {
                let a = pop!();
                st.stack.push(AbsVal { kind: Kind::Bool, taint: a.taint, via_call: false });
            }
            Op::Eq | Op::Ne | Op::Lt | Op::Le | Op::Gt | Op::Ge => {
                let b = pop!();
                let a = pop!();
                st.stack.push(AbsVal {
                    kind: Kind::Bool,
                    taint: union(&a.taint, &b.taint),
                    via_call: false,
                });
            }
            Op::Jump(_) => {}
            Op::JumpIfFalse(_) => {
                pop!();
            }
            Op::JumpIfTruePeek(_) | Op::JumpIfFalsePeek(_) => {
                if st.stack.is_empty() {
                    return Err(vec![Diag::error(
                        "V003",
                        fi,
                        f,
                        pc,
                        "stack underflow at conditional peek".into(),
                    )]);
                }
            }
            Op::Call { f: callee, argc } => {
                let mut taint = Taint::new();
                for _ in 0..argc {
                    let v = pop!();
                    taint = union(&taint, &v.taint);
                }
                if yielders.contains(&(callee as usize)) {
                    // The callee can hop/create/sched: everything we
                    // still hold crosses a yield inside it.
                    st.cross_yield();
                    for flags in taint.values_mut() {
                        *flags |= CROSSED;
                    }
                }
                // Return-value taint is dropped deliberately: carrying
                // the union of argument taints would flag fresh values
                // computed by helpers. Under-approximate instead.
                let _ = taint;
                let ret = match summaries.and_then(|t| t.funcs.get(callee as usize)) {
                    Some(cs) => {
                        // Held values read from a node variable the
                        // callee may write are now stale: writing them
                        // back clobbers the callee's update (N302).
                        st.cross_writer(&cs.node_writes);
                        AbsVal {
                            kind: Kind::of_sum(cs.ret_kind),
                            taint: Taint::new(),
                            via_call: true,
                        }
                    }
                    None => AbsVal::top(),
                };
                st.stack.push(ret);
            }
            Op::CallNative { argc, .. } => {
                for _ in 0..argc {
                    pop!();
                }
                st.stack.push(AbsVal::top());
            }
            Op::Ret => {
                pop!();
            }
            Op::Hop(i) | Op::Delete(i) => {
                let spec = &p.hop_specs[i as usize];
                // Pushed ln-then-ll; popped in reverse.
                let ll = if spec.ll == LinkPat::Expr {
                    let v = pop!();
                    Some((v.kind, v.via_call))
                } else {
                    None
                };
                let ln = if spec.ln == NodePat::Expr {
                    let v = pop!();
                    Some((v.kind, v.via_call))
                } else {
                    None
                };
                let e = hop_operands.entry(pc).or_insert((ln, ll));
                e.0 = joined(e.0, ln);
                e.1 = joined(e.1, ll);
                st.cross_yield();
            }
            Op::Create(i) => {
                let spec = &p.create_specs[i as usize];
                for _ in 0..spec.operand_count() {
                    pop!();
                }
                st.cross_yield();
            }
            Op::SchedAbs | Op::SchedDlt => {
                pop!();
                st.cross_yield();
            }
            Op::Halt => {}
            Op::MakeArr => {
                let default = pop!();
                let _n = pop!();
                st.stack.push(AbsVal { kind: Kind::Arr, taint: default.taint, via_call: false });
            }
            Op::IndexGet => {
                let _idx = pop!();
                let arr = pop!();
                st.stack.push(AbsVal { kind: Kind::Top, taint: arr.taint, via_call: false });
            }
            Op::IndexSet => {
                let value = pop!();
                let _idx = pop!();
                let arr = pop!();
                st.stack.push(AbsVal {
                    kind: Kind::Arr,
                    taint: union(&arr.taint, &value.taint),
                    via_call: false,
                });
            }
        }

        if st.stack.len() > MAX_STACK {
            return Err(vec![Diag::error(
                "V012",
                fi,
                f,
                pc,
                format!("operand stack depth {} exceeds the bound of {MAX_STACK}", st.stack.len()),
            )]);
        }
        max_stack = max_stack.max(st.stack.len());

        for succ in crate::cfg::successors(&f.code, pc) {
            if succ == len {
                continue; // fall off the end: implicit return NULL
            }
            let merged = match &states[succ] {
                None => st.clone(),
                Some(prev) => match prev.join(&st) {
                    Some(m) => m,
                    None => {
                        return Err(vec![Diag::error(
                            "V004",
                            fi,
                            f,
                            succ,
                            format!(
                                "inconsistent stack depth at merge point: {} vs {}",
                                prev.stack.len(),
                                st.stack.len()
                            ),
                        )])
                    }
                },
            };
            if states[succ].as_ref() != Some(&merged) {
                states[succ] = Some(merged);
                work.push(succ);
            }
        }
    }

    let var_name = |name_idx: u16| match &p.consts[name_idx as usize] {
        Value::Str(s) => s.to_string(),
        other => other.type_name().to_string(),
    };
    let mut lints: Vec<Diag> = stale_writes
        .iter()
        .map(|&(pc, name_idx)| {
            let name = var_name(name_idx);
            Diag::warning(
                "N301",
                fi,
                f,
                pc,
                format!(
                    "node variable `{name}` is written with a value read before a yield — \
                     updates made by other messengers in between are lost (re-read \
                     `{name}` after arriving)"
                ),
            )
        })
        .collect();
    lints.extend(
        clobbered_writes
            .iter()
            // A write that is both stale and clobbered reports as N301.
            .filter(|k| !stale_writes.contains(k))
            .map(|&(pc, name_idx)| {
                let name = var_name(name_idx);
                Diag::warning(
                    "N302",
                    fi,
                    f,
                    pc,
                    format!(
                        "node variable `{name}` is written with a value read before a call \
                         to a function that also writes `{name}` — the callee's update is \
                         lost (re-read `{name}` after the call)"
                    ),
                )
            }),
    );

    Ok(Flow { reach, max_stack, hop_operands, lints })
}

fn joined(a: HopOp, b: HopOp) -> HopOp {
    match (a, b) {
        (Some((xk, xv)), Some((yk, yv))) => Some((xk.join(yk), xv || yv)),
        (x, None) => x,
        (None, y) => y,
    }
}

/// Function indices that can yield (hop/create/delete/sched), directly
/// or through calls — transitive closure over the call graph.
fn may_yield(p: &Program) -> BTreeSet<usize> {
    let mut set: BTreeSet<usize> = BTreeSet::new();
    for (i, f) in p.funcs.iter().enumerate() {
        if f.code.iter().any(|op| {
            matches!(op, Op::Hop(_) | Op::Create(_) | Op::Delete(_) | Op::SchedAbs | Op::SchedDlt)
        }) {
            set.insert(i);
        }
    }
    loop {
        let mut grew = false;
        for (i, f) in p.funcs.iter().enumerate() {
            if set.contains(&i) {
                continue;
            }
            let calls_yielder = f.code.iter().any(
                |op| matches!(op, Op::Call { f: callee, .. } if set.contains(&(*callee as usize))),
            );
            if calls_yielder {
                set.insert(i);
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }
    set
}
