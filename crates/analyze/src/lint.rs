//! Navigation lints: warnings about messenger movement that is legal
//! bytecode but almost certainly a logic error.

use msgr_vm::{Function, Op, Program};

use crate::absint::{Flow, Kind};
use crate::{cfg, Diag};

/// Kinds that can never name a logical node or link, whatever the
/// daemon's network looks like. `Null` is excluded for links (a NULL
/// link operand means "unnamed" at runtime) and kept conservative for
/// nodes; numeric and string kinds all potentially match.
fn never_a_name(k: Kind) -> bool {
    matches!(k, Kind::Bool | Kind::Mat | Kind::Blob | Kind::Arr)
}

pub(crate) fn navigation(p: &Program, fi: usize, f: &Function, flow: &Flow, out: &mut Vec<Diag>) {
    unreachable_code(fi, f, flow, out);
    create_all_in_loop(p, fi, f, flow, out);
    hop_never_matches(fi, f, flow, out);
}

/// N201: instructions no path reaches. The compiler itself plants a
/// few dead `Const`/`Pop`/`Jump` ops after `terminate()` and loop
/// back-edges; runs made only of those are exempt.
fn unreachable_code(fi: usize, f: &Function, flow: &Flow, out: &mut Vec<Diag>) {
    let mut pc = 0;
    while pc < f.code.len() {
        if flow.reach[pc] {
            pc += 1;
            continue;
        }
        let start = pc;
        while pc < f.code.len() && !flow.reach[pc] {
            pc += 1;
        }
        let run = &f.code[start..pc];
        let trivial =
            run.iter().all(|op| matches!(op, Op::Const(_) | Op::Pop | Op::Jump(_) | Op::Ret));
        if !trivial {
            out.push(Diag::warning(
                "N201",
                fi,
                f,
                start,
                format!(
                    "unreachable code: {} instruction(s) after a terminating path can never run",
                    pc - start
                ),
            ));
        }
    }
}

/// N202: `create(...; ALL)` on a control-flow cycle — every iteration
/// replicates the messenger to *every* matching daemon, so a loop
/// fans out exponentially.
fn create_all_in_loop(p: &Program, fi: usize, f: &Function, flow: &Flow, out: &mut Vec<Diag>) {
    for (pc, op) in f.code.iter().enumerate() {
        let Op::Create(i) = op else { continue };
        if !flow.reach[pc] || !p.create_specs[*i as usize].all {
            continue;
        }
        if cfg::on_cycle(&f.code, pc) {
            out.push(Diag::warning(
                "N202",
                fi,
                f,
                pc,
                "create(...; ALL) inside a loop: each iteration replicates the messenger \
                 to every matching daemon (exponential fan-out)"
                    .into(),
            ));
        }
    }
}

/// N203: a `hop`/`delete` destination operand whose static kind can
/// never name a node or link — the messenger silently dies there.
fn hop_never_matches(fi: usize, f: &Function, flow: &Flow, out: &mut Vec<Diag>) {
    for (&pc, &(ln, ll)) in &flow.hop_operands {
        if let Some(k) = ln.filter(|&k| never_a_name(k) || k == Kind::Null) {
            out.push(Diag::warning(
                "N203",
                fi,
                f,
                pc,
                format!(
                    "hop destination node is always a {k:?} — it can never match a node \
                     name, so the statement matches nothing"
                ),
            ));
        }
        if let Some(k) = ll.filter(|&k| never_a_name(k)) {
            out.push(Diag::warning(
                "N203",
                fi,
                f,
                pc,
                format!(
                    "hop destination link is always a {k:?} — it can never match a link \
                     name, so the statement matches nothing"
                ),
            ));
        }
    }
}
