//! Navigation lints: warnings about messenger movement that is legal
//! bytecode but almost certainly a logic error.

use msgr_vm::{Function, Op, Program, SummaryTable};

use crate::absint::{Flow, Kind};
use crate::callgraph::CallGraph;
use crate::{cfg, Diag};

/// Kinds that can never name a logical node or link, whatever the
/// daemon's network looks like. `Null` is excluded for links (a NULL
/// link operand means "unnamed" at runtime) and kept conservative for
/// nodes; numeric and string kinds all potentially match.
fn never_a_name(k: Kind) -> bool {
    matches!(k, Kind::Bool | Kind::Mat | Kind::Blob | Kind::Arr)
}

pub(crate) fn navigation(p: &Program, fi: usize, f: &Function, flow: &Flow, out: &mut Vec<Diag>) {
    unreachable_code(fi, f, flow, out);
    create_all_in_loop(p, fi, f, flow, out);
    hop_never_matches(fi, f, flow, out);
    dead_node_writes(p, fi, f, flow, out);
}

/// N201: instructions no path reaches. The compiler itself plants a
/// few dead `Const`/`Pop`/`Jump` ops after `terminate()` and loop
/// back-edges; runs made only of those are exempt.
fn unreachable_code(fi: usize, f: &Function, flow: &Flow, out: &mut Vec<Diag>) {
    let mut pc = 0;
    while pc < f.code.len() {
        if flow.reach[pc] {
            pc += 1;
            continue;
        }
        let start = pc;
        while pc < f.code.len() && !flow.reach[pc] {
            pc += 1;
        }
        let run = &f.code[start..pc];
        let trivial =
            run.iter().all(|op| matches!(op, Op::Const(_) | Op::Pop | Op::Jump(_) | Op::Ret));
        if !trivial {
            out.push(Diag::warning(
                "N201",
                fi,
                f,
                start,
                format!(
                    "unreachable code: {} instruction(s) after a terminating path can never run",
                    pc - start
                ),
            ));
        }
    }
}

/// N202: `create(...; ALL)` on a control-flow cycle — every iteration
/// replicates the messenger to *every* matching daemon, so a loop
/// fans out exponentially.
fn create_all_in_loop(p: &Program, fi: usize, f: &Function, flow: &Flow, out: &mut Vec<Diag>) {
    for (pc, op) in f.code.iter().enumerate() {
        let Op::Create(i) = op else { continue };
        if !flow.reach[pc] || !p.create_specs[*i as usize].all {
            continue;
        }
        if cfg::on_cycle(&f.code, pc) {
            out.push(Diag::warning(
                "N202",
                fi,
                f,
                pc,
                "create(...; ALL) inside a loop: each iteration replicates the messenger \
                 to every matching daemon (exponential fan-out)"
                    .into(),
            ));
        }
    }
}

/// N203 / N401: a `hop`/`delete` destination operand whose static kind
/// can never name a node or link — the messenger silently dies there.
/// When the kind was learned from a callee's return-kind summary the
/// finding is interprocedural and reports as N401.
fn hop_never_matches(fi: usize, f: &Function, flow: &Flow, out: &mut Vec<Diag>) {
    for (&pc, &(ln, ll)) in &flow.hop_operands {
        if let Some((k, via_call)) = ln.filter(|&(k, _)| never_a_name(k) || k == Kind::Null) {
            let (code, how) =
                if via_call { ("N401", " returned by a called function") } else { ("N203", "") };
            out.push(Diag::warning(
                code,
                fi,
                f,
                pc,
                format!(
                    "hop destination node is always a {k:?}{how} — it can never match a \
                     node name, so the statement matches nothing"
                ),
            ));
        }
        if let Some((k, via_call)) = ll.filter(|&(k, _)| never_a_name(k)) {
            let (code, how) =
                if via_call { ("N401", " returned by a called function") } else { ("N203", "") };
            out.push(Diag::warning(
                code,
                fi,
                f,
                pc,
                format!(
                    "hop destination link is always a {k:?}{how} — it can never match a \
                     link name, so the statement matches nothing"
                ),
            ));
        }
    }
}

/// Ops that may sit between two writes of node variable `var` without
/// making the first write observable: they cannot read `var`, cannot
/// yield, and cannot fault (a fault would end the segment with the
/// first write already committed to the node).
fn invisible_between(op: &Op, var: u16) -> bool {
    match *op {
        Op::LoadNode(j) => j != var,
        Op::Const(_)
        | Op::LoadLocal(_)
        | Op::StoreLocal(_)
        | Op::Dup
        | Op::Pop
        | Op::LoadNet(_)
        | Op::Not
        | Op::Eq
        | Op::Ne => true,
        _ => false,
    }
}

/// N303: two writes to the same node variable with nothing in between
/// that could observe, fault, or branch — the first write is dead.
fn dead_node_writes(p: &Program, fi: usize, f: &Function, flow: &Flow, out: &mut Vec<Diag>) {
    // Any pc that is a jump target could be entered from elsewhere,
    // which would make the "first" write observable on that path.
    let targets = cfg::block_labels(f);
    for (a, op) in f.code.iter().enumerate() {
        let Op::StoreNode(var) = *op else { continue };
        if !flow.reach.get(a).copied().unwrap_or(false) {
            continue;
        }
        let Some(b) = (a + 1..f.code.len()).find(|&pc| !invisible_between(&f.code[pc], var)) else {
            continue;
        };
        if !matches!(f.code[b], Op::StoreNode(v) if v == var) {
            continue;
        }
        if (a + 1..=b).any(|pc| targets.contains_key(&pc)) {
            continue;
        }
        let name = match p.consts.get(var as usize) {
            Some(msgr_vm::Value::Str(s)) => s.to_string(),
            _ => format!("#{var}"),
        };
        out.push(Diag::warning(
            "N303",
            fi,
            f,
            a,
            format!(
                "node variable `{name}` is overwritten at pc {b} before anything can \
                 read it — this write is dead"
            ),
        ));
    }
}

/// N402: a recursive function none of whose SCC members can reach any
/// exit (`return`, `M_exit`, falling off the end) without first calling
/// back into the component — the recursion is provably unbounded and
/// the messenger will only stop when its fuel runs out.
pub(crate) fn unbounded_recursion(
    p: &Program,
    summaries: &SummaryTable,
    cg: &CallGraph,
    out: &mut Vec<Diag>,
) {
    let escapes: Vec<bool> =
        (0..p.funcs.len()).map(|i| can_exit_without_scc_call(p, cg, i)).collect();
    for (fi, f) in p.funcs.iter().enumerate() {
        let Some(s) = summaries.funcs.get(fi) else { continue };
        if !s.recursive {
            continue;
        }
        // The whole component must be exit-free: a single member that
        // can return bounds the others too.
        let scc = &cg.sccs[cg.scc_of[fi]];
        if scc.iter().any(|&m| escapes[m as usize]) {
            continue;
        }
        let pc = f
            .code
            .iter()
            .position(|op| {
                matches!(*op, Op::Call { f: c, .. }
                    if (c as usize) < p.funcs.len() && cg.scc_of[c as usize] == cg.scc_of[fi])
            })
            .unwrap_or(0);
        out.push(Diag::warning(
            "N402",
            fi,
            f,
            pc,
            format!(
                "every path through `{}` recurses before it can return — the messenger \
                 runs until its fuel is exhausted",
                f.name
            ),
        ));
    }
}

/// Whether function `i` can reach an exit from its entry without
/// executing a call back into its own SCC.
fn can_exit_without_scc_call(p: &Program, cg: &CallGraph, i: usize) -> bool {
    let f = &p.funcs[i];
    let len = f.code.len();
    if len == 0 {
        return true; // falls off the end immediately
    }
    let my_scc = cg.scc_of[i];
    let mut seen = vec![false; len];
    let mut stack = vec![0usize];
    seen[0] = true;
    while let Some(pc) = stack.pop() {
        match f.code[pc] {
            Op::Ret | Op::Halt => return true,
            Op::Call { f: c, .. }
                if (c as usize) < p.funcs.len() && cg.scc_of[c as usize] == my_scc =>
            {
                continue; // swallowed by the recursion
            }
            _ => {}
        }
        for succ in cfg::successors(&f.code, pc) {
            if succ >= len {
                return true; // implicit return NULL
            }
            if !std::mem::replace(&mut seen[succ], true) {
                stack.push(succ);
            }
        }
    }
    false
}
