//! The whole-program call graph and its strongly connected components.
//!
//! Summaries are computed bottom-up: callees before callers, with each
//! SCC (mutual recursion) iterated to a fixpoint. Tarjan's algorithm
//! emits SCCs in exactly that order — every SCC is emitted after all
//! SCCs it calls into — so [`CallGraph::sccs`] doubles as the summary
//! computation schedule.

use std::collections::BTreeSet;

use msgr_vm::{Op, Program};

/// The call graph over a program's function set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallGraph {
    /// Direct callees per function (out-of-range targets are dropped —
    /// the verifier reports those as V007 separately).
    pub callees: Vec<BTreeSet<u16>>,
    /// Strongly connected components in bottom-up (callees-first)
    /// order.
    pub sccs: Vec<Vec<u16>>,
    /// SCC index (into [`CallGraph::sccs`]) per function.
    pub scc_of: Vec<usize>,
    /// Whether a function sits on a call-graph cycle: a multi-function
    /// SCC or a direct self-call.
    pub recursive: Vec<bool>,
}

impl CallGraph {
    /// Build the graph. Total: every function gets a node even when
    /// structurally damaged; only in-range `Call` targets become edges.
    pub fn build(p: &Program) -> CallGraph {
        let n = p.funcs.len();
        let mut callees: Vec<BTreeSet<u16>> = vec![BTreeSet::new(); n];
        for (i, f) in p.funcs.iter().enumerate() {
            for op in &f.code {
                if let Op::Call { f: callee, .. } = *op {
                    if (callee as usize) < n {
                        callees[i].insert(callee);
                    }
                }
            }
        }
        let (sccs, scc_of) = tarjan(&callees);
        let recursive =
            (0..n).map(|i| sccs[scc_of[i]].len() > 1 || callees[i].contains(&(i as u16))).collect();
        CallGraph { callees, sccs, scc_of, recursive }
    }
}

/// Iterative Tarjan SCC; returns components in reverse topological
/// order (callees first) plus the component index of each node.
fn tarjan(adj: &[BTreeSet<u16>]) -> (Vec<Vec<u16>>, Vec<usize>) {
    let n = adj.len();
    const UNSET: usize = usize::MAX;
    let mut index = vec![UNSET; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut sccs: Vec<Vec<u16>> = Vec::new();
    let mut scc_of = vec![0usize; n];
    let mut next_index = 0usize;
    // Explicit DFS frames: (node, iterator position into its callees).
    let mut frames: Vec<(usize, Vec<usize>, usize)> = Vec::new();
    for start in 0..n {
        if index[start] != UNSET {
            continue;
        }
        frames.push((start, adj[start].iter().map(|&c| c as usize).collect(), 0));
        index[start] = next_index;
        low[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;
        while let Some(&mut (v, ref succs, ref mut at)) = frames.last_mut() {
            if *at < succs.len() {
                let w = succs[*at];
                *at += 1;
                if index[w] == UNSET {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, adj[w].iter().map(|&c| c as usize).collect(), 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
                continue;
            }
            frames.pop();
            if let Some(&mut (parent, _, _)) = frames.last_mut() {
                low[parent] = low[parent].min(low[v]);
            }
            if low[v] == index[v] {
                let mut comp = Vec::new();
                loop {
                    let w = stack.pop().expect("tarjan stack underflow");
                    on_stack[w] = false;
                    scc_of[w] = sccs.len();
                    comp.push(w as u16);
                    if w == v {
                        break;
                    }
                }
                comp.sort_unstable();
                sccs.push(comp);
            }
        }
    }
    (sccs, scc_of)
}

#[cfg(test)]
mod tests {
    use super::*;
    use msgr_vm::{Builder, Value};

    fn call(f: u16) -> Op {
        Op::Call { f, argc: 0 }
    }

    #[test]
    fn sccs_come_out_callees_first() {
        // main -> a -> b, main -> b; b is a leaf.
        let mut b = Builder::new();
        let c = b.constant(Value::Int(1));
        b.function("main", 0, 0, vec![call(1), Op::Pop, call(2), Op::Ret]);
        b.function("a", 0, 0, vec![call(2), Op::Ret]);
        let leaf = b.function("b", 0, 0, vec![Op::Const(c), Op::Ret]);
        let _ = leaf;
        let p = b.finish(msgr_vm::FuncId(0));
        let g = CallGraph::build(&p);
        assert_eq!(g.sccs, vec![vec![2], vec![1], vec![0]]);
        assert_eq!(g.recursive, vec![false, false, false]);
    }

    #[test]
    fn mutual_recursion_forms_one_scc() {
        // even -> odd -> even, plus a self-recursive loner.
        let mut b = Builder::new();
        b.function("even", 0, 0, vec![call(1), Op::Ret]);
        b.function("odd", 0, 0, vec![call(0), Op::Ret]);
        b.function("selfie", 0, 0, vec![call(2), Op::Ret]);
        let p = b.finish(msgr_vm::FuncId(0));
        let g = CallGraph::build(&p);
        assert!(g.sccs.contains(&vec![0, 1]));
        assert_eq!(g.recursive, vec![true, true, true]);
        assert_eq!(g.scc_of[0], g.scc_of[1]);
    }

    #[test]
    fn out_of_range_targets_are_dropped() {
        let mut b = Builder::new();
        b.function("main", 0, 0, vec![call(9), Op::Ret]);
        let p = b.finish(msgr_vm::FuncId(0));
        let g = CallGraph::build(&p);
        assert!(g.callees[0].is_empty());
        assert_eq!(g.recursive, vec![false]);
    }
}
