//! Static analysis for MESSENGERS bytecode: the mobile-code trust layer.
//!
//! Daemons execute *foreign, migrating* bytecode — the defining safety
//! problem of mobile-agent languages. This crate checks a compiled
//! [`Program`] before any daemon agrees to run it, in three layers:
//!
//! 1. **Bytecode verifier** ([`verify`]) — per-function CFG
//!    construction, jump-target validity, and an abstract
//!    interpretation of the operand stack along all paths: no
//!    underflow, consistent stack depth at merge points, call arity
//!    against function signatures, valid constant / local /
//!    node-variable / spec indices, and a static stack bound. A
//!    program that fails any of these checks is *rejected* — the
//!    daemon code registry (in `msgr-core`) quarantines it.
//! 2. **Navigation analyzer** — warns about unreachable code,
//!    `create(...; ALL)` inside a loop (exponential messenger
//!    fan-out), and `hop`/`delete` destination operands that can never
//!    name a node or link.
//! 3. **Node-variable lost-update lint** — the paper's §2.1 hazard: a
//!    value read from a node variable, carried across a yield
//!    (`hop`/`create`/…), and written back stale, silently clobbering
//!    updates made by other messengers in between. Tracked as value
//!    taint through locals and the operand stack, so recomputed values
//!    do not trigger it.
//!
//! Diagnostics carry the function, pc, block label, and (when the
//! compiler attached debug info) the source line. [`analyze`] returns
//! everything; [`verify`] returns only the hard errors.

#![forbid(unsafe_code)]

use msgr_vm::Value;
use msgr_vm::{Function, Op, Program};

mod absint;
pub mod callgraph;
mod cfg;
mod lint;
pub mod summary;

pub use absint::MAX_STACK;
pub use callgraph::CallGraph;
pub use cfg::{block_labels, jump_target, successors};
pub use summary::{summarize, summarize_with_graph};

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Verification failure: the program must not run.
    Error,
    /// Lint: suspicious but executable.
    Warning,
}

/// One diagnostic, anchored to a function and (usually) a pc.
#[derive(Debug, Clone)]
pub struct Diag {
    /// Stable code, e.g. `V002` (verifier) or `N301` (lint).
    pub code: &'static str,
    /// Error (verification failure) or warning (lint).
    pub severity: Severity,
    /// Index of the function in `Program::funcs`.
    pub func: usize,
    /// Function name, for human-readable output.
    pub func_name: String,
    /// Instruction the diagnostic anchors to, if any.
    pub pc: Option<usize>,
    /// Source line from the function's debug info, if present.
    pub line: Option<u32>,
    /// Human-readable explanation.
    pub message: String,
}

impl Diag {
    fn error(code: &'static str, func: usize, f: &Function, pc: usize, message: String) -> Diag {
        Diag {
            code,
            severity: Severity::Error,
            func,
            func_name: f.name.clone(),
            pc: Some(pc),
            line: f.line_at(pc),
            message,
        }
    }

    fn warning(code: &'static str, func: usize, f: &Function, pc: usize, message: String) -> Diag {
        Diag { severity: Severity::Warning, ..Diag::error(code, func, f, pc, message) }
    }

    /// Render the diagnostic in `msgr-lint` style, using the same block
    /// labels the disassembler prints (`L3`), e.g.:
    ///
    /// `error[V002] in main @ pc 4 (L1, line 3): jump target 99 is out of bounds`
    pub fn render(&self, program: &Program) -> String {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        let mut at = String::new();
        if let Some(pc) = self.pc {
            at.push_str(&format!(" @ pc {pc}"));
            let mut extras = Vec::new();
            if let Some(f) = program.funcs.get(self.func) {
                if let Some(label) = block_labels(f).get(&pc) {
                    extras.push(format!("L{label}"));
                }
            }
            if let Some(line) = self.line {
                extras.push(format!("line {line}"));
            }
            if !extras.is_empty() {
                at.push_str(&format!(" ({})", extras.join(", ")));
            }
        }
        format!("{sev}[{}] in {}{at}: {}", self.code, self.func_name, self.message)
    }
}

/// Per-function facts the verifier proves (returned on success).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuncInfo {
    /// Maximum operand-stack depth along any path — a static bound a
    /// daemon could preallocate.
    pub max_stack: usize,
    /// Number of basic blocks (jump targets + entry).
    pub blocks: usize,
}

/// Everything the analyzer found: hard errors and lint warnings.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// All diagnostics, errors first, in function/pc order.
    pub diags: Vec<Diag>,
    /// Per-function verifier facts (empty for functions whose dataflow
    /// was skipped because of structural errors).
    pub funcs: Vec<Option<FuncInfo>>,
}

impl Report {
    /// Hard verification errors only.
    pub fn errors(&self) -> impl Iterator<Item = &Diag> {
        self.diags.iter().filter(|d| d.severity == Severity::Error)
    }

    /// Lint warnings only.
    pub fn warnings(&self) -> impl Iterator<Item = &Diag> {
        self.diags.iter().filter(|d| d.severity == Severity::Warning)
    }

    /// True when the program may be loaded (no errors; warnings OK).
    pub fn is_verified(&self) -> bool {
        self.errors().next().is_none()
    }
}

/// Verify a program: errors only, no lints.
///
/// Passing verification is the precondition the closure compiler
/// (`msgr_vm::compile`) assumes: a verified program has an in-range
/// entry function, structurally sane call targets, and jump offsets
/// that stay inside their function — which is what lets the compiler
/// precompute jump targets and fuse straight-line spans. The contract
/// is directional, not iff: `verify(p).is_ok()` ⇒ `compile(p).is_ok()`
/// (asserted by `verified_programs_always_compile` in this crate's
/// property tests), while unverifiable programs may still compile into
/// closures that fault at run time exactly like the interpreter.
///
/// # Errors
///
/// The list of verification failures, each with a distinct diagnostic
/// code, when the program must be rejected.
pub fn verify(p: &Program) -> Result<Vec<FuncInfo>, Vec<Diag>> {
    let report = run(p, false);
    if report.is_verified() {
        // No errors ⇒ every function completed dataflow.
        Ok(report.funcs.into_iter().map(|f| f.expect("verified function has info")).collect())
    } else {
        Err(report.diags)
    }
}

/// Full analysis: verifier errors plus navigation and lost-update
/// lints.
pub fn analyze(p: &Program) -> Report {
    run(p, true)
}

fn run(p: &Program, with_lints: bool) -> Report {
    let mut report = Report::default();

    // Interprocedural effect summaries power the N302/N401/N402 lint
    // family. They are lint-only here: verification verdicts must not
    // depend on them, so `verify` skips the computation entirely.
    let interproc = if with_lints { Some(summary::summarize_with_graph(p)) } else { None };
    let summaries = interproc.as_ref().map(|(t, _)| t);

    if p.entry.0 as usize >= p.funcs.len() {
        report.diags.push(Diag {
            code: "V001",
            severity: Severity::Error,
            func: p.entry.0 as usize,
            func_name: "<entry>".into(),
            pc: None,
            line: None,
            message: format!(
                "entry function index {} out of range (program has {} functions)",
                p.entry.0,
                p.funcs.len()
            ),
        });
    }

    for (fi, f) in p.funcs.iter().enumerate() {
        let before = report.diags.len();
        structural_check(p, fi, f, &mut report.diags);
        if report.diags.len() > before {
            // Structural damage: the dataflow (and lints that consume
            // its results) would chase invalid indices. Skip.
            report.funcs.push(None);
            continue;
        }
        match absint::interpret(p, fi, f, summaries) {
            Ok(flow) => {
                if with_lints {
                    lint::navigation(p, fi, f, &flow, &mut report.diags);
                }
                report.diags.extend(flow.lints);
                report.funcs.push(Some(FuncInfo {
                    max_stack: flow.max_stack,
                    blocks: cfg::block_labels(f).len() + 1,
                }));
            }
            Err(diags) => {
                report.diags.extend(diags);
                report.funcs.push(None);
            }
        }
    }

    if let Some((table, cg)) = &interproc {
        // Whole-program lint: needs every function's summary at once.
        lint::unbounded_recursion(p, table, cg, &mut report.diags);
    }

    if !with_lints {
        report.diags.retain(|d| d.severity == Severity::Error);
    }
    report
        .diags
        .sort_by_key(|d| (d.severity == Severity::Warning, d.func, d.pc.unwrap_or(usize::MAX)));
    report
}

/// Pass 1: structural validity of every instruction, reachable or not
/// — index ranges, jump targets, call arity, name constants. These
/// checks need no dataflow, so they cover dead code too.
fn structural_check(p: &Program, fi: usize, f: &Function, diags: &mut Vec<Diag>) {
    if f.arity as u16 > f.n_slots {
        diags.push(Diag {
            code: "V011",
            severity: Severity::Error,
            func: fi,
            func_name: f.name.clone(),
            pc: None,
            line: None,
            message: format!("arity {} exceeds local slot count {}", f.arity, f.n_slots),
        });
    }
    if !f.lines.is_empty() && f.lines.len() != f.code.len() {
        diags.push(Diag {
            code: "V013",
            severity: Severity::Error,
            func: fi,
            func_name: f.name.clone(),
            pc: None,
            line: None,
            message: format!(
                "line table length {} does not match code length {}",
                f.lines.len(),
                f.code.len()
            ),
        });
    }
    let len = f.code.len();
    for (pc, op) in f.code.iter().enumerate() {
        let e = |code, message| Diag::error(code, fi, f, pc, message);
        match *op {
            Op::Jump(_) | Op::JumpIfFalse(_) | Op::JumpIfTruePeek(_) | Op::JumpIfFalsePeek(_) => {
                let target = cfg::jump_target(pc, op).expect("jump has target");
                // target == len is legal: it falls off the end, the
                // implicit `return NULL`.
                if target < 0 || target > len as isize {
                    diags.push(e(
                        "V002",
                        format!("jump target {target} is out of bounds (code length {len})"),
                    ));
                }
            }
            Op::Const(i) if i as usize >= p.consts.len() => {
                diags.push(e("V005", format!("constant index {i} out of range")));
            }
            Op::LoadLocal(i) | Op::StoreLocal(i) if i >= f.n_slots => {
                diags.push(e(
                    "V006",
                    format!("local slot {i} out of range (function has {})", f.n_slots),
                ));
            }
            Op::LoadNode(i) | Op::StoreNode(i) => match p.consts.get(i as usize) {
                None => {
                    diags.push(e("V005", format!("node-variable name constant {i} out of range")))
                }
                Some(v) if !matches!(v, Value::Str(_)) => diags.push(e(
                    "V010",
                    format!("node-variable name constant {i} is a {}, not a string", v.type_name()),
                )),
                Some(_) => {}
            },
            Op::CallNative { name, .. } => match p.consts.get(name as usize) {
                None => diags
                    .push(e("V005", format!("native-function name constant {name} out of range"))),
                Some(v) if !matches!(v, Value::Str(_)) => diags.push(e(
                    "V010",
                    format!(
                        "native-function name constant {name} is a {}, not a string",
                        v.type_name()
                    ),
                )),
                Some(_) => {}
            },
            Op::Call { f: callee, argc } => match p.funcs.get(callee as usize) {
                None => diags.push(e("V007", format!("call target {callee} out of range"))),
                Some(g) if g.arity != argc => diags.push(e(
                    "V008",
                    format!(
                        "call to `{}` passes {argc} arguments, but it takes {}",
                        g.name, g.arity
                    ),
                )),
                Some(_) => {}
            },
            Op::Hop(i) | Op::Delete(i) if i as usize >= p.hop_specs.len() => {
                diags.push(e("V009", format!("hop/delete spec index {i} out of range")));
            }
            Op::Create(i) if i as usize >= p.create_specs.len() => {
                diags.push(e("V009", format!("create spec index {i} out of range")));
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests;
