//! Bottom-up interprocedural effect summaries.
//!
//! [`summarize`] walks the call graph's SCCs in callees-first order
//! (see [`crate::callgraph`]) and computes one [`FnSummary`] per
//! function. Non-recursive functions get a single precise pass — their
//! callees are already summarized. Recursive SCCs are handled
//! conservatively: may-sets are unioned over the whole component,
//! must-facts and bounds are dropped.
//!
//! The analysis is *total*: it accepts structurally damaged programs
//! (out-of-range indices, bad jumps) and degrades to ⊤ facts rather
//! than panicking, because `msgr check` runs it before verification has
//! pronounced. The compiler only consumes summaries of verified
//! programs.

use std::collections::BTreeSet;

use msgr_vm::{
    FnSummary, Function, HopBehavior, LinkPat, NodePat, Op, Program, SumKind, SummaryTable, Value,
};

use crate::callgraph::CallGraph;
use crate::cfg;

/// Largest function (in ops) still eligible for an `exact_ops` fact —
/// the compiler's call-fusion mini-interpreter is only a win on short
/// leaf functions.
const MAX_EXACT_OPS: usize = 64;

/// Largest `while` region (cond + body, in ops) eligible for a
/// typed-loop license.
const MAX_PURE_LOOP_OPS: usize = 256;

/// Compute effect summaries for every function in `p`.
pub fn summarize(p: &Program) -> SummaryTable {
    summarize_with_graph(p).0
}

/// Like [`summarize`], but also returns the call graph it was computed
/// over (the unbounded-recursion lint wants both).
pub fn summarize_with_graph(p: &Program) -> (SummaryTable, CallGraph) {
    let cg = CallGraph::build(p);
    let mut funcs: Vec<FnSummary> = vec![FnSummary::default(); p.funcs.len()];

    for scc in &cg.sccs {
        let recursive = scc.len() > 1 || cg.recursive[scc[0] as usize];
        if recursive {
            summarize_recursive_scc(p, &cg, scc, &mut funcs);
        } else {
            let i = scc[0] as usize;
            funcs[i] = summarize_one(p, &cg, i, &funcs);
        }
    }
    (SummaryTable { funcs }, cg)
}

/// Direct (intra-function) effects of `f`, before callee propagation.
fn direct_effects(f: &Function, s: &mut FnSummary) {
    for op in &f.code {
        match *op {
            Op::Create(_) => s.may_create = true,
            Op::SchedAbs | Op::SchedDlt => s.may_sched = true,
            Op::Halt => s.may_halt = true,
            Op::CallNative { .. } => s.may_native = true,
            Op::LoadNode(i) => {
                s.node_reads.insert(i);
            }
            Op::StoreNode(i) => {
                s.node_writes.insert(i);
            }
            _ => {}
        }
    }
}

/// Fold a callee's summary into the caller's may-facts.
fn absorb_callee(s: &mut FnSummary, callee: &FnSummary) {
    s.may_create |= callee.may_create;
    s.may_sched |= callee.may_sched;
    s.may_halt |= callee.may_halt;
    s.may_native |= callee.may_native;
    s.node_reads.extend(callee.node_reads.iter().copied());
    s.node_writes.extend(callee.node_writes.iter().copied());
}

/// One precise pass over a non-recursive function whose callees are
/// all summarized already.
fn summarize_one(p: &Program, cg: &CallGraph, i: usize, done: &[FnSummary]) -> FnSummary {
    let f = &p.funcs[i];
    let mut s = FnSummary { calls: cg.callees[i].clone(), ..FnSummary::default() };
    direct_effects(f, &mut s);
    for &c in &cg.callees[i] {
        absorb_callee(&mut s, &done[c as usize]);
    }
    s.hop = hop_level(p, f, |c| done[c as usize].hop);
    s.node_must_writes = must_writes(p, f, |c| done[c as usize].node_must_writes.clone());
    s.ops_bound = ops_bound(p, f, |c| done[c as usize].ops_bound);
    s.exact_ops = exact_ops(p, f);
    s.pure_loops = pure_loops(p, f);
    s.ret_kind = ret_kind(p, f, |c| done[c as usize].ret_kind);
    s
}

/// Conservative fixpoint over one recursive SCC: may-facts are unioned
/// across every member (each member can reach every other), must-facts
/// and bounds are dropped, and hop behavior collapses to either
/// hop-free (nothing in or below the component navigates) or
/// may-navigate — at-most-once cannot survive a cycle.
fn summarize_recursive_scc(p: &Program, cg: &CallGraph, scc: &[u16], funcs: &mut [FnSummary]) {
    let members: BTreeSet<u16> = scc.iter().copied().collect();
    let mut joint = FnSummary::default();
    let mut navigates = false;
    for &m in scc {
        let f = &p.funcs[m as usize];
        direct_effects(f, &mut joint);
        navigates |= f.code.iter().any(|op| matches!(op, Op::Hop(_) | Op::Delete(_)));
        for &c in &cg.callees[m as usize] {
            if !members.contains(&c) {
                // External callee: already final (Tarjan order).
                absorb_callee(&mut joint, &funcs[c as usize]);
                navigates |= funcs[c as usize].hop != HopBehavior::HopFree;
            }
        }
    }
    joint.hop = if navigates { HopBehavior::MayNavigate } else { HopBehavior::HopFree };
    joint.recursive = true;
    joint.ret_kind = SumKind::Top;
    for &m in scc {
        let mut s = joint.clone();
        s.calls = cg.callees[m as usize].clone();
        // Typed-loop licenses are structural and call-free, so they
        // survive recursion; everything must-/bound-shaped does not.
        s.pure_loops = pure_loops(p, &p.funcs[m as usize]);
        funcs[m as usize] = s;
    }
}

// --- hop-count dataflow ---------------------------------------------------

/// Forward dataflow on the three-point chain `0 < 1 < ω`: how many
/// times a path reaching each pc may already have navigated. The
/// function's behavior is the max over every reachable program point.
fn hop_level(p: &Program, f: &Function, callee: impl Fn(u16) -> HopBehavior) -> HopBehavior {
    const OMEGA: u8 = 2;
    let len = f.code.len();
    if len == 0 {
        return HopBehavior::HopFree;
    }
    let cost = |op: &Op| -> u8 {
        match *op {
            Op::Hop(_) | Op::Delete(_) => 1,
            Op::Call { f: c, .. } if (c as usize) < p.funcs.len() => match callee(c) {
                HopBehavior::HopFree => 0,
                HopBehavior::AtMostOnce => 1,
                HopBehavior::MayNavigate => OMEGA,
            },
            _ => 0,
        }
    };
    let mut level: Vec<Option<u8>> = vec![None; len];
    level[0] = Some(0);
    let mut work = vec![0usize];
    let mut max = 0u8;
    while let Some(pc) = work.pop() {
        let here = level[pc].expect("worklist pc has level");
        let out = (here + cost(&f.code[pc])).min(OMEGA);
        max = max.max(out);
        for succ in safe_successors(&f.code, pc) {
            if succ >= len {
                continue;
            }
            if level[succ].is_none_or(|l| l < out) {
                level[succ] = Some(level[succ].unwrap_or(0).max(out));
                work.push(succ);
            }
        }
    }
    match max {
        0 => HopBehavior::HopFree,
        1 => HopBehavior::AtMostOnce,
        _ => HopBehavior::MayNavigate,
    }
}

// --- must-write dataflow --------------------------------------------------

/// Forward must-analysis: node variables written on *every* path from
/// entry to each pc, intersected over all exits (`Ret`, `Halt`, fall
/// off the end). No reachable exit ⇒ the conservative ∅.
fn must_writes(p: &Program, f: &Function, callee: impl Fn(u16) -> BTreeSet<u16>) -> BTreeSet<u16> {
    let len = f.code.len();
    if len == 0 {
        return BTreeSet::new();
    }
    let mut states: Vec<Option<BTreeSet<u16>>> = vec![None; len];
    states[0] = Some(BTreeSet::new());
    let mut work = vec![0usize];
    let mut at_exit: Option<BTreeSet<u16>> = None;
    let join_exit = |set: &BTreeSet<u16>, at_exit: &mut Option<BTreeSet<u16>>| match at_exit {
        None => *at_exit = Some(set.clone()),
        Some(prev) => *prev = prev.intersection(set).copied().collect(),
    };
    while let Some(pc) = work.pop() {
        let mut set = states[pc].clone().expect("worklist pc has state");
        match f.code[pc] {
            Op::StoreNode(i) => {
                set.insert(i);
            }
            Op::Call { f: c, .. } if (c as usize) < p.funcs.len() => {
                set.extend(callee(c));
            }
            Op::Ret | Op::Halt => {
                join_exit(&set, &mut at_exit);
            }
            _ => {}
        }
        for succ in safe_successors(&f.code, pc) {
            if succ >= len {
                join_exit(&set, &mut at_exit); // fall off the end
                continue;
            }
            let merged = match &states[succ] {
                None => set.clone(),
                Some(prev) => prev.intersection(&set).copied().collect(),
            };
            if states[succ].as_ref() != Some(&merged) {
                states[succ] = Some(merged);
                work.push(succ);
            }
        }
    }
    at_exit.unwrap_or_default()
}

// --- ops bound ------------------------------------------------------------

/// Upper bound on ops charged by one complete call: the longest path
/// through an acyclic CFG, with `Call` costing `1 + callee bound`.
/// `None` on any cycle or unbounded callee.
fn ops_bound(p: &Program, f: &Function, callee: impl Fn(u16) -> Option<u64>) -> Option<u64> {
    let len = f.code.len();
    if len == 0 {
        return Some(0);
    }
    // Reachable subgraph from pc 0.
    let mut reach = vec![false; len];
    let mut stack = vec![0usize];
    reach[0] = true;
    while let Some(pc) = stack.pop() {
        for succ in safe_successors(&f.code, pc) {
            if succ < len && !reach[succ] {
                reach[succ] = true;
                stack.push(succ);
            }
        }
    }
    // Kahn topological sort over the reachable subgraph; incomplete ⇒
    // cycle ⇒ unbounded.
    let mut indeg = vec![0usize; len];
    for pc in 0..len {
        if !reach[pc] {
            continue;
        }
        for succ in safe_successors(&f.code, pc) {
            if succ < len && reach[succ] {
                indeg[succ] += 1;
            }
        }
    }
    let mut order = Vec::with_capacity(len);
    let mut ready: Vec<usize> = (0..len).filter(|&pc| reach[pc] && indeg[pc] == 0).collect();
    while let Some(pc) = ready.pop() {
        order.push(pc);
        for succ in safe_successors(&f.code, pc) {
            if succ < len && reach[succ] {
                indeg[succ] -= 1;
                if indeg[succ] == 0 {
                    ready.push(succ);
                }
            }
        }
    }
    if order.len() != reach.iter().filter(|&&r| r).count() {
        return None; // cycle
    }
    // Longest path, in reverse topological order.
    let mut best = vec![0u64; len + 1];
    for &pc in order.iter().rev() {
        let cost = match f.code[pc] {
            Op::Call { f: c, .. } if (c as usize) < p.funcs.len() => {
                1u64.checked_add(callee(c)?)?
            }
            _ => 1,
        };
        let succs = safe_successors(&f.code, pc);
        let tail = succs.iter().map(|&s| if s >= len { 0 } else { best[s] }).max().unwrap_or(0);
        best[pc] = cost.checked_add(tail)?;
    }
    Some(best[0])
}

// --- exact ops ------------------------------------------------------------

/// Whether `op` may appear in a straight-line pure function the
/// compiler can fuse through a call: no control flow, no effects, no
/// out-of-range indices. Faulting ops (`Div`, `IndexGet`, …) are fine —
/// the fused path bails to a real call on any fault.
fn straight_line_pure(p: &Program, f: &Function, op: &Op) -> bool {
    match *op {
        Op::Const(i) => (i as usize) < p.consts.len(),
        Op::LoadLocal(i) | Op::StoreLocal(i) => i < f.n_slots,
        Op::Dup
        | Op::Pop
        | Op::Add
        | Op::Sub
        | Op::Mul
        | Op::Div
        | Op::Mod
        | Op::Neg
        | Op::Not
        | Op::Eq
        | Op::Ne
        | Op::Lt
        | Op::Le
        | Op::Gt
        | Op::Ge
        | Op::MakeArr
        | Op::IndexGet
        | Op::IndexSet
        | Op::Ret => true,
        _ => false,
    }
}

/// Exact ops charged by one complete fault-free call, for straight-line
/// pure functions: execution walks pc 0, 1, 2, … to the first `Ret`
/// (each charging one op), or falls off the end (which charges
/// nothing extra).
fn exact_ops(p: &Program, f: &Function) -> Option<u32> {
    if f.code.len() > MAX_EXACT_OPS {
        return None;
    }
    if !f.code.iter().all(|op| straight_line_pure(p, f, op)) {
        return None;
    }
    let ops = match f.code.iter().position(|op| matches!(op, Op::Ret)) {
        Some(ret_pc) => ret_pc + 1,
        None => f.code.len(),
    };
    Some(ops as u32)
}

// --- typed-loop licenses --------------------------------------------------

/// Ops allowed in a typed-loop condition: value-producing, total over
/// {Int, Float, Bool}, and store-free.
fn typed_cond_op(p: &Program, f: &Function, op: &Op) -> bool {
    match *op {
        Op::Const(i) => matches!(
            p.consts.get(i as usize),
            Some(Value::Int(_) | Value::Float(_) | Value::Bool(_))
        ),
        Op::LoadLocal(i) => i < f.n_slots,
        Op::Dup
        | Op::Add
        | Op::Sub
        | Op::Mul
        | Op::Neg
        | Op::Not
        | Op::Eq
        | Op::Ne
        | Op::Lt
        | Op::Le
        | Op::Gt
        | Op::Ge => true,
        _ => false,
    }
}

/// Ops allowed in a typed-loop body: the condition set plus stores and
/// stack cleanup. Still no `Div`/`Mod` (they fault), no calls, no
/// node/net access, no jumps.
fn typed_body_op(p: &Program, f: &Function, op: &Op) -> bool {
    match *op {
        Op::StoreLocal(i) => i < f.n_slots,
        Op::Pop => true,
        _ => typed_cond_op(p, f, op),
    }
}

/// Stack-depth delta of a typed-loop op; `None` if depth would go
/// negative from `from`.
fn depth_after(op: &Op, from: isize) -> Option<isize> {
    let (pops, pushes) = match *op {
        Op::Const(_) | Op::LoadLocal(_) | Op::Dup => (0, 1),
        Op::StoreLocal(_) | Op::Pop => (1, 0),
        Op::Neg | Op::Not => (1, 1),
        Op::Add | Op::Sub | Op::Mul | Op::Eq | Op::Ne | Op::Lt | Op::Le | Op::Gt | Op::Ge => (2, 1),
        _ => return None,
    };
    // Dup peeks rather than pops; require one value present.
    let need = if matches!(op, Op::Dup) { 1 } else { pops };
    if from < need {
        return None;
    }
    Some(from - pops + pushes)
}

/// Find `while`-shaped regions whose every op is total over unboxed
/// {Int, Float, Bool} values: cond ops, `JumpIfFalse` over the body to
/// the exit, body ops, `Jump` back to the head. These heads license
/// the compiler's typed register fast path, which runs without
/// per-iteration deopt checks.
fn pure_loops(p: &Program, f: &Function) -> BTreeSet<u32> {
    let len = f.code.len();
    let mut out = BTreeSet::new();
    'head: for h in 0..len {
        // Condition section: typed ops up to the first JumpIfFalse.
        let mut depth: isize = 0;
        let mut c = h;
        loop {
            if c >= len || c - h > MAX_PURE_LOOP_OPS {
                continue 'head;
            }
            if matches!(f.code[c], Op::JumpIfFalse(_)) {
                break;
            }
            if !typed_cond_op(p, f, &f.code[c]) {
                continue 'head;
            }
            depth = match depth_after(&f.code[c], depth) {
                Some(d) => d,
                None => continue 'head,
            };
            c += 1;
        }
        // The condition must leave exactly the one value the jump pops.
        if depth != 1 {
            continue;
        }
        let Some(exit) = cfg::jump_target(c, &f.code[c]) else { continue };
        if exit <= c as isize + 1 || exit > len as isize {
            continue; // not a forward exit
        }
        let exit = exit as usize;
        let back = exit - 1; // last op of the body: the back-jump
        if back <= c || exit - h > MAX_PURE_LOOP_OPS {
            continue;
        }
        if cfg::jump_target(back, &f.code[back]) != Some(h as isize)
            || !matches!(f.code[back], Op::Jump(_))
        {
            continue;
        }
        // Body section: typed ops, net stack effect zero.
        let mut depth: isize = 0;
        let mut ok = true;
        for pc in c + 1..back {
            if !typed_body_op(p, f, &f.code[pc]) {
                ok = false;
                break;
            }
            match depth_after(&f.code[pc], depth) {
                Some(d) => depth = d,
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if ok && depth == 0 {
            out.insert(h as u32);
        }
    }
    out
}

// --- return-kind interpretation ------------------------------------------

fn skind_of(v: &Value) -> SumKind {
    match v {
        Value::Null => SumKind::Null,
        Value::Bool(_) => SumKind::Bool,
        Value::Int(_) => SumKind::Int,
        Value::Float(_) => SumKind::Float,
        Value::Str(_) => SumKind::Str,
        Value::Mat(_) => SumKind::Mat,
        Value::Blob(_) => SumKind::Blob,
        Value::Arr(_) => SumKind::Arr,
        Value::Link(_) => SumKind::Link,
    }
}

/// Kind-only abstract interpretation to a fixpoint: the join of the
/// returned value's kind over every returning path (`Halt` terminates
/// the messenger and is not a return; falling off the end returns
/// `NULL`). Defensive: any structural anomaly degrades to ⊤.
fn ret_kind(p: &Program, f: &Function, callee: impl Fn(u16) -> SumKind) -> SumKind {
    #[derive(Clone, PartialEq)]
    struct St {
        stack: Vec<SumKind>,
        locals: Vec<SumKind>,
    }
    let len = f.code.len();
    if len == 0 {
        return SumKind::Null;
    }
    let mut states: Vec<Option<St>> = vec![None; len];
    states[0] = Some(St { stack: Vec::new(), locals: vec![SumKind::Top; f.n_slots as usize] });
    let mut work = vec![0usize];
    let mut ret: Option<SumKind> = None;
    let join_ret = |k: SumKind, ret: &mut Option<SumKind>| {
        *ret = Some(match *ret {
            None => k,
            Some(prev) => prev.join(k),
        });
    };
    while let Some(pc) = work.pop() {
        let mut st = states[pc].clone().expect("worklist pc has state");
        macro_rules! pop {
            () => {
                match st.stack.pop() {
                    Some(k) => k,
                    None => return SumKind::Top,
                }
            };
        }
        match f.code[pc] {
            Op::Const(i) => match p.consts.get(i as usize) {
                Some(v) => st.stack.push(skind_of(v)),
                None => return SumKind::Top,
            },
            Op::LoadLocal(i) => match st.locals.get(i as usize) {
                Some(&k) => st.stack.push(k),
                None => return SumKind::Top,
            },
            Op::StoreLocal(i) => {
                let k = pop!();
                match st.locals.get_mut(i as usize) {
                    Some(slot) => *slot = k,
                    None => return SumKind::Top,
                }
            }
            Op::LoadNode(_) | Op::LoadNet(_) => st.stack.push(SumKind::Top),
            Op::StoreNode(_) => {
                pop!();
            }
            Op::Dup => match st.stack.last() {
                Some(&k) => st.stack.push(k),
                None => return SumKind::Top,
            },
            Op::Pop => {
                pop!();
            }
            Op::Add => {
                let b = pop!();
                let a = pop!();
                st.stack.push(match (a, b) {
                    (SumKind::Str, _) | (_, SumKind::Str) => SumKind::Str,
                    (SumKind::Int, SumKind::Int) => SumKind::Int,
                    (SumKind::Int | SumKind::Float, SumKind::Int | SumKind::Float) => {
                        SumKind::Float
                    }
                    _ => SumKind::Top,
                });
            }
            Op::Sub | Op::Mul | Op::Div | Op::Mod => {
                let b = pop!();
                let a = pop!();
                st.stack.push(match (a, b) {
                    (SumKind::Int, SumKind::Int) => SumKind::Int,
                    (SumKind::Int | SumKind::Float, SumKind::Int | SumKind::Float) => {
                        SumKind::Float
                    }
                    _ => SumKind::Top,
                });
            }
            Op::Neg => {
                let a = pop!();
                st.stack.push(match a {
                    SumKind::Int => SumKind::Int,
                    SumKind::Float | SumKind::Bool => SumKind::Float,
                    _ => SumKind::Top,
                });
            }
            Op::Not => {
                pop!();
                st.stack.push(SumKind::Bool);
            }
            Op::Eq | Op::Ne | Op::Lt | Op::Le | Op::Gt | Op::Ge => {
                pop!();
                pop!();
                st.stack.push(SumKind::Bool);
            }
            Op::Jump(_) => {}
            Op::JumpIfFalse(_) => {
                pop!();
            }
            Op::JumpIfTruePeek(_) | Op::JumpIfFalsePeek(_) => {
                if st.stack.is_empty() {
                    return SumKind::Top;
                }
            }
            Op::Call { f: c, argc } => {
                for _ in 0..argc {
                    pop!();
                }
                let k = if (c as usize) < p.funcs.len() { callee(c) } else { SumKind::Top };
                st.stack.push(k);
            }
            Op::CallNative { argc, .. } => {
                for _ in 0..argc {
                    pop!();
                }
                st.stack.push(SumKind::Top);
            }
            Op::Ret => {
                let k = pop!();
                join_ret(k, &mut ret);
            }
            Op::Hop(i) | Op::Delete(i) => match p.hop_specs.get(i as usize) {
                Some(spec) => {
                    if spec.ll == LinkPat::Expr {
                        pop!();
                    }
                    if spec.ln == NodePat::Expr {
                        pop!();
                    }
                }
                None => return SumKind::Top,
            },
            Op::Create(i) => match p.create_specs.get(i as usize) {
                Some(spec) => {
                    for _ in 0..spec.operand_count() {
                        pop!();
                    }
                }
                None => return SumKind::Top,
            },
            Op::SchedAbs | Op::SchedDlt => {
                pop!();
            }
            Op::Halt => {}
            Op::MakeArr => {
                pop!();
                pop!();
                st.stack.push(SumKind::Arr);
            }
            Op::IndexGet => {
                pop!();
                pop!();
                st.stack.push(SumKind::Top);
            }
            Op::IndexSet => {
                pop!();
                pop!();
                pop!();
                st.stack.push(SumKind::Arr);
            }
        }
        for succ in safe_successors(&f.code, pc) {
            if succ >= len {
                join_ret(SumKind::Null, &mut ret); // implicit return NULL
                continue;
            }
            let merged = match &states[succ] {
                None => st.clone(),
                Some(prev) => {
                    if prev.stack.len() != st.stack.len() {
                        return SumKind::Top;
                    }
                    St {
                        stack: prev.stack.iter().zip(&st.stack).map(|(&a, &b)| a.join(b)).collect(),
                        locals: prev
                            .locals
                            .iter()
                            .zip(&st.locals)
                            .map(|(&a, &b)| a.join(b))
                            .collect(),
                    }
                }
            };
            if states[succ].as_ref() != Some(&merged) {
                states[succ] = Some(merged);
                work.push(succ);
            }
        }
    }
    ret.unwrap_or(SumKind::Top)
}

/// [`cfg::successors`] with out-of-range jump targets dropped instead
/// of trusted — the summarizer runs on unverified programs too.
fn safe_successors(code: &[Op], pc: usize) -> Vec<usize> {
    let len = code.len() as isize;
    match &code[pc] {
        Op::Ret | Op::Halt => Vec::new(),
        op
        @ (Op::Jump(_) | Op::JumpIfFalse(_) | Op::JumpIfTruePeek(_) | Op::JumpIfFalsePeek(_)) => {
            let t = cfg::jump_target(pc, op).expect("jump has target");
            let mut out = Vec::new();
            if !matches!(op, Op::Jump(_)) {
                out.push(pc + 1);
            }
            if t >= 0 && t <= len && t as usize != pc + 1 {
                out.push(t as usize);
            } else if matches!(op, Op::Jump(_)) && (t < 0 || t > len) {
                // Unverifiable jump: treat as a dead end.
            }
            out
        }
        _ => vec![pc + 1],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msgr_vm::{Builder, HopSpec};

    fn call(f: u16) -> Op {
        Op::Call { f, argc: 0 }
    }

    #[test]
    fn straight_line_leaf_gets_exact_ops_and_ret_kind() {
        let mut b = Builder::new();
        let two = b.constant(Value::Int(2));
        let three = b.constant(Value::Int(3));
        b.function("add", 0, 0, vec![Op::Const(two), Op::Const(three), Op::Add, Op::Ret]);
        let p = b.finish(msgr_vm::FuncId(0));
        let t = summarize(&p);
        let s = &t.funcs[0];
        assert_eq!(s.exact_ops, Some(4));
        assert_eq!(s.ops_bound, Some(4));
        assert_eq!(s.ret_kind, SumKind::Int);
        assert_eq!(s.hop, HopBehavior::HopFree);
        assert!(s.is_pure());
        assert!(!s.recursive);
    }

    #[test]
    fn fall_off_the_end_returns_null_and_charges_all_ops() {
        let mut b = Builder::new();
        let one = b.constant(Value::Int(1));
        b.function("f", 0, 0, vec![Op::Const(one), Op::Pop]);
        let p = b.finish(msgr_vm::FuncId(0));
        let s = &summarize(&p).funcs[0];
        assert_eq!(s.exact_ops, Some(2));
        assert_eq!(s.ret_kind, SumKind::Null);
    }

    #[test]
    fn hop_counts_saturate_through_calls() {
        let mut b = Builder::new();
        let spec = b.hop_spec(HopSpec::default());
        // hopper: hops exactly once.
        b.function("hopper", 0, 0, vec![Op::Hop(spec), Op::Ret]);
        // Wait: Hop leaves nothing; Ret needs a value. Use fall-off.
        let p = b.finish(msgr_vm::FuncId(0));
        let _ = p;
        let mut b = Builder::new();
        let spec = b.hop_spec(HopSpec::default());
        b.function("hopper", 0, 0, vec![Op::Hop(spec)]);
        b.function("twice", 0, 0, vec![call(0), Op::Pop, call(0), Op::Pop]);
        b.function("once", 0, 0, vec![call(0), Op::Pop]);
        let p = b.finish(msgr_vm::FuncId(1));
        let t = summarize(&p);
        assert_eq!(t.funcs[0].hop, HopBehavior::AtMostOnce);
        assert_eq!(t.funcs[1].hop, HopBehavior::MayNavigate);
        assert_eq!(t.funcs[2].hop, HopBehavior::AtMostOnce);
    }

    #[test]
    fn hop_in_a_loop_is_may_navigate() {
        let mut b = Builder::new();
        let spec = b.hop_spec(HopSpec::default());
        // 0: Hop, 1: Jump back to 0.
        b.function("wander", 0, 0, vec![Op::Hop(spec), Op::Jump(-2)]);
        let p = b.finish(msgr_vm::FuncId(0));
        let s = &summarize(&p).funcs[0];
        assert_eq!(s.hop, HopBehavior::MayNavigate);
        assert_eq!(s.ops_bound, None);
    }

    #[test]
    fn must_writes_intersect_over_branches() {
        let mut b = Builder::new();
        let t = b.constant(Value::Bool(true));
        let va = b.constant(Value::str("a"));
        let vb = b.constant(Value::str("b"));
        let one = b.constant(Value::Int(1));
        // if (cond) { a = 1 } ; b = 1 ; return 1
        b.function(
            "f",
            0,
            0,
            vec![
                Op::Const(t),
                Op::JumpIfFalse(2), // -> pc 4
                Op::Const(one),
                Op::StoreNode(va), // only on the taken branch
                Op::Const(one),
                Op::StoreNode(vb), // on every path
                Op::Const(one),
                Op::Ret,
            ],
        );
        let p = b.finish(msgr_vm::FuncId(0));
        let s = &summarize(&p).funcs[0];
        assert_eq!(s.node_writes, BTreeSet::from([va, vb]));
        assert_eq!(s.node_must_writes, BTreeSet::from([vb]));
    }

    #[test]
    fn callee_effects_propagate_to_callers() {
        let mut b = Builder::new();
        let v = b.constant(Value::str("x"));
        let one = b.constant(Value::Int(1));
        b.function("writer", 0, 0, vec![Op::Const(one), Op::StoreNode(v), Op::Const(one), Op::Ret]);
        b.function("caller", 0, 0, vec![call(0), Op::Ret]);
        let p = b.finish(msgr_vm::FuncId(1));
        let t = summarize(&p);
        assert_eq!(t.funcs[1].node_writes, BTreeSet::from([v]));
        assert_eq!(t.funcs[1].node_must_writes, BTreeSet::from([v]));
        assert_eq!(t.funcs[1].ret_kind, SumKind::Int);
        assert_eq!(t.funcs[1].ops_bound, Some(2 + 4));
        assert!(!t.node_write_free());
    }

    #[test]
    fn recursion_is_flagged_and_bounds_dropped() {
        let mut b = Builder::new();
        b.function("even", 0, 0, vec![call(1), Op::Ret]);
        b.function("odd", 0, 0, vec![call(0), Op::Ret]);
        let p = b.finish(msgr_vm::FuncId(0));
        let t = summarize(&p);
        for s in &t.funcs {
            assert!(s.recursive);
            assert_eq!(s.ops_bound, None);
            assert_eq!(s.exact_ops, None);
            assert_eq!(s.ret_kind, SumKind::Top);
            assert_eq!(s.hop, HopBehavior::HopFree);
        }
    }

    #[test]
    fn counted_while_loop_is_licensed() {
        let mut b = Builder::new();
        let hundred = b.constant(Value::Int(100));
        let one = b.constant(Value::Int(1));
        // i (slot 0): while (i < 100) { i = i + 1 } return i
        b.function(
            "count",
            0,
            1,
            vec![
                Op::LoadLocal(0),   // 0  cond
                Op::Const(hundred), // 1
                Op::Lt,             // 2
                Op::JumpIfFalse(5), // 3  -> pc 9
                Op::LoadLocal(0),   // 4  body
                Op::Const(one),     // 5
                Op::Add,            // 6
                Op::StoreLocal(0),  // 7
                Op::Jump(-9),       // 8  -> pc 0
                Op::LoadLocal(0),   // 9
                Op::Ret,            // 10
            ],
        );
        let p = b.finish(msgr_vm::FuncId(0));
        let s = &summarize(&p).funcs[0];
        assert_eq!(s.pure_loops, BTreeSet::from([0]));
        assert_eq!(s.ops_bound, None); // loop: unbounded ops
        assert!(s.is_pure());
    }

    #[test]
    fn div_in_loop_body_blocks_the_license() {
        let mut b = Builder::new();
        let hundred = b.constant(Value::Int(100));
        let one = b.constant(Value::Int(1));
        b.function(
            "count",
            0,
            1,
            vec![
                Op::LoadLocal(0),
                Op::Const(hundred),
                Op::Lt,
                Op::JumpIfFalse(5),
                Op::LoadLocal(0),
                Op::Const(one),
                Op::Div, // faults on zero: no typed license
                Op::StoreLocal(0),
                Op::Jump(-9),
                Op::LoadLocal(0),
                Op::Ret,
            ],
        );
        let p = b.finish(msgr_vm::FuncId(0));
        assert!(summarize(&p).funcs[0].pure_loops.is_empty());
    }

    #[test]
    fn native_calls_poison_write_freedom() {
        let mut b = Builder::new();
        let name = b.constant(Value::str("M_rand"));
        b.function("f", 0, 0, vec![Op::CallNative { name, argc: 0 }, Op::Ret]);
        let p = b.finish(msgr_vm::FuncId(0));
        let t = summarize(&p);
        assert!(t.funcs[0].may_native);
        assert!(!t.node_write_free());
        assert_eq!(t.funcs[0].exact_ops, None);
    }
}
