//! Property tests tying the compiler to the verifier.
//!
//! 1. **Compiler soundness**: every program compiled from a generated
//!    (well-scoped) AST passes the bytecode verifier — the daemon
//!    trust boundary never rejects our own front-end's output.
//! 2. **Mutation**: corrupting a jump offset in verified bytecode is
//!    rejected with a precise V002 diagnostic at the corrupted pc;
//!    truncating a function never panics the verifier and is rejected
//!    with an anchored diagnostic whenever a jump dangles.

use msgr_check::{check_with, Config, Source};
use msgr_lang::ast::*;
use msgr_lang::{compile_ast, Pos};
use msgr_vm::Dir;
use msgr_vm::{Op, Program};

const P: Pos = Pos { line: 1, col: 1 };

/// Scoped generation context for one function body.
struct Ctx {
    /// Visible names per lexical scope: `(name, is_node_var)`.
    scopes: Vec<Vec<(String, bool)>>,
    /// Arity of every function in the script (callable by index).
    arities: Vec<u8>,
    in_loop: bool,
    counter: u32,
}

impl Ctx {
    fn visible(&self) -> Vec<String> {
        self.scopes.iter().flatten().map(|(n, _)| n.clone()).collect()
    }

    fn fresh_name(&mut self, prefix: &str) -> String {
        self.counter += 1;
        format!("{prefix}{}", self.counter)
    }
}

fn arb_expr(s: &mut Source, ctx: &Ctx, depth: usize) -> Expr {
    let vars = ctx.visible();
    let leaf = depth == 0 || s.bool_with(0.4);
    if leaf {
        match s.draw(6) {
            0 => Expr::Int(s.i64_in(-3..100), P),
            1 => Expr::Float(0.5, P),
            2 => Expr::Str(s.string(0..4, "abn"), P),
            3 => Expr::Bool(s.any_bool(), P),
            4 if !vars.is_empty() => Expr::Var(s.pick(&vars).clone(), P),
            4 => Expr::Null(P),
            _ => Expr::NetVar(s.pick(&["address", "node", "time"]).to_string(), P),
        }
    } else {
        match s.draw(4) {
            0 => Expr::Bin {
                op: *s.pick(&[
                    BinOp::Add,
                    BinOp::Sub,
                    BinOp::Mul,
                    BinOp::Eq,
                    BinOp::Lt,
                    BinOp::And,
                    BinOp::Or,
                ]),
                lhs: Box::new(arb_expr(s, ctx, depth - 1)),
                rhs: Box::new(arb_expr(s, ctx, depth - 1)),
            },
            1 => Expr::Un {
                op: *s.pick(&[UnOp::Neg, UnOp::Not]),
                expr: Box::new(arb_expr(s, ctx, depth - 1)),
                pos: P,
            },
            2 => {
                // Call a user function with the right arity, or a native.
                if s.any_bool() && !ctx.arities.is_empty() {
                    let f = s.usize_in(0..ctx.arities.len());
                    let args = (0..ctx.arities[f]).map(|_| arb_expr(s, ctx, depth - 1)).collect();
                    Expr::Call { name: format!("f{f}"), args, pos: P }
                } else {
                    let args = s.vec_with(0..3, |s| arb_expr(s, ctx, depth.saturating_sub(1)));
                    Expr::Call { name: "some_native".into(), args, pos: P }
                }
            }
            _ => arb_expr(s, ctx, depth - 1),
        }
    }
}

fn arb_hop_args(s: &mut Source, ctx: &Ctx) -> HopArgs {
    let ln = match s.draw(3) {
        0 => None,
        1 => Some(Pat::Wild),
        _ => Some(Pat::Expr(arb_expr(s, ctx, 1))),
    };
    let ll = match s.draw(4) {
        0 => None,
        1 => Some(Pat::Unnamed),
        2 => Some(Pat::Expr(arb_expr(s, ctx, 1))),
        // `virtual` needs an explicit destination node.
        _ if matches!(ln, Some(Pat::Expr(_))) => Some(Pat::Virtual),
        _ => Some(Pat::Wild),
    };
    let ldir = match s.draw(3) {
        0 => None,
        1 => Some(Dir::Forward),
        _ => Some(Dir::Backward),
    };
    HopArgs { ln, ll, ldir }
}

fn arb_create_args(s: &mut Source, ctx: &Ctx) -> CreateArgs {
    let mut args = CreateArgs { all: s.any_bool(), ..Default::default() };
    if s.any_bool() {
        args.ln = vec![Pat::Expr(arb_expr(s, ctx, 1))];
    }
    if s.any_bool() {
        args.ll = vec![Pat::Unnamed];
    }
    if s.any_bool() {
        args.dn = vec![Pat::Wild];
    }
    args
}

fn arb_stmt(s: &mut Source, ctx: &mut Ctx, depth: usize) -> Stmt {
    let vars = ctx.visible();
    match s.draw(12) {
        0 => {
            let name = ctx.fresh_name("v");
            let init = if s.any_bool() { Some(arb_expr(s, ctx, 2)) } else { None };
            ctx.scopes.last_mut().unwrap().push((name.clone(), false));
            Stmt::Decl {
                ty: *s.pick(&[DeclType::Int, DeclType::Float, DeclType::Str, DeclType::Bool]),
                decls: vec![Declarator { name, array_size: None, init, pos: P }],
            }
        }
        1 => {
            let name = ctx.fresh_name("nv");
            ctx.scopes.last_mut().unwrap().push((name.clone(), true));
            Stmt::NodeDecl {
                ty: DeclType::Int,
                decls: vec![Declarator { name, array_size: None, init: None, pos: P }],
            }
        }
        2 if !vars.is_empty() => {
            let target = s.pick(&vars).clone();
            Stmt::Expr(Expr::Assign {
                target,
                index: None,
                value: Box::new(arb_expr(s, ctx, 2)),
                pos: P,
            })
        }
        3 if depth > 0 => Stmt::If {
            cond: arb_expr(s, ctx, 2),
            then: arb_block(s, ctx, depth - 1),
            otherwise: if s.any_bool() { arb_block(s, ctx, depth - 1) } else { Vec::new() },
        },
        4 if depth > 0 => {
            let was = ctx.in_loop;
            ctx.in_loop = true;
            let body = arb_block(s, ctx, depth - 1);
            ctx.in_loop = was;
            Stmt::While { cond: arb_expr(s, ctx, 2), body }
        }
        5 => Stmt::Hop(arb_hop_args(s, ctx), P),
        6 => Stmt::Create(arb_create_args(s, ctx), P),
        7 => Stmt::Delete(arb_hop_args(s, ctx), P),
        8 => Stmt::Return(if s.any_bool() { Some(arb_expr(s, ctx, 2)) } else { None }, P),
        9 if ctx.in_loop => {
            if s.any_bool() {
                Stmt::Break(P)
            } else {
                Stmt::Continue(P)
            }
        }
        10 => Stmt::Expr(Expr::Call {
            name: "M_sched_time_dlt".into(),
            args: vec![Expr::Float(1.0, P)],
            pos: P,
        }),
        _ => Stmt::Expr(arb_expr(s, ctx, 2)),
    }
}

fn arb_block(s: &mut Source, ctx: &mut Ctx, depth: usize) -> Vec<Stmt> {
    ctx.scopes.push(Vec::new());
    let n = s.usize_in(0..5);
    let body = (0..n).map(|_| arb_stmt(s, ctx, depth)).collect();
    ctx.scopes.pop();
    body
}

fn arb_script(s: &mut Source) -> Script {
    let nfuncs = s.usize_in(1..4);
    let arities: Vec<u8> = (0..nfuncs).map(|_| s.u8_in(0..3)).collect();
    let funcs = arities
        .iter()
        .enumerate()
        .map(|(i, &arity)| {
            let params: Vec<String> = (0..arity).map(|k| format!("p{k}")).collect();
            let mut ctx = Ctx {
                scopes: vec![params.iter().map(|p| (p.clone(), false)).collect()],
                arities: arities.clone(),
                in_loop: false,
                counter: 0,
            };
            let body = arb_block(s, &mut ctx, 2);
            Func { name: format!("f{i}"), params, body, pos: P }
        })
        .collect();
    Script { funcs }
}

fn compile_arb(s: &mut Source) -> Result<Program, String> {
    let script = arb_script(s);
    compile_ast(&script).map_err(|e| format!("generated AST failed to compile: {e}\n{script:#?}"))
}

#[test]
fn compiled_programs_verify() {
    check_with(Config { cases: 256, ..Config::default() }, "compiled_programs_verify", |s| {
        let program = compile_arb(s)?;
        msgr_analyze::verify(&program).map_err(|diags| {
            let msgs: Vec<String> = diags.iter().map(|d| d.render(&program)).collect();
            format!("compiler output failed verification:\n{}", msgs.join("\n"))
        })?;
        Ok(())
    });
}

#[test]
fn verified_programs_always_compile() {
    // The directional contract documented on `msgr_analyze::verify`:
    // passing verification is the precondition the closure compiler
    // assumes, so anything the verifier admits must compile. The
    // registry relies on this — a verified-but-uncompilable program
    // would be quarantined with a confusing "compile failed" reason.
    check_with(Config { cases: 256, ..Config::default() }, "verified_always_compile", |s| {
        let program = compile_arb(s)?;
        if msgr_analyze::verify(&program).is_err() {
            return Ok(()); // not our contract's hypothesis
        }
        let cp = msgr_vm::compile::compile(&program)
            .map_err(|e| format!("verified program failed to compile: {e}"))?;
        if cp.func_count() != program.funcs.len() {
            return Err(format!(
                "compiled {} of {} functions",
                cp.func_count(),
                program.funcs.len()
            ));
        }
        Ok(())
    });
}

#[test]
fn corrupted_jump_offset_is_rejected_precisely() {
    check_with(Config { cases: 256, ..Config::default() }, "corrupted_jump_rejected", |s| {
        let mut program = compile_arb(s)?;
        // Find every jump in the program; corrupt one, if any.
        let jumps: Vec<(usize, usize)> = program
            .funcs
            .iter()
            .enumerate()
            .flat_map(|(fi, f)| {
                f.code
                    .iter()
                    .enumerate()
                    .filter(|(_, op)| {
                        matches!(
                            op,
                            Op::Jump(_)
                                | Op::JumpIfFalse(_)
                                | Op::JumpIfTruePeek(_)
                                | Op::JumpIfFalsePeek(_)
                        )
                    })
                    .map(move |(pc, _)| (fi, pc))
            })
            .collect();
        if jumps.is_empty() {
            return Ok(()); // nothing to corrupt this case
        }
        let (fi, pc) = *s.pick(&jumps);
        let bad = 1 << 20;
        match &mut program.funcs[fi].code[pc] {
            Op::Jump(o) | Op::JumpIfFalse(o) | Op::JumpIfTruePeek(o) | Op::JumpIfFalsePeek(o) => {
                *o = bad
            }
            _ => unreachable!(),
        }
        let diags = match msgr_analyze::verify(&program) {
            Ok(_) => return Err(format!("corrupted jump at fn {fi} pc {pc} not rejected")),
            Err(d) => d,
        };
        let hit = diags.iter().any(|d| d.code == "V002" && d.func == fi && d.pc == Some(pc));
        if !hit {
            return Err(format!(
                "expected V002 at fn {fi} pc {pc}, got {:?}",
                diags.iter().map(|d| (d.code, d.func, d.pc)).collect::<Vec<_>>()
            ));
        }
        Ok(())
    });
}

#[test]
fn truncated_functions_never_panic_and_dangling_jumps_reject() {
    let program = msgr_lang::compile(
        r#"main() {
            int i, acc;
            while (i < 10) {
                if (i % 2 == 0) { acc = acc + i; }
                i = i + 1;
            }
            return acc;
        }"#,
    )
    .unwrap();
    let full = &program.funcs[0].code;
    let mut rejected_at_least_once = false;
    for cut in 1..full.len() {
        let mut p = program.clone();
        p.funcs[0].code.truncate(cut);
        p.funcs[0].lines.truncate(cut);
        match msgr_analyze::verify(&p) {
            Ok(_) => {}
            Err(diags) => {
                rejected_at_least_once = true;
                // Precise: anchored to the damaged function, with a pc.
                assert!(
                    diags.iter().all(|d| d.func == 0 && d.pc.is_some()),
                    "diagnostic not anchored: {diags:?}"
                );
            }
        }
    }
    assert!(rejected_at_least_once, "no truncation of a loop body dangles a jump?");
}
