//! Post-hoc cost attribution over merged traces.
//!
//! The runtime side of the profiler (`msgr-core::profiling`) emits two
//! extra event kinds into the trace stream when profiling is enabled:
//! `phase_ledger` — one per messenger local stay, decomposing its
//! residence time into queue / verify / exec / enc / xport / park /
//! stall — and `pc_sample` — op-count-triggered VM program-counter hits
//! folded to source lines. This crate turns a merged trace containing
//! those events into the three artifacts `msgr profile` prints:
//!
//! 1. **Phase breakdown** ([`Profile::phase_breakdown`]): where the
//!    cluster's messenger-seconds went, as fractions that sum to 1 *by
//!    construction* (every ledger's `total` is the sum of its phases).
//! 2. **Folded stacks** ([`Profile::folded`]): `workload;frame;line N`
//!    lines, directly loadable by speedscope or inferno's flamegraph
//!    tools.
//! 3. **Critical path** ([`Profile::critical_path`]): the longest causal
//!    chain from an injection to a retirement, stitched across daemons
//!    through the sender-side partial ledgers (`parent` field), with
//!    per-edge phase attribution.
//!
//! Everything here is deterministic: ledgers and samples are folded
//! through ordered maps, so equal traces produce byte-identical reports.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt::Write as _;

use msgr_trace::{EventKind, Trace};

/// The seven attributed phases, in canonical report order.
pub const PHASES: [&str; 7] = ["queue", "verify", "exec", "enc", "xport", "park", "stall"];

/// One `phase_ledger` event, decoded.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Ledger {
    /// Daemon that emitted the ledger.
    pub daemon: u16,
    /// Messenger id at the terminal disposition (retire / fault / hop).
    pub mid: u64,
    /// Messenger id at arrival/injection — the transport join key.
    pub born: u64,
    /// For sender-side partial ledgers: the id of the messenger that
    /// forked this one. 0 for full (receiver-side) ledgers.
    pub parent: u64,
    /// Phase nanoseconds, in [`PHASES`] order.
    pub phases: [u64; 7],
    /// Sum of the phases (emitted explicitly by the runtime).
    pub total: u64,
}

/// A decoded profile: every ledger and pc sample in the trace.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    /// Full (receiver-side) ledgers, in trace order.
    pub ledgers: Vec<Ledger>,
    /// Sender-side partial ledgers (`parent != 0`), in trace order.
    pub forks: Vec<Ledger>,
    /// Aggregated pc samples keyed `(program, func, line)`.
    pub samples: BTreeMap<(u64, u32, u32), u64>,
}

impl Profile {
    /// Extract the profiler's events from a merged trace.
    pub fn from_trace(trace: &Trace) -> Profile {
        let mut p = Profile::default();
        for ev in &trace.events {
            match &ev.kind {
                EventKind::PhaseLedger {
                    mid,
                    born,
                    parent,
                    queue,
                    verify,
                    exec,
                    enc,
                    xport,
                    park,
                    stall,
                    total,
                } => {
                    let l = Ledger {
                        daemon: ev.daemon,
                        mid: *mid,
                        born: *born,
                        parent: *parent,
                        phases: [*queue, *verify, *exec, *enc, *xport, *park, *stall],
                        total: *total,
                    };
                    if l.parent == 0 {
                        p.ledgers.push(l);
                    } else {
                        p.forks.push(l);
                    }
                }
                EventKind::PcSample { prog, func, line, count } => {
                    *p.samples.entry((*prog, *func, *line)).or_insert(0) += count;
                }
                _ => {}
            }
        }
        p
    }

    /// Whether the trace carried any profiler output at all.
    pub fn is_empty(&self) -> bool {
        self.ledgers.is_empty() && self.forks.is_empty() && self.samples.is_empty()
    }

    /// Total attributed nanoseconds per phase, over every ledger (full
    /// and partial), in [`PHASES`] order.
    pub fn phase_totals(&self) -> [u64; 7] {
        let mut t = [0u64; 7];
        for l in self.ledgers.iter().chain(&self.forks) {
            for (acc, v) in t.iter_mut().zip(l.phases) {
                *acc += v;
            }
        }
        t
    }

    /// Sum of every ledger's `total` — the denominator of the fractions.
    pub fn attributed_total(&self) -> u64 {
        self.ledgers.iter().chain(&self.forks).map(|l| l.total).sum()
    }

    /// The phase-breakdown report: one line per phase with nanoseconds
    /// and fraction of the attributed total. Fractions sum to 1 (within
    /// printing precision) because each ledger's total is its phase sum.
    pub fn phase_breakdown(&self) -> String {
        let totals = self.phase_totals();
        let denom = self.attributed_total().max(1);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "phase breakdown: {} ledgers ({} partial), {} attributed ns",
            self.ledgers.len() + self.forks.len(),
            self.forks.len(),
            self.attributed_total()
        );
        for (name, ns) in PHASES.iter().zip(totals) {
            let _ =
                writeln!(out, "  {name:<7} {ns:>16} ns  {}", fmt_frac(ns as f64 / denom as f64));
        }
        out
    }

    /// Folded-stack lines (`workload;frame;line N`), hottest first, ties
    /// broken by key order — the flamegraph/speedscope collapsed format.
    pub fn folded(&self) -> String {
        let mut rows: Vec<(&(u64, u32, u32), &u64)> = self.samples.iter().collect();
        rows.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
        let mut out = String::new();
        for ((prog, func, line), count) in rows {
            let _ = writeln!(out, "prog_{prog:016x};f{func};L{line} {count}");
        }
        out
    }

    /// The longest causal chain from an injection to a terminal ledger.
    ///
    /// Nodes are full ledgers (one messenger local stay, weight =
    /// `total`); an edge parent → child exists where a partial fork
    /// ledger's `mid` matches the child's `born` and its `parent`
    /// matches the parent ledger's `mid` (weight = the fork's sender-side
    /// encode cost; the wire latency is already inside the child's
    /// `xport`). Returns the chain root-first, with the edge cost that
    /// *led into* each node.
    pub fn critical_chain(&self) -> Vec<(Ledger, u64)> {
        // born → index: the receiver-side ledger a fork lands in.
        let by_born: BTreeMap<u64, usize> =
            self.ledgers.iter().enumerate().map(|(i, l)| (l.born, i)).collect();
        // mid → index: the sender-side ledger a fork came out of.
        let by_mid: BTreeMap<u64, usize> =
            self.ledgers.iter().enumerate().map(|(i, l)| (l.mid, i)).collect();
        // Incoming edge per node: (parent index, edge ns). A messenger
        // arrives exactly once, so at most one incoming edge exists.
        let mut inbound: BTreeMap<usize, (usize, u64)> = BTreeMap::new();
        for f in &self.forks {
            if let (Some(&parent), Some(&child)) = (by_mid.get(&f.parent), by_born.get(&f.mid)) {
                if parent != child {
                    inbound.insert(child, (parent, f.total));
                }
            }
        }
        // Longest path ending at each node, by walking each node's
        // unique ancestor chain (memoized; the graph is a forest of
        // in-trees so this is linear overall).
        let n = self.ledgers.len();
        let mut best: Vec<Option<u64>> = vec![None; n];
        fn dp(
            i: usize,
            ledgers: &[Ledger],
            inbound: &BTreeMap<usize, (usize, u64)>,
            best: &mut Vec<Option<u64>>,
            depth: usize,
        ) -> u64 {
            if let Some(b) = best[i] {
                return b;
            }
            // Depth guard: a malformed trace could alias mids into a
            // cycle; bail out rather than recurse forever.
            let v = match inbound.get(&i) {
                Some(&(p, edge)) if depth < ledgers.len() => {
                    ledgers[i].total + edge + dp(p, ledgers, inbound, best, depth + 1)
                }
                _ => ledgers[i].total,
            };
            best[i] = Some(v);
            v
        }
        let mut end = None;
        let mut end_ns = 0;
        for i in 0..n {
            let v = dp(i, &self.ledgers, &inbound, &mut best, 0);
            // Strict > keeps the earliest (lowest-mid-order) chain on
            // ties, so the report is deterministic.
            if v > end_ns || end.is_none() {
                end_ns = v;
                end = Some(i);
            }
        }
        let mut chain = Vec::new();
        let mut cur = end;
        let mut guard = 0;
        while let Some(i) = cur {
            let edge = inbound.get(&i).map(|&(_, e)| e).unwrap_or(0);
            chain.push((self.ledgers[i], edge));
            cur = inbound.get(&i).map(|&(p, _)| p);
            guard += 1;
            if guard > n {
                break;
            }
        }
        chain.reverse();
        chain
    }

    /// Render [`Profile::critical_chain`] as the `msgr profile` report:
    /// one hop per line, root first, with per-phase attribution.
    pub fn critical_path(&self) -> String {
        let chain = self.critical_chain();
        let mut out = String::new();
        if chain.is_empty() {
            out.push_str("critical path: no full ledgers in trace\n");
            return out;
        }
        let total: u64 = chain.iter().map(|(l, e)| l.total + e).sum();
        let _ = writeln!(out, "critical path: {} hop(s), {} ns end-to-end", chain.len(), total);
        for (l, edge) in &chain {
            if *edge > 0 {
                let _ = writeln!(out, "  | send+encode {edge} ns");
            }
            let phases: Vec<String> = PHASES
                .iter()
                .zip(l.phases)
                .filter(|(_, v)| *v > 0)
                .map(|(n, v)| format!("{n}={v}"))
                .collect();
            let _ = writeln!(
                out,
                "  d{} mid={} born={} total={} ns [{}]",
                l.daemon,
                l.mid,
                l.born,
                l.total,
                phases.join(" ")
            );
        }
        out
    }

    /// The full `msgr profile` report: breakdown, hot spots, critical
    /// path. Deterministic for equal traces.
    pub fn report(&self) -> String {
        let mut out = self.phase_breakdown();
        out.push('\n');
        let folded = self.folded();
        let spots = folded.lines().count();
        let _ = writeln!(out, "vm hot spots: {spots} sampled (prog, func, line) site(s)");
        for line in folded.lines().take(10) {
            let _ = writeln!(out, "  {line}");
        }
        out.push('\n');
        out.push_str(&self.critical_path());
        out
    }
}

/// Fixed-precision fraction formatting (no float-format drift).
fn fmt_frac(f: f64) -> String {
    format!("{:5.1}%", f * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use msgr_trace::TraceEvent;

    fn ledger_ev(daemon: u16, mid: u64, born: u64, parent: u64, phases: [u64; 7]) -> TraceEvent {
        TraceEvent {
            daemon,
            seq: mid,
            rt: mid,
            vt: 0.0,
            gvt: 0.0,
            kind: EventKind::PhaseLedger {
                mid,
                born,
                parent,
                queue: phases[0],
                verify: phases[1],
                exec: phases[2],
                enc: phases[3],
                xport: phases[4],
                park: phases[5],
                stall: phases[6],
                total: phases.iter().sum(),
            },
        }
    }

    fn trace(events: Vec<TraceEvent>) -> Trace {
        Trace { events, dropped: 0, dropped_by: Vec::new() }
    }

    #[test]
    fn fractions_sum_to_one_by_construction() {
        let t = trace(vec![
            ledger_ev(0, 1, 1, 0, [10, 0, 30, 5, 0, 0, 0]),
            ledger_ev(1, 3, 2, 0, [0, 5, 50, 0, 20, 0, 0]),
            ledger_ev(0, 2, 2, 1, [0, 0, 0, 15, 0, 0, 0]),
        ]);
        let p = Profile::from_trace(&t);
        assert_eq!(p.ledgers.len(), 2);
        assert_eq!(p.forks.len(), 1);
        let totals = p.phase_totals();
        assert_eq!(totals.iter().sum::<u64>(), p.attributed_total());
        let text = p.phase_breakdown();
        assert!(text.contains("exec"), "{text}");
    }

    #[test]
    fn critical_path_stitches_across_daemons() {
        // inject on d0 (mid 1) → fork (partial mid 2, parent 1) → full
        // stay on d1 (born 2, retires as mid 2).
        let t = trace(vec![
            ledger_ev(0, 1, 1, 0, [10, 0, 30, 0, 0, 0, 0]),
            ledger_ev(0, 2, 2, 1, [0, 0, 0, 15, 0, 0, 0]),
            ledger_ev(1, 2, 2, 0, [5, 3, 40, 0, 25, 0, 0]),
            // An unrelated, cheaper messenger.
            ledger_ev(1, 9, 9, 0, [0, 0, 12, 0, 0, 0, 0]),
        ]);
        let p = Profile::from_trace(&t);
        let chain = p.critical_chain();
        assert_eq!(chain.len(), 2);
        assert_eq!(chain[0].0.mid, 1);
        assert_eq!(chain[0].1, 0, "root has no inbound edge");
        assert_eq!(chain[1].0.daemon, 1);
        assert_eq!(chain[1].1, 15, "edge carries the fork's encode cost");
        let text = p.critical_path();
        assert!(text.contains("2 hop(s)"), "{text}");
        assert_eq!(40 + 15 + 73, 128);
        assert!(text.contains("128 ns end-to-end"), "{text}");
    }

    #[test]
    fn folded_stacks_sort_hottest_first() {
        let t = trace(vec![
            TraceEvent {
                daemon: 0,
                seq: 1,
                rt: 0,
                vt: 0.0,
                gvt: 0.0,
                kind: EventKind::PcSample { prog: 0xAB, func: 0, line: 7, count: 3 },
            },
            TraceEvent {
                daemon: 1,
                seq: 1,
                rt: 1,
                vt: 0.0,
                gvt: 0.0,
                kind: EventKind::PcSample { prog: 0xAB, func: 0, line: 9, count: 11 },
            },
            TraceEvent {
                daemon: 0,
                seq: 2,
                rt: 2,
                vt: 0.0,
                gvt: 0.0,
                kind: EventKind::PcSample { prog: 0xAB, func: 0, line: 7, count: 4 },
            },
        ]);
        let p = Profile::from_trace(&t);
        let folded = p.folded();
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(
            lines,
            ["prog_00000000000000ab;f0;L9 11", "prog_00000000000000ab;f0;L7 7"],
            "same-site samples aggregate; hottest first"
        );
    }

    #[test]
    fn empty_profile_reports_cleanly() {
        let p = Profile::from_trace(&trace(vec![]));
        assert!(p.is_empty());
        assert!(p.critical_path().contains("no full ledgers"));
        assert_eq!(p.folded(), "");
    }
}
