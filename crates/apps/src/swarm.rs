//! An individual-based simulation — the application family the paper's
//! introduction motivates for persistent logical networks
//! ("individual-based systems, distributed interactive simulations").
//!
//! A swarm of agents random-walks a torus of logical nodes in lock-step
//! virtual time: at every tick each agent deposits into the node it
//! stands on and hops to a neighbor chosen by a deterministic hash of
//! its identity and the tick. This is also the repository's Time-Warp
//! showcase: unlike the tightly synchronized matrix multiplication,
//! the swarm's causality violations are rare and local, so optimistic
//! execution typically *beats* the conservative global-minimum rule.

use msgr_core::config::VtMode;
use msgr_core::topology::LogicalTopology;
use msgr_core::{ClusterConfig, ClusterError, DaemonId, SimCluster};
use msgr_sim::Stats;
use msgr_vm::{Dir, Value};

/// The agent script: deposit, then hop in a pseudo-random direction,
/// once per virtual-time tick.
pub const ANT_SCRIPT: &str = r#"
ant(id, ticks) {
    int t, d;
    node int pheromone;
    for (t = 0; t < ticks; t = t + 1) {
        M_sched_time_abs(t);
        pheromone = pheromone + 1;
        d = (id * 31 + t * 7 + id * t) % 4;
        if (d == 0)      hop(ll = "n"; ldir = +);
        else if (d == 1) hop(ll = "e"; ldir = +);
        else if (d == 2) hop(ll = "s"; ldir = +);
        else             hop(ll = "w"; ldir = +);
    }
}
"#;

/// Scenario parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwarmScene {
    /// Torus side length (cells per dimension).
    pub side: usize,
    /// Number of agents.
    pub ants: i64,
    /// Virtual-time ticks each agent lives.
    pub ticks: i64,
    /// Daemons hosting the torus.
    pub daemons: usize,
}

/// Outcome of a swarm run.
#[derive(Debug, Clone)]
pub struct SwarmRun {
    /// Simulated seconds.
    pub seconds: f64,
    /// Row-major pheromone field (side × side).
    pub field: Vec<i64>,
    /// Counters (`rollbacks`, `gvt_rounds`, …).
    pub stats: Stats,
}

/// The torus topology: each cell has four outgoing directed links named
/// `n`/`e`/`s`/`w`.
pub fn torus(side: usize, daemons: usize) -> LogicalTopology {
    let name = |x: usize, y: usize| Value::str(format!("c{x}_{y}"));
    let mut topo = LogicalTopology::new();
    for y in 0..side {
        for x in 0..side {
            topo.node(name(x, y), DaemonId(((y * side + x) % daemons) as u16));
        }
    }
    for y in 0..side {
        for x in 0..side {
            let east = name((x + 1) % side, y);
            let west = name((x + side - 1) % side, y);
            let north = name(x, (y + side - 1) % side);
            let south = name(x, (y + 1) % side);
            topo.link(name(x, y), north, Value::str("n"), Dir::Forward);
            topo.link(name(x, y), east, Value::str("e"), Dir::Forward);
            topo.link(name(x, y), south, Value::str("s"), Dir::Forward);
            topo.link(name(x, y), west, Value::str("w"), Dir::Forward);
        }
    }
    topo
}

/// Run the swarm in the given virtual-time mode.
///
/// # Errors
///
/// Propagates [`ClusterError`]; messenger faults become
/// `ClusterError::Config`.
pub fn run(scene: SwarmScene, mode: VtMode) -> Result<SwarmRun, ClusterError> {
    let mut cfg = ClusterConfig::new(scene.daemons);
    cfg.vt_mode = mode;
    let mut cluster = SimCluster::new(cfg);
    cluster.build(&torus(scene.side, scene.daemons))?;
    let program = msgr_lang::compile(ANT_SCRIPT).expect("ant script compiles");
    let pid = cluster.register_program(&program);
    for a in 0..scene.ants {
        let home = Value::str(format!(
            "c{}_{}",
            a as usize % scene.side,
            (a as usize / scene.side) % scene.side
        ));
        cluster.inject_at(&home, pid, &[Value::Int(a), Value::Int(scene.ticks)])?;
    }
    let report = cluster.run()?;
    if let Some((mid, err)) = report.faults.first() {
        return Err(ClusterError::Config(format!("messenger {mid} faulted: {err}")));
    }
    let mut field = Vec::with_capacity(scene.side * scene.side);
    for y in 0..scene.side {
        for x in 0..scene.side {
            field.push(
                cluster
                    .node_var_by_name(&Value::str(format!("c{x}_{y}")), "pheromone")
                    .and_then(|v| v.as_int().ok())
                    .unwrap_or(0),
            );
        }
    }
    Ok(SwarmRun { seconds: report.sim_seconds, field, stats: report.stats })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scene() -> SwarmScene {
        SwarmScene { side: 5, ants: 10, ticks: 8, daemons: 4 }
    }

    #[test]
    fn deposits_are_conserved() {
        let run = run(scene(), VtMode::Conservative).unwrap();
        assert_eq!(run.field.iter().sum::<i64>(), 10 * 8);
    }

    #[test]
    fn optimistic_produces_the_identical_field() {
        let cons = run(scene(), VtMode::Conservative).unwrap();
        let opt = run(scene(), VtMode::Optimistic).unwrap();
        assert_eq!(cons.field, opt.field);
        assert!(opt.stats.counter("rollbacks") > 0, "some speculation expected");
    }

    #[test]
    fn torus_has_four_out_links_per_cell() {
        let t = torus(4, 2);
        assert_eq!(t.nodes.len(), 16);
        assert_eq!(t.links.len(), 64);
    }

    #[test]
    fn field_is_deterministic() {
        let a = run(scene(), VtMode::Conservative).unwrap();
        let b = run(scene(), VtMode::Conservative).unwrap();
        assert_eq!(a.field, b.field);
        assert_eq!(a.seconds, b.seconds);
    }
}
