//! Matrix multiplication with PVM — the paper's Fig. 9.
//!
//! `m²` worker tasks, one per block position. Each iteration `k`: the
//! task holding the diagonal block (`j == (i+k) mod m`) multicasts its A
//! block along the row while the others receive it; everyone multiplies;
//! then every task sends its B block to its northern neighbor and
//! receives from the south. Explicit send/receive pairing replaces the
//! virtual-time coordination of the MESSENGERS version.

use std::sync::Arc;

use std::sync::Mutex;

use msgr_pvm::{Buf, Message, PvmNet, PvmSim, PvmSimConfig, Recv, Status, Task, TaskCtx, TaskId};
use msgr_sim::Stats;
use msgr_vm::Matrix;

use crate::calib::Calib;
use crate::matmul::{multiply_accumulate, BlockedLayout, MatmulScene};

const TAG_START: i32 = 10;
/// Iteration-stamped tags keep rounds separate (`TAG + k`).
const TAG_A_BASE: i32 = 100;
const TAG_B_BASE: i32 = 10_000;
const TAG_DONE: i32 = 3;

fn pack_block(buf: &mut Buf, m: &Matrix) {
    buf.pack_ints(&[m.rows() as i64, m.cols() as i64]);
    buf.pack_floats(m.as_slice());
}

fn unpack_block(buf: &mut Buf) -> Matrix {
    let dims = buf.unpack_ints().expect("block dims");
    let data = buf.unpack_floats().expect("block data");
    Matrix::from_vec(dims[0] as u32, dims[1] as u32, data)
}

/// Outcome of a PVM matmul run.
#[derive(Debug, Clone)]
pub struct MatmulPvmRun {
    /// Simulated seconds.
    pub seconds: f64,
    /// Assembled product.
    pub product: Matrix,
    /// Counters.
    pub stats: Stats,
}

enum Phase {
    AwaitStart,
    AwaitA { k: u32 },
    AwaitB { k: u32 },
}

struct Worker {
    scene: MatmulScene,
    calib: Calib,
    i: u32,
    j: u32,
    block_a: Matrix,
    block_b: Matrix,
    block_c: Matrix,
    curr_a: Option<Matrix>,
    tids: Vec<TaskId>, // all workers, row-major
    manager: TaskId,
    phase: Phase,
    out: Arc<Mutex<Vec<Option<Matrix>>>>,
}

impl Worker {
    fn row_tid(&self, j: u32) -> TaskId {
        self.tids[(self.i * self.scene.m + j) as usize]
    }

    fn north_tid(&self) -> TaskId {
        let m = self.scene.m;
        self.tids[(((self.i + m - 1) % m) * m + self.j) as usize]
    }

    fn south_tid(&self) -> TaskId {
        let m = self.scene.m;
        self.tids[(((self.i + 1) % m) * m + self.j) as usize]
    }

    /// Begin iteration `k`: multicast or await the row's A block
    /// (lines 10-14 of Fig. 9).
    fn start_iteration(&mut self, ctx: &mut TaskCtx<'_>, k: u32) -> Status {
        let m = self.scene.m;
        if k >= m {
            // Done: report C home for verification (cheap control
            // message; the paper leaves C distributed in both systems).
            let mut b = Buf::new();
            b.pack_int((self.i * m + self.j) as i64);
            ctx.send(self.manager, TAG_DONE, b);
            self.out.lock().unwrap()[(self.i * m + self.j) as usize] = Some(self.block_c.clone());
            return Status::Exit;
        }
        if self.j == (self.i + k) % m {
            // This task owns the diagonal block: multicast along the row.
            let others: Vec<TaskId> =
                (0..m).filter(|&jj| jj != self.j).map(|jj| self.row_tid(jj)).collect();
            let mut b = Buf::new();
            pack_block(&mut b, &self.block_a);
            if !others.is_empty() {
                ctx.mcast(&others, TAG_A_BASE + k as i32, b);
            }
            self.curr_a = Some(self.block_a.clone());
            self.multiply_and_rotate(ctx, k)
        } else {
            self.phase = Phase::AwaitA { k };
            Status::Recv(Recv::tag(TAG_A_BASE + k as i32))
        }
    }

    /// Lines 15-17: multiply, rotate B.
    fn multiply_and_rotate(&mut self, ctx: &mut TaskCtx<'_>, k: u32) -> Status {
        let a = self.curr_a.take().expect("A block present");
        ctx.charge(self.calib.block_multiply_ns(self.scene.s));
        multiply_accumulate(&mut self.block_c, &a, &self.block_b);
        let mut b = Buf::new();
        pack_block(&mut b, &self.block_b);
        ctx.send(self.north_tid(), TAG_B_BASE + k as i32, b);
        self.phase = Phase::AwaitB { k };
        Status::Recv(Recv::from_tag(self.south_tid(), TAG_B_BASE + k as i32))
    }
}

impl Task for Worker {
    fn resume(&mut self, ctx: &mut TaskCtx<'_>, msg: Option<Message>) -> Status {
        match (&self.phase, msg) {
            (Phase::AwaitStart, None) => Status::Recv(Recv::tag(TAG_START)),
            (Phase::AwaitStart, Some(mut m)) => {
                let raw = m.buf.unpack_ints().expect("tid table");
                self.tids = raw.into_iter().map(|t| TaskId(t as u32)).collect();
                self.start_iteration(ctx, 0)
            }
            (Phase::AwaitA { k }, Some(mut m)) => {
                let k = *k;
                self.curr_a = Some(unpack_block(&mut m.buf));
                self.multiply_and_rotate(ctx, k)
            }
            (Phase::AwaitB { k }, Some(mut m)) => {
                let k = *k;
                self.block_b = unpack_block(&mut m.buf);
                self.start_iteration(ctx, k + 1)
            }
            (_, None) => unreachable!("worker resumed without a message"),
        }
    }
}

struct Manager {
    scene: MatmulScene,
    calib: Calib,
    a: Matrix,
    b: Matrix,
    workers: Vec<TaskId>,
    done: u32,
    out: Arc<Mutex<Vec<Option<Matrix>>>>,
}

impl Task for Manager {
    fn resume(&mut self, ctx: &mut TaskCtx<'_>, msg: Option<Message>) -> Status {
        let m = self.scene.m;
        if self.workers.is_empty() {
            let layout = BlockedLayout::new(self.scene);
            for i in 0..m {
                for j in 0..m {
                    let host = ((i * m + j) as usize) % ctx.nhosts();
                    let w = ctx.spawn_on(
                        host,
                        Box::new(Worker {
                            scene: self.scene,
                            calib: self.calib,
                            i,
                            j,
                            block_a: layout.block(&self.a, i, j),
                            block_b: layout.block(&self.b, i, j),
                            block_c: Matrix::zeros(self.scene.s, self.scene.s),
                            curr_a: None,
                            tids: Vec::new(),
                            manager: ctx.mytid(),
                            phase: Phase::AwaitStart,
                            out: self.out.clone(),
                        }),
                    );
                    self.workers.push(w);
                }
            }
            // Hand every worker the task table (PVM's group service).
            let table: Vec<i64> = self.workers.iter().map(|t| t.0 as i64).collect();
            for w in self.workers.clone() {
                let mut b = Buf::new();
                b.pack_ints(&table);
                ctx.send(w, TAG_START, b);
            }
            return Status::Recv(Recv::tag(TAG_DONE));
        }
        let _ = msg.expect("DONE message");
        self.done += 1;
        if self.done == m * m {
            Status::Exit
        } else {
            Status::Recv(Recv::tag(TAG_DONE))
        }
    }
}

/// Run the Fig. 9 program on `procs` simulated hosts (the paper uses
/// `m²`). Worker startup is pre-measurement (spawn cost zeroed): the
/// paper times the multiplication phase.
///
/// # Errors
///
/// Propagates [`msgr_pvm::PvmError`].
pub fn run_sim(
    scene: MatmulScene,
    a: &Matrix,
    b: &Matrix,
    calib: &Calib,
    procs: usize,
    net: PvmNet,
    cpu_speed: f64,
) -> Result<MatmulPvmRun, msgr_pvm::PvmError> {
    let mut cfg = PvmSimConfig::new(procs);
    cfg.net = net;
    cfg.cpu_speed = cpu_speed;
    cfg.costs.spawn_ns = 0; // workers pre-started; measure the compute phase
    let mut vm = PvmSim::new(cfg);
    let out = Arc::new(Mutex::new(vec![None; (scene.m * scene.m) as usize]));
    vm.root(Box::new(Manager {
        scene,
        calib: *calib,
        a: a.clone(),
        b: b.clone(),
        workers: Vec::new(),
        done: 0,
        out: out.clone(),
    }));
    let report = vm.run()?;
    let blocks: Vec<Matrix> =
        out.lock().unwrap().iter().map(|o| o.clone().expect("all workers reported")).collect();
    let layout = BlockedLayout::new(scene);
    Ok(MatmulPvmRun {
        seconds: report.sim_seconds,
        product: layout.assemble(&blocks),
        stats: report.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matmul::{max_abs_diff, multiply_reference, test_matrix};

    fn verify(m: u32, s: u32, procs: usize) -> MatmulPvmRun {
        let scene = MatmulScene::new(m, s);
        let a = test_matrix(scene.n(), 1);
        let b = test_matrix(scene.n(), 2);
        let run =
            run_sim(scene, &a, &b, &Calib::default(), procs, PvmNet::Ethernet100, 1.0).unwrap();
        let reference = multiply_reference(&a, &b);
        assert!(max_abs_diff(&run.product, &reference) < 1e-9, "product mismatch for {m}x{m} grid");
        run
    }

    #[test]
    fn product_correct_2x2() {
        let run = verify(2, 6, 4);
        assert!(run.seconds > 0.0);
        assert_eq!(run.stats.counter("spawns"), 4);
    }

    #[test]
    fn product_correct_3x3() {
        verify(3, 5, 9);
    }

    #[test]
    fn product_correct_on_fewer_hosts() {
        verify(3, 4, 4);
    }

    #[test]
    fn trivial_1x1_grid() {
        // No multicast, B "rotates" to itself.
        verify(1, 8, 1);
    }

    #[test]
    fn message_volume_scales_with_m() {
        let r2 = verify(2, 4, 4);
        let r3 = verify(3, 4, 9);
        assert!(
            r3.stats.counter("message_bytes") > r2.stats.counter("message_bytes"),
            "3x3 should move more data"
        );
    }
}
