//! Mandelbrot with MESSENGERS — the paper's Fig. 3.
//!
//! One script, no manager: `create(ALL)` clones the injected messenger
//! into a worker on every daemon; each worker shuttles between its own
//! node and the central `init` node over `$last`, pulling tasks with
//! `next_task()` and depositing results — "the workers are able to
//! coordinate themselves and hence a separate manager is unnecessary"
//! (§3.1). The non-preemptive scheduling policy makes `next_task()`
//! atomic without locks.

use std::sync::Arc;

use msgr_vm::bytes::Bytes;
use std::sync::Mutex;

use msgr_core::{ClusterConfig, ClusterError, SimCluster, ThreadCluster};
use msgr_sim::Stats;
use msgr_vm::Value;

use crate::calib::Calib;
use crate::mandel::{mandel_iters, MandelScene, MandelWork};

/// The Fig. 3 script, verbatim modulo MSGR-C surface syntax.
pub const MANAGER_WORKER_SCRIPT: &str = r#"
manager_worker() {
    block task, res;
    create(ALL);
    hop(ll = $last);
    while ((task = next_task()) != NULL) {
        hop(ll = $last);
        res = compute(task);
        hop(ll = $last);
        deposit(res);
    }
}
"#;

/// Outcome of one Mandelbrot run.
#[derive(Debug, Clone)]
pub struct MandelRun {
    /// Runtime in seconds (simulated for [`run_sim`], wall-clock for
    /// [`run_threads`]).
    pub seconds: f64,
    /// Checksum of the assembled image (compare with the sequential
    /// baseline).
    pub checksum: u64,
    /// Execution counters.
    pub stats: Stats,
    /// Merged flight-recorder trace (present iff `cfg.trace.enabled`).
    pub trace: Option<msgr_core::Trace>,
}

fn parse_task(v: &Value) -> Result<u32, String> {
    v.as_int().map(|i| i as u32).map_err(|e| e.to_string())
}

/// Run on the simulation platform with `procs` daemons. The work table
/// supplies real per-block iteration counts; compute time is charged to
/// the worker's host, and the image is reassembled and checksummed.
///
/// # Errors
///
/// Propagates [`ClusterError`] from the cluster run.
pub fn run_sim(
    work: &Arc<MandelWork>,
    procs: usize,
    calib: &Calib,
    mut cfg: ClusterConfig,
) -> Result<MandelRun, ClusterError> {
    cfg.daemons = procs;
    let mut cluster = SimCluster::new(cfg);
    let scene = work.scene;
    let image = Arc::new(Mutex::new(vec![0u8; (scene.size * scene.size) as usize]));

    cluster.register_native("next_task", move |ctx, _args| {
        ctx.charge(2_000);
        let next = ctx.node_var("next_block").as_int().unwrap_or(0) as u32;
        if next >= scene.blocks() {
            return Ok(Value::Null);
        }
        ctx.set_node_var("next_block", Value::Int(next as i64 + 1));
        Ok(Value::Int(next as i64))
    });

    {
        let work = work.clone();
        let calib = *calib;
        cluster.register_native("compute", move |ctx, args| {
            let idx = parse_task(args.first().ok_or("compute needs a task")?)?;
            let iters = *work
                .block_iters
                .get(idx as usize)
                .ok_or_else(|| format!("block {idx} out of range"))?;
            ctx.charge(calib.mandel_ns(iters, scene.block_pixels() as u64));
            let mut payload = Vec::with_capacity(4 + work.block_payload(idx).len());
            payload.extend_from_slice(&idx.to_le_bytes());
            payload.extend_from_slice(&work.block_payload(idx));
            Ok(Value::Blob(Bytes::from(payload)))
        });
    }

    {
        let image = image.clone();
        cluster.register_native("deposit", move |ctx, args| {
            let blob = args
                .first()
                .ok_or("deposit needs a result")?
                .as_blob()
                .map_err(|e| e.to_string())?;
            // One copy into the result area.
            ctx.charge(blob.len() as u64 * 25);
            let idx = u32::from_le_bytes(blob[..4].try_into().expect("blob header"));
            MandelWork::deposit_payload(&scene, &mut image.lock().unwrap(), idx, &blob[4..]);
            Ok(Value::Null)
        });
    }

    let program =
        msgr_lang::compile(MANAGER_WORKER_SCRIPT).expect("manager/worker script compiles");
    let pid = cluster.register_program(&program);
    cluster.trace_span_begin("mandel.inject");
    cluster.inject(0, pid, &[])?;
    cluster.trace_span_end("mandel.inject");
    let report = cluster.run()?;
    if let Some((mid, err)) = report.faults.first() {
        return Err(ClusterError::Config(format!("messenger {mid} faulted: {err}")));
    }
    let image = image.lock().unwrap();
    Ok(MandelRun {
        seconds: report.sim_seconds,
        checksum: MandelWork::checksum(&image),
        stats: report.stats,
        trace: report.trace,
    })
}

/// Run on the threaded platform: the Mandelbrot kernel genuinely
/// executes inside `compute` native calls on worker threads.
///
/// # Errors
///
/// Propagates [`ClusterError`] from the cluster run.
pub fn run_threads(scene: MandelScene, procs: usize) -> Result<MandelRun, ClusterError> {
    let mut cluster = ThreadCluster::new(ClusterConfig::new(procs))?;
    let image = Arc::new(Mutex::new(vec![0u8; (scene.size * scene.size) as usize]));

    cluster.register_native("next_task", move |ctx, _args| {
        let next = ctx.node_var("next_block").as_int().unwrap_or(0) as u32;
        if next >= scene.blocks() {
            return Ok(Value::Null);
        }
        ctx.set_node_var("next_block", Value::Int(next as i64 + 1));
        Ok(Value::Int(next as i64))
    });

    cluster.register_native("compute", move |_ctx, args| {
        let idx = parse_task(args.first().ok_or("compute needs a task")?)?;
        let bs = scene.block_side();
        let (ox, oy) = scene.block_origin(idx);
        let mut payload = Vec::with_capacity(4 + (bs * bs) as usize);
        payload.extend_from_slice(&idx.to_le_bytes());
        let (w, h) = (scene.size as f64, scene.size as f64);
        for dy in 0..bs {
            for dx in 0..bs {
                let px = ox + dx;
                let py = oy + dy;
                let cx =
                    scene.region.x0 + (px as f64 + 0.5) / w * (scene.region.x1 - scene.region.x0);
                let cy =
                    scene.region.y0 + (py as f64 + 0.5) / h * (scene.region.y1 - scene.region.y0);
                let v = mandel_iters(cx, cy, scene.max_iter) as u16;
                payload.push(MandelWork::color(v));
            }
        }
        Ok(Value::Blob(Bytes::from(payload)))
    });

    {
        let image = image.clone();
        cluster.register_native("deposit", move |_ctx, args| {
            let blob = args
                .first()
                .ok_or("deposit needs a result")?
                .as_blob()
                .map_err(|e| e.to_string())?;
            let idx = u32::from_le_bytes(blob[..4].try_into().expect("blob header"));
            MandelWork::deposit_payload(&scene, &mut image.lock().unwrap(), idx, &blob[4..]);
            Ok(Value::Null)
        });
    }

    let program =
        msgr_lang::compile(MANAGER_WORKER_SCRIPT).expect("manager/worker script compiles");
    let pid = cluster.register_program(&program);
    cluster.inject(0, pid, &[])?;
    let report = cluster.run()?;
    if let Some((mid, err)) = report.faults.first() {
        return Err(ClusterError::Config(format!("messenger {mid} faulted: {err}")));
    }
    let image = image.lock().unwrap();
    Ok(MandelRun {
        seconds: report.wall_seconds,
        checksum: MandelWork::checksum(&image),
        stats: report.stats,
        trace: report.trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mandel::render_sequential;
    use msgr_core::config::NetKind;

    fn tiny_work() -> Arc<MandelWork> {
        Arc::new(MandelWork::compute(MandelScene::paper(64, 4)))
    }

    #[test]
    fn sim_image_matches_sequential() {
        let work = tiny_work();
        let calib = Calib::default();
        let (_, expected) = render_sequential(&work, &calib);
        let run = run_sim(&work, 4, &calib, ClusterConfig::new(4)).unwrap();
        assert_eq!(run.checksum, expected);
        assert!(run.seconds > 0.0);
        // 16 blocks, each shuttling twice over the spoke.
        assert!(run.stats.counter("hops") >= 32);
    }

    #[test]
    fn sim_single_processor_works() {
        let work = tiny_work();
        let calib = Calib::default();
        let (_, expected) = render_sequential(&work, &calib);
        let run = run_sim(&work, 1, &calib, ClusterConfig::new(1)).unwrap();
        assert_eq!(run.checksum, expected);
    }

    #[test]
    fn more_processors_do_not_change_the_image() {
        let work = tiny_work();
        let calib = Calib::default();
        let mut cfg = ClusterConfig::new(1);
        cfg.net = NetKind::Ideal;
        let c1 = run_sim(&work, 2, &calib, cfg.clone()).unwrap().checksum;
        let c2 = run_sim(&work, 8, &calib, cfg).unwrap().checksum;
        assert_eq!(c1, c2);
    }

    #[test]
    fn parallelism_speeds_up_the_sim() {
        let work = Arc::new(MandelWork::compute(MandelScene::paper(128, 8)));
        let calib = Calib::default();
        let t1 = run_sim(&work, 1, &calib, ClusterConfig::new(1)).unwrap().seconds;
        let t8 = run_sim(&work, 8, &calib, ClusterConfig::new(8)).unwrap().seconds;
        assert!(t8 < t1, "8 procs ({t8}) should beat 1 ({t1})");
    }

    #[test]
    fn sim_survives_permanent_worker_kill() {
        use msgr_sim::{CrashEvent, FaultPlan, MILLI};
        let work = tiny_work();
        let calib = Calib::default();
        let (_, expected) = render_sequential(&work, &calib);
        let mut cfg = ClusterConfig::new(4);
        cfg.seed = 7;
        cfg.faults =
            FaultPlan { crashes: vec![CrashEvent::kill(2, 3 * MILLI)], ..FaultPlan::none() };
        let run = run_sim(&work, 4, &calib, cfg.clone()).unwrap();
        // The image must be exact despite losing a worker daemon:
        // failover restores its node and replays uncheckpointed blocks
        // (deposits are idempotent, so replay cannot corrupt the image).
        assert_eq!(run.checksum, expected);
        assert_eq!(run.stats.counter("kills"), 1);
        assert_eq!(run.stats.counter("restores"), 1);
        assert!(run.stats.counter("checkpoints") > 0);
        // Bit-reproducible: the same seed replays the same recovery.
        let again = run_sim(&work, 4, &calib, cfg.clone()).unwrap();
        assert_eq!(again.checksum, run.checksum);
        assert_eq!(again.seconds.to_bits(), run.seconds.to_bits());
        // Failover must be indifferent to execution lanes and frame
        // batching: a batch retransmits as a unit, so the kill loses
        // whole batches, and replay still restores the exact image.
        let mut sharded = cfg;
        sharded.lanes = 4;
        sharded.batch = msgr_core::BatchPolicy::on();
        let r = run_sim(&work, 4, &calib, sharded).unwrap();
        assert_eq!(r.checksum, expected, "lanes+batching must not change the recovered image");
        assert_eq!(r.stats.counter("kills"), 1);
        assert_eq!(r.stats.counter("restores"), 1);
    }

    #[test]
    fn sim_survives_killing_worker_and_its_replica_holder() {
        use msgr_sim::{CrashEvent, FaultPlan, MILLI};
        let work = tiny_work();
        let calib = Calib::default();
        let (_, expected) = render_sequential(&work, &calib);
        let mut cfg = ClusterConfig::new(6);
        cfg.seed = 7;
        cfg.replication = 2;
        // Daemon 3 is daemon 2's ring successor — the first holder of
        // its checkpoint replicas and the natural heir. Killing both
        // before either death is even detected leaves only the second
        // holder's copy, which k = 2 write-ahead replication put there
        // before any of daemon 2's effects were released.
        cfg.faults = FaultPlan {
            crashes: vec![CrashEvent::kill(2, 3 * MILLI), CrashEvent::kill(3, 5 * MILLI)],
            ..FaultPlan::none()
        };
        let run = run_sim(&work, 6, &calib, cfg.clone()).unwrap();
        assert_eq!(run.checksum, expected, "the double fault must not corrupt the image");
        assert_eq!(run.stats.counter("kills"), 2);
        assert_eq!(run.stats.counter("restores"), 2);
        assert!(run.stats.counter("ckpt_replicas") > 0, "k = 2 must push replicas");
        // Bit-reproducible: the same seed replays the same double recovery.
        let again = run_sim(&work, 6, &calib, cfg).unwrap();
        assert_eq!(again.checksum, run.checksum);
        assert_eq!(again.seconds.to_bits(), run.seconds.to_bits());
    }

    #[test]
    fn threads_compute_the_real_image() {
        let scene = MandelScene::paper(64, 4);
        let work = MandelWork::compute(scene);
        let run = run_threads(scene, 4).unwrap();
        assert_eq!(run.checksum, MandelWork::checksum(&work.color_image()));
    }
}
