//! Matrix multiplication with MESSENGERS — the paper's Fig. 11.
//!
//! Two independent scripts, coordinated purely by global virtual time:
//! `distribute_A` messengers embody the A blocks and wake at integer
//! ticks to replicate along their row; `rotate_B` messengers embody the
//! B blocks, multiply at every half tick, and hop up their column ring.
//! The logical network is the Fig. 10 grid built by the `net_builder`
//! service ([`msgr_core::LogicalTopology::grid`]).
//!
//! Two divergences from the paper's listing (see DESIGN.md §4):
//!
//! 1. Fig. 11 as printed never assigns `curr_A` at the *origin* node of
//!    a distribution (the hop replicates only to the other row members),
//!    yet the algorithm needs the diagonal block at its own node. We set
//!    `curr_A` at the origin before hopping.
//! 2. Fig. 11 line 10 reads `M_sched_time_dlt(.5)`, which would wake
//!    `rotate_B` at 0.5, 1.0, 1.5, … — colliding with `distribute_A`'s
//!    integer-tick writes at every *even* iteration. The paper's prose
//!    says rotate_B wakes "at time 0.5 + k" (§3.2), so we schedule
//!    `M_sched_time_abs(k + 0.5)`.

use msgr_core::topology::LogicalTopology;
use msgr_core::{ClusterConfig, ClusterError, SimCluster};
use msgr_sim::Stats;
use msgr_vm::{Matrix, Value};

use crate::calib::Calib;
use crate::matmul::{BlockedLayout, MatmulScene};

/// The Fig. 11 scripts (both messengers in one compilation unit;
/// injection selects the entry function).
pub const MATMUL_SCRIPTS: &str = r#"
distribute_A(s, m, i, j) {
    block msgr_A;
    node block resid_A, curr_A;
    M_sched_time_abs((j - i + m) % m);
    msgr_A = copy_block(resid_A);
    curr_A = copy_block(msgr_A);   /* the origin needs its own block too */
    hop(ll = "row");
    curr_A = copy_block(msgr_A);
}

rotate_B(s, m, i, j) {
    int k;
    block msgr_B;
    node block resid_B, curr_A, C;
    msgr_B = copy_block(resid_B);
    for (k = 0; k < m; k = k + 1) {
        M_sched_time_abs(k + 0.5); /* synchronization: wake at k + 0.5 */
        C = block_multiply(msgr_B, curr_A, C);
        hop(ll = "column"; ldir = +);   /* rotate B to row i-1 */
    }
}
"#;

/// Outcome of a MESSENGERS matmul run.
#[derive(Debug, Clone)]
pub struct MatmulRun {
    /// Simulated seconds.
    pub seconds: f64,
    /// The assembled product matrix.
    pub product: Matrix,
    /// Counters (includes `gvt_rounds`, `rollbacks` in optimistic mode).
    pub stats: Stats,
    /// Merged flight-recorder trace (present iff `cfg.trace.enabled`).
    pub trace: Option<msgr_core::Trace>,
}

/// Run the Fig. 11 program: `m × m` grid on `cfg.daemons` daemons
/// (the paper uses m² daemons, one block per processor).
///
/// # Errors
///
/// Propagates [`ClusterError`]; faults become `ClusterError::Config`.
pub fn run_sim(
    scene: MatmulScene,
    a: &Matrix,
    b: &Matrix,
    calib: &Calib,
    cfg: ClusterConfig,
) -> Result<MatmulRun, ClusterError> {
    let m = scene.m;
    let s = scene.s;
    let layout = BlockedLayout::new(scene);
    let mut cluster = SimCluster::new(cfg);

    {
        let calib = *calib;
        cluster.register_native("copy_block", move |ctx, args| {
            let v = args.first().ok_or("copy_block needs an argument")?;
            let mat = v.as_matrix().map_err(|e| e.to_string())?;
            ctx.charge(mat.wire_bytes() * calib.flop_ns as u64 / 55); // ~1 memcpy
            Ok(Value::Mat(mat.deep_copy()))
        });
    }
    {
        let calib = *calib;
        cluster.register_native("block_multiply", move |ctx, args| {
            // Script order (Fig. 11): block_multiply(msgr_B, curr_A, C)
            // computes C + curr_A · msgr_B.
            let b_blk = args[0].as_matrix().map_err(|e| e.to_string())?;
            // Under optimistic execution a premature multiply may see a
            // not-yet-written curr_A (NULL); compute with zeros — the
            // straggler write will roll this event back and redo it.
            let zero_a;
            let a_blk = match &args[1] {
                Value::Mat(a) => a,
                Value::Null => {
                    zero_a = Matrix::zeros(b_blk.rows(), b_blk.rows());
                    &zero_a
                }
                other => return Err(format!("A must be a block, got {}", other.type_name())),
            };
            let mut c_blk = match &args[2] {
                Value::Mat(c) => c.clone(),
                Value::Null => Matrix::zeros(a_blk.rows(), b_blk.cols()),
                other => return Err(format!("C must be a block, got {}", other.type_name())),
            };
            ctx.charge(calib.block_multiply_ns(a_blk.rows()));
            crate::matmul::multiply_accumulate(&mut c_blk, a_blk, b_blk);
            Ok(Value::Mat(c_blk))
        });
    }

    cluster.build(&LogicalTopology::grid(m as usize, cluster.daemons()))?;
    // Pre-distribute the resident blocks ("we assume that the matrices
    // are already distributed over the network", §3.2) and zero C.
    for i in 0..m {
        for j in 0..m {
            let node = Value::str(format!("{i},{j}"));
            cluster.set_node_var(&node, "resid_A", Value::Mat(layout.block(a, i, j)))?;
            cluster.set_node_var(&node, "resid_B", Value::Mat(layout.block(b, i, j)))?;
            cluster.set_node_var(&node, "C", Value::Mat(Matrix::zeros(s, s)))?;
        }
    }

    let dist = msgr_lang::compile_with_entry(MATMUL_SCRIPTS, "distribute_A")
        .expect("distribute_A compiles");
    let rot = msgr_lang::compile_with_entry(MATMUL_SCRIPTS, "rotate_B").expect("rotate_B compiles");
    let dist_id = cluster.register_program(&dist);
    let rot_id = cluster.register_program(&rot);
    cluster.trace_span_begin("matmul.inject");
    for i in 0..m {
        for j in 0..m {
            let node = Value::str(format!("{i},{j}"));
            let args = [
                Value::Int(s as i64),
                Value::Int(m as i64),
                Value::Int(i as i64),
                Value::Int(j as i64),
            ];
            cluster.inject_at(&node, dist_id, &args)?;
            cluster.inject_at(&node, rot_id, &args)?;
        }
    }
    cluster.trace_span_end("matmul.inject");

    let report = cluster.run()?;
    if let Some((mid, err)) = report.faults.first() {
        return Err(ClusterError::Config(format!("messenger {mid} faulted: {err}")));
    }
    let mut blocks = Vec::with_capacity((m * m) as usize);
    for i in 0..m {
        for j in 0..m {
            let node = Value::str(format!("{i},{j}"));
            let c = cluster
                .node_var_by_name(&node, "C")
                .ok_or_else(|| ClusterError::NotFound(format!("C at {node}")))?;
            match c {
                Value::Mat(mat) => blocks.push(mat),
                other => {
                    return Err(ClusterError::Config(format!(
                        "C at {node} is {}, expected block",
                        other.type_name()
                    )))
                }
            }
        }
    }
    Ok(MatmulRun {
        seconds: report.sim_seconds,
        product: layout.assemble(&blocks),
        stats: report.stats,
        trace: report.trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matmul::{max_abs_diff, multiply_reference, test_matrix};
    use msgr_core::config::{NetKind, VtMode};

    fn run_scene(m: u32, s: u32, mode: VtMode) -> (Matrix, Matrix, Stats) {
        let scene = MatmulScene::new(m, s);
        let a = test_matrix(scene.n(), 1);
        let b = test_matrix(scene.n(), 2);
        let mut cfg = ClusterConfig::new((m * m) as usize);
        cfg.net = NetKind::Ideal;
        cfg.vt_mode = mode;
        let run = run_sim(scene, &a, &b, &Calib::default(), cfg).unwrap();
        let reference = multiply_reference(&a, &b);
        (run.product, reference, run.stats)
    }

    #[test]
    fn conservative_2x2_computes_the_product() {
        let (product, reference, stats) = run_scene(2, 6, VtMode::Conservative);
        assert!(max_abs_diff(&product, &reference) < 1e-9);
        assert!(stats.counter("gvt_rounds") > 0, "GVT must have driven the alternation");
    }

    #[test]
    fn conservative_3x3_computes_the_product() {
        let (product, reference, _) = run_scene(3, 5, VtMode::Conservative);
        assert!(max_abs_diff(&product, &reference) < 1e-9);
    }

    #[test]
    fn optimistic_matches_conservative() {
        let (p_cons, reference, _) = run_scene(2, 4, VtMode::Conservative);
        let (p_opt, _, _) = run_scene(2, 4, VtMode::Optimistic);
        assert!(max_abs_diff(&p_cons, &reference) < 1e-9);
        assert!(max_abs_diff(&p_opt, &reference) < 1e-9);
        assert!(max_abs_diff(&p_opt, &p_cons) < 1e-12);
    }

    #[test]
    fn grid_on_fewer_daemons_still_correct() {
        // 3x3 grid squeezed onto 4 daemons.
        let scene = MatmulScene::new(3, 4);
        let a = test_matrix(scene.n(), 3);
        let b = test_matrix(scene.n(), 4);
        let mut cfg = ClusterConfig::new(4);
        cfg.net = NetKind::Ideal;
        let run = run_sim(scene, &a, &b, &Calib::default(), cfg).unwrap();
        assert!(max_abs_diff(&run.product, &multiply_reference(&a, &b)) < 1e-9);
    }

    #[test]
    fn survives_permanent_worker_kill() {
        use msgr_sim::{CrashEvent, FaultPlan, MILLI};
        let scene = MatmulScene::new(2, 4);
        let a = test_matrix(scene.n(), 1);
        let b = test_matrix(scene.n(), 2);
        let mut cfg = ClusterConfig::new(4);
        cfg.seed = 11;
        cfg.faults =
            FaultPlan { crashes: vec![CrashEvent::kill(3, 2 * MILLI)], ..FaultPlan::none() };
        let run = run_sim(scene, &a, &b, &Calib::default(), cfg.clone()).unwrap();
        // The GVT-synchronized alternation must survive the membership
        // change: the dead daemon's grid nodes fail over, the cut
        // continues with the survivors, and the product stays exact.
        assert!(max_abs_diff(&run.product, &multiply_reference(&a, &b)) < 1e-9);
        assert_eq!(run.stats.counter("kills"), 1);
        assert_eq!(run.stats.counter("restores"), 1);
        // Bit-reproducible: the same seed replays the same recovery.
        let again = run_sim(scene, &a, &b, &Calib::default(), cfg.clone()).unwrap();
        assert_eq!(again.seconds.to_bits(), run.seconds.to_bits());
        assert!(max_abs_diff(&again.product, &run.product) == 0.0);
        // Failover must be indifferent to execution lanes and frame
        // batching: whole batches are lost and replayed as units, and
        // the GVT cut still yields the exact product.
        let mut sharded = cfg;
        sharded.lanes = 4;
        sharded.batch = msgr_core::BatchPolicy::on();
        let r = run_sim(scene, &a, &b, &Calib::default(), sharded).unwrap();
        assert!(max_abs_diff(&r.product, &multiply_reference(&a, &b)) < 1e-9);
        assert_eq!(r.stats.counter("kills"), 1);
        assert_eq!(r.stats.counter("restores"), 1);
    }

    #[test]
    fn survives_killing_worker_and_its_replica_holder() {
        use msgr_sim::{CrashEvent, FaultPlan, MILLI};
        let scene = MatmulScene::new(2, 4);
        let a = test_matrix(scene.n(), 5);
        let b = test_matrix(scene.n(), 6);
        let mut cfg = ClusterConfig::new(6);
        cfg.seed = 11;
        cfg.replication = 2;
        // Daemon 3 holds daemon 2's checkpoint replicas and is its
        // natural heir; both die before either death is detected, so
        // recovery must come off the second holder's write-ahead copy
        // and the quorum must re-decide around the dead heir.
        cfg.faults = FaultPlan {
            crashes: vec![CrashEvent::kill(2, 2 * MILLI), CrashEvent::kill(3, 4 * MILLI)],
            ..FaultPlan::none()
        };
        let run = run_sim(scene, &a, &b, &Calib::default(), cfg.clone()).unwrap();
        assert!(max_abs_diff(&run.product, &multiply_reference(&a, &b)) < 1e-9);
        assert_eq!(run.stats.counter("kills"), 2);
        assert_eq!(run.stats.counter("restores"), 2);
        assert!(run.stats.counter("ckpt_replicas") > 0, "k = 2 must push replicas");
        // Bit-reproducible: the same seed replays the same double recovery.
        let again = run_sim(scene, &a, &b, &Calib::default(), cfg).unwrap();
        assert_eq!(again.seconds.to_bits(), run.seconds.to_bits());
        assert!(max_abs_diff(&again.product, &run.product) == 0.0);
    }

    #[test]
    fn bigger_blocks_take_longer() {
        let calib = Calib::default();
        let t = |s: u32| {
            let scene = MatmulScene::new(2, s);
            let a = test_matrix(scene.n(), 1);
            let b = test_matrix(scene.n(), 2);
            run_sim(scene, &a, &b, &calib, ClusterConfig::new(4)).unwrap().seconds
        };
        assert!(t(16) < t(48));
    }
}
