//! The programming-style comparison (§3.1.1, §3.2.1): program sizes.
//!
//! The paper argues the MESSENGERS programs are "considerably shorter"
//! because the data-centric formulation eliminates the manager and the
//! send/receive pairing. We reproduce the measurement over our own
//! implementations: the MSGR-C scripts (executable, not pseudo-code)
//! versus the PVM programs' coordination logic.

/// Non-blank, non-comment source line count.
pub fn effective_lines(source: &str) -> usize {
    source
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .filter(|l| !l.starts_with("//") && !l.starts_with("/*") && !l.starts_with('*'))
        .count()
}

/// A row of the code-size comparison table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodeSizeRow {
    /// Application name.
    pub app: &'static str,
    /// Lines of the MESSENGERS script (executable MSGR-C).
    pub messengers_lines: usize,
    /// Lines of the paper's PVM pseudo-code for the same logic.
    pub pvm_lines: usize,
    /// Lines of our *executable* PVM implementation (this repository's
    /// state machines) — the paper's point that "a lot of detail would
    /// have to be added to make this program run under PVM".
    pub pvm_real_lines: usize,
}

/// The paper's Fig. 2 (manager/worker in message-passing pseudo-code).
pub const FIG2_PVM_PSEUDOCODE: &str = r#"
manager() {
    for (i = 0; i < ntask; i++)
        worker[i] = spawn(worker_func);
    for (i = 0; i < ntask; i++)
        send(worker[i], next_task());
    while (tasks_available) {
        res = recv(any_worker);
        i = who_sent(res);
        send(worker[i], next_task());
        deposit(res);
    }
    for (i = 0; i < ntask; i++) {
        res = recv(any_worker);
        i = who_sent(res);
        kill(worker[i]);
        deposit(res);
    }
}
worker_func() {
    while (TRUE) {
        task = recv(manager);
        res = compute(task);
        send(manager, res);
    }
}
"#;

/// The paper's Fig. 9 (block matrix multiplication in PVM pseudo-code).
pub const FIG9_PVM_PSEUDOCODE: &str = r#"
matrix_mult(s, m, i, j) {
    join_group("mmult", get_pid());
    if (parent_id() == VOID) {
        for (i = 0; i < m; i++)
            for (j = 0; j < m; j++)
                child = spawn(matrix_mult, s, m, i, j);
    } else {
        for (k = 0; k < m; k++)
            myrow[k] = pid_in_group("mmult", i*m+k);
        for (k = 0; k < m; k++) {
            if (j == (i + k) mod m)
                multicast(myrow, block_A);
            else
                block_A = receive();
            multiply(A, B, C);
            send(pid_in_group("mmult", ((i-1) mod m)*m+j), block_B);
            block_B = receive();
        }
    }
}
"#;

/// Build the comparison table from the embedded sources.
pub fn comparison() -> Vec<CodeSizeRow> {
    vec![
        CodeSizeRow {
            app: "Mandelbrot manager/worker",
            messengers_lines: effective_lines(crate::mandel_msgr::MANAGER_WORKER_SCRIPT),
            pvm_lines: effective_lines(FIG2_PVM_PSEUDOCODE),
            pvm_real_lines: effective_lines(include_str!("mandel_pvm.rs")),
        },
        CodeSizeRow {
            app: "Block matrix multiplication",
            messengers_lines: effective_lines(crate::matmul_msgr::MATMUL_SCRIPTS),
            pvm_lines: effective_lines(FIG9_PVM_PSEUDOCODE),
            pvm_real_lines: effective_lines(include_str!("matmul_pvm.rs")),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_counter_skips_blank_and_comments() {
        assert_eq!(effective_lines("a\n\n  \n// c\nb\n"), 2);
        assert_eq!(effective_lines(""), 0);
    }

    #[test]
    fn messengers_programs_are_shorter() {
        for row in comparison() {
            // The executable MSGR-C is no longer than the paper's PVM
            // *pseudo-code*, and far shorter than the executable PVM
            // implementation.
            assert!(
                row.messengers_lines <= row.pvm_lines,
                "{}: messengers {} > pvm pseudo-code {}",
                row.app,
                row.messengers_lines,
                row.pvm_lines
            );
            assert!(
                row.messengers_lines * 3 < row.pvm_real_lines,
                "{}: messengers {} not ≪ executable pvm {}",
                row.app,
                row.messengers_lines,
                row.pvm_real_lines
            );
        }
    }

    #[test]
    fn scripts_actually_compile() {
        // The size claim is honest only if the short programs are real.
        msgr_lang::compile(crate::mandel_msgr::MANAGER_WORKER_SCRIPT).unwrap();
        msgr_lang::compile(crate::matmul_msgr::MATMUL_SCRIPTS).unwrap();
    }
}
