//! Calibration constants for the simulated 1997 testbed.
//!
//! The reference machine is the paper's 110 MHz SPARCstation 5; all
//! compute costs below are reference nanoseconds. The constants were
//! tuned so the *shape* of every figure (who wins, crossover positions,
//! scaling behaviour) reproduces — see EXPERIMENTS.md for the resulting
//! paper-vs-measured comparison. Absolute seconds are of the right order
//! of magnitude but not calibrated point-for-point (the authors'
//! interpreter and pvmd constants are unpublished).

/// Application-level compute-cost constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calib {
    /// One Mandelbrot iteration (`z = z² + c` plus escape test):
    /// ~25 cycles at 110 MHz.
    pub mandel_iter_ns: u64,
    /// Fixed per-pixel overhead (loop control, color store).
    pub mandel_pixel_ns: u64,
    /// One fused multiply-add of the matrix kernels at full cache
    /// locality: ~6 cycles at 110 MHz (load/mul/add/store mix).
    pub flop_ns: f64,
    /// Effective cache size for the locality model (the SS5's external
    /// cache).
    pub cache_bytes: f64,
    /// Maximum slowdown factor from cache misses: the time per flop is
    /// `flop_ns * (1 + miss_alpha * max(0, 1 - cache/working_set))`.
    /// Chosen to reproduce the paper's ~13% blocked-vs-naive sequential
    /// gap at n = 1500, s = 500 (§3.2).
    pub miss_alpha: f64,
    /// Bytes per Mandelbrot pixel on the wire (16-bit color index,
    /// 512 colors).
    pub bytes_per_pixel: u64,
}

impl Default for Calib {
    fn default() -> Self {
        Calib {
            mandel_iter_ns: 230,
            mandel_pixel_ns: 120,
            flop_ns: 55.0,
            cache_bytes: 3.0e6,
            miss_alpha: 0.35,
            bytes_per_pixel: 2,
        }
    }
}

impl Calib {
    /// Time per flop for a kernel whose working set is `ws_bytes`
    /// (three matrix tiles).
    pub fn flop_time_ns(&self, ws_bytes: f64) -> f64 {
        let miss = if ws_bytes <= self.cache_bytes {
            0.0
        } else {
            self.miss_alpha * (1.0 - self.cache_bytes / ws_bytes)
        };
        self.flop_ns * (1.0 + miss)
    }

    /// Total cost of one `s×s` block multiply-accumulate
    /// (`C += A·B`, 2·s³ flops) given its working set.
    pub fn block_multiply_ns(&self, s: u32) -> u64 {
        let ws = 3.0 * 8.0 * (s as f64) * (s as f64);
        (2.0 * (s as f64).powi(3) * self.flop_time_ns(ws)).round() as u64
    }

    /// Cost of a naive `n×n` triple loop (working set = whole matrices).
    pub fn naive_multiply_ns(&self, n: u32) -> u64 {
        let ws = 3.0 * 8.0 * (n as f64) * (n as f64);
        (2.0 * (n as f64).powi(3) * self.flop_time_ns(ws)).round() as u64
    }

    /// Cost of a blocked sequential multiply: `m³` block multiplies of
    /// size `s` (n = m·s).
    pub fn blocked_multiply_ns(&self, m: u32, s: u32) -> u64 {
        (m as u64).pow(3) * self.block_multiply_ns(s)
    }

    /// Cost of rendering `iters` total Mandelbrot iterations over
    /// `pixels` pixels.
    pub fn mandel_ns(&self, iters: u64, pixels: u64) -> u64 {
        iters * self.mandel_iter_ns + pixels * self.mandel_pixel_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cached_kernels_run_at_base_speed() {
        let c = Calib::default();
        // A 64×64 tile (98 KB) fits the cache.
        assert_eq!(c.flop_time_ns(3.0 * 8.0 * 64.0 * 64.0), c.flop_ns);
        // A 1500×1500 working set does not.
        assert!(c.flop_time_ns(3.0 * 8.0 * 1500.0 * 1500.0) > 1.3 * c.flop_ns);
    }

    #[test]
    fn blocked_beats_naive_by_about_13_percent_at_1500() {
        // The paper: "partitioning a 1500×1500 matrix into 9 blocks of
        // size 500×500 results in a speedup of roughly 13%".
        let c = Calib::default();
        let naive = c.naive_multiply_ns(1500) as f64;
        let blocked = c.blocked_multiply_ns(3, 500) as f64;
        let speedup = naive / blocked;
        assert!((1.10..=1.16).contains(&speedup), "blocked speedup {speedup:.3} not ≈ 1.13");
    }

    #[test]
    fn small_blocks_fit_cache_and_win_more() {
        let c = Calib::default();
        let per_flop_500 = c.block_multiply_ns(500) as f64 / (2.0 * 500f64.powi(3));
        let per_flop_100 = c.block_multiply_ns(100) as f64 / (2.0 * 100f64.powi(3));
        assert!(per_flop_100 < per_flop_500);
    }

    #[test]
    fn mandel_cost_scales_with_iterations() {
        let c = Calib::default();
        assert!(c.mandel_ns(1000, 10) > c.mandel_ns(100, 10));
        assert_eq!(c.mandel_ns(0, 0), 0);
    }
}
