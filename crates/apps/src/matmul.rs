//! The matrix-multiplication workload (§3.2): real matrix math,
//! deterministic test matrices, block layout helpers, and the two
//! sequential baselines (naive and block-oriented).

use msgr_vm::Matrix;

use crate::calib::Calib;

/// One experiment: an `m × m` processor grid multiplying `n × n`
/// matrices split into `s × s` blocks (`n = m · s`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatmulScene {
    /// Blocks per dimension (= grid side; 2 or 3 in the paper).
    pub m: u32,
    /// Block side length (the paper's x-axis).
    pub s: u32,
}

impl MatmulScene {
    /// A scene; `n = m * s`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(m: u32, s: u32) -> Self {
        assert!(m > 0 && s > 0, "degenerate scene {m}x{s}");
        MatmulScene { m, s }
    }

    /// Full matrix side length.
    pub fn n(&self) -> u32 {
        self.m * self.s
    }
}

/// Deterministic pseudo-random test matrix (splitmix-style generator) —
/// every implementation multiplies the same inputs.
pub fn test_matrix(n: u32, seed: u64) -> Matrix {
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let data: Vec<f64> =
        (0..(n as usize * n as usize)).map(|_| (next() % 1000) as f64 / 500.0 - 1.0).collect();
    Matrix::from_vec(n, n, data)
}

/// Real (bit-exact reference) matrix product via the naive triple loop.
///
/// # Panics
///
/// Panics on dimension mismatch.
pub fn multiply_reference(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "dimension mismatch");
    let (n, m, p) = (a.rows(), a.cols(), b.cols());
    let mut c = Matrix::zeros(n, p);
    let cd = c.as_mut_slice();
    let ad = a.as_slice();
    let bd = b.as_slice();
    for i in 0..n as usize {
        for k in 0..m as usize {
            let aik = ad[i * m as usize + k];
            for j in 0..p as usize {
                cd[i * p as usize + j] += aik * bd[k * p as usize + j];
            }
        }
    }
    c
}

/// `c += a · b` on raw blocks (the kernel both distributed versions
/// execute).
///
/// # Panics
///
/// Panics on dimension mismatch.
pub fn multiply_accumulate(c: &mut Matrix, a: &Matrix, b: &Matrix) {
    assert_eq!(a.cols(), b.rows(), "dimension mismatch");
    assert_eq!(c.rows(), a.rows(), "dimension mismatch");
    assert_eq!(c.cols(), b.cols(), "dimension mismatch");
    let (n, m, p) = (a.rows() as usize, a.cols() as usize, b.cols() as usize);
    let cd = c.as_mut_slice();
    let ad = a.as_slice();
    let bd = b.as_slice();
    for i in 0..n {
        for k in 0..m {
            let aik = ad[i * m + k];
            for j in 0..p {
                cd[i * p + j] += aik * bd[k * p + j];
            }
        }
    }
}

/// Block extraction / assembly for an `m × m` grid of `s × s` blocks.
#[derive(Debug, Clone, Copy)]
pub struct BlockedLayout {
    /// The scene.
    pub scene: MatmulScene,
}

impl BlockedLayout {
    /// Layout for a scene.
    pub fn new(scene: MatmulScene) -> Self {
        BlockedLayout { scene }
    }

    /// Extract block `(bi, bj)`.
    ///
    /// # Panics
    ///
    /// Panics if the block indices are out of range or the matrix has
    /// the wrong size.
    pub fn block(&self, m: &Matrix, bi: u32, bj: u32) -> Matrix {
        let s = self.scene.s;
        assert_eq!(m.rows(), self.scene.n(), "matrix size mismatch");
        assert!(bi < self.scene.m && bj < self.scene.m, "block index out of range");
        let mut out = Matrix::zeros(s, s);
        let od = out.as_mut_slice();
        let md = m.as_slice();
        let n = self.scene.n() as usize;
        for r in 0..s as usize {
            let src = (bi as usize * s as usize + r) * n + bj as usize * s as usize;
            od[r * s as usize..(r + 1) * s as usize].copy_from_slice(&md[src..src + s as usize]);
        }
        out
    }

    /// Assemble a full matrix from row-major blocks (indexed `bi*m+bj`).
    ///
    /// # Panics
    ///
    /// Panics on wrong block count or block shapes.
    pub fn assemble(&self, blocks: &[Matrix]) -> Matrix {
        let mm = self.scene.m as usize;
        let s = self.scene.s as usize;
        assert_eq!(blocks.len(), mm * mm, "wrong block count");
        let n = self.scene.n();
        let mut out = Matrix::zeros(n, n);
        let od = out.as_mut_slice();
        for bi in 0..mm {
            for bj in 0..mm {
                let b = &blocks[bi * mm + bj];
                assert_eq!((b.rows() as usize, b.cols() as usize), (s, s), "bad block shape");
                let bd = b.as_slice();
                for r in 0..s {
                    let dst = (bi * s + r) * n as usize + bj * s;
                    od[dst..dst + s].copy_from_slice(&bd[r * s..(r + 1) * s]);
                }
            }
        }
        out
    }
}

/// Simulated sequential times (seconds): `(naive, blocked)` for the
/// scene, from the calibrated cache model.
pub fn sequential_seconds(scene: MatmulScene, calib: &Calib) -> (f64, f64) {
    let naive = calib.naive_multiply_ns(scene.n()) as f64 / 1e9;
    let blocked = calib.blocked_multiply_ns(scene.m, scene.s) as f64 / 1e9;
    (naive, blocked)
}

/// Max absolute element difference, for verification.
pub fn max_abs_diff(a: &Matrix, b: &Matrix) -> f64 {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()));
    a.as_slice().iter().zip(b.as_slice()).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_multiply_identity() {
        let mut eye = Matrix::zeros(3, 3);
        for i in 0..3 {
            eye.set(i, i, 1.0);
        }
        let a = test_matrix(3, 42);
        let prod = multiply_reference(&a, &eye);
        assert_eq!(prod, a);
        let prod = multiply_reference(&eye, &a);
        assert_eq!(prod, a);
    }

    #[test]
    fn accumulate_matches_reference() {
        let a = test_matrix(8, 1);
        let b = test_matrix(8, 2);
        let mut c = Matrix::zeros(8, 8);
        multiply_accumulate(&mut c, &a, &b);
        assert_eq!(c, multiply_reference(&a, &b));
        // Accumulation adds.
        multiply_accumulate(&mut c, &a, &b);
        let twice = multiply_reference(&a, &b);
        let diff = c
            .as_slice()
            .iter()
            .zip(twice.as_slice())
            .map(|(x, y)| (x - 2.0 * y).abs())
            .fold(0.0, f64::max);
        assert!(diff < 1e-9);
    }

    #[test]
    fn block_extract_assemble_round_trip() {
        let scene = MatmulScene::new(3, 4);
        let layout = BlockedLayout::new(scene);
        let m = test_matrix(12, 7);
        let blocks: Vec<Matrix> = (0..3)
            .flat_map(|bi| (0..3).map(move |bj| (bi, bj)))
            .map(|(bi, bj)| layout.block(&m, bi, bj))
            .collect();
        assert_eq!(layout.assemble(&blocks), m);
    }

    #[test]
    fn blocked_product_equals_full_product() {
        // The block algorithm's math: C[i][j] = Σ_k A[i][k]·B[k][j].
        let scene = MatmulScene::new(2, 5);
        let layout = BlockedLayout::new(scene);
        let a = test_matrix(10, 11);
        let b = test_matrix(10, 22);
        let mut blocks = Vec::new();
        for bi in 0..2 {
            for bj in 0..2 {
                let mut c = Matrix::zeros(5, 5);
                for k in 0..2 {
                    multiply_accumulate(&mut c, &layout.block(&a, bi, k), &layout.block(&b, k, bj));
                }
                blocks.push(c);
            }
        }
        let assembled = layout.assemble(&blocks);
        let reference = multiply_reference(&a, &b);
        assert!(max_abs_diff(&assembled, &reference) < 1e-9);
    }

    #[test]
    fn test_matrices_are_deterministic_and_seeded() {
        assert_eq!(test_matrix(6, 5), test_matrix(6, 5));
        assert_ne!(test_matrix(6, 5), test_matrix(6, 6));
        // Values bounded in [-1, 1].
        assert!(test_matrix(16, 9).as_slice().iter().all(|v| (-1.0..=1.0).contains(v)));
    }

    #[test]
    fn sequential_blocked_beats_naive_for_large_n() {
        let c = Calib::default();
        let (naive, blocked) = sequential_seconds(MatmulScene::new(3, 500), &c);
        assert!(blocked < naive);
        let speedup = naive / blocked;
        assert!((1.10..1.16).contains(&speedup), "speedup {speedup}");
    }

    #[test]
    fn scene_dimensions() {
        assert_eq!(MatmulScene::new(3, 500).n(), 1500);
    }
}
