//! The Mandelbrot workload (§3.1.2): kernel, block decomposition,
//! sequential baseline, and the precomputed work table shared by the
//! MESSENGERS and PVM implementations.

use crate::calib::Calib;

/// A rectangle of the complex plane: `(x0, y0)` to `(x1, y1)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Region {
    /// Left edge (real axis).
    pub x0: f64,
    /// Bottom edge (imaginary axis).
    pub y0: f64,
    /// Right edge.
    pub x1: f64,
    /// Top edge.
    pub y1: f64,
}

impl Region {
    /// The region evaluated throughout the paper: `(-2.0, -1.2, 0.4, 1.2)`.
    pub fn paper() -> Region {
        Region { x0: -2.0, y0: -1.2, x1: 0.4, y1: 1.2 }
    }
}

/// Escape-time iteration count for the point `(cx, cy)`, in
/// `1..=max_iter`; interior points return `max_iter`.
pub fn mandel_iters(cx: f64, cy: f64, max_iter: u32) -> u32 {
    let mut zx = 0.0f64;
    let mut zy = 0.0f64;
    for n in 1..=max_iter {
        let zx2 = zx * zx;
        let zy2 = zy * zy;
        if zx2 + zy2 > 4.0 {
            return n;
        }
        zy = 2.0 * zx * zy + cy;
        zx = zx2 - zy2 + cx;
    }
    max_iter
}

/// A complete experiment description: the paper varies `size`
/// (320/640/1280), `grid` (8/16/32), and fixes 512 colors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MandelScene {
    /// The complex-plane window.
    pub region: Region,
    /// Image is `size × size` pixels.
    pub size: u32,
    /// Image divided into `grid × grid` blocks.
    pub grid: u32,
    /// Iteration cap (= number of colors, 512 in the paper).
    pub max_iter: u32,
}

impl MandelScene {
    /// A paper-standard scene.
    ///
    /// # Panics
    ///
    /// Panics unless `grid` divides `size`.
    pub fn paper(size: u32, grid: u32) -> Self {
        assert!(grid > 0 && size.is_multiple_of(grid), "grid {grid} must divide size {size}");
        MandelScene { region: Region::paper(), size, grid, max_iter: 512 }
    }

    /// Number of blocks.
    pub fn blocks(&self) -> u32 {
        self.grid * self.grid
    }

    /// Block side length in pixels.
    pub fn block_side(&self) -> u32 {
        self.size / self.grid
    }

    /// Pixels per block.
    pub fn block_pixels(&self) -> u32 {
        self.block_side() * self.block_side()
    }

    /// Pixel origin `(px, py)` of block `idx` (row-major blocks).
    pub fn block_origin(&self, idx: u32) -> (u32, u32) {
        let bs = self.block_side();
        let bx = idx % self.grid;
        let by = idx / self.grid;
        (bx * bs, by * bs)
    }
}

/// The rendered image plus per-block iteration totals, computed once per
/// scene and shared by every implementation and processor count (the
/// actual pixel values are identical across systems; only the
/// coordination differs).
#[derive(Debug, Clone)]
pub struct MandelWork {
    /// The scene this was computed for.
    pub scene: MandelScene,
    /// Row-major iteration counts, one per pixel.
    pub pixels: Vec<u16>,
    /// Total iterations per block (compute cost driver).
    pub block_iters: Vec<u64>,
}

impl MandelWork {
    /// Render the scene and tabulate per-block work.
    pub fn compute(scene: MandelScene) -> Self {
        let n = scene.size as usize;
        let mut pixels = vec![0u16; n * n];
        let (w, h) = (scene.size as f64, scene.size as f64);
        for py in 0..scene.size {
            for px in 0..scene.size {
                let cx =
                    scene.region.x0 + (px as f64 + 0.5) / w * (scene.region.x1 - scene.region.x0);
                let cy =
                    scene.region.y0 + (py as f64 + 0.5) / h * (scene.region.y1 - scene.region.y0);
                pixels[(py as usize) * n + px as usize] =
                    mandel_iters(cx, cy, scene.max_iter) as u16;
            }
        }
        let mut block_iters = vec![0u64; scene.blocks() as usize];
        let bs = scene.block_side();
        for idx in 0..scene.blocks() {
            let (ox, oy) = scene.block_origin(idx);
            let mut total = 0u64;
            for dy in 0..bs {
                for dx in 0..bs {
                    total += pixels[((oy + dy) as usize) * n + (ox + dx) as usize] as u64;
                }
            }
            block_iters[idx as usize] = total;
        }
        MandelWork { scene, pixels, block_iters }
    }

    /// Total iterations over the whole image.
    pub fn total_iters(&self) -> u64 {
        self.block_iters.iter().sum()
    }

    /// The 8-bit color index displayed for an iteration count (1997 X
    /// displays used 8-bit colormaps; 512 iteration values fold onto
    /// 256 colors).
    pub fn color(iters: u16) -> u8 {
        (iters & 0xff) as u8
    }

    /// Serialize one block's colors (1 byte per pixel) — the payload
    /// both systems ship back to the collector.
    pub fn block_payload(&self, idx: u32) -> Vec<u8> {
        let bs = self.scene.block_side();
        let (ox, oy) = self.scene.block_origin(idx);
        let n = self.scene.size as usize;
        let mut out = Vec::with_capacity((bs * bs) as usize);
        for dy in 0..bs {
            for dx in 0..bs {
                out.push(Self::color(self.pixels[((oy + dy) as usize) * n + (ox + dx) as usize]));
            }
        }
        out
    }

    /// Write a block payload into an image buffer (the collector's
    /// `deposit`).
    ///
    /// # Panics
    ///
    /// Panics if the payload length does not match the block size.
    pub fn deposit_payload(scene: &MandelScene, image: &mut [u8], idx: u32, payload: &[u8]) {
        let bs = scene.block_side();
        assert_eq!(payload.len() as u32, bs * bs, "bad payload for block {idx}");
        let (ox, oy) = scene.block_origin(idx);
        let n = scene.size as usize;
        for (k, &v) in payload.iter().enumerate() {
            let dx = (k as u32) % bs;
            let dy = (k as u32) / bs;
            image[((oy + dy) as usize) * n + (ox + dx) as usize] = v;
        }
    }

    /// FNV-1a checksum over an 8-bit color image, for
    /// cross-implementation verification.
    pub fn checksum(colors: &[u8]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in colors {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }

    /// The reference color image (what the distributed runs must
    /// reassemble).
    pub fn color_image(&self) -> Vec<u8> {
        self.pixels.iter().map(|&p| Self::color(p)).collect()
    }
}

/// Sequential-C baseline: the full render on one reference machine.
/// Returns `(simulated seconds, checksum)`.
pub fn render_sequential(work: &MandelWork, calib: &Calib) -> (f64, u64) {
    let pixels = (work.scene.size as u64).pow(2);
    let ns = calib.mandel_ns(work.total_iters(), pixels);
    (ns as f64 / 1e9, MandelWork::checksum(&work.color_image()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_escape_behaviour() {
        // Far outside: escapes immediately (|c| > 2 after one step).
        assert!(mandel_iters(10.0, 10.0, 512) <= 2);
        // Origin is interior: never escapes.
        assert_eq!(mandel_iters(0.0, 0.0, 512), 512);
        assert_eq!(mandel_iters(-1.0, 0.0, 512), 512); // period-2 bulb
                                                       // A point just outside the cardioid cusp escapes slowly.
        let n = mandel_iters(0.26, 0.0, 512);
        assert!(n > 10 && n < 512, "near-cusp point got {n}");
    }

    #[test]
    fn scene_geometry() {
        let s = MandelScene::paper(320, 8);
        assert_eq!(s.blocks(), 64);
        assert_eq!(s.block_side(), 40);
        assert_eq!(s.block_pixels(), 1600);
        assert_eq!(s.block_origin(0), (0, 0));
        assert_eq!(s.block_origin(7), (280, 0));
        assert_eq!(s.block_origin(8), (0, 40));
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn bad_grid_rejected() {
        let _ = MandelScene::paper(320, 7);
    }

    #[test]
    fn work_table_is_consistent() {
        let w = MandelWork::compute(MandelScene::paper(64, 4));
        assert_eq!(w.pixels.len(), 64 * 64);
        assert_eq!(w.block_iters.len(), 16);
        assert_eq!(w.total_iters(), w.pixels.iter().map(|&p| p as u64).sum::<u64>());
        // The paper's region contains interior points (max_iter) and
        // fast-escaping points.
        assert!(w.pixels.contains(&512));
        assert!(w.pixels.iter().any(|&p| p < 10));
    }

    #[test]
    fn payload_round_trip_reassembles_image() {
        let w = MandelWork::compute(MandelScene::paper(64, 4));
        let mut image = vec![0u8; 64 * 64];
        for idx in 0..w.scene.blocks() {
            let payload = w.block_payload(idx);
            assert_eq!(payload.len(), w.scene.block_pixels() as usize);
            MandelWork::deposit_payload(&w.scene, &mut image, idx, &payload);
        }
        assert_eq!(image, w.color_image());
        assert_eq!(MandelWork::checksum(&image), MandelWork::checksum(&w.color_image()));
    }

    #[test]
    fn sequential_time_positive_and_deterministic() {
        let w = MandelWork::compute(MandelScene::paper(64, 4));
        let c = Calib::default();
        let (t1, sum1) = render_sequential(&w, &c);
        let (t2, sum2) = render_sequential(&w, &c);
        assert!(t1 > 0.0);
        assert_eq!(t1, t2);
        assert_eq!(sum1, sum2);
    }

    #[test]
    fn checksum_detects_corruption() {
        let w = MandelWork::compute(MandelScene::paper(64, 4));
        let mut bad = w.color_image();
        bad[100] ^= 1;
        assert_ne!(MandelWork::checksum(&bad), MandelWork::checksum(&w.color_image()));
    }
}
