//! # msgr-apps — the paper's applications
//!
//! §3 evaluates two applications, each in three implementations:
//!
//! | Application | MESSENGERS | PVM | Sequential C |
//! |---|---|---|---|
//! | Mandelbrot manager/worker (§3.1) | Fig. 3 script ([`mandel_msgr`]) | Fig. 2 program ([`mandel_pvm`]) | [`mandel::render_sequential`] |
//! | Block matrix multiplication (§3.2) | Fig. 11 scripts ([`matmul_msgr`]) | Fig. 9 program ([`matmul_pvm`]) | naive & blocked ([`matmul`]) |
//!
//! Every implementation produces a verifiable artifact (the image
//! checksum / the product matrix) in addition to a simulated runtime, so
//! the benchmark harness asserts correctness on every data point it
//! plots.

#![warn(missing_docs)]

pub mod calib;
pub mod codesize;
pub mod graph;
pub mod mandel;
pub mod mandel_msgr;
pub mod mandel_pvm;
pub mod matmul;
pub mod matmul_msgr;
pub mod matmul_pvm;
pub mod swarm;

pub use calib::Calib;
pub use mandel::{MandelScene, MandelWork, Region};
pub use matmul::{BlockedLayout, MatmulScene};
