//! Graph algorithms in the navigational style.
//!
//! The paper's related-work section credits WAVE with "various graph
//! algorithms and network control problems" as a natural fit for
//! self-migrating computations; this module shows MESSENGERS doing the
//! same. A breadth-first wave floods a logical graph: at each node the
//! messenger either improves the resident distance and replicates to
//! all neighbors, or dies. The entire algorithm is the one short script
//! below — no message loops, no termination detection in user code (the
//! wave dies out by itself).

use std::collections::VecDeque;

use msgr_core::topology::LogicalTopology;
use msgr_core::{ClusterConfig, ClusterError, DaemonId, SimCluster};
use msgr_sim::DetRng;
use msgr_vm::{Dir, Value};

/// The BFS wave script: carry a tentative distance; improve-and-flood
/// or die.
pub const BFS_WAVE_SCRIPT: &str = r#"
bfs(d) {
    int go = 1;
    node int dist;
    while (go) {
        if (dist == NULL || d < dist) {
            dist = d;
            d = d + 1;
            hop(ll = "edge");
        } else {
            go = 0;
        }
    }
}
"#;

/// An undirected graph on vertices `0..n`, as an edge list.
#[derive(Debug, Clone)]
pub struct Graph {
    /// Number of vertices.
    pub n: usize,
    /// Undirected edges (u, v), u ≠ v.
    pub edges: Vec<(usize, usize)>,
}

impl Graph {
    /// A connected random graph: a spanning path plus `extra` random
    /// chords, deterministic in `seed`.
    pub fn random_connected(n: usize, extra: usize, seed: u64) -> Graph {
        assert!(n >= 2, "need at least two vertices");
        let mut rng = DetRng::new(seed);
        let mut edges = Vec::with_capacity(n - 1 + extra);
        for v in 1..n {
            edges.push((v - 1, v));
        }
        while edges.len() < n - 1 + extra {
            let u = rng.below(n as u64) as usize;
            let v = rng.below(n as u64) as usize;
            if u != v && !edges.contains(&(u.min(v), u.max(v))) {
                edges.push((u.min(v), u.max(v)));
            }
        }
        Graph { n, edges }
    }

    /// Reference BFS distances from `source`.
    pub fn bfs_reference(&self, source: usize) -> Vec<Option<u32>> {
        let mut adj = vec![Vec::new(); self.n];
        for &(u, v) in &self.edges {
            adj[u].push(v);
            adj[v].push(u);
        }
        let mut dist = vec![None; self.n];
        dist[source] = Some(0);
        let mut q = VecDeque::from([source]);
        while let Some(u) = q.pop_front() {
            let du = dist[u].expect("queued implies reached");
            for &v in &adj[u] {
                if dist[v].is_none() {
                    dist[v] = Some(du + 1);
                    q.push_back(v);
                }
            }
        }
        dist
    }

    /// The graph as a logical topology: vertex `v` becomes node `"v<v>"`
    /// on daemon `v % daemons`, every edge an undirected link named
    /// `"edge"`.
    pub fn topology(&self, daemons: usize) -> LogicalTopology {
        let name = |v: usize| Value::str(format!("v{v}"));
        let mut topo = LogicalTopology::new();
        for v in 0..self.n {
            topo.node(name(v), DaemonId((v % daemons) as u16));
        }
        for &(u, v) in &self.edges {
            topo.link(name(u), name(v), Value::str("edge"), Dir::Any);
        }
        topo
    }
}

/// Run the BFS wave from `source` on a simulated cluster; returns the
/// per-vertex distances (`None` = unreached).
///
/// # Errors
///
/// Propagates [`ClusterError`].
pub fn bfs_wave(
    graph: &Graph,
    source: usize,
    cfg: ClusterConfig,
) -> Result<Vec<Option<u32>>, ClusterError> {
    let daemons = cfg.daemons;
    let mut cluster = SimCluster::new(cfg);
    cluster.build(&graph.topology(daemons))?;
    let program = msgr_lang::compile(BFS_WAVE_SCRIPT).expect("BFS script compiles");
    let pid = cluster.register_program(&program);
    cluster.inject_at(&Value::str(format!("v{source}")), pid, &[Value::Int(0)])?;
    let report = cluster.run()?;
    if let Some((mid, err)) = report.faults.first() {
        return Err(ClusterError::Config(format!("messenger {mid} faulted: {err}")));
    }
    Ok((0..graph.n)
        .map(|v| {
            cluster
                .node_var_by_name(&Value::str(format!("v{v}")), "dist")
                .and_then(|d| d.as_int().ok())
                .map(|d| d as u32)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use msgr_core::config::NetKind;

    fn cfg(daemons: usize) -> ClusterConfig {
        let mut c = ClusterConfig::new(daemons);
        c.net = NetKind::Ideal;
        c
    }

    #[test]
    fn wave_matches_reference_on_a_path() {
        let g = Graph { n: 5, edges: vec![(0, 1), (1, 2), (2, 3), (3, 4)] };
        let dist = bfs_wave(&g, 0, cfg(2)).unwrap();
        assert_eq!(dist, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
    }

    #[test]
    fn wave_matches_reference_on_random_graphs() {
        for seed in 0..5u64 {
            let g = Graph::random_connected(24, 20, seed);
            let expected = g.bfs_reference(3);
            let got = bfs_wave(&g, 3, cfg(4)).unwrap();
            assert_eq!(got, expected, "seed {seed}");
        }
    }

    #[test]
    fn wave_from_each_source_is_consistent() {
        let g = Graph::random_connected(12, 8, 42);
        for source in [0usize, 5, 11] {
            assert_eq!(bfs_wave(&g, source, cfg(3)).unwrap(), g.bfs_reference(source));
        }
    }

    #[test]
    fn disconnected_vertices_stay_unreached() {
        // Two components: 0-1-2 and 3-4 (edge list without a bridge).
        let g = Graph { n: 5, edges: vec![(0, 1), (1, 2), (3, 4)] };
        let dist = bfs_wave(&g, 0, cfg(2)).unwrap();
        assert_eq!(dist[0], Some(0));
        assert_eq!(dist[2], Some(1).map(|_| 2));
        assert_eq!(dist[3], None);
        assert_eq!(dist[4], None);
    }

    #[test]
    fn random_graph_generator_is_sane() {
        let g = Graph::random_connected(30, 15, 7);
        assert_eq!(g.n, 30);
        assert_eq!(g.edges.len(), 29 + 15);
        assert!(g.edges.iter().all(|&(u, v)| u < v && v < 30));
        // Connected by construction.
        assert!(g.bfs_reference(0).iter().all(Option::is_some));
        // Deterministic.
        assert_eq!(g.edges, Graph::random_connected(30, 15, 7).edges);
    }
}
