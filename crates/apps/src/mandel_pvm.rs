//! Mandelbrot with PVM — the paper's Fig. 2 manager/worker program.
//!
//! The manager spawns one worker per host, sends each a task, then loops:
//! receive a result, identify the sender, send it the next task, deposit
//! the result. When tasks run out it collects the stragglers and kills
//! the workers (here: a poison-pill task). The manager — absent from the
//! MESSENGERS version — is both extra code and a serialization point.

use std::sync::Arc;

use msgr_pvm::{Buf, Message, PvmNet, PvmSim, PvmSimConfig, Recv, Status, Task, TaskCtx, TaskId};
use msgr_sim::Stats;

use crate::calib::Calib;
use crate::mandel::MandelWork;

/// Message tags.
const TAG_TASK: i32 = 1;
const TAG_RESULT: i32 = 2;
/// The poison-pill task index.
const POISON: i64 = -1;

/// Outcome of a PVM Mandelbrot run.
#[derive(Debug, Clone)]
pub struct MandelPvmRun {
    /// Simulated seconds.
    pub seconds: f64,
    /// Image checksum.
    pub checksum: u64,
    /// Counters.
    pub stats: Stats,
}

struct Worker {
    work: Arc<MandelWork>,
    calib: Calib,
    manager: TaskId,
}

impl Task for Worker {
    fn resume(&mut self, ctx: &mut TaskCtx<'_>, msg: Option<Message>) -> Status {
        let Some(mut m) = msg else {
            return Status::Recv(Recv::tag(TAG_TASK));
        };
        let idx = m.buf.unpack_int().expect("task index");
        if idx == POISON {
            return Status::Exit;
        }
        let scene = self.work.scene;
        let iters = self.work.block_iters[idx as usize];
        ctx.charge(self.calib.mandel_ns(iters, scene.block_pixels() as u64));
        let mut reply = Buf::new();
        reply.pack_int(idx);
        reply.pack_bytes(&self.work.block_payload(idx as u32));
        ctx.send(self.manager, TAG_RESULT, reply);
        Status::Recv(Recv::tag(TAG_TASK))
    }
}

struct Manager {
    work: Arc<MandelWork>,
    calib: Calib,
    nworkers: usize,
    workers: Vec<TaskId>,
    next_task: i64,
    outstanding: usize,
    image: Vec<u8>,
    done: Arc<std::sync::Mutex<(u64, bool)>>,
}

impl Manager {
    fn send_task(&mut self, ctx: &mut TaskCtx<'_>, to: TaskId) {
        let mut b = Buf::new();
        b.pack_int(self.next_task);
        self.next_task += 1;
        self.outstanding += 1;
        ctx.send(to, TAG_TASK, b);
    }

    fn deposit(&mut self, ctx: &mut TaskCtx<'_>, msg: &mut Message) {
        let idx = msg.buf.unpack_int().expect("result index") as u32;
        let payload = msg.buf.unpack_bytes().expect("result payload");
        // The manager copies the result into the image buffer.
        ctx.charge(payload.len() as u64 * 25);
        MandelWork::deposit_payload(&self.work.scene, &mut self.image, idx, &payload);
    }
}

impl Task for Manager {
    fn resume(&mut self, ctx: &mut TaskCtx<'_>, msg: Option<Message>) -> Status {
        let total = self.work.scene.blocks() as i64;
        if self.workers.is_empty() {
            // Spawn one worker per host (lines 2-3 of Fig. 2), then prime
            // each with a task (lines 4-5).
            for h in 0..self.nworkers {
                let w = ctx.spawn_on(
                    h % ctx.nhosts(),
                    Box::new(Worker {
                        work: self.work.clone(),
                        calib: self.calib,
                        manager: ctx.mytid(),
                    }),
                );
                self.workers.push(w);
            }
            for w in self.workers.clone() {
                if self.next_task < total {
                    self.send_task(ctx, w);
                }
            }
            return Status::Recv(Recv::tag(TAG_RESULT));
        }
        let mut m = msg.expect("resumed with a result");
        self.outstanding -= 1;
        let sender = m.from;
        self.deposit(ctx, &mut m);
        if self.next_task < total {
            self.send_task(ctx, sender);
            return Status::Recv(Recv::tag(TAG_RESULT));
        }
        if self.outstanding > 0 {
            return Status::Recv(Recv::tag(TAG_RESULT));
        }
        // All results in: kill the workers (lines 11-15).
        for w in &self.workers {
            let mut b = Buf::new();
            b.pack_int(POISON);
            ctx.send(*w, TAG_TASK, b);
        }
        *self.done.lock().unwrap() = (MandelWork::checksum(&self.image), true);
        Status::Exit
    }
}

/// Run the Fig. 2 program on `procs` simulated hosts. Worker count =
/// host count (the paper's configuration); the manager shares host 0
/// with a worker.
///
/// # Errors
///
/// Propagates [`msgr_pvm::PvmError`].
pub fn run_sim(
    work: &Arc<MandelWork>,
    procs: usize,
    calib: &Calib,
    net: PvmNet,
) -> Result<MandelPvmRun, msgr_pvm::PvmError> {
    run_sim_routed(work, procs, calib, net, false)
}

/// As [`run_sim`], with explicit routing: `direct = true` models
/// `PvmRouteDirect` (task-to-task TCP, no pvmd copies).
///
/// # Errors
///
/// Propagates [`msgr_pvm::PvmError`].
pub fn run_sim_routed(
    work: &Arc<MandelWork>,
    procs: usize,
    calib: &Calib,
    net: PvmNet,
    direct: bool,
) -> Result<MandelPvmRun, msgr_pvm::PvmError> {
    let mut cfg = PvmSimConfig::new(procs);
    cfg.net = net;
    cfg.costs.direct_route = direct;
    run_sim_cfg(work, calib, cfg)
}

/// As [`run_sim`], but with a caller-supplied [`PvmSimConfig`] — the
/// entry point for fault-injection studies (`ablation_faults`), which
/// need to set `cfg.faults` and `cfg.seed`. Worker count = host count.
///
/// # Errors
///
/// Propagates [`msgr_pvm::PvmError`].
pub fn run_sim_cfg(
    work: &Arc<MandelWork>,
    calib: &Calib,
    cfg: PvmSimConfig,
) -> Result<MandelPvmRun, msgr_pvm::PvmError> {
    let procs = cfg.hosts;
    let mut vm = PvmSim::new(cfg);
    let done = Arc::new(std::sync::Mutex::new((0u64, false)));
    vm.root(Box::new(Manager {
        work: work.clone(),
        calib: *calib,
        nworkers: procs,
        workers: Vec::new(),
        next_task: 0,
        outstanding: 0,
        image: vec![0u8; (work.scene.size * work.scene.size) as usize],
        done: done.clone(),
    }));
    let report = vm.run()?;
    let (checksum, finished) = *done.lock().unwrap();
    assert!(finished, "manager exited without completing");
    Ok(MandelPvmRun { seconds: report.sim_seconds, checksum, stats: report.stats })
}

/// Run the Fig. 2 program on real OS threads (the `msgr-pvm` threaded
/// backend): the manager and workers are genuine concurrent tasks, the
/// fractal genuinely computes, and the image is assembled from real
/// messages. Returns wall-clock seconds plus the checksum.
///
/// # Panics
///
/// Panics if a task misbehaves protocol-wise (buffer underflow), which
/// would be a bug in this program, not user input.
pub fn run_threads(scene: crate::mandel::MandelScene, procs: usize) -> MandelPvmRun {
    use crate::mandel::mandel_iters;
    use msgr_pvm::{PvmThreads, Recv, ThreadTaskCtx};

    let start = std::time::Instant::now();
    let image = Arc::new(std::sync::Mutex::new(vec![0u8; (scene.size * scene.size) as usize]));
    let image_out = image.clone();

    let compute_block = move |idx: u32| -> Vec<u8> {
        let bs = scene.block_side();
        let (ox, oy) = scene.block_origin(idx);
        let (w, h) = (scene.size as f64, scene.size as f64);
        let mut payload = Vec::with_capacity((bs * bs) as usize);
        for dy in 0..bs {
            for dx in 0..bs {
                let cx = scene.region.x0
                    + ((ox + dx) as f64 + 0.5) / w * (scene.region.x1 - scene.region.x0);
                let cy = scene.region.y0
                    + ((oy + dy) as f64 + 0.5) / h * (scene.region.y1 - scene.region.y0);
                payload.push(MandelWork::color(mandel_iters(cx, cy, scene.max_iter) as u16));
            }
        }
        payload
    };

    PvmThreads::run(move |ctx: &mut ThreadTaskCtx| {
        let me = ctx.mytid();
        let workers: Vec<_> = (0..procs)
            .map(|_| {
                ctx.spawn(move |ctx| loop {
                    let mut m = ctx.recv(Recv::tag(TAG_TASK));
                    let idx = m.buf.unpack_int().expect("task index");
                    if idx == POISON {
                        return;
                    }
                    let mut reply = Buf::new();
                    reply.pack_int(idx);
                    reply.pack_bytes(&compute_block(idx as u32));
                    ctx.send(me, TAG_RESULT, reply);
                })
            })
            .collect();
        let total = scene.blocks() as i64;
        let mut next = 0i64;
        for w in &workers {
            if next < total {
                let mut b = Buf::new();
                b.pack_int(next);
                ctx.send(*w, TAG_TASK, b);
                next += 1;
            }
        }
        let mut received = 0i64;
        while received < total {
            let mut m = ctx.recv(Recv::tag(TAG_RESULT));
            let idx = m.buf.unpack_int().expect("result index") as u32;
            let payload = m.buf.unpack_bytes().expect("payload");
            MandelWork::deposit_payload(&scene, &mut image.lock().unwrap(), idx, &payload);
            received += 1;
            if next < total {
                let mut b = Buf::new();
                b.pack_int(next);
                ctx.send(m.from, TAG_TASK, b);
                next += 1;
            }
        }
        for w in &workers {
            let mut b = Buf::new();
            b.pack_int(POISON);
            ctx.send(*w, TAG_TASK, b);
        }
    });
    let checksum = MandelWork::checksum(&image_out.lock().unwrap());
    MandelPvmRun { seconds: start.elapsed().as_secs_f64(), checksum, stats: msgr_sim::Stats::new() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mandel::{render_sequential, MandelScene};

    fn tiny_work() -> Arc<MandelWork> {
        Arc::new(MandelWork::compute(MandelScene::paper(64, 4)))
    }

    #[test]
    fn pvm_image_matches_sequential() {
        let work = tiny_work();
        let calib = Calib::default();
        let (_, expected) = render_sequential(&work, &calib);
        let run = run_sim(&work, 4, &calib, PvmNet::Ethernet100).unwrap();
        assert_eq!(run.checksum, expected);
        assert!(run.seconds > 0.0);
        assert_eq!(run.stats.counter("spawns"), 4);
    }

    #[test]
    fn pvm_single_host_works() {
        let work = tiny_work();
        let calib = Calib::default();
        let (_, expected) = render_sequential(&work, &calib);
        let run = run_sim(&work, 1, &calib, PvmNet::Ethernet100).unwrap();
        assert_eq!(run.checksum, expected);
    }

    #[test]
    fn pvm_parallel_speedup() {
        let work = Arc::new(MandelWork::compute(MandelScene::paper(128, 8)));
        let calib = Calib::default();
        let t1 = run_sim(&work, 1, &calib, PvmNet::Ethernet100).unwrap().seconds;
        let t8 = run_sim(&work, 8, &calib, PvmNet::Ethernet100).unwrap().seconds;
        assert!(t8 < t1, "8 hosts ({t8}) should beat 1 ({t1})");
    }

    #[test]
    fn threaded_pvm_computes_the_real_image() {
        let scene = MandelScene::paper(64, 4);
        let work = MandelWork::compute(scene);
        let run = run_threads(scene, 4);
        assert_eq!(run.checksum, MandelWork::checksum(&work.color_image()));
        assert!(run.seconds > 0.0);
    }

    #[test]
    fn message_count_matches_protocol() {
        let work = tiny_work(); // 16 blocks
        let calib = Calib::default();
        let run = run_sim(&work, 2, &calib, PvmNet::Ideal).unwrap();
        // 16 tasks + 16 results + 2 poison pills (+2 spawn announcements
        // are not counted as messages).
        assert_eq!(run.stats.counter("messages"), 34);
    }
}
