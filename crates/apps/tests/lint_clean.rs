//! Every application program this crate ships must pass the bytecode
//! verifier (acceptance: a daemon will load it) *and* come back clean
//! from the navigation / lost-update lints — the apps are the idiom
//! reference for MSGR-C, so a warning here is a bug in either the app
//! or the analyzer.

use msgr_apps::graph::BFS_WAVE_SCRIPT;
use msgr_apps::mandel_msgr::MANAGER_WORKER_SCRIPT;
use msgr_apps::matmul_msgr::MATMUL_SCRIPTS;
use msgr_apps::swarm::ANT_SCRIPT;
use msgr_vm::Program;

fn assert_clean(what: &str, program: &Program) {
    let infos = msgr_analyze::verify(program).unwrap_or_else(|diags| {
        let msgs: Vec<String> = diags.iter().map(|d| d.render(program)).collect();
        panic!("{what} failed verification:\n{}", msgs.join("\n"));
    });
    assert_eq!(infos.len(), program.funcs.len());
    // Every function has a finite, small static stack bound.
    for (f, info) in program.funcs.iter().zip(&infos) {
        assert!(info.max_stack <= 64, "`{}` needs {} stack slots?", f.name, info.max_stack);
    }
    let report = msgr_analyze::analyze(program);
    let warnings: Vec<String> = report.warnings().map(|d| d.render(program)).collect();
    assert!(warnings.is_empty(), "{what} has lint warnings:\n{}", warnings.join("\n"));
}

#[test]
fn all_shipped_programs_verify_and_lint_clean() {
    assert_clean(
        "mandelbrot manager/worker",
        &msgr_lang::compile(MANAGER_WORKER_SCRIPT).expect("compiles"),
    );
    assert_clean(
        "matmul distribute_A",
        &msgr_lang::compile_with_entry(MATMUL_SCRIPTS, "distribute_A").expect("compiles"),
    );
    assert_clean(
        "matmul rotate_B",
        &msgr_lang::compile_with_entry(MATMUL_SCRIPTS, "rotate_B").expect("compiles"),
    );
    assert_clean("ant swarm", &msgr_lang::compile(ANT_SCRIPT).expect("compiles"));
    assert_clean("BFS wave", &msgr_lang::compile(BFS_WAVE_SCRIPT).expect("compiles"));
}
