//! Host CPUs as FIFO resources.
//!
//! A daemon (or PVM task scheduler) charges work to its host CPU; the CPU
//! serializes work segments in arrival order, which is what produces the
//! central-manager bottleneck in the paper's manager/worker experiments.

use crate::SimTime;

/// A single simulated processor.
///
/// Work is expressed in *reference nanoseconds*: the time the work takes
/// on a 1.0-speed reference machine (the paper's 110 MHz SPARCstation 5).
/// The Fig. 12(b) testbed used 170 MHz machines, modeled as
/// `speed ≈ 1.55`.
///
/// # Example
///
/// ```
/// let mut cpu = msgr_sim::Cpu::new(2.0); // twice the reference speed
/// let (start, end) = cpu.run(100, 1_000);
/// assert_eq!((start, end), (100, 600));
/// // A second request queues behind the first:
/// let (start, end) = cpu.run(0, 1_000);
/// assert_eq!((start, end), (600, 1_100));
/// ```
#[derive(Debug, Clone)]
pub struct Cpu {
    speed: f64,
    busy_until: SimTime,
    busy_total: SimTime,
    segments: u64,
}

impl Cpu {
    /// Create a CPU with the given speed factor relative to the reference
    /// machine.
    ///
    /// # Panics
    ///
    /// Panics if `speed` is not strictly positive and finite.
    pub fn new(speed: f64) -> Self {
        assert!(speed.is_finite() && speed > 0.0, "invalid CPU speed {speed}");
        Cpu { speed, busy_until: 0, busy_total: 0, segments: 0 }
    }

    /// Reserve `work_ref_ns` reference-nanoseconds of CPU starting no
    /// earlier than `now`. Returns `(start, end)` of the reserved segment
    /// and advances the busy horizon to `end`.
    pub fn run(&mut self, now: SimTime, work_ref_ns: SimTime) -> (SimTime, SimTime) {
        let start = self.busy_until.max(now);
        let dur = self.scale(work_ref_ns);
        let end = start + dur;
        self.busy_until = end;
        self.busy_total += dur;
        self.segments += 1;
        (start, end)
    }

    /// Scale reference work to this CPU's local duration.
    pub fn scale(&self, work_ref_ns: SimTime) -> SimTime {
        (work_ref_ns as f64 / self.speed).round() as SimTime
    }

    /// The time at which all reserved work completes.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Whether the CPU is idle at `now`.
    pub fn idle_at(&self, now: SimTime) -> bool {
        self.busy_until <= now
    }

    /// Total busy nanoseconds reserved so far (local time).
    pub fn busy_total(&self) -> SimTime {
        self.busy_total
    }

    /// Number of work segments reserved so far.
    pub fn segments(&self) -> u64 {
        self.segments
    }

    /// Utilization over `[0, horizon]`; 0 when `horizon == 0`.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon == 0 {
            0.0
        } else {
            self.busy_total as f64 / horizon as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_back_to_back_work() {
        let mut cpu = Cpu::new(1.0);
        assert_eq!(cpu.run(0, 500), (0, 500));
        assert_eq!(cpu.run(100, 500), (500, 1000)); // queues behind segment 1
        assert_eq!(cpu.run(2000, 500), (2000, 2500)); // idle gap
        assert_eq!(cpu.busy_total(), 1500);
        assert_eq!(cpu.segments(), 3);
    }

    #[test]
    fn speed_scales_duration() {
        let mut fast = Cpu::new(4.0);
        assert_eq!(fast.run(0, 1000), (0, 250));
        let mut slow = Cpu::new(0.5);
        assert_eq!(slow.run(0, 1000), (0, 2000));
    }

    #[test]
    fn idle_and_utilization() {
        let mut cpu = Cpu::new(1.0);
        assert!(cpu.idle_at(0));
        cpu.run(0, 400);
        assert!(!cpu.idle_at(399));
        assert!(cpu.idle_at(400));
        assert!((cpu.utilization(800) - 0.5).abs() < 1e-12);
        assert_eq!(cpu.utilization(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid CPU speed")]
    fn zero_speed_rejected() {
        let _ = Cpu::new(0.0);
    }

    #[test]
    fn zero_work_is_instant() {
        let mut cpu = Cpu::new(3.0);
        assert_eq!(cpu.run(77, 0), (77, 77));
        assert!(cpu.idle_at(77));
    }
}
