//! Lightweight measurement plumbing: named counters, gauges, and
//! log-bucket histograms, used by the benchmark harness to report
//! per-run detail (messages sent, bytes moved, rollbacks, GVT
//! rounds, …).
//!
//! Keys are `&'static str`, but every mutating entry point takes
//! `impl Into<&'static str>` so callers can pass typed keys (e.g. the
//! `Metric` enum in `msgr-trace`, which implements that conversion) and
//! get key typos rejected at compile time. As a second line of defence,
//! a process-wide [`install_key_validator`] hook lets a platform
//! debug-assert that every string key that does reach the sink is
//! registered.

use std::collections::BTreeMap;
use std::sync::OnceLock;

/// The process-wide key validator, if a platform installed one.
static KEY_VALIDATOR: OnceLock<fn(&str) -> bool> = OnceLock::new();

/// Install a predicate that every stats key must satisfy, checked by
/// `debug_assert!` on each emission. First installation wins; later
/// calls are ignored (platforms may race to install the same
/// validator). Release builds skip the check entirely.
pub fn install_key_validator(v: fn(&str) -> bool) {
    let _ = KEY_VALIDATOR.set(v);
}

#[inline]
fn check_key(name: &'static str) {
    debug_assert!(
        KEY_VALIDATOR.get().is_none_or(|v| v(name)),
        "unregistered stats key {name:?}: add it to the msgr_trace::Metric registry"
    );
}

/// A monotonically increasing named counter value.
pub type Counter = u64;

/// A histogram with power-of-two buckets, suitable for latencies and
/// message sizes spanning several orders of magnitude.
///
/// # Example
///
/// ```
/// let mut h = msgr_sim::Histogram::new();
/// for v in [1u64, 2, 3, 100, 1000] { h.record(v); }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.max(), 1000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram { buckets: [0; 65], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        let b = if v == 0 { 0 } else { 64 - v.leading_zeros() as usize };
        self.buckets[b] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile, `q` in `0.0 ..= 1.0`. Coarse but monotone;
    /// used only for reporting.
    ///
    /// Edge behaviour: an empty histogram yields 0 for every `q`
    /// (including NaN); `q <= 0` yields [`Histogram::min`] and `q >= 1`
    /// yields [`Histogram::max`] exactly. Interior quantiles return the
    /// lower bound of the containing power-of-two bucket, clamped to the
    /// observed `[min, max]` range so an answer can never lie outside
    /// the recorded samples.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q.is_nan() || q <= 0.0 {
            // NaN is treated like q = 0.
            return self.min();
        }
        if q >= 1.0 {
            return self.max;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                let lo = if i == 0 { 0 } else { 1u64 << (i - 1).min(63) };
                return lo.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A bag of named counters, gauges, and histograms.
#[derive(Debug, Clone, Default)]
pub struct Stats {
    counters: BTreeMap<&'static str, Counter>,
    gauges: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl Stats {
    /// An empty stats bag.
    pub fn new() -> Self {
        Stats::default()
    }

    /// Add `n` to the named counter (creating it at zero).
    pub fn add(&mut self, name: impl Into<&'static str>, n: u64) {
        let name = name.into();
        check_key(name);
        *self.counters.entry(name).or_insert(0) += n;
    }

    /// Increment the named counter by one.
    pub fn bump(&mut self, name: impl Into<&'static str>) {
        self.add(name, 1);
    }

    /// Read a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> Counter {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Set a last-value gauge.
    pub fn gauge_set(&mut self, name: impl Into<&'static str>, v: u64) {
        let name = name.into();
        check_key(name);
        self.gauges.insert(name, v);
    }

    /// Read a gauge (0 if never set).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Record a histogram sample.
    pub fn record(&mut self, name: impl Into<&'static str>, v: u64) {
        let name = name.into();
        check_key(name);
        self.histograms.entry(name).or_default().record(v);
    }

    /// Read a histogram, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterate counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, Counter)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// Iterate gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.gauges.iter().map(|(k, v)| (*k, *v))
    }

    /// Iterate histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(k, h)| (*k, h))
    }

    /// Merge another stats bag into this one. Counters and histograms
    /// add; gauges take the maximum (cross-daemon merge of "how far did
    /// we get" values).
    pub fn merge(&mut self, other: &Stats) {
        for (k, v) in &other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            let slot = self.gauges.entry(k).or_insert(0);
            *slot = (*slot).max(*v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k).or_default().merge(h);
        }
    }
}

impl std::fmt::Display for Stats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (k, v) in &self.counters {
            writeln!(f, "{k}: {v}")?;
        }
        for (k, v) in &self.gauges {
            writeln!(f, "{k}: {v} (gauge)")?;
        }
        for (k, h) in &self.histograms {
            writeln!(
                f,
                "{k}: n={} mean={:.1} min={} p50~{} max={}",
                h.count(),
                h.mean(),
                h.min(),
                h.quantile(0.5),
                h.max()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = Stats::new();
        s.bump("msgs");
        s.add("msgs", 4);
        assert_eq!(s.counter("msgs"), 5);
        assert_eq!(s.counter("other"), 0);
    }

    #[test]
    fn histogram_basics() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_quantiles_are_monotone() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 1, 2, 4, 8, 16, 1024, 65536] {
            h.record(v);
        }
        let mut last = 0;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
            let x = h.quantile(q);
            assert!(x >= last, "quantile({q}) = {x} < {last}");
            last = x;
        }
    }

    #[test]
    fn merge_combines() {
        let mut a = Stats::new();
        a.add("x", 1);
        a.record("lat", 10);
        a.gauge_set("hi", 5);
        let mut b = Stats::new();
        b.add("x", 2);
        b.add("y", 3);
        b.record("lat", 1000);
        b.gauge_set("hi", 3);
        a.merge(&b);
        assert_eq!(a.counter("x"), 3);
        assert_eq!(a.counter("y"), 3);
        assert_eq!(a.histogram("lat").unwrap().count(), 2);
        assert_eq!(a.histogram("lat").unwrap().max(), 1000);
        assert_eq!(a.gauge("hi"), 5, "gauges merge by max");
    }

    #[test]
    fn gauges_overwrite_not_accumulate() {
        let mut s = Stats::new();
        s.gauge_set("g", 10);
        s.gauge_set("g", 4);
        assert_eq!(s.gauge("g"), 4);
        assert_eq!(s.gauge("absent"), 0);
        assert_eq!(s.gauges().collect::<Vec<_>>(), [("g", 4)]);
    }

    #[test]
    fn zero_sample_bucket() {
        let mut h = Histogram::new();
        h.record(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(1.0), 0);
    }

    #[test]
    fn quantile_of_empty_histogram_is_zero_everywhere() {
        let h = Histogram::new();
        for q in [-1.0, 0.0, 0.5, 1.0, 2.0, f64::NAN] {
            assert_eq!(h.quantile(q), 0, "q = {q}");
        }
    }

    #[test]
    fn quantile_extremes_hit_min_and_max_exactly() {
        let mut h = Histogram::new();
        for v in [37u64, 100, 9000] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 37);
        assert_eq!(h.quantile(-3.0), 37);
        assert_eq!(h.quantile(1.0), 9000);
        assert_eq!(h.quantile(7.0), 9000);
        // Interior quantiles never escape the observed range.
        for i in 0..=100 {
            let v = h.quantile(i as f64 / 100.0);
            assert!((37..=9000).contains(&v), "quantile({i}%) = {v}");
        }
    }

    #[test]
    fn quantile_nan_treated_as_low_end() {
        let mut h = Histogram::new();
        h.record(5);
        h.record(500);
        assert_eq!(h.quantile(f64::NAN), 5);
    }

    #[test]
    fn merge_with_disjoint_bucket_ranges() {
        // `a` occupies only low buckets, `b` only high ones; the merge
        // must keep both populations and order its quantiles across the
        // gap.
        let mut a = Histogram::new();
        for v in [1u64, 2, 3, 4] {
            a.record(v);
        }
        let mut b = Histogram::new();
        for v in [1u64 << 40, (1u64 << 40) + 1] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 6);
        assert_eq!(a.sum(), 10 + (1u64 << 41) + 1);
        assert_eq!(a.min(), 1);
        assert_eq!(a.max(), (1u64 << 40) + 1);
        assert!(a.quantile(0.5) <= 4, "median stays in the low cluster");
        assert!(a.quantile(0.99) >= 1u64 << 40, "tail reaches the high cluster");
        let mut last = 0;
        for i in 0..=20 {
            let v = a.quantile(i as f64 / 20.0);
            assert!(v >= last, "monotone across the bucket gap");
            last = v;
        }
    }

    #[test]
    fn merge_with_empty_is_identity_both_ways() {
        let mut a = Histogram::new();
        a.record(17);
        let before = a.clone();
        a.merge(&Histogram::new());
        assert_eq!(a, before, "merging an empty histogram changes nothing");
        let mut e = Histogram::new();
        e.merge(&before);
        assert_eq!(e, before, "merging into an empty histogram copies it");
        assert_eq!(e.min(), 17);
    }

    #[test]
    fn display_formats_counters() {
        let mut s = Stats::new();
        s.add("alpha", 7);
        s.record("h", 3);
        let out = s.to_string();
        assert!(out.contains("alpha: 7"));
        assert!(out.contains("h: n=1"));
    }
}
