//! Network models.
//!
//! The paper's testbed was a 10 Mbit/s *shared* Ethernet: a single
//! broadcast medium on which only one frame can be in flight at a time.
//! At 32 hosts this medium saturates, which is part of why the PVM
//! manager/worker curves flatten. [`SharedBus`] models that; [`Switched`]
//! models a modern full-duplex switch (used in ablations); [`IdealNet`]
//! has latency but infinite bandwidth.
//!
//! All models guarantee FIFO delivery per `(src, dst)` pair, which the
//! daemon protocol in `msgr-core` relies on.

use crate::SimTime;

/// Identifier of a simulated host (0-based, dense).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HostId(pub u32);

impl std::fmt::Display for HostId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// Aggregate traffic statistics kept by every network model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Number of messages transferred.
    pub messages: u64,
    /// Total payload bytes transferred (excluding modeled frame overhead).
    pub payload_bytes: u64,
    /// Total wire bytes transferred (payload plus per-message overhead).
    pub wire_bytes: u64,
    /// Accumulated queueing delay (time spent waiting for the medium).
    pub queueing_ns: SimTime,
}

/// A network model maps a send request to an arrival time, tracking
/// contention internally.
pub trait NetModel {
    /// Transfer `bytes` of payload from `src` to `dst`, with the send
    /// initiated at `now`. Returns the arrival time at `dst`.
    ///
    /// Local delivery (`src == dst`) bypasses the medium and costs only
    /// the model's loopback latency (usually 0).
    fn transfer(&mut self, now: SimTime, src: HostId, dst: HostId, bytes: u64) -> SimTime;

    /// Traffic statistics so far.
    fn stats(&self) -> NetStats;
}

fn frame_time(bytes: u64, bandwidth_bps: f64) -> SimTime {
    ((bytes as f64 * 8.0 / bandwidth_bps) * 1e9).round() as SimTime
}

/// Classic shared-medium Ethernet: one transmission at a time, globally.
///
/// Time for a message = wait for the medium + `(bytes + overhead) * 8 /
/// bandwidth` + propagation latency. Collisions/backoff are abstracted
/// into the fixed per-message `latency`.
#[derive(Debug, Clone)]
pub struct SharedBus {
    bandwidth_bps: f64,
    latency: SimTime,
    per_message_overhead_bytes: u64,
    busy_until: SimTime,
    stats: NetStats,
}

impl SharedBus {
    /// A shared bus with the given raw bandwidth (bits/second),
    /// propagation+stack latency, and per-message header overhead.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_bps` is not strictly positive and finite.
    pub fn new(bandwidth_bps: f64, latency: SimTime, per_message_overhead_bytes: u64) -> Self {
        assert!(
            bandwidth_bps.is_finite() && bandwidth_bps > 0.0,
            "invalid bandwidth {bandwidth_bps}"
        );
        SharedBus {
            bandwidth_bps,
            latency,
            per_message_overhead_bytes,
            busy_until: 0,
            stats: NetStats::default(),
        }
    }

    /// 10 Mbit/s shared Ethernet, 1 ms end-to-end message latency (UDP
    /// stack + interrupt + backoff slack), 60 bytes of framing per
    /// message.
    pub fn ethernet_10mbit() -> Self {
        SharedBus::new(10e6, crate::MILLI, 60)
    }

    /// 100 Mbit/s shared Ethernet (late-90s 100BaseT hub), 0.5 ms
    /// end-to-end latency.
    pub fn ethernet_100mbit() -> Self {
        SharedBus::new(100e6, crate::MILLI / 2, 60)
    }
}

impl NetModel for SharedBus {
    fn transfer(&mut self, now: SimTime, src: HostId, dst: HostId, bytes: u64) -> SimTime {
        self.stats.messages += 1;
        self.stats.payload_bytes += bytes;
        if src == dst {
            self.stats.wire_bytes += bytes;
            return now; // loopback: no medium involved
        }
        let wire = bytes + self.per_message_overhead_bytes;
        self.stats.wire_bytes += wire;
        let start = self.busy_until.max(now);
        self.stats.queueing_ns += start - now;
        let tx = frame_time(wire, self.bandwidth_bps);
        self.busy_until = start + tx;
        start + tx + self.latency
    }

    fn stats(&self) -> NetStats {
        self.stats
    }
}

/// Full-duplex switched network: each host has an independent transmit
/// port and receive port; a message serializes on both in order.
#[derive(Debug, Clone)]
pub struct Switched {
    bandwidth_bps: f64,
    latency: SimTime,
    per_message_overhead_bytes: u64,
    tx_busy: Vec<SimTime>,
    rx_busy: Vec<SimTime>,
    stats: NetStats,
}

impl Switched {
    /// A switch connecting `hosts` hosts with per-port `bandwidth_bps`.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_bps` is not strictly positive and finite.
    pub fn new(
        hosts: usize,
        bandwidth_bps: f64,
        latency: SimTime,
        per_message_overhead_bytes: u64,
    ) -> Self {
        assert!(
            bandwidth_bps.is_finite() && bandwidth_bps > 0.0,
            "invalid bandwidth {bandwidth_bps}"
        );
        Switched {
            bandwidth_bps,
            latency,
            per_message_overhead_bytes,
            tx_busy: vec![0; hosts],
            rx_busy: vec![0; hosts],
            stats: NetStats::default(),
        }
    }
}

impl NetModel for Switched {
    fn transfer(&mut self, now: SimTime, src: HostId, dst: HostId, bytes: u64) -> SimTime {
        self.stats.messages += 1;
        self.stats.payload_bytes += bytes;
        if src == dst {
            self.stats.wire_bytes += bytes;
            return now;
        }
        let wire = bytes + self.per_message_overhead_bytes;
        self.stats.wire_bytes += wire;
        let tx_port = &mut self.tx_busy[src.0 as usize];
        let tx_start = (*tx_port).max(now);
        self.stats.queueing_ns += tx_start - now;
        let tx = frame_time(wire, self.bandwidth_bps);
        *tx_port = tx_start + tx;
        // The frame reaches the destination port after latency, then must
        // also serialize on the receive port.
        let rx_port = &mut self.rx_busy[dst.0 as usize];
        let rx_start = (*rx_port).max(tx_start + self.latency);
        *rx_port = rx_start + tx;
        rx_start + tx
    }

    fn stats(&self) -> NetStats {
        self.stats
    }
}

/// Infinite-bandwidth network with a fixed latency. Useful for isolating
/// CPU effects in ablations and for fast functional tests.
#[derive(Debug, Clone, Default)]
pub struct IdealNet {
    latency: SimTime,
    stats: NetStats,
}

impl IdealNet {
    /// An ideal network with the given fixed latency.
    pub fn new(latency: SimTime) -> Self {
        IdealNet { latency, stats: NetStats::default() }
    }
}

impl NetModel for IdealNet {
    fn transfer(&mut self, now: SimTime, src: HostId, dst: HostId, bytes: u64) -> SimTime {
        self.stats.messages += 1;
        self.stats.payload_bytes += bytes;
        self.stats.wire_bytes += bytes;
        if src == dst {
            now
        } else {
            now + self.latency
        }
    }

    fn stats(&self) -> NetStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const H0: HostId = HostId(0);
    const H1: HostId = HostId(1);
    const H2: HostId = HostId(2);

    #[test]
    fn shared_bus_serializes_the_medium() {
        // 8 bits/ns would be absurd; use 1e9 bps = 1 bit/ns => 8 ns/byte.
        let mut bus = SharedBus::new(1e9, 5, 0);
        let a1 = bus.transfer(0, H0, H1, 100); // tx 800 ns + 5
        assert_eq!(a1, 805);
        // Second message from a different host must wait for the medium.
        let a2 = bus.transfer(0, H2, H1, 100);
        assert_eq!(a2, 1605);
        let s = bus.stats();
        assert_eq!(s.messages, 2);
        assert_eq!(s.queueing_ns, 800);
    }

    #[test]
    fn shared_bus_loopback_is_free() {
        let mut bus = SharedBus::ethernet_10mbit();
        assert_eq!(bus.transfer(42, H0, H0, 1 << 20), 42);
        // Medium untouched: a real transfer starts immediately.
        let a = bus.transfer(42, H0, H1, 0);
        assert_eq!(a, 42 + frame_time(60, 10e6) + crate::MILLI);
    }

    #[test]
    fn shared_bus_overhead_bytes_counted() {
        let mut bus = SharedBus::new(8e9, 0, 40); // 1 ns/byte
        let a = bus.transfer(0, H0, H1, 60);
        assert_eq!(a, 100);
        assert_eq!(bus.stats().wire_bytes, 100);
        assert_eq!(bus.stats().payload_bytes, 60);
    }

    #[test]
    fn switched_ports_are_independent() {
        let mut sw = Switched::new(4, 8e9, 10, 0); // 1 ns/byte
                                                   // Two disjoint pairs transfer concurrently.
        let a = sw.transfer(0, H0, H1, 1000);
        let b = sw.transfer(0, H2, HostId(3), 1000);
        // Cut-through: arrival = tx_start + latency + frame time.
        assert_eq!(a, 10 + 1000);
        assert_eq!(b, a);
        assert_eq!(sw.stats().queueing_ns, 0);
    }

    #[test]
    fn switched_tx_port_serializes() {
        let mut sw = Switched::new(4, 8e9, 10, 0);
        let a = sw.transfer(0, H0, H1, 1000);
        let b = sw.transfer(0, H0, H2, 1000); // same sender: queues on tx
        assert_eq!(a, 1010);
        assert_eq!(b, 2010, "b should queue one frame time behind a");
        assert_eq!(sw.stats().queueing_ns, 1000);
    }

    #[test]
    fn switched_rx_port_serializes() {
        let mut sw = Switched::new(4, 8e9, 0, 0);
        let a = sw.transfer(0, H0, H1, 1000);
        let b = sw.transfer(0, H2, H1, 1000); // same receiver
        assert_eq!(a, 1000);
        assert_eq!(b, 2000); // rx busy until 1000, then 1000 ns frame
    }

    #[test]
    fn ethernet_presets_are_ordered_by_speed() {
        let mut e10 = SharedBus::ethernet_10mbit();
        let mut e100 = SharedBus::ethernet_100mbit();
        let t10 = e10.transfer(0, H0, H1, 100_000);
        let t100 = e100.transfer(0, H0, H1, 100_000);
        assert!(t100 < t10, "100 Mbit must be faster: {t100} vs {t10}");
    }

    #[test]
    fn fifo_per_pair_holds_on_all_models() {
        let mut models: Vec<Box<dyn NetModel>> = vec![
            Box::new(SharedBus::ethernet_10mbit()),
            Box::new(Switched::new(4, 10e6, crate::MILLI, 60)),
            Box::new(IdealNet::new(crate::MILLI)),
        ];
        for m in &mut models {
            let mut last = 0;
            for i in 0..20u64 {
                let t = m.transfer(i * 10, H0, H1, (i * 137) % 2000);
                assert!(t >= last, "FIFO violated: {t} < {last}");
                last = t;
            }
        }
    }

    #[test]
    fn ideal_net_has_no_contention() {
        let mut net = IdealNet::new(100);
        assert_eq!(net.transfer(0, H0, H1, 1 << 30), 100);
        assert_eq!(net.transfer(0, H1, H0, 1 << 30), 100);
        assert_eq!(net.transfer(7, H0, H0, 1), 7);
        assert_eq!(net.stats().messages, 3);
    }
}
