//! The discrete-event engine: a virtual clock plus a priority queue of
//! scheduled callbacks.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulated time in nanoseconds since the start of the run.
pub type SimTime = u64;

type Callback<W> = Box<dyn FnOnce(&mut Engine<W>, &mut W)>;

struct Slot<W> {
    time: SimTime,
    seq: u64,
    cb: Callback<W>,
}

impl<W> PartialEq for Slot<W> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<W> Eq for Slot<W> {}
impl<W> PartialOrd for Slot<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Slot<W> {
    // Reversed: BinaryHeap is a max-heap and we want the earliest event.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A deterministic discrete-event engine over an arbitrary world type `W`.
///
/// Events are closures receiving `(&mut Engine, &mut W)`. Two events
/// scheduled for the same instant fire in the order they were scheduled,
/// so runs are reproducible.
///
/// # Example
///
/// ```
/// let mut en: msgr_sim::Engine<Vec<u32>> = msgr_sim::Engine::new();
/// en.schedule_at(10, |_, log| log.push(1));
/// en.schedule_at(5, |_, log| log.push(0));
/// let mut log = Vec::new();
/// en.run(&mut log);
/// assert_eq!(log, [0, 1]);
/// ```
pub struct Engine<W> {
    now: SimTime,
    seq: u64,
    processed: u64,
    queue: BinaryHeap<Slot<W>>,
}

impl<W> Default for Engine<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> std::fmt::Debug for Engine<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("processed", &self.processed)
            .finish()
    }
}

impl<W> Engine<W> {
    /// Create an engine with the clock at zero and an empty queue.
    pub fn new() -> Self {
        Engine { now: 0, seq: 0, processed: 0, queue: BinaryHeap::new() }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still queued.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedule `cb` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the past (`time < self.now()`); scheduling
    /// *at* the current instant is allowed and fires after all
    /// previously-scheduled events for this instant.
    pub fn schedule_at(
        &mut self,
        time: SimTime,
        cb: impl FnOnce(&mut Engine<W>, &mut W) + 'static,
    ) {
        assert!(time >= self.now, "cannot schedule into the past: t={time} < now={}", self.now);
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Slot { time, seq, cb: Box::new(cb) });
    }

    /// Schedule `cb` after a delay of `dt` from now (saturating).
    pub fn schedule_in(&mut self, dt: SimTime, cb: impl FnOnce(&mut Engine<W>, &mut W) + 'static) {
        self.schedule_at(self.now.saturating_add(dt), cb);
    }

    /// Execute the single earliest pending event. Returns `false` when the
    /// queue is empty (the clock does not advance in that case).
    pub fn step(&mut self, world: &mut W) -> bool {
        match self.queue.pop() {
            None => false,
            Some(slot) => {
                debug_assert!(slot.time >= self.now);
                self.now = slot.time;
                self.processed += 1;
                (slot.cb)(self, world);
                true
            }
        }
    }

    /// Run until the queue drains. Returns the number of events executed.
    pub fn run(&mut self, world: &mut W) -> u64 {
        let start = self.processed;
        while self.step(world) {}
        self.processed - start
    }

    /// Run until the queue drains or the clock would pass `deadline`.
    /// Events scheduled exactly at `deadline` are executed.
    pub fn run_until(&mut self, world: &mut W, deadline: SimTime) -> u64 {
        let start = self.processed;
        while let Some(slot) = self.queue.peek() {
            if slot.time > deadline {
                break;
            }
            self.step(world);
        }
        self.processed - start
    }

    /// Run with a hard event-count budget; returns `true` if the queue
    /// drained within the budget. Guards tests against accidental
    /// non-termination (e.g. a messenger bouncing forever).
    pub fn run_bounded(&mut self, world: &mut W, max_events: u64) -> bool {
        for _ in 0..max_events {
            if !self.step(world) {
                return true;
            }
        }
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_time_order() {
        let mut en: Engine<Vec<u64>> = Engine::new();
        let mut log = Vec::new();
        en.schedule_at(30, |_, l: &mut Vec<u64>| l.push(30));
        en.schedule_at(10, |_, l| l.push(10));
        en.schedule_at(20, |_, l| l.push(20));
        en.run(&mut log);
        assert_eq!(log, vec![10, 20, 30]);
        assert_eq!(en.now(), 30);
        assert_eq!(en.processed(), 3);
    }

    #[test]
    fn ties_fire_in_schedule_order() {
        let mut en: Engine<Vec<u32>> = Engine::new();
        let mut log = Vec::new();
        for i in 0..16 {
            en.schedule_at(7, move |_, l: &mut Vec<u32>| l.push(i));
        }
        en.run(&mut log);
        assert_eq!(log, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut en: Engine<u32> = Engine::new();
        fn chain(en: &mut Engine<u32>, depth: u32) {
            if depth > 0 {
                en.schedule_in(1, move |en, count| {
                    *count += 1;
                    chain(en, depth - 1);
                });
            }
        }
        chain(&mut en, 5);
        let mut count = 0;
        en.run(&mut count);
        assert_eq!(count, 5);
        assert_eq!(en.now(), 5);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_in_the_past_panics() {
        let mut en: Engine<()> = Engine::new();
        en.schedule_at(10, |en, _| {
            en.schedule_at(5, |_, _| {});
        });
        en.run(&mut ());
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut en: Engine<Vec<u64>> = Engine::new();
        let mut log = Vec::new();
        for t in [5u64, 10, 15, 20] {
            en.schedule_at(t, move |_, l: &mut Vec<u64>| l.push(t));
        }
        let n = en.run_until(&mut log, 15);
        assert_eq!(n, 3);
        assert_eq!(log, vec![5, 10, 15]);
        assert_eq!(en.pending(), 1);
        en.run(&mut log);
        assert_eq!(log, vec![5, 10, 15, 20]);
    }

    #[test]
    fn run_bounded_reports_drain() {
        let mut en: Engine<()> = Engine::new();
        for t in 0..10 {
            en.schedule_at(t, |_, _| {});
        }
        assert!(!en.run_bounded(&mut (), 5));
        assert!(en.run_bounded(&mut (), 100));
    }

    #[test]
    fn schedule_at_now_is_allowed() {
        let mut en: Engine<Vec<&'static str>> = Engine::new();
        let mut log = Vec::new();
        en.schedule_at(10, |en, l: &mut Vec<&'static str>| {
            l.push("outer");
            en.schedule_at(en.now(), |_, l| l.push("inner"));
        });
        en.run(&mut log);
        assert_eq!(log, vec!["outer", "inner"]);
        assert_eq!(en.now(), 10);
    }
}
