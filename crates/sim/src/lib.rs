//! # msgr-sim — deterministic discrete-event cluster simulator
//!
//! This crate is the hardware substrate for the MESSENGERS reproduction.
//! The paper evaluated on an Ethernet LAN of SPARCstation 5s with 1–32
//! machines; we do not have that testbed, so we simulate it: a virtual
//! clock in integer nanoseconds, per-host CPUs modeled as FIFO resources,
//! and pluggable network models (shared-bus Ethernet with medium
//! contention, a full-duplex switch, and an ideal network).
//!
//! The simulator is *deterministic*: events are ordered by
//! `(time, insertion sequence)`, and all randomness goes through a seeded
//! [`DetRng`]. Running the same scenario twice produces identical event
//! traces, which the test suite relies on.
//!
//! ## Example
//!
//! ```
//! use msgr_sim::{Engine, SECOND};
//!
//! // The "world" is any user state threaded through event callbacks.
//! let mut engine: Engine<u64> = Engine::new();
//! engine.schedule_in(3 * SECOND, |en, hits| {
//!     *hits += 1;
//!     en.schedule_in(SECOND, |_, hits| *hits += 1);
//! });
//! let mut hits = 0u64;
//! engine.run(&mut hits);
//! assert_eq!(hits, 2);
//! assert_eq!(engine.now(), 4 * SECOND);
//! ```

#![warn(missing_docs)]

mod cpu;
mod engine;
mod fault;
mod net;
mod rng;
mod stats;

pub use cpu::Cpu;
pub use engine::{Engine, SimTime};
pub use fault::{CrashEvent, FaultInjector, FaultPlan, FrameFate};
pub use net::{HostId, IdealNet, NetModel, NetStats, SharedBus, Switched};
pub use rng::DetRng;
pub use stats::{install_key_validator, Counter, Histogram, Stats};

/// One microsecond in simulator time units (the unit is nanoseconds).
pub const MICRO: SimTime = 1_000;
/// One millisecond in simulator time units.
pub const MILLI: SimTime = 1_000_000;
/// One second in simulator time units.
pub const SECOND: SimTime = 1_000_000_000;

/// Convert a simulator time to floating-point seconds (for reporting).
pub fn to_secs(t: SimTime) -> f64 {
    t as f64 / SECOND as f64
}

/// Convert floating-point seconds to simulator time, saturating at zero.
pub fn from_secs(s: f64) -> SimTime {
    if s <= 0.0 {
        0
    } else {
        (s * SECOND as f64).round() as SimTime
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_round_trip() {
        assert_eq!(from_secs(1.5), 1_500_000_000);
        assert!((to_secs(2_500_000_000) - 2.5).abs() < 1e-12);
        assert_eq!(from_secs(-1.0), 0);
        assert_eq!(from_secs(0.0), 0);
    }
}
