//! Deterministic random numbers for simulations.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A seeded, reproducible random-number generator.
///
/// All stochastic choices inside a simulation (e.g. randomized daemon
/// selection) must go through one of these so that a scenario replays
/// identically given the same seed.
///
/// # Example
///
/// ```
/// let mut a = msgr_sim::DetRng::new(7);
/// let mut b = msgr_sim::DetRng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: SmallRng,
    seed: u64,
}

impl DetRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        DetRng { inner: SmallRng::seed_from_u64(seed), seed }
    }

    /// The seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        self.inner.gen_range(0..n)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Derive an independent child generator (e.g. one per host) that is
    /// stable under changes to how much randomness other components draw.
    pub fn fork(&self, stream: u64) -> DetRng {
        DetRng::new(self.seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(123);
        let mut b = DetRng::new(123);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = DetRng::new(99);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn forks_are_independent_of_parent_consumption() {
        let parent = DetRng::new(5);
        let mut f1 = parent.fork(1);
        let mut parent2 = DetRng::new(5);
        parent2.next_u64(); // consume some parent randomness
        let mut f1_again = parent2.fork(1);
        assert_eq!(f1.next_u64(), f1_again.next_u64());
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        DetRng::new(0).below(0);
    }
}
