//! Deterministic random numbers for simulations.
//!
//! The generator is an in-repo SplitMix64 (Steele, Lea & Flood 2014):
//! a 64-bit counter advanced by the golden-ratio increment, hashed
//! through two xor-shift-multiply rounds. It is tiny, passes BigCrush,
//! and — crucially for this workspace — has no external dependency, so
//! every stochastic choice in the system is reproducible from a seed
//! with nothing but this file.

/// SplitMix64 golden-ratio increment.
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded, reproducible random-number generator.
///
/// All stochastic choices inside a simulation (e.g. randomized daemon
/// selection) must go through one of these so that a scenario replays
/// identically given the same seed.
///
/// # Example
///
/// ```
/// let mut a = msgr_sim::DetRng::new(7);
/// let mut b = msgr_sim::DetRng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    state: u64,
    seed: u64,
}

impl DetRng {
    /// Create a generator from a 64-bit seed.
    ///
    /// Matches the published SplitMix64 exactly: the first draw of
    /// `DetRng::new(s)` equals the first output of `splitmix64(s)`.
    pub fn new(seed: u64) -> Self {
        DetRng { state: seed, seed }
    }

    /// The seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN);
        mix(self.state)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// Uses rejection sampling over the largest multiple of `n` that
    /// fits in a `u64`, so the result is exactly uniform.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        let zone = u64::MAX - u64::MAX % n;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.unit() * (hi - lo)
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Derive an independent child generator (e.g. one per host) that is
    /// stable under changes to how much randomness other components draw.
    pub fn fork(&self, stream: u64) -> DetRng {
        DetRng::new(self.seed ^ stream.wrapping_mul(GOLDEN))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(123);
        let mut b = DetRng::new(123);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = DetRng::new(99);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn below_covers_all_residues() {
        let mut r = DetRng::new(4);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[r.below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn unit_is_in_half_open_interval() {
        let mut r = DetRng::new(17);
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn splitmix_reference_vector() {
        // SplitMix64 reference outputs for seed 1234567 (from the
        // published C implementation in the JDK / Vigna's xoshiro site).
        let mut r = DetRng::new(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
        assert_eq!(r.next_u64(), 9817491932198370423);
    }

    #[test]
    fn forks_are_independent_of_parent_consumption() {
        let parent = DetRng::new(5);
        let mut f1 = parent.fork(1);
        let mut parent2 = DetRng::new(5);
        parent2.next_u64(); // consume some parent randomness
        let mut f1_again = parent2.fork(1);
        assert_eq!(f1.next_u64(), f1_again.next_u64());
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        DetRng::new(0).below(0);
    }
}
