//! Deterministic fault injection.
//!
//! A [`FaultPlan`] describes everything that may go wrong in a run: frame
//! loss, duplication, reordering delay on the network, and scheduled
//! crash/restart windows for individual hosts. The plan itself contains no
//! randomness — a [`FaultInjector`] pairs it with a seeded [`DetRng`] and
//! decides the fate of each frame, so the same `(plan, seed)` pair replays
//! the exact same fault sequence. The default plan is [`FaultPlan::none`],
//! under which no RNG is ever consulted and simulations behave exactly as
//! if this module did not exist.
//!
//! The network models in [`crate::net`] stay fault-free on purpose: they
//! answer "when would this frame arrive if it arrived", and the platform
//! layer consults the injector to decide whether (and how many times) it
//! actually does.

use crate::{DetRng, SimTime};

/// One scheduled host crash: the host goes silent at `at` and — for a
/// transient crash — recovers `down_for` nanoseconds later. Frames
/// addressed to it meanwhile are lost; its internal state survives
/// (fail-recover, not fail-stop).
///
/// `down_for: None` is a **permanent kill**: the host never comes back
/// and its volatile state is gone for good. Survivors can only recover
/// what was checkpointed to durable storage before the kill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashEvent {
    /// Index of the host that crashes (dense, 0-based — matches
    /// [`crate::HostId`]).
    pub host: u32,
    /// Simulated time at which the host goes down.
    pub at: SimTime,
    /// Length of the outage; the host accepts frames again at
    /// `at + down_for`. `None` means the host is dead forever.
    pub down_for: Option<SimTime>,
}

impl CrashEvent {
    /// A transient fail-recover outage of `down_for` nanoseconds.
    pub fn transient(host: u32, at: SimTime, down_for: SimTime) -> Self {
        CrashEvent { host, at, down_for: Some(down_for) }
    }

    /// A permanent kill: the host dies at `at` and never restarts.
    pub fn kill(host: u32, at: SimTime) -> Self {
        CrashEvent { host, at, down_for: None }
    }

    /// `true` iff this event is a permanent kill.
    pub fn is_kill(&self) -> bool {
        self.down_for.is_none()
    }

    /// End of the outage window: `at + down_for` for transient crashes,
    /// [`SimTime::MAX`] for permanent kills.
    pub fn until(&self) -> SimTime {
        match self.down_for {
            Some(d) => self.at.saturating_add(d),
            None => SimTime::MAX,
        }
    }
}

/// A deterministic description of what may fail during a run.
///
/// Probabilities are per frame and independent: a frame is first tested
/// for loss, then (if it survives) for duplication, then each delivered
/// copy for reordering delay. All values default to zero / empty via
/// [`FaultPlan::none`], which is also [`Default`].
///
/// # Example
///
/// ```
/// use msgr_sim::FaultPlan;
/// let plan = FaultPlan { drop_p: 0.1, ..FaultPlan::none() };
/// assert!(!plan.is_none());
/// assert!(FaultPlan::none().is_none());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Probability that a frame is silently dropped (it still occupies
    /// the medium — the bits were transmitted, just never understood).
    pub drop_p: f64,
    /// Probability that a delivered frame arrives twice.
    pub dup_p: f64,
    /// Probability that a delivered copy is delayed by a uniform extra
    /// amount in `[0, reorder_delay)`, breaking FIFO order per pair.
    pub reorder_p: f64,
    /// Maximum extra delay (exclusive) applied to reordered copies.
    pub reorder_delay: SimTime,
    /// Scheduled crash/restart windows, applied at absolute sim times.
    pub crashes: Vec<CrashEvent>,
}

impl FaultPlan {
    /// The benign plan: nothing fails. This is the default everywhere.
    pub fn none() -> Self {
        FaultPlan { drop_p: 0.0, dup_p: 0.0, reorder_p: 0.0, reorder_delay: 0, crashes: Vec::new() }
    }

    /// A link-fault-only plan dropping each frame with probability `p`.
    pub fn lossy(p: f64) -> Self {
        FaultPlan { drop_p: p, ..FaultPlan::none() }
    }

    /// `true` iff this plan can never inject a fault. Platforms use this
    /// to skip the fault path entirely (no RNG draws, no bookkeeping),
    /// keeping fault-free runs bit-identical to a build without the
    /// fault layer.
    pub fn is_none(&self) -> bool {
        self.drop_p == 0.0 && self.dup_p == 0.0 && self.reorder_p == 0.0 && self.crashes.is_empty()
    }

    /// `true` iff the plan contains at least one permanent kill
    /// (`down_for: None`). Platforms use this to arm the crash-recovery
    /// machinery (failure detection, checkpointing, failover) only when
    /// a host can actually die for good.
    pub fn has_kills(&self) -> bool {
        self.crashes.iter().any(|c| c.is_kill())
    }

    /// Validate the plan against a cluster of `hosts` hosts.
    ///
    /// Checks everything [`FaultPlan::assert_valid`] checks, plus the
    /// crash schedule: every `host` index must be `< hosts`, no two
    /// crash windows for the same host may overlap (a permanent kill's
    /// window extends to infinity, so nothing may follow it), and the
    /// permanent kills must not claim a strict majority of the cluster —
    /// with more than `hosts / 2` daemons dead, burial quorums become
    /// impossible, so such plans are configuration errors, not chaos.
    /// Returns a human-readable description of the first problem found.
    pub fn validate(&self, hosts: usize) -> Result<(), String> {
        for (name, p) in
            [("drop_p", self.drop_p), ("dup_p", self.dup_p), ("reorder_p", self.reorder_p)]
        {
            if !(p.is_finite() && (0.0..1.0).contains(&p)) {
                return Err(format!("fault plan: {name} = {p} not in [0, 1)"));
            }
        }
        if self.reorder_p > 0.0 && self.reorder_delay == 0 {
            return Err("fault plan: reorder_p > 0 requires a positive reorder_delay".into());
        }
        let mut by_host: Vec<CrashEvent> = self.crashes.clone();
        by_host.sort_by_key(|c| (c.host, c.at));
        for c in &by_host {
            if c.host as usize >= hosts {
                return Err(format!(
                    "fault plan: crash host {} out of range (cluster has {hosts} host(s))",
                    c.host
                ));
            }
        }
        for w in by_host.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            if a.host == b.host && b.at < a.until() {
                return Err(format!(
                    "fault plan: overlapping crash windows for host {}: [{}, {}) and [{}, {})",
                    a.host,
                    a.at,
                    a.until(),
                    b.at,
                    b.until(),
                ));
            }
        }
        let mut kill_hosts: Vec<u32> =
            by_host.iter().filter(|c| c.is_kill()).map(|c| c.host).collect();
        kill_hosts.dedup(); // by_host is sorted; one overlap-checked kill per host anyway
        if kill_hosts.len() * 2 > hosts {
            return Err(format!(
                "fault plan: kills {} of {hosts} host(s) — a majority; the survivors could never \
                 form a burial quorum, so no checkpoint would ever be restored. Kill fewer than \
                 half, or grow the cluster.",
                kill_hosts.len()
            ));
        }
        Ok(())
    }

    /// Validate the plan's parameters.
    ///
    /// # Panics
    ///
    /// Panics if any probability is not a finite value in `[0, 1)`, or
    /// if reordering is enabled with a zero `reorder_delay`.
    pub fn assert_valid(&self) {
        for (name, p) in
            [("drop_p", self.drop_p), ("dup_p", self.dup_p), ("reorder_p", self.reorder_p)]
        {
            assert!(p.is_finite() && (0.0..1.0).contains(&p), "{name} = {p} not in [0, 1)");
        }
        assert!(
            self.reorder_p == 0.0 || self.reorder_delay > 0,
            "reorder_p > 0 requires a positive reorder_delay"
        );
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// The fate of one frame, as decided by a [`FaultInjector`]: how many
/// copies arrive (0 = dropped, 2 = duplicated) and the extra reorder
/// delay applied to each copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameFate {
    /// Number of copies delivered (0, 1, or 2).
    pub copies: u8,
    /// Extra delay added to each delivered copy's arrival time.
    pub delays: [SimTime; 2],
}

impl FrameFate {
    /// The fate of every frame when faults are disabled.
    pub fn intact() -> Self {
        FrameFate { copies: 1, delays: [0, 0] }
    }

    /// `true` iff the frame never arrives.
    pub fn dropped(&self) -> bool {
        self.copies == 0
    }
}

/// A [`FaultPlan`] bound to a seeded RNG: the per-run oracle that decides
/// each frame's [`FrameFate`]. Draws happen in frame-send order, which the
/// deterministic engine makes reproducible.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: DetRng,
}

impl FaultInjector {
    /// Bind `plan` to a dedicated RNG (fork one off the run's master
    /// seed so fault draws never perturb other random streams).
    ///
    /// # Panics
    ///
    /// Panics if the plan fails [`FaultPlan::assert_valid`].
    pub fn new(plan: FaultPlan, rng: DetRng) -> Self {
        plan.assert_valid();
        FaultInjector { plan, rng }
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Decide the fate of the next frame. Only consults the RNG for
    /// fault classes with non-zero probability, so plans that disable a
    /// class draw nothing for it.
    pub fn fate(&mut self) -> FrameFate {
        let p = &self.plan;
        if p.drop_p > 0.0 && self.rng.chance(p.drop_p) {
            return FrameFate { copies: 0, delays: [0, 0] };
        }
        let copies: u8 = if p.dup_p > 0.0 && self.rng.chance(p.dup_p) { 2 } else { 1 };
        let mut delays = [0, 0];
        for d in delays.iter_mut().take(copies as usize) {
            if p.reorder_p > 0.0 && self.rng.chance(p.reorder_p) {
                *d = self.rng.below(p.reorder_delay);
            }
        }
        FrameFate { copies, delays }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn injector(plan: FaultPlan, seed: u64) -> FaultInjector {
        FaultInjector::new(plan, DetRng::new(seed))
    }

    #[test]
    fn none_plan_is_none_and_valid() {
        let p = FaultPlan::none();
        assert!(p.is_none());
        p.assert_valid();
        assert_eq!(p, FaultPlan::default());
    }

    #[test]
    fn any_nonzero_knob_makes_the_plan_active() {
        assert!(!FaultPlan::lossy(0.01).is_none());
        assert!(!FaultPlan { dup_p: 0.5, ..FaultPlan::none() }.is_none());
        assert!(!FaultPlan { reorder_p: 0.5, reorder_delay: 10, ..FaultPlan::none() }.is_none());
        let crash = CrashEvent::transient(0, 100, 50);
        assert!(!FaultPlan { crashes: vec![crash], ..FaultPlan::none() }.is_none());
    }

    #[test]
    fn has_kills_distinguishes_permanent_from_transient() {
        let transient =
            FaultPlan { crashes: vec![CrashEvent::transient(0, 100, 50)], ..FaultPlan::none() };
        assert!(!transient.has_kills());
        let kill = FaultPlan { crashes: vec![CrashEvent::kill(1, 100)], ..FaultPlan::none() };
        assert!(kill.has_kills());
        assert!(CrashEvent::kill(1, 100).is_kill());
        assert_eq!(CrashEvent::kill(1, 100).until(), SimTime::MAX);
        assert_eq!(CrashEvent::transient(1, 100, 50).until(), 150);
    }

    #[test]
    fn validate_accepts_sane_schedules() {
        let plan = FaultPlan {
            drop_p: 0.1,
            crashes: vec![
                CrashEvent::transient(0, 0, 100),
                CrashEvent::transient(0, 100, 100), // adjacent, not overlapping
                CrashEvent::transient(1, 50, 100),
                CrashEvent::kill(2, 500),
            ],
            ..FaultPlan::none()
        };
        plan.validate(3).expect("plan is valid");
    }

    #[test]
    fn validate_rejects_out_of_range_hosts() {
        let plan = FaultPlan { crashes: vec![CrashEvent::kill(3, 0)], ..FaultPlan::none() };
        let err = plan.validate(3).unwrap_err();
        assert!(err.contains("host 3 out of range"), "{err}");
    }

    #[test]
    fn validate_rejects_overlapping_windows_per_host() {
        let plan = FaultPlan {
            crashes: vec![CrashEvent::transient(0, 0, 100), CrashEvent::transient(0, 99, 10)],
            ..FaultPlan::none()
        };
        let err = plan.validate(4).unwrap_err();
        assert!(err.contains("overlapping crash windows for host 0"), "{err}");
        // Distinct hosts may overlap freely.
        let plan = FaultPlan {
            crashes: vec![CrashEvent::transient(0, 0, 100), CrashEvent::transient(1, 50, 100)],
            ..FaultPlan::none()
        };
        plan.validate(4).expect("cross-host overlap is fine");
    }

    #[test]
    fn validate_rejects_anything_after_a_kill() {
        let plan = FaultPlan {
            crashes: vec![CrashEvent::kill(0, 100), CrashEvent::transient(0, 500, 10)],
            ..FaultPlan::none()
        };
        let err = plan.validate(4).unwrap_err();
        assert!(err.contains("overlapping"), "{err}");
    }

    #[test]
    fn validate_rejects_majority_kills() {
        let kills = |hosts: &[u32]| FaultPlan {
            crashes: hosts.iter().map(|&h| CrashEvent::kill(h, 100 + u64::from(h))).collect(),
            ..FaultPlan::none()
        };
        // Exactly half may die; one past half may not.
        kills(&[0, 1]).validate(4).expect("2 of 4 is not a majority");
        kills(&[1, 3, 5]).validate(6).expect("3 of 6 is not a majority");
        let err = kills(&[0, 1]).validate(3).unwrap_err();
        assert!(err.contains("kills 2 of 3"), "{err}");
        assert!(err.contains("quorum"), "{err}");
        let err = kills(&[0, 1, 2, 4, 6]).validate(8).unwrap_err();
        assert!(err.contains("kills 5 of 8"), "{err}");
        // Transient crashes don't count: the host comes back.
        let mut plan = kills(&[2]);
        plan.crashes.push(CrashEvent::transient(0, 0, 50));
        plan.crashes.push(CrashEvent::transient(1, 0, 50));
        plan.validate(3).expect("transients aren't kills");
    }

    #[test]
    fn validate_rejects_bad_probabilities() {
        let err = FaultPlan::lossy(1.0).validate(1).unwrap_err();
        assert!(err.contains("drop_p"), "{err}");
        let plan = FaultPlan { reorder_p: 0.5, reorder_delay: 0, ..FaultPlan::none() };
        let err = plan.validate(1).unwrap_err();
        assert!(err.contains("reorder_delay"), "{err}");
    }

    #[test]
    #[should_panic(expected = "drop_p")]
    fn probability_of_one_is_rejected() {
        // p = 1.0 would retransmit forever; the plan must stay < 1.
        FaultPlan::lossy(1.0).assert_valid();
    }

    #[test]
    #[should_panic(expected = "reorder_delay")]
    fn reordering_requires_a_delay_window() {
        FaultPlan { reorder_p: 0.5, reorder_delay: 0, ..FaultPlan::none() }.assert_valid();
    }

    #[test]
    fn same_seed_same_fates() {
        let plan = FaultPlan {
            drop_p: 0.2,
            dup_p: 0.2,
            reorder_p: 0.2,
            reorder_delay: 1000,
            ..FaultPlan::none()
        };
        let mut a = injector(plan.clone(), 9);
        let mut b = injector(plan, 9);
        for _ in 0..256 {
            assert_eq!(a.fate(), b.fate());
        }
    }

    #[test]
    fn benign_plan_never_touches_frames() {
        let mut inj = injector(FaultPlan::none(), 1);
        for _ in 0..64 {
            assert_eq!(inj.fate(), FrameFate::intact());
        }
    }

    #[test]
    fn fates_cover_all_classes_at_high_rates() {
        let plan = FaultPlan {
            drop_p: 0.3,
            dup_p: 0.3,
            reorder_p: 0.3,
            reorder_delay: 500,
            ..FaultPlan::none()
        };
        let mut inj = injector(plan, 7);
        let (mut drops, mut dups, mut delayed) = (0u32, 0u32, 0u32);
        for _ in 0..2000 {
            let f = inj.fate();
            if f.dropped() {
                drops += 1;
            }
            if f.copies == 2 {
                dups += 1;
            }
            if f.delays.iter().any(|&d| d > 0) {
                delayed += 1;
            }
            for &d in &f.delays {
                assert!(d < 500);
            }
        }
        assert!(drops > 400 && drops < 800, "drops = {drops}");
        assert!(dups > 250, "dups = {dups}");
        assert!(delayed > 250, "delayed = {delayed}");
    }
}
