//! Deterministic fault injection.
//!
//! A [`FaultPlan`] describes everything that may go wrong in a run: frame
//! loss, duplication, reordering delay on the network, and scheduled
//! crash/restart windows for individual hosts. The plan itself contains no
//! randomness — a [`FaultInjector`] pairs it with a seeded [`DetRng`] and
//! decides the fate of each frame, so the same `(plan, seed)` pair replays
//! the exact same fault sequence. The default plan is [`FaultPlan::none`],
//! under which no RNG is ever consulted and simulations behave exactly as
//! if this module did not exist.
//!
//! The network models in [`crate::net`] stay fault-free on purpose: they
//! answer "when would this frame arrive if it arrived", and the platform
//! layer consults the injector to decide whether (and how many times) it
//! actually does.

use crate::{DetRng, SimTime};

/// One scheduled host crash: the host goes silent at `at` and recovers
/// `down_for` nanoseconds later. Frames addressed to it meanwhile are
/// lost; its internal state survives (fail-recover, not fail-stop).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashEvent {
    /// Index of the host that crashes (dense, 0-based — matches
    /// [`crate::HostId`]).
    pub host: u32,
    /// Simulated time at which the host goes down.
    pub at: SimTime,
    /// Length of the outage; the host accepts frames again at
    /// `at + down_for`.
    pub down_for: SimTime,
}

/// A deterministic description of what may fail during a run.
///
/// Probabilities are per frame and independent: a frame is first tested
/// for loss, then (if it survives) for duplication, then each delivered
/// copy for reordering delay. All values default to zero / empty via
/// [`FaultPlan::none`], which is also [`Default`].
///
/// # Example
///
/// ```
/// use msgr_sim::FaultPlan;
/// let plan = FaultPlan { drop_p: 0.1, ..FaultPlan::none() };
/// assert!(!plan.is_none());
/// assert!(FaultPlan::none().is_none());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Probability that a frame is silently dropped (it still occupies
    /// the medium — the bits were transmitted, just never understood).
    pub drop_p: f64,
    /// Probability that a delivered frame arrives twice.
    pub dup_p: f64,
    /// Probability that a delivered copy is delayed by a uniform extra
    /// amount in `[0, reorder_delay)`, breaking FIFO order per pair.
    pub reorder_p: f64,
    /// Maximum extra delay (exclusive) applied to reordered copies.
    pub reorder_delay: SimTime,
    /// Scheduled crash/restart windows, applied at absolute sim times.
    pub crashes: Vec<CrashEvent>,
}

impl FaultPlan {
    /// The benign plan: nothing fails. This is the default everywhere.
    pub fn none() -> Self {
        FaultPlan { drop_p: 0.0, dup_p: 0.0, reorder_p: 0.0, reorder_delay: 0, crashes: Vec::new() }
    }

    /// A link-fault-only plan dropping each frame with probability `p`.
    pub fn lossy(p: f64) -> Self {
        FaultPlan { drop_p: p, ..FaultPlan::none() }
    }

    /// `true` iff this plan can never inject a fault. Platforms use this
    /// to skip the fault path entirely (no RNG draws, no bookkeeping),
    /// keeping fault-free runs bit-identical to a build without the
    /// fault layer.
    pub fn is_none(&self) -> bool {
        self.drop_p == 0.0 && self.dup_p == 0.0 && self.reorder_p == 0.0 && self.crashes.is_empty()
    }

    /// Validate the plan's parameters.
    ///
    /// # Panics
    ///
    /// Panics if any probability is not a finite value in `[0, 1)`, or
    /// if reordering is enabled with a zero `reorder_delay`.
    pub fn assert_valid(&self) {
        for (name, p) in
            [("drop_p", self.drop_p), ("dup_p", self.dup_p), ("reorder_p", self.reorder_p)]
        {
            assert!(p.is_finite() && (0.0..1.0).contains(&p), "{name} = {p} not in [0, 1)");
        }
        assert!(
            self.reorder_p == 0.0 || self.reorder_delay > 0,
            "reorder_p > 0 requires a positive reorder_delay"
        );
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// The fate of one frame, as decided by a [`FaultInjector`]: how many
/// copies arrive (0 = dropped, 2 = duplicated) and the extra reorder
/// delay applied to each copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameFate {
    /// Number of copies delivered (0, 1, or 2).
    pub copies: u8,
    /// Extra delay added to each delivered copy's arrival time.
    pub delays: [SimTime; 2],
}

impl FrameFate {
    /// The fate of every frame when faults are disabled.
    pub fn intact() -> Self {
        FrameFate { copies: 1, delays: [0, 0] }
    }

    /// `true` iff the frame never arrives.
    pub fn dropped(&self) -> bool {
        self.copies == 0
    }
}

/// A [`FaultPlan`] bound to a seeded RNG: the per-run oracle that decides
/// each frame's [`FrameFate`]. Draws happen in frame-send order, which the
/// deterministic engine makes reproducible.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: DetRng,
}

impl FaultInjector {
    /// Bind `plan` to a dedicated RNG (fork one off the run's master
    /// seed so fault draws never perturb other random streams).
    ///
    /// # Panics
    ///
    /// Panics if the plan fails [`FaultPlan::assert_valid`].
    pub fn new(plan: FaultPlan, rng: DetRng) -> Self {
        plan.assert_valid();
        FaultInjector { plan, rng }
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Decide the fate of the next frame. Only consults the RNG for
    /// fault classes with non-zero probability, so plans that disable a
    /// class draw nothing for it.
    pub fn fate(&mut self) -> FrameFate {
        let p = &self.plan;
        if p.drop_p > 0.0 && self.rng.chance(p.drop_p) {
            return FrameFate { copies: 0, delays: [0, 0] };
        }
        let copies: u8 = if p.dup_p > 0.0 && self.rng.chance(p.dup_p) { 2 } else { 1 };
        let mut delays = [0, 0];
        for d in delays.iter_mut().take(copies as usize) {
            if p.reorder_p > 0.0 && self.rng.chance(p.reorder_p) {
                *d = self.rng.below(p.reorder_delay);
            }
        }
        FrameFate { copies, delays }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn injector(plan: FaultPlan, seed: u64) -> FaultInjector {
        FaultInjector::new(plan, DetRng::new(seed))
    }

    #[test]
    fn none_plan_is_none_and_valid() {
        let p = FaultPlan::none();
        assert!(p.is_none());
        p.assert_valid();
        assert_eq!(p, FaultPlan::default());
    }

    #[test]
    fn any_nonzero_knob_makes_the_plan_active() {
        assert!(!FaultPlan::lossy(0.01).is_none());
        assert!(!FaultPlan { dup_p: 0.5, ..FaultPlan::none() }.is_none());
        assert!(!FaultPlan { reorder_p: 0.5, reorder_delay: 10, ..FaultPlan::none() }.is_none());
        let crash = CrashEvent { host: 0, at: 100, down_for: 50 };
        assert!(!FaultPlan { crashes: vec![crash], ..FaultPlan::none() }.is_none());
    }

    #[test]
    #[should_panic(expected = "drop_p")]
    fn probability_of_one_is_rejected() {
        // p = 1.0 would retransmit forever; the plan must stay < 1.
        FaultPlan::lossy(1.0).assert_valid();
    }

    #[test]
    #[should_panic(expected = "reorder_delay")]
    fn reordering_requires_a_delay_window() {
        FaultPlan { reorder_p: 0.5, reorder_delay: 0, ..FaultPlan::none() }.assert_valid();
    }

    #[test]
    fn same_seed_same_fates() {
        let plan = FaultPlan {
            drop_p: 0.2,
            dup_p: 0.2,
            reorder_p: 0.2,
            reorder_delay: 1000,
            ..FaultPlan::none()
        };
        let mut a = injector(plan.clone(), 9);
        let mut b = injector(plan, 9);
        for _ in 0..256 {
            assert_eq!(a.fate(), b.fate());
        }
    }

    #[test]
    fn benign_plan_never_touches_frames() {
        let mut inj = injector(FaultPlan::none(), 1);
        for _ in 0..64 {
            assert_eq!(inj.fate(), FrameFate::intact());
        }
    }

    #[test]
    fn fates_cover_all_classes_at_high_rates() {
        let plan = FaultPlan {
            drop_p: 0.3,
            dup_p: 0.3,
            reorder_p: 0.3,
            reorder_delay: 500,
            ..FaultPlan::none()
        };
        let mut inj = injector(plan, 7);
        let (mut drops, mut dups, mut delayed) = (0u32, 0u32, 0u32);
        for _ in 0..2000 {
            let f = inj.fate();
            if f.dropped() {
                drops += 1;
            }
            if f.copies == 2 {
                dups += 1;
            }
            if f.delays.iter().any(|&d| d > 0) {
                delayed += 1;
            }
            for &d in &f.delays {
                assert!(d < 500);
            }
        }
        assert!(drops > 400 && drops < 800, "drops = {drops}");
        assert!(dups > 250, "dups = {dups}");
        assert!(delayed > 250, "delayed = {delayed}");
    }
}
