//! Property-based tests for the discrete-event engine.

use msgr_sim::{Engine, SimTime};
use proptest::prelude::*;

proptest! {
    /// Events fire in nondecreasing time order regardless of schedule
    /// order, and ties fire in insertion order.
    #[test]
    fn events_fire_in_time_then_insertion_order(times in proptest::collection::vec(0u64..1000, 1..64)) {
        let mut en: Engine<Vec<(SimTime, usize)>> = Engine::new();
        for (i, &t) in times.iter().enumerate() {
            en.schedule_at(t, move |en, log: &mut Vec<(SimTime, usize)>| {
                log.push((en.now(), i));
            });
        }
        let mut log = Vec::new();
        en.run(&mut log);
        prop_assert_eq!(log.len(), times.len());
        for w in log.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "insertion order violated on tie");
            }
        }
        // The clock ends at the max scheduled time.
        prop_assert_eq!(en.now(), times.iter().copied().max().unwrap());
    }

    /// Cascading events (each schedules the next) preserve determinism:
    /// two identical runs produce identical traces.
    #[test]
    fn cascades_are_deterministic(seed_times in proptest::collection::vec(0u64..100, 1..16)) {
        fn run(times: &[u64]) -> Vec<SimTime> {
            let mut en: Engine<Vec<SimTime>> = Engine::new();
            for &t in times {
                en.schedule_at(t, move |en, log: &mut Vec<SimTime>| {
                    log.push(en.now());
                    if log.len() < 64 {
                        en.schedule_in(t + 1, |en, log| log.push(en.now()));
                    }
                });
            }
            let mut log = Vec::new();
            en.run(&mut log);
            log
        }
        prop_assert_eq!(run(&seed_times), run(&seed_times));
    }

    /// run_until never executes past the deadline and leaves the rest
    /// intact.
    #[test]
    fn run_until_partitions_cleanly(
        times in proptest::collection::vec(0u64..1000, 1..64),
        deadline in 0u64..1000,
    ) {
        let mut en: Engine<Vec<SimTime>> = Engine::new();
        for &t in &times {
            en.schedule_at(t, move |en, log: &mut Vec<SimTime>| log.push(en.now()));
        }
        let mut log = Vec::new();
        en.run_until(&mut log, deadline);
        let early = times.iter().filter(|&&t| t <= deadline).count();
        prop_assert_eq!(log.len(), early);
        prop_assert!(log.iter().all(|&t| t <= deadline));
        en.run(&mut log);
        prop_assert_eq!(log.len(), times.len());
    }

    /// Shared-bus transfers are FIFO per pair and never earlier than the
    /// send time plus the frame time.
    #[test]
    fn shared_bus_arrivals_are_causal(
        sends in proptest::collection::vec((0u64..10_000, 0u32..4, 0u32..4, 1u64..10_000), 1..64)
    ) {
        use msgr_sim::{NetModel, SharedBus, HostId};
        let mut bus = SharedBus::new(1e9, 100, 32);
        let mut sorted = sends.clone();
        sorted.sort_by_key(|s| s.0);
        let mut last_arrival = 0;
        for (t, src, dst, bytes) in sorted {
            let arr = bus.transfer(t, HostId(src), HostId(dst), bytes);
            prop_assert!(arr >= t, "arrival before send");
            if src != dst {
                prop_assert!(arr >= last_arrival, "global FIFO on a shared medium");
                last_arrival = arr;
            }
        }
    }
}
