//! Property-based tests for the discrete-event engine.

use msgr_check::{check, prop_assert, prop_assert_eq, Source};
use msgr_sim::{Engine, SimTime};

/// Events fire in nondecreasing time order regardless of schedule
/// order, and ties fire in insertion order.
#[test]
fn events_fire_in_time_then_insertion_order() {
    check("events_fire_in_time_then_insertion_order", |s| {
        let times = s.vec_with(1..64, |s| s.u64_in(0..1000));
        let mut en: Engine<Vec<(SimTime, usize)>> = Engine::new();
        for (i, &t) in times.iter().enumerate() {
            en.schedule_at(t, move |en, log: &mut Vec<(SimTime, usize)>| {
                log.push((en.now(), i));
            });
        }
        let mut log = Vec::new();
        en.run(&mut log);
        prop_assert_eq!(log.len(), times.len());
        for w in log.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "insertion order violated on tie");
            }
        }
        // The clock ends at the max scheduled time.
        prop_assert_eq!(en.now(), times.iter().copied().max().unwrap());
        Ok(())
    });
}

/// Cascading events (each schedules the next) preserve determinism:
/// two identical runs produce identical traces.
#[test]
fn cascades_are_deterministic() {
    fn run(times: &[u64]) -> Vec<SimTime> {
        let mut en: Engine<Vec<SimTime>> = Engine::new();
        for &t in times {
            en.schedule_at(t, move |en, log: &mut Vec<SimTime>| {
                log.push(en.now());
                if log.len() < 64 {
                    en.schedule_in(t + 1, |en, log| log.push(en.now()));
                }
            });
        }
        let mut log = Vec::new();
        en.run(&mut log);
        log
    }
    check("cascades_are_deterministic", |s| {
        let seed_times = s.vec_with(1..16, |s| s.u64_in(0..100));
        prop_assert_eq!(run(&seed_times), run(&seed_times));
        Ok(())
    });
}

/// run_until never executes past the deadline and leaves the rest
/// intact.
#[test]
fn run_until_partitions_cleanly() {
    check("run_until_partitions_cleanly", |s| {
        let times = s.vec_with(1..64, |s| s.u64_in(0..1000));
        let deadline = s.u64_in(0..1000);
        let mut en: Engine<Vec<SimTime>> = Engine::new();
        for &t in &times {
            en.schedule_at(t, move |en, log: &mut Vec<SimTime>| log.push(en.now()));
        }
        let mut log = Vec::new();
        en.run_until(&mut log, deadline);
        let early = times.iter().filter(|&&t| t <= deadline).count();
        prop_assert_eq!(log.len(), early);
        prop_assert!(log.iter().all(|&t| t <= deadline));
        en.run(&mut log);
        prop_assert_eq!(log.len(), times.len());
        Ok(())
    });
}

/// Shared-bus transfers are FIFO per pair and never earlier than the
/// send time plus the frame time.
#[test]
fn shared_bus_arrivals_are_causal() {
    use msgr_sim::{HostId, NetModel, SharedBus};
    check("shared_bus_arrivals_are_causal", |s: &mut Source| {
        let sends = s.vec_with(1..64, |s| {
            (s.u64_in(0..10_000), s.u32_in(0..4), s.u32_in(0..4), s.u64_in(1..10_000))
        });
        let mut bus = SharedBus::new(1e9, 100, 32);
        let mut sorted = sends.clone();
        sorted.sort_by_key(|s| s.0);
        let mut last_arrival = 0;
        for (t, src, dst, bytes) in sorted {
            let arr = bus.transfer(t, HostId(src), HostId(dst), bytes);
            prop_assert!(arr >= t, "arrival before send");
            if src != dst {
                prop_assert!(arr >= last_arrival, "global FIFO on a shared medium");
                last_arrival = arr;
            }
        }
        Ok(())
    });
}
