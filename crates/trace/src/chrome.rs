//! Chrome `trace_event` export: converts a [`Trace`] into the JSON
//! object format that `chrome://tracing` and Perfetto load directly.
//!
//! Mapping:
//!
//! * each daemon becomes a process (`pid` = daemon id) with a named
//!   metadata record;
//! * messenger hops become **flow events**: an `s` (flow start) at the
//!   sending daemon and an `f` (flow finish, binding enclosing slice) at
//!   the arrival, joined by the replica id — Perfetto draws the arrow
//!   that *is* the messenger's migration;
//! * application spans ([`EventKind::SpanBegin`]/[`EventKind::SpanEnd`])
//!   become duration slices (`B`/`E`);
//! * GVT advances feed a `gvt` **counter track** (virtual time, in
//!   milli-vt units for readability) and messenger parks feed a
//!   `gvt_lag` counter (how far ahead of GVT the parked messenger's
//!   wake time sits);
//! * everything else becomes an instant event with its fields in
//!   `args`.
//!
//! Timestamps are the simulated clock converted to microseconds (the
//! trace_event unit). The threads platform stamps `rt = 0`; its traces
//! still load, ordered by sequence number within one instant.

use crate::event::{EventKind, TraceEvent};
use crate::json::escape_into;
use crate::Trace;

fn push_common(out: &mut String, name: &str, ph: char, ev: &TraceEvent) {
    use std::fmt::Write;
    out.push_str("{\"name\":\"");
    escape_into(name, out);
    // ts is µs; keep sub-µs precision as a fraction.
    let ts = ev.rt as f64 / 1000.0;
    let _ = write!(out, "\",\"ph\":\"{ph}\",\"ts\":{ts},\"pid\":{},\"tid\":0", ev.daemon);
}

fn push_args_open(out: &mut String) {
    out.push_str(",\"args\":{");
}

/// Render `trace` as a Chrome trace_event JSON document.
pub fn to_chrome(trace: &Trace) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('\n');
    };

    // Process metadata: one named process per daemon seen in the trace.
    let mut daemons: Vec<u16> = trace.events.iter().map(|e| e.daemon).collect();
    daemons.sort_unstable();
    daemons.dedup();
    for d in &daemons {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{d},\"tid\":0,\
             \"args\":{{\"name\":\"daemon {d}\"}}}}"
        );
    }

    for ev in &trace.events {
        match &ev.kind {
            EventKind::SpanBegin { name } => {
                sep(&mut out);
                push_common(&mut out, name, 'B', ev);
                out.push('}');
            }
            EventKind::SpanEnd { name } => {
                sep(&mut out);
                push_common(&mut out, name, 'E', ev);
                out.push('}');
            }
            EventKind::MsgrHop { mid, to, bytes } => {
                // Instant at the sender plus the flow start arrow.
                sep(&mut out);
                push_common(&mut out, "hop", 'i', ev);
                push_args_open(&mut out);
                let _ = write!(out, "\"mid\":{mid},\"to\":{to},\"bytes\":{bytes}}},\"s\":\"t\"}}");
                sep(&mut out);
                push_common(&mut out, "messenger", 's', ev);
                let _ = write!(out, ",\"cat\":\"msgr\",\"id\":{mid}}}");
            }
            EventKind::MsgrArrive { mid } => {
                sep(&mut out);
                push_common(&mut out, "arrive", 'i', ev);
                push_args_open(&mut out);
                let _ = write!(out, "\"mid\":{mid}}},\"s\":\"t\"}}");
                sep(&mut out);
                push_common(&mut out, "messenger", 'f', ev);
                let _ = write!(out, ",\"cat\":\"msgr\",\"id\":{mid},\"bp\":\"e\"}}");
            }
            EventKind::GvtAdvance { gvt } => {
                sep(&mut out);
                push_common(&mut out, "gvt", 'C', ev);
                push_args_open(&mut out);
                let _ = write!(out, "\"vt_milli\":{}}}}}", gvt * 1000.0);
            }
            EventKind::MsgrPark { mid, wake } => {
                sep(&mut out);
                push_common(&mut out, "park", 'i', ev);
                push_args_open(&mut out);
                let _ = write!(out, "\"mid\":{mid},\"wake\":{wake}}},\"s\":\"t\"}}");
                // GVT lag gauge: how far ahead of GVT this park sits.
                let lag = (wake - ev.gvt).max(0.0);
                sep(&mut out);
                push_common(&mut out, "gvt_lag", 'C', ev);
                push_args_open(&mut out);
                let _ = write!(out, "\"vt_milli\":{}}}}}", lag * 1000.0);
            }
            other => {
                sep(&mut out);
                push_common(&mut out, other.name(), 'i', ev);
                push_args_open(&mut out);
                // Re-use the canonical JSONL body for args: encode the
                // event, strip the stamp prefix, keep the kind fields.
                let mut line = String::new();
                ev.write_jsonl(&mut line);
                // line = {"d":..,"s":..,"rt":..,"vt":..,"gvt":..,"ev":"..",REST}
                let rest = line
                    .split_once("\"ev\":")
                    .and_then(|(_, r)| r.split_once(','))
                    .map(|(_, r)| r.trim_end_matches('}').to_string())
                    .unwrap_or_default();
                out.push_str(&rest);
                let _ = write!(
                    out,
                    "{}\"vt\":{}}},\"s\":\"t\"}}",
                    if rest.is_empty() { "" } else { "," },
                    ev.vt
                );
            }
        }
    }
    out.push_str("\n]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn ev(daemon: u16, seq: u64, rt: u64, kind: EventKind) -> TraceEvent {
        TraceEvent { daemon, seq, rt, vt: 0.5, gvt: 0.25, kind }
    }

    #[test]
    fn chrome_export_is_valid_json_with_flows_and_counters() {
        let trace = Trace {
            events: vec![
                ev(0, 1, 1_000, EventKind::SpanBegin { name: "run".into() }),
                ev(0, 2, 2_000, EventKind::MsgrHop { mid: 7, to: 1, bytes: 64 }),
                ev(1, 1, 3_000, EventKind::MsgrArrive { mid: 7 }),
                ev(1, 2, 3_500, EventKind::MsgrPark { mid: 7, wake: 0.75 }),
                ev(0, 3, 4_000, EventKind::GvtAdvance { gvt: 0.75 }),
                ev(0, 4, 5_000, EventKind::Checkpoint { bytes: 512 }),
                ev(0, 5, 6_000, EventKind::SpanEnd { name: "run".into() }),
            ],
            dropped: 0,
            dropped_by: Vec::new(),
        };
        let doc = to_chrome(&trace);
        let parsed = json::parse(&doc).expect("chrome export parses as JSON");
        let events = parsed.get("traceEvents").and_then(json::Json::as_arr).expect("traceEvents");
        // 2 process metadata + 7 events + 1 extra flow-start + 1 extra
        // flow-finish + 1 gvt_lag counter.
        assert_eq!(events.len(), 12);
        let phases: Vec<&str> =
            events.iter().filter_map(|e| e.get("ph").and_then(json::Json::as_str)).collect();
        assert!(phases.contains(&"s"), "flow start present");
        assert!(phases.contains(&"f"), "flow finish present");
        assert!(phases.contains(&"C"), "counter present");
        assert!(phases.contains(&"B") && phases.contains(&"E"), "span slices present");
        // Flow start/finish share the messenger id.
        let flow_ids: Vec<u64> = events
            .iter()
            .filter(|e| matches!(e.get("ph").and_then(json::Json::as_str), Some("s") | Some("f")))
            .filter_map(|e| e.get("id").and_then(json::Json::as_u64))
            .collect();
        assert_eq!(flow_ids, [7, 7]);
    }
}
