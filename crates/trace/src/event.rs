//! The typed trace event model.
//!
//! Every observable state transition in a run — messenger lifecycle,
//! transport frames, GVT protocol, checkpoint/restore, injected faults —
//! is one [`TraceEvent`]: a [`EventKind`] stamped with the emitting
//! daemon, that daemon's monotone event sequence number, the platform
//! clock (`rt`, simulated nanoseconds; 0 on the threads platform, which
//! has no deterministic clock), the messenger virtual time the event
//! concerns (`vt`), and the daemon's GVT estimate at emission time.
//!
//! The JSONL encoding is canonical: field order is fixed and float
//! formatting uses Rust's shortest-roundtrip `Display`, so two
//! traces of the same deterministic run are byte-identical.

use crate::json::{escape_into, Json};

/// One trace event, fully stamped.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Emitting daemon.
    pub daemon: u16,
    /// Monotone per-daemon sequence number (1-based; total order within
    /// one daemon's stream even when `rt` ties).
    pub seq: u64,
    /// Platform realtime: simulated nanoseconds since run start on the
    /// simulation platform, 0 on the threads platform.
    pub rt: u64,
    /// Messenger virtual time the event concerns; for system events
    /// (frames, GVT, checkpoints) this is the daemon's GVT estimate.
    pub vt: f64,
    /// The emitting daemon's GVT estimate when the event fired.
    pub gvt: f64,
    /// What happened.
    pub kind: EventKind,
}

/// The kinds of observable state transitions.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A fresh messenger was injected at this daemon.
    MsgrInject {
        /// Messenger id (raw `MessengerId.0`).
        mid: u64,
    },
    /// A messenger replica was dispatched to daemon `to`.
    MsgrHop {
        /// Replica id (each hop destination gets a fresh id).
        mid: u64,
        /// Destination daemon.
        to: u16,
        /// Serialized messenger bytes on the wire.
        bytes: u64,
    },
    /// A migrated messenger was accepted and enqueued here.
    MsgrArrive {
        /// Messenger id.
        mid: u64,
    },
    /// A hop or create replicated one messenger into `replicas` copies.
    MsgrFork {
        /// The parent messenger id.
        mid: u64,
        /// Number of replicas produced.
        replicas: u64,
    },
    /// A messenger suspended on virtual time.
    MsgrPark {
        /// The continuation's (fresh) id.
        mid: u64,
        /// Virtual time it waits for.
        wake: f64,
    },
    /// A parked messenger became runnable (GVT reached its wake time).
    MsgrRevive {
        /// Messenger id.
        mid: u64,
    },
    /// A messenger terminated normally.
    MsgrRetire {
        /// Messenger id.
        mid: u64,
    },
    /// A messenger died with a runtime fault.
    MsgrFault {
        /// Messenger id.
        mid: u64,
    },
    /// Reliable transport: a payload frame was sealed and first sent.
    FrameSend {
        /// Channel (original receiver daemon).
        chan: u16,
        /// Transport sequence number on that channel.
        seq: u64,
        /// Frame size on the wire, including header.
        bytes: u64,
    },
    /// Reliable transport: an ack removed frame(s) from the retransmit
    /// buffer.
    FrameAck {
        /// Channel the ack covers.
        chan: u16,
        /// The specifically acked sequence number.
        seq: u64,
    },
    /// Reliable transport: a retransmission timer re-sent a frame.
    FrameRetransmit {
        /// Channel.
        chan: u16,
        /// Frame sequence number.
        seq: u64,
        /// Attempt count after this send (first send = 1).
        attempt: u32,
    },
    /// Failover: an adopted unacknowledged frame was re-sent toward the
    /// channel's current owner.
    FrameRedirect {
        /// Channel.
        chan: u16,
        /// Frame sequence number.
        seq: u64,
        /// Daemon the frame was redirected to.
        to: u16,
    },
    /// A messenger read a node variable (emitted only when node-var
    /// tracing is enabled).
    NodeVarRead {
        /// Variable name.
        var: String,
    },
    /// A messenger wrote a node variable (node-var tracing only).
    NodeVarWrite {
        /// Variable name.
        var: String,
    },
    /// The GVT coordinator started round `round`.
    GvtRound {
        /// Round number.
        round: u64,
    },
    /// This daemon learned a new GVT estimate.
    GvtAdvance {
        /// The new GVT.
        gvt: f64,
    },
    /// Membership eviction: `victim` was declared permanently dead.
    GvtEvict {
        /// Evicted daemon.
        victim: u16,
        /// The restored checkpoint's virtual-time floor.
        floor: f64,
    },
    /// This daemon snapshotted its durable state.
    Checkpoint {
        /// Snapshot size in bytes.
        bytes: u64,
    },
    /// Failover: this daemon restored `victim`'s checkpoint.
    Restore {
        /// The dead daemon whose state was adopted.
        victim: u16,
        /// Logical nodes restored.
        nodes: u64,
        /// Messengers re-enqueued.
        messengers: u64,
    },
    /// Fault injection dropped a frame bound for `to`.
    NetDrop {
        /// Intended receiver.
        to: u16,
    },
    /// Fault injection duplicated a frame bound for `to`.
    NetDup {
        /// Receiver.
        to: u16,
    },
    /// Fault injection delayed a frame bound for `to`.
    NetDelay {
        /// Receiver.
        to: u16,
        /// Extra delay in nanoseconds.
        by: u64,
    },
    /// A program passed verification and was compiled into closures in
    /// the shared code registry (emitted once per program body).
    CodeCompile {
        /// Program content id (raw `ProgramId.0`). Serialized as a hex
        /// *string*: the hash uses all 64 bits, and JSON numbers above
        /// 2^53 would not survive the f64-backed parser.
        prog: u64,
        /// Functions compiled.
        funcs: u64,
        /// Superinstructions (fused spans) emitted across all functions.
        superinsts: u64,
    },
    /// A program registration found the body already compiled in the
    /// registry (content-hash cache hit).
    CodeCacheHit {
        /// Program content id.
        prog: u64,
    },
    /// Interprocedural effect summaries were computed for a program at
    /// registration (emitted alongside `CodeCompile` when the cluster
    /// runs with analysis enabled).
    CodeAnalysis {
        /// Program content id (hex string on the wire, like `CodeCompile`).
        prog: u64,
        /// Functions proven hop-free by the whole-program analysis.
        hop_free: u64,
        /// Fused loops licensed for the typed register file.
        typed_loops: u64,
    },
    /// This daemon proposed a burial decree for `victim` to the quorum
    /// (consensus instance `(victim, seq)`).
    CtrlPropose {
        /// The daemon whose eviction is being proposed.
        victim: u16,
        /// Consensus instance sequence (cascades bump it).
        seq: u32,
    },
    /// A burial decree was learned: a majority agreed `victim` is dead
    /// and named `successor` as the restoring heir.
    CtrlDecide {
        /// The daemon the decree buries.
        victim: u16,
        /// The daemon the decree names to restore the checkpoint.
        successor: u16,
        /// Consensus instance sequence.
        seq: u32,
    },
    /// An anti-entropy digest from `from` taught this daemon something
    /// (membership epoch, eviction, GVT hint, or code-registry hash).
    GossipMerge {
        /// The peer whose digest was merged.
        from: u16,
    },
    /// This daemon accepted a replicated checkpoint from `owner`.
    CkptReplica {
        /// The daemon whose checkpoint this is.
        owner: u16,
        /// Snapshot version accepted.
        ver: u32,
    },
    /// Profiler: a messenger's per-phase latency ledger, emitted at its
    /// terminal local disposition (retire, fault, or hop away) when
    /// profiling is enabled. All durations are nanoseconds: simulated on
    /// the `sim` platform, monotonic wall-clock on `threads`.
    PhaseLedger {
        /// Final local messenger id (the id on the retire/fault/hop event).
        mid: u64,
        /// The id this messenger carried when it first became resident
        /// here (arrival or injection). Parks re-identify the
        /// continuation, so `born != mid` after a park; the transport
        /// join key for the inbound hop edge is `born`.
        born: u64,
        /// For a *partial* sender-side ledger covering an outgoing
        /// replica: the id of the parent that spawned it (0 for full
        /// ledgers). Partial ledgers carry only the encode phase.
        parent: u64,
        /// Time runnable in a lane before execution started.
        queue: u64,
        /// Receive-time verification work attributed to this messenger.
        verify: u64,
        /// VM execution (bytecode ops + native calls).
        exec: u64,
        /// Serialize/encode + decode costs for migration.
        enc: u64,
        /// Transport in-flight time (sim only; 0 on threads).
        xport: u64,
        /// Parked on virtual time waiting for GVT.
        park: u64,
        /// Recovery stall: time between the host daemon's death and the
        /// restore that revived this messenger.
        stall: u64,
        /// Sum of all phases — the messenger's locally-attributed
        /// lifetime. Kept explicit so consumers need no arithmetic and
        /// the fraction-sum invariant is checkable from one event.
        total: u64,
    },
    /// Profiler: aggregated VM program-counter samples for one execution
    /// segment, keyed by source line (op-count-triggered, deterministic
    /// per seed).
    PcSample {
        /// Program content id (hex string on the wire, like `CodeCompile`).
        prog: u64,
        /// Function index within the program.
        func: u32,
        /// Source line (from the debug line table; 0 if unknown).
        line: u32,
        /// Samples attributed to this line during the segment.
        count: u64,
    },
    /// This daemon was permanently killed (volatile state destroyed).
    Kill,
    /// An application-level phase span opened (e.g. "compute").
    SpanBegin {
        /// Span name.
        name: String,
    },
    /// An application-level phase span closed.
    SpanEnd {
        /// Span name.
        name: String,
    },
}

impl EventKind {
    /// The canonical wire name of this kind (the JSONL `ev` field).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::MsgrInject { .. } => "inject",
            EventKind::MsgrHop { .. } => "hop",
            EventKind::MsgrArrive { .. } => "arrive",
            EventKind::MsgrFork { .. } => "fork",
            EventKind::MsgrPark { .. } => "park",
            EventKind::MsgrRevive { .. } => "revive",
            EventKind::MsgrRetire { .. } => "retire",
            EventKind::MsgrFault { .. } => "fault",
            EventKind::FrameSend { .. } => "send",
            EventKind::FrameAck { .. } => "ack",
            EventKind::FrameRetransmit { .. } => "retransmit",
            EventKind::FrameRedirect { .. } => "redirect",
            EventKind::NodeVarRead { .. } => "nv_read",
            EventKind::NodeVarWrite { .. } => "nv_write",
            EventKind::GvtRound { .. } => "gvt_round",
            EventKind::GvtAdvance { .. } => "gvt_advance",
            EventKind::GvtEvict { .. } => "gvt_evict",
            EventKind::Checkpoint { .. } => "checkpoint",
            EventKind::Restore { .. } => "restore",
            EventKind::NetDrop { .. } => "net_drop",
            EventKind::NetDup { .. } => "net_dup",
            EventKind::NetDelay { .. } => "net_delay",
            EventKind::CodeCompile { .. } => "compile",
            EventKind::CodeCacheHit { .. } => "code_hit",
            EventKind::CodeAnalysis { .. } => "code_analysis",
            EventKind::CtrlPropose { .. } => "ctrl_propose",
            EventKind::CtrlDecide { .. } => "ctrl_decide",
            EventKind::GossipMerge { .. } => "gossip_merge",
            EventKind::CkptReplica { .. } => "ckpt_replica",
            EventKind::PhaseLedger { .. } => "phase_ledger",
            EventKind::PcSample { .. } => "pc_sample",
            EventKind::Kill => "kill",
            EventKind::SpanBegin { .. } => "span_begin",
            EventKind::SpanEnd { .. } => "span_end",
        }
    }
}

/// Format an `f64` so the output is valid JSON and round-trips through
/// [`crate::json::parse`] bit-for-bit for every finite value. Non-finite
/// values (which the runtime never stamps, but defensive is cheap) clamp
/// to the largest finite magnitude.
pub fn fmt_f64(v: f64, out: &mut String) {
    let v = if v.is_finite() {
        v
    } else if v.is_nan() {
        0.0
    } else if v > 0.0 {
        f64::MAX
    } else {
        f64::MIN
    };
    // Shortest-roundtrip Display; integral values print without a dot
    // ("0"), which is still a valid JSON number.
    out.push_str(&format!("{v}"));
}

impl TraceEvent {
    /// Append this event's canonical single-line JSON encoding to `out`
    /// (no trailing newline).
    pub fn write_jsonl(&self, out: &mut String) {
        use std::fmt::Write;
        let _ =
            write!(out, "{{\"d\":{},\"s\":{},\"rt\":{},\"vt\":", self.daemon, self.seq, self.rt);
        fmt_f64(self.vt, out);
        out.push_str(",\"gvt\":");
        fmt_f64(self.gvt, out);
        let _ = write!(out, ",\"ev\":\"{}\"", self.kind.name());
        match &self.kind {
            EventKind::MsgrInject { mid }
            | EventKind::MsgrArrive { mid }
            | EventKind::MsgrRevive { mid }
            | EventKind::MsgrRetire { mid }
            | EventKind::MsgrFault { mid } => {
                let _ = write!(out, ",\"mid\":{mid}");
            }
            EventKind::MsgrHop { mid, to, bytes } => {
                let _ = write!(out, ",\"mid\":{mid},\"to\":{to},\"bytes\":{bytes}");
            }
            EventKind::MsgrFork { mid, replicas } => {
                let _ = write!(out, ",\"mid\":{mid},\"replicas\":{replicas}");
            }
            EventKind::MsgrPark { mid, wake } => {
                let _ = write!(out, ",\"mid\":{mid},\"wake\":");
                fmt_f64(*wake, out);
            }
            EventKind::FrameSend { chan, seq, bytes } => {
                let _ = write!(out, ",\"chan\":{chan},\"seq\":{seq},\"bytes\":{bytes}");
            }
            EventKind::FrameAck { chan, seq } => {
                let _ = write!(out, ",\"chan\":{chan},\"seq\":{seq}");
            }
            EventKind::FrameRetransmit { chan, seq, attempt } => {
                let _ = write!(out, ",\"chan\":{chan},\"seq\":{seq},\"attempt\":{attempt}");
            }
            EventKind::FrameRedirect { chan, seq, to } => {
                let _ = write!(out, ",\"chan\":{chan},\"seq\":{seq},\"to\":{to}");
            }
            EventKind::NodeVarRead { var } | EventKind::NodeVarWrite { var } => {
                out.push_str(",\"var\":\"");
                escape_into(var, out);
                out.push('"');
            }
            EventKind::GvtRound { round } => {
                let _ = write!(out, ",\"round\":{round}");
            }
            EventKind::GvtAdvance { gvt } => {
                out.push_str(",\"to\":");
                fmt_f64(*gvt, out);
            }
            EventKind::GvtEvict { victim, floor } => {
                let _ = write!(out, ",\"victim\":{victim},\"floor\":");
                fmt_f64(*floor, out);
            }
            EventKind::Checkpoint { bytes } => {
                let _ = write!(out, ",\"bytes\":{bytes}");
            }
            EventKind::Restore { victim, nodes, messengers } => {
                let _ =
                    write!(out, ",\"victim\":{victim},\"nodes\":{nodes},\"msgrs\":{messengers}");
            }
            EventKind::NetDrop { to } | EventKind::NetDup { to } => {
                let _ = write!(out, ",\"to\":{to}");
            }
            EventKind::NetDelay { to, by } => {
                let _ = write!(out, ",\"to\":{to},\"by\":{by}");
            }
            EventKind::CodeCompile { prog, funcs, superinsts } => {
                let _ = write!(
                    out,
                    ",\"prog\":\"{prog:016x}\",\"funcs\":{funcs},\"fused\":{superinsts}"
                );
            }
            EventKind::CodeCacheHit { prog } => {
                let _ = write!(out, ",\"prog\":\"{prog:016x}\"");
            }
            EventKind::CodeAnalysis { prog, hop_free, typed_loops } => {
                let _ = write!(
                    out,
                    ",\"prog\":\"{prog:016x}\",\"hop_free\":{hop_free},\"typed_loops\":{typed_loops}"
                );
            }
            EventKind::CtrlPropose { victim, seq } => {
                let _ = write!(out, ",\"victim\":{victim},\"iseq\":{seq}");
            }
            EventKind::CtrlDecide { victim, successor, seq } => {
                let _ = write!(out, ",\"victim\":{victim},\"heir\":{successor},\"iseq\":{seq}");
            }
            EventKind::GossipMerge { from } => {
                let _ = write!(out, ",\"from\":{from}");
            }
            EventKind::CkptReplica { owner, ver } => {
                let _ = write!(out, ",\"owner\":{owner},\"ver\":{ver}");
            }
            EventKind::PhaseLedger {
                mid,
                born,
                parent,
                queue,
                verify,
                exec,
                enc,
                xport,
                park,
                stall,
                total,
            } => {
                let _ = write!(
                    out,
                    ",\"mid\":{mid},\"born\":{born},\"parent\":{parent},\"queue\":{queue},\
                     \"verify\":{verify},\"exec\":{exec},\"enc\":{enc},\"xport\":{xport},\
                     \"park\":{park},\"stall\":{stall},\"total\":{total}"
                );
            }
            EventKind::PcSample { prog, func, line, count } => {
                let _ = write!(
                    out,
                    ",\"prog\":\"{prog:016x}\",\"func\":{func},\"line\":{line},\"count\":{count}"
                );
            }
            EventKind::Kill => {}
            EventKind::SpanBegin { name } | EventKind::SpanEnd { name } => {
                out.push_str(",\"name\":\"");
                escape_into(name, out);
                out.push('"');
            }
        }
        out.push('}');
    }

    /// Decode one JSONL line. This is also the event schema check:
    /// unknown kinds, missing fields, or mistyped fields are errors.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first schema violation.
    pub fn from_json(j: &Json) -> Result<TraceEvent, String> {
        let daemon = req_u64(j, "d")? as u16;
        let seq = req_u64(j, "s")?;
        let rt = req_u64(j, "rt")?;
        let vt = req_f64(j, "vt")?;
        let gvt = req_f64(j, "gvt")?;
        let ev = j
            .get("ev")
            .and_then(Json::as_str)
            .ok_or_else(|| "missing event kind \"ev\"".to_string())?;
        let kind = match ev {
            "inject" => EventKind::MsgrInject { mid: req_u64(j, "mid")? },
            "hop" => EventKind::MsgrHop {
                mid: req_u64(j, "mid")?,
                to: req_u64(j, "to")? as u16,
                bytes: req_u64(j, "bytes")?,
            },
            "arrive" => EventKind::MsgrArrive { mid: req_u64(j, "mid")? },
            "fork" => {
                EventKind::MsgrFork { mid: req_u64(j, "mid")?, replicas: req_u64(j, "replicas")? }
            }
            "park" => EventKind::MsgrPark { mid: req_u64(j, "mid")?, wake: req_f64(j, "wake")? },
            "revive" => EventKind::MsgrRevive { mid: req_u64(j, "mid")? },
            "retire" => EventKind::MsgrRetire { mid: req_u64(j, "mid")? },
            "fault" => EventKind::MsgrFault { mid: req_u64(j, "mid")? },
            "send" => EventKind::FrameSend {
                chan: req_u64(j, "chan")? as u16,
                seq: req_u64(j, "seq")?,
                bytes: req_u64(j, "bytes")?,
            },
            "ack" => {
                EventKind::FrameAck { chan: req_u64(j, "chan")? as u16, seq: req_u64(j, "seq")? }
            }
            "retransmit" => EventKind::FrameRetransmit {
                chan: req_u64(j, "chan")? as u16,
                seq: req_u64(j, "seq")?,
                attempt: req_u64(j, "attempt")? as u32,
            },
            "redirect" => EventKind::FrameRedirect {
                chan: req_u64(j, "chan")? as u16,
                seq: req_u64(j, "seq")?,
                to: req_u64(j, "to")? as u16,
            },
            "nv_read" => EventKind::NodeVarRead { var: req_str(j, "var")? },
            "nv_write" => EventKind::NodeVarWrite { var: req_str(j, "var")? },
            "gvt_round" => EventKind::GvtRound { round: req_u64(j, "round")? },
            "gvt_advance" => EventKind::GvtAdvance { gvt: req_f64(j, "to")? },
            "gvt_evict" => EventKind::GvtEvict {
                victim: req_u64(j, "victim")? as u16,
                floor: req_f64(j, "floor")?,
            },
            "checkpoint" => EventKind::Checkpoint { bytes: req_u64(j, "bytes")? },
            "restore" => EventKind::Restore {
                victim: req_u64(j, "victim")? as u16,
                nodes: req_u64(j, "nodes")?,
                messengers: req_u64(j, "msgrs")?,
            },
            "net_drop" => EventKind::NetDrop { to: req_u64(j, "to")? as u16 },
            "net_dup" => EventKind::NetDup { to: req_u64(j, "to")? as u16 },
            "net_delay" => {
                EventKind::NetDelay { to: req_u64(j, "to")? as u16, by: req_u64(j, "by")? }
            }
            "compile" => EventKind::CodeCompile {
                prog: req_hex_u64(j, "prog")?,
                funcs: req_u64(j, "funcs")?,
                superinsts: req_u64(j, "fused")?,
            },
            "code_hit" => EventKind::CodeCacheHit { prog: req_hex_u64(j, "prog")? },
            "code_analysis" => EventKind::CodeAnalysis {
                prog: req_hex_u64(j, "prog")?,
                hop_free: req_u64(j, "hop_free")?,
                typed_loops: req_u64(j, "typed_loops")?,
            },
            "ctrl_propose" => EventKind::CtrlPropose {
                victim: req_u64(j, "victim")? as u16,
                seq: req_u64(j, "iseq")? as u32,
            },
            "ctrl_decide" => EventKind::CtrlDecide {
                victim: req_u64(j, "victim")? as u16,
                successor: req_u64(j, "heir")? as u16,
                seq: req_u64(j, "iseq")? as u32,
            },
            "gossip_merge" => EventKind::GossipMerge { from: req_u64(j, "from")? as u16 },
            "ckpt_replica" => EventKind::CkptReplica {
                owner: req_u64(j, "owner")? as u16,
                ver: req_u64(j, "ver")? as u32,
            },
            "phase_ledger" => EventKind::PhaseLedger {
                mid: req_u64(j, "mid")?,
                born: req_u64(j, "born")?,
                parent: req_u64(j, "parent")?,
                queue: req_u64(j, "queue")?,
                verify: req_u64(j, "verify")?,
                exec: req_u64(j, "exec")?,
                enc: req_u64(j, "enc")?,
                xport: req_u64(j, "xport")?,
                park: req_u64(j, "park")?,
                stall: req_u64(j, "stall")?,
                total: req_u64(j, "total")?,
            },
            "pc_sample" => EventKind::PcSample {
                prog: req_hex_u64(j, "prog")?,
                func: req_u64(j, "func")? as u32,
                line: req_u64(j, "line")? as u32,
                count: req_u64(j, "count")?,
            },
            "kill" => EventKind::Kill,
            "span_begin" => EventKind::SpanBegin { name: req_str(j, "name")? },
            "span_end" => EventKind::SpanEnd { name: req_str(j, "name")? },
            other => return Err(format!("unknown event kind {other:?}")),
        };
        Ok(TraceEvent { daemon, seq, rt, vt, gvt, kind })
    }
}

fn req_u64(j: &Json, key: &str) -> Result<u64, String> {
    j.get(key).and_then(Json::as_u64).ok_or_else(|| format!("missing or non-integer field {key:?}"))
}

fn req_f64(j: &Json, key: &str) -> Result<f64, String> {
    j.get(key).and_then(Json::as_f64).ok_or_else(|| format!("missing or non-number field {key:?}"))
}

/// A u64 carried as a 16-digit hex string (full 64-bit ids exceed the
/// exact-integer range of JSON's f64 numbers).
fn req_hex_u64(j: &Json, key: &str) -> Result<u64, String> {
    j.get(key)
        .and_then(Json::as_str)
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .ok_or_else(|| format!("missing or non-hex field {key:?}"))
}

fn req_str(j: &Json, key: &str) -> Result<String, String> {
    j.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing or non-string field {key:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn roundtrip(ev: TraceEvent) {
        let mut line = String::new();
        ev.write_jsonl(&mut line);
        let parsed = json::parse(&line).expect("valid json");
        let back = TraceEvent::from_json(&parsed).expect("valid event");
        assert_eq!(back, ev, "line: {line}");
        let mut line2 = String::new();
        back.write_jsonl(&mut line2);
        assert_eq!(line, line2, "canonical encoding is stable");
    }

    #[test]
    fn every_kind_round_trips() {
        let kinds = vec![
            EventKind::MsgrInject { mid: 1 },
            EventKind::MsgrHop { mid: 2, to: 3, bytes: 88 },
            EventKind::MsgrArrive { mid: 2 },
            EventKind::MsgrFork { mid: 1, replicas: 4 },
            EventKind::MsgrPark { mid: 9, wake: 1.25 },
            EventKind::MsgrRevive { mid: 9 },
            EventKind::MsgrRetire { mid: 9 },
            EventKind::MsgrFault { mid: 7 },
            EventKind::FrameSend { chan: 2, seq: 10, bytes: 256 },
            EventKind::FrameAck { chan: 2, seq: 10 },
            EventKind::FrameRetransmit { chan: 2, seq: 10, attempt: 3 },
            EventKind::FrameRedirect { chan: 2, seq: 10, to: 1 },
            EventKind::NodeVarRead { var: "visits".to_string() },
            EventKind::NodeVarWrite { var: "a \"quoted\" name\n".to_string() },
            EventKind::GvtRound { round: 5 },
            EventKind::GvtAdvance { gvt: 0.375 },
            EventKind::GvtEvict { victim: 3, floor: 0.5 },
            EventKind::Checkpoint { bytes: 4096 },
            EventKind::Restore { victim: 3, nodes: 7, messengers: 2 },
            EventKind::NetDrop { to: 1 },
            EventKind::NetDup { to: 1 },
            EventKind::NetDelay { to: 1, by: 50_000 },
            // Full-64-bit id: must survive the f64-backed JSON parser.
            EventKind::CodeCompile { prog: 0xE2D4_66F1_0A9B_3C47, funcs: 3, superinsts: 11 },
            EventKind::CodeCacheHit { prog: u64::MAX - 1 },
            EventKind::CodeAnalysis { prog: 0xE2D4_66F1_0A9B_3C47, hop_free: 2, typed_loops: 1 },
            EventKind::CtrlPropose { victim: 3, seq: 1 },
            EventKind::CtrlDecide { victim: 3, successor: 4, seq: 1 },
            EventKind::GossipMerge { from: 6 },
            EventKind::CkptReplica { owner: 3, ver: 12 },
            EventKind::PhaseLedger {
                mid: 42,
                born: 17,
                parent: 0,
                queue: 1_000,
                verify: 0,
                exec: 44_000,
                enc: 9_300,
                xport: 120_000,
                park: 0,
                stall: 2_500_000,
                total: 2_674_300,
            },
            EventKind::PcSample { prog: 0xE2D4_66F1_0A9B_3C47, func: 0, line: 7, count: 512 },
            EventKind::Kill,
            EventKind::SpanBegin { name: "compute".to_string() },
            EventKind::SpanEnd { name: "compute".to_string() },
        ];
        for (i, kind) in kinds.into_iter().enumerate() {
            roundtrip(TraceEvent {
                daemon: i as u16 % 5,
                seq: i as u64 + 1,
                rt: 1_000 * i as u64,
                vt: i as f64 * 0.125,
                gvt: i as f64 * 0.0625,
                kind,
            });
        }
    }

    #[test]
    fn schema_rejects_unknown_kind_and_missing_fields() {
        let j = json::parse(r#"{"d":0,"s":1,"rt":0,"vt":0,"gvt":0,"ev":"warp"}"#).unwrap();
        assert!(TraceEvent::from_json(&j).unwrap_err().contains("unknown event kind"));
        let j = json::parse(r#"{"d":0,"s":1,"rt":0,"vt":0,"gvt":0,"ev":"hop","mid":1}"#).unwrap();
        assert!(TraceEvent::from_json(&j).unwrap_err().contains("\"to\""));
        let j = json::parse(r#"{"d":0,"s":1,"vt":0,"gvt":0,"ev":"kill"}"#).unwrap();
        assert!(TraceEvent::from_json(&j).unwrap_err().contains("\"rt\""));
    }

    #[test]
    fn non_finite_floats_are_clamped_to_valid_json() {
        let mut line = String::new();
        TraceEvent {
            daemon: 0,
            seq: 1,
            rt: 0,
            vt: f64::INFINITY,
            gvt: f64::NAN,
            kind: EventKind::Kill,
        }
        .write_jsonl(&mut line);
        let parsed = json::parse(&line).expect("still valid json");
        assert!(TraceEvent::from_json(&parsed).is_ok());
    }
}
