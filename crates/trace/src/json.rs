//! A minimal JSON reader/writer — just enough for the trace formats,
//! kept in-repo per the workspace's hermetic-build policy.
//!
//! Parsing is strict RFC-8259 (no trailing commas, no comments, strings
//! must be valid escapes); numbers are held as `f64`, which is exact for
//! every integer the tracer emits (sequence numbers and sizes stay well
//! under 2^53 in any feasible run).

/// A parsed JSON value. Object keys keep insertion order (the canonical
/// encodings in this crate are order-sensitive).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Append `s` to `out` with JSON string escaping (no surrounding quotes).
pub fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Parse one JSON document.
///
/// # Errors
///
/// A description of the first syntax error, with its byte offset.
pub fn parse(src: &str) -> Result<Json, String> {
    let mut p = Parser { b: src.as_bytes(), i: 0 };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(format!("trailing garbage at byte {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", c as char, self.i))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.i)),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.i += 1;
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).expect("ascii digits");
        text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.i + 5 > self.b.len() {
                                return Err("truncated \\u escape".to_string());
                            }
                            let hex = std::str::from_utf8(&self.b[self.i + 1..self.i + 5])
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            // Surrogates decode to the replacement char;
                            // the tracer never emits them.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.i)),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.b[self.i..])
                        .map_err(|_| "invalid utf-8 in string".to_string())?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.ws();
            items.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut items = Vec::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(items));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            let val = self.value()?;
            items.push((key, val));
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(items));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_structure() {
        let j = parse(r#"{"a":1,"b":[true,null,"x\n"],"c":{"d":-2.5e1}}"#).unwrap();
        assert_eq!(j.get("a").unwrap().as_u64(), Some(1));
        let arr = j.get("b").unwrap().as_arr().unwrap();
        assert_eq!(arr[0], Json::Bool(true));
        assert_eq!(arr[1], Json::Null);
        assert_eq!(arr[2].as_str(), Some("x\n"));
        assert_eq!(j.get("c").unwrap().get("d").unwrap().as_f64(), Some(-25.0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse(r#"{"a":1} extra"#).is_err());
        assert!(parse(r#""unterminated"#).is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn escape_round_trips() {
        let s = "a\"b\\c\nd\te\u{1}f\u{263a}";
        let mut enc = String::from('"');
        escape_into(s, &mut enc);
        enc.push('"');
        assert_eq!(parse(&enc).unwrap().as_str(), Some(s));
    }

    #[test]
    fn as_u64_is_exact_only() {
        assert_eq!(Json::Num(3.0).as_u64(), Some(3));
        assert_eq!(Json::Num(3.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Str("3".into()).as_u64(), None);
    }
}
