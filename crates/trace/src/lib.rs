//! Deterministic causal tracing and typed metrics for the MESSENGERS
//! reproduction.
//!
//! The paper's central object — a *messenger* migrating between
//! daemons — is exactly the thing conventional per-process logs lose:
//! the interesting state is in flight. This crate records every
//! observable transition (messenger lifecycle, transport frames, GVT
//! protocol, checkpoint/restore, injected faults) as typed
//! [`TraceEvent`]s in per-daemon bounded [`FlightRecorder`] rings, then
//! merges them into a single [`Trace`] with two exporters:
//!
//! * canonical JSONL ([`Trace::to_jsonl`]) — byte-identical across
//!   same-seed runs, which makes "diff two traces" a correctness oracle;
//! * Chrome `trace_event` ([`chrome::to_chrome`]) — loadable in
//!   Perfetto, with messenger migrations drawn as flow arrows.
//!
//! The [`Metric`] registry is the typed face of the string-keyed
//! `Stats` sink: every counter/gauge/histogram the runtime emits is an
//! enum variant with kind and unit metadata, and platforms install
//! [`Metric::validator`] so unregistered keys fail debug assertions.
//!
//! The crate has zero dependencies (runtime *or* workspace) so every
//! other crate can depend on it without cycles; its integration tests
//! close the loop by driving full `msgr-core` clusters as
//! dev-dependencies.

#![warn(missing_docs)]

pub mod chrome;
pub mod event;
pub mod json;
pub mod metrics;
pub mod recorder;

pub use event::{EventKind, TraceEvent};
pub use metrics::{Metric, MetricKind, Unit};
pub use recorder::{FlightRecorder, TraceConfig};

/// A merged, ordered trace of one run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    /// Events in canonical order: `(rt, daemon, seq)` ascending. The
    /// per-daemon `seq` breaks realtime ties deterministically.
    pub events: Vec<TraceEvent>,
    /// Events lost to ring-buffer bounds, summed over daemons.
    pub dropped: u64,
    /// Per-daemon drop attribution: `(daemon, oldest events dropped)`,
    /// nonzero entries only, sorted by daemon. A truncated ring means
    /// the *oldest* window of that daemon's stream is missing — any
    /// profile or post-mortem built on this trace is partial.
    pub dropped_by: Vec<(u16, u64)>,
}

impl Trace {
    /// Merge per-daemon drains into canonical order. Each part is
    /// `(daemon, events, dropped)` as returned by a recorder drain.
    pub fn from_parts(parts: Vec<(u16, Vec<TraceEvent>, u64)>) -> Trace {
        let mut events = Vec::new();
        let mut dropped = 0;
        let mut dropped_by = Vec::new();
        for (d, evs, n) in parts {
            events.extend(evs);
            dropped += n;
            if n > 0 {
                dropped_by.push((d, n));
            }
        }
        dropped_by.sort_unstable();
        events.sort_by(|a, b| {
            (a.rt, a.daemon, a.seq).partial_cmp(&(b.rt, b.daemon, b.seq)).expect("total order")
        });
        Trace { events, dropped, dropped_by }
    }

    /// Count events of each kind, in first-seen order.
    pub fn counts(&self) -> Vec<(&'static str, u64)> {
        let mut out: Vec<(&'static str, u64)> = Vec::new();
        for ev in &self.events {
            let name = ev.kind.name();
            match out.iter_mut().find(|(n, _)| *n == name) {
                Some((_, c)) => *c += 1,
                None => out.push((name, 1)),
            }
        }
        out
    }

    /// Encode as canonical JSONL: one header line, then one line per
    /// event. Byte-identical for equal traces.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"trace\":\"msgr\",\"version\":1,\"events\":{},\"dropped\":{}",
            self.events.len(),
            self.dropped
        ));
        // Per-daemon attribution only when something was actually lost,
        // so drop-free traces keep their historical header bytes.
        if !self.dropped_by.is_empty() {
            out.push_str(",\"dropped_by\":[");
            for (i, (d, n)) in self.dropped_by.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{d},{n}]"));
            }
            out.push(']');
        }
        out.push_str("}\n");
        for ev in &self.events {
            ev.write_jsonl(&mut out);
            out.push('\n');
        }
        out
    }

    /// Decode and schema-validate a JSONL document produced by
    /// [`Trace::to_jsonl`].
    ///
    /// # Errors
    ///
    /// The first violation found — bad JSON, a bad header, an unknown
    /// event kind, or a missing/mistyped field — with its line number.
    pub fn from_jsonl(src: &str) -> Result<Trace, String> {
        let mut lines = src.lines().enumerate();
        let (_, header) = lines.next().ok_or_else(|| "empty trace".to_string())?;
        let h = json::parse(header).map_err(|e| format!("line 1: {e}"))?;
        if h.get("trace").and_then(json::Json::as_str) != Some("msgr") {
            return Err("line 1: not a msgr trace (missing \"trace\":\"msgr\")".to_string());
        }
        if h.get("version").and_then(json::Json::as_u64) != Some(1) {
            return Err("line 1: unsupported trace version".to_string());
        }
        let declared =
            h.get("events").and_then(json::Json::as_u64).ok_or("line 1: missing event count")?;
        let dropped =
            h.get("dropped").and_then(json::Json::as_u64).ok_or("line 1: missing drop count")?;
        // Optional (absent on drop-free and pre-attribution traces).
        let mut dropped_by = Vec::new();
        if let Some(arr) = h.get("dropped_by").and_then(json::Json::as_arr) {
            for entry in arr {
                let pair = entry.as_arr().ok_or("line 1: malformed dropped_by entry")?;
                match pair {
                    [d, n] => {
                        let d = d.as_u64().ok_or("line 1: malformed dropped_by daemon")? as u16;
                        let n = n.as_u64().ok_or("line 1: malformed dropped_by count")?;
                        dropped_by.push((d, n));
                    }
                    _ => return Err("line 1: dropped_by entries must be [daemon, n]".to_string()),
                }
            }
        }
        let mut events = Vec::new();
        for (idx, line) in lines {
            if line.is_empty() {
                continue;
            }
            let j = json::parse(line).map_err(|e| format!("line {}: {e}", idx + 1))?;
            let ev = TraceEvent::from_json(&j).map_err(|e| format!("line {}: {e}", idx + 1))?;
            events.push(ev);
        }
        if events.len() as u64 != declared {
            return Err(format!(
                "header declares {declared} events but {} lines follow",
                events.len()
            ));
        }
        Ok(Trace { events, dropped, dropped_by })
    }

    /// A human-readable run summary: totals, per-kind counts, and the
    /// recovery timeline (kills, evictions, restores) if any.
    pub fn summary(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let span = match (self.events.first(), self.events.last()) {
            (Some(a), Some(b)) => b.rt.saturating_sub(a.rt),
            _ => 0,
        };
        let daemons: std::collections::BTreeSet<u16> =
            self.events.iter().map(|e| e.daemon).collect();
        let _ = writeln!(
            out,
            "trace: {} events from {} daemon(s) over {:.3} ms simulated ({} dropped to ring bounds)",
            self.events.len(),
            daemons.len(),
            span as f64 / 1e6,
            self.dropped
        );
        if !self.dropped_by.is_empty() {
            let _ = writeln!(
                out,
                "WARNING: flight-recorder rings truncated — the oldest window of these daemons' \
                 streams is missing:"
            );
            for (d, n) in &self.dropped_by {
                let _ = writeln!(out, "  daemon {d}: {n} oldest event(s) dropped");
            }
        }
        let mut counts = self.counts();
        counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        for (name, n) in counts {
            let _ = writeln!(out, "  {name:<12} {n}");
        }
        let timeline: Vec<&TraceEvent> = self
            .events
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    EventKind::Kill
                        | EventKind::CtrlDecide { .. }
                        | EventKind::GvtEvict { .. }
                        | EventKind::Restore { .. }
                )
            })
            .collect();
        if !timeline.is_empty() {
            let _ = writeln!(out, "recovery timeline:");
            for ev in timeline {
                let at = ev.rt as f64 / 1e6;
                match &ev.kind {
                    EventKind::Kill => {
                        let _ = writeln!(out, "  {at:>10.3} ms  daemon {} killed", ev.daemon);
                    }
                    EventKind::CtrlDecide { victim, successor, seq } => {
                        let _ = writeln!(
                            out,
                            "  {at:>10.3} ms  daemon {} learned decree: bury daemon {victim}, \
                             heir {successor} (instance seq {seq})",
                            ev.daemon
                        );
                    }
                    EventKind::GvtEvict { victim, floor } => {
                        // A dead daemon with no surviving work reports f64::MAX
                        // as its vt floor; print that as "none" rather than a
                        // 300-digit integer.
                        let floor = if *floor >= f64::MAX {
                            "none".to_string()
                        } else {
                            format!("{floor}")
                        };
                        let _ = writeln!(
                            out,
                            "  {at:>10.3} ms  daemon {} evicted daemon {victim} (vt floor {floor})",
                            ev.daemon
                        );
                    }
                    EventKind::Restore { victim, nodes, messengers } => {
                        let _ = writeln!(
                            out,
                            "  {at:>10.3} ms  daemon {} restored daemon {victim}: \
                             {nodes} node(s), {messengers} messenger(s) replayed",
                            ev.daemon
                        );
                    }
                    _ => unreachable!(),
                }
            }
        }
        out
    }

    /// Structural diff against `other`: human-readable descriptions of
    /// the first divergences (empty when the traces are identical).
    /// Reports at most `limit` differences.
    pub fn diff(&self, other: &Trace, limit: usize) -> Vec<String> {
        let mut out = Vec::new();
        if self.dropped != other.dropped {
            out.push(format!("drop counts differ: {} vs {}", self.dropped, other.dropped));
        }
        if self.dropped_by != other.dropped_by {
            out.push(format!(
                "per-daemon drop attributions differ: {:?} vs {:?}",
                self.dropped_by, other.dropped_by
            ));
        }
        if self.events.len() != other.events.len() {
            out.push(format!(
                "event counts differ: {} vs {}",
                self.events.len(),
                other.events.len()
            ));
        }
        for (i, (a, b)) in self.events.iter().zip(&other.events).enumerate() {
            if out.len() >= limit {
                out.push("... (more differences suppressed)".to_string());
                break;
            }
            if a != b {
                let mut la = String::new();
                let mut lb = String::new();
                a.write_jsonl(&mut la);
                b.write_jsonl(&mut lb);
                out.push(format!("event {i} differs:\n  a: {la}\n  b: {lb}"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(daemon: u16, seq: u64, rt: u64, kind: EventKind) -> TraceEvent {
        TraceEvent { daemon, seq, rt, vt: 0.0, gvt: 0.0, kind }
    }

    fn sample() -> Trace {
        Trace::from_parts(vec![
            (
                1,
                vec![
                    ev(1, 1, 500, EventKind::MsgrArrive { mid: 3 }),
                    ev(1, 2, 500, EventKind::MsgrRetire { mid: 3 }),
                ],
                1,
            ),
            (
                0,
                vec![
                    ev(0, 1, 0, EventKind::MsgrInject { mid: 3 }),
                    ev(0, 2, 100, EventKind::MsgrHop { mid: 3, to: 1, bytes: 40 }),
                ],
                0,
            ),
        ])
    }

    #[test]
    fn from_parts_orders_by_rt_then_daemon_then_seq() {
        let t = sample();
        let stamps: Vec<(u64, u16, u64)> =
            t.events.iter().map(|e| (e.rt, e.daemon, e.seq)).collect();
        assert_eq!(stamps, [(0, 0, 1), (100, 0, 2), (500, 1, 1), (500, 1, 2)]);
        assert_eq!(t.dropped, 1);
        assert_eq!(t.dropped_by, [(1, 1)]);
    }

    #[test]
    fn dropped_by_survives_jsonl_and_is_absent_when_clean() {
        let t = sample();
        let doc = t.to_jsonl();
        assert!(doc.lines().next().unwrap().contains("\"dropped_by\":[[1,1]]"));
        assert_eq!(Trace::from_jsonl(&doc).expect("valid"), t);
        let clean = Trace::from_parts(vec![(0, vec![ev(0, 1, 0, EventKind::Kill)], 0)]);
        let doc = clean.to_jsonl();
        assert!(!doc.contains("dropped_by"), "drop-free headers keep their historical bytes");
        assert_eq!(Trace::from_jsonl(&doc).expect("valid"), clean);
    }

    #[test]
    fn summary_warns_about_truncated_rings() {
        let s = sample().summary();
        assert!(s.contains("rings truncated"));
        assert!(s.contains("daemon 1: 1 oldest event(s) dropped"));
    }

    #[test]
    fn jsonl_round_trips_byte_identically() {
        let t = sample();
        let doc = t.to_jsonl();
        let back = Trace::from_jsonl(&doc).expect("valid");
        assert_eq!(back, t);
        assert_eq!(back.to_jsonl(), doc, "canonical encoding");
    }

    #[test]
    fn from_jsonl_rejects_bad_documents() {
        assert!(Trace::from_jsonl("").is_err());
        assert!(Trace::from_jsonl("{\"trace\":\"other\",\"version\":1}").is_err());
        assert!(
            Trace::from_jsonl("{\"trace\":\"msgr\",\"version\":1,\"events\":2,\"dropped\":0}\n")
                .unwrap_err()
                .contains("declares 2"),
            "event-count mismatch is caught"
        );
        let bad = "{\"trace\":\"msgr\",\"version\":1,\"events\":1,\"dropped\":0}\n\
                   {\"d\":0,\"s\":1,\"rt\":0,\"vt\":0,\"gvt\":0,\"ev\":\"warp\"}\n";
        assert!(Trace::from_jsonl(bad).unwrap_err().contains("line 2"));
    }

    #[test]
    fn diff_reports_divergence_and_identity() {
        let a = sample();
        assert!(a.diff(&a.clone(), 10).is_empty());
        let mut b = a.clone();
        b.events[2].kind = EventKind::MsgrArrive { mid: 4 };
        let d = a.diff(&b, 10);
        assert_eq!(d.len(), 1);
        assert!(d[0].contains("event 2 differs"));
    }

    #[test]
    fn summary_names_recovery_timeline() {
        let t = Trace {
            events: vec![
                ev(2, 1, 1_000_000, EventKind::Kill),
                ev(0, 1, 2_000_000, EventKind::GvtEvict { victim: 2, floor: 0.5 }),
                ev(1, 1, 3_000_000, EventKind::Restore { victim: 2, nodes: 4, messengers: 2 }),
            ],
            dropped: 0,
            dropped_by: Vec::new(),
        };
        let s = t.summary();
        assert!(s.contains("recovery timeline:"));
        assert!(s.contains("daemon 2 killed"));
        assert!(s.contains("restored daemon 2"));
        assert!(s.contains("4 node(s), 2 messenger(s)"));
    }
}
