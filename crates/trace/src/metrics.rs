//! The typed metrics registry: every counter, gauge, and histogram the
//! runtime emits, declared as an enum with unit metadata.
//!
//! The stringly-typed `msgr_sim::Stats` API silently creates a new
//! series on any typo. This registry closes that hole two ways:
//!
//! 1. Emitting sites pass `Metric::X` instead of a string literal
//!    (`Stats::bump` accepts `impl Into<&'static str>`), so a typo is a
//!    compile error.
//! 2. Platforms install [`Metric::validator`] into `Stats`, turning any
//!    stray string key into a debug-assertion failure; release builds
//!    are unaffected.
//!
//! Adding a metric means adding one line to the [`metrics!`] table —
//! name, kind, and unit in one place.

/// What a metric measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// A plain count of occurrences.
    Count,
    /// Bytes.
    Bytes,
    /// Nanoseconds (simulated on the sim platform).
    Nanos,
    /// Interpreted bytecode operations.
    Ops,
}

/// How a metric accumulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone counter; cross-daemon merge sums.
    Counter,
    /// Last-value gauge; cross-daemon merge takes the max.
    Gauge,
    /// Log-bucket histogram of samples; merge adds bucket-wise.
    Histogram,
}

macro_rules! metrics {
    ($($variant:ident = $name:literal : $kind:ident, $unit:ident;)*) => {
        /// Every metric the runtime emits. `name()` is the `Stats` key.
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        #[allow(missing_docs)]
        pub enum Metric {
            $($variant,)*
        }

        impl Metric {
            /// Every registered metric, in declaration order.
            pub const ALL: &'static [Metric] = &[$(Metric::$variant,)*];

            /// The stable string key used in `Stats` and JSON output.
            pub fn name(self) -> &'static str {
                match self { $(Metric::$variant => $name,)* }
            }

            /// Counter, gauge, or histogram.
            pub fn kind(self) -> MetricKind {
                match self { $(Metric::$variant => MetricKind::$kind,)* }
            }

            /// The unit of the recorded values.
            pub fn unit(self) -> Unit {
                match self { $(Metric::$variant => Unit::$unit,)* }
            }
        }
    };
}

metrics! {
    // ---- messenger lifecycle (daemon) ----
    Segments = "segments": Counter, Count;
    Ops = "ops": Counter, Ops;
    Hops = "hops": Counter, Count;
    VirtualHops = "virtual_hops": Counter, Count;
    Deletes = "deletes": Counter, Count;
    Creates = "creates": Counter, Count;
    CreateNoMatch = "create_no_match": Counter, Count;
    HopNoMatch = "hop_no_match": Counter, Count;
    Suspensions = "suspensions": Counter, Count;
    Terminated = "terminated": Counter, Count;
    Faults = "faults": Counter, Count;
    DeadLetters = "dead_letters": Counter, Count;
    StrandedKilled = "stranded_killed": Counter, Count;
    NodesDeleted = "nodes_deleted": Counter, Count;
    VerifyRejected = "verify_rejected": Counter, Count;
    // ---- migration ----
    MigrationsIn = "migrations_in": Counter, Count;
    MigrationsOut = "migrations_out": Counter, Count;
    MigrationBytes = "migration_bytes": Counter, Bytes;
    RemoteCreates = "remote_creates": Counter, Count;
    // ---- GVT / optimistic ----
    GvtRounds = "gvt_rounds": Counter, Count;
    GvtNs = "gvt_ns": Gauge, Nanos;
    Rollbacks = "rollbacks": Counter, Count;
    RolledBackEvents = "rolled_back_events": Counter, Count;
    AntiSent = "anti_sent": Counter, Count;
    Annihilations = "annihilations": Counter, Count;
    // ---- reliable transport ----
    XportSent = "xport_sent": Counter, Count;
    XportAcked = "xport_acked": Counter, Count;
    XportRetransmits = "xport_retransmits": Counter, Count;
    XportDupDropped = "xport_dup_dropped": Counter, Count;
    XportGaveUp = "xport_gave_up": Counter, Count;
    XportRedirected = "xport_redirected": Counter, Count;
    XportDeliveryNs = "xport_delivery_ns": Histogram, Nanos;
    AcksDeferred = "acks_deferred": Counter, Count;
    // ---- failure detection / recovery ----
    FdBeats = "fd_beats": Counter, Count;
    FdSuspects = "fd_suspects": Counter, Count;
    FdDeaths = "fd_deaths": Counter, Count;
    Evictions = "evictions": Counter, Count;
    Checkpoints = "checkpoints": Counter, Count;
    CheckpointBytes = "checkpoint_bytes": Counter, Bytes;
    Restores = "restores": Counter, Count;
    RestoredNodes = "restored_nodes": Counter, Count;
    RestoredMessengers = "restored_messengers": Counter, Count;
    RecoveryLatencyNs = "recovery_latency_ns": Histogram, Nanos;
    // ---- control plane: quorum membership, gossip, replication ----
    CtrlProposals = "ctrl_proposals": Counter, Count;
    CtrlFrames = "ctrl_frames": Counter, Count;
    CtrlDecrees = "ctrl_decrees": Counter, Count;
    GossipPushes = "gossip_pushes": Counter, Count;
    GossipReplies = "gossip_replies": Counter, Count;
    GossipMerges = "gossip_merges": Counter, Count;
    GossipCodeMismatch = "gossip_code_mismatch": Counter, Count;
    CkptReplicas = "ckpt_replicas": Counter, Count;
    CkptReplicaBytes = "ckpt_replica_bytes": Counter, Bytes;
    CkptReplicaAcks = "ckpt_replica_acks": Counter, Count;
    // ---- execution lanes + frame batching ----
    LaneSteals = "lane_steals": Counter, Count;
    BatchFrames = "batch_frames": Counter, Count;
    BatchFlushes = "batch_flushes": Counter, Count;
    BatchBytesSaved = "batch_bytes_saved": Counter, Bytes;
    // ---- compiled execution (code registry) ----
    CompilePrograms = "compile_programs": Counter, Count;
    CompileSuperinsts = "compile_superinsts": Counter, Count;
    CompileSteps = "compile_steps": Counter, Ops;
    CompileCacheHits = "compile_cache_hits": Counter, Count;
    // ---- interprocedural effect analysis (code registry) ----
    AnalysisSummaries = "analysis_summaries": Counter, Count;
    AnalysisInlinedCalls = "analysis_inlined_calls": Counter, Count;
    AnalysisTypedLoops = "analysis_typed_loops": Counter, Count;
    AnalysisSnapshotsElided = "analysis_snapshots_elided": Counter, Count;
    // ---- platform: network + faults ----
    Wires = "wires": Counter, Count;
    WireBytes = "wire_bytes": Counter, Bytes;
    NetFramesLost = "net_frames_lost": Counter, Count;
    NetFramesDuplicated = "net_frames_duplicated": Counter, Count;
    NetFramesDelayed = "net_frames_delayed": Counter, Count;
    CrashFramesLost = "crash_frames_lost": Counter, Count;
    Kills = "kills": Counter, Count;
    Crashes = "crashes": Counter, Count;
    Restarts = "restarts": Counter, Count;
    NetMessages = "net_messages": Counter, Count;
    NetPayloadBytes = "net_payload_bytes": Counter, Bytes;
    NetQueueingNs = "net_queueing_ns": Counter, Nanos;
    // ---- tracing ----
    TraceDropped = "trace_dropped": Counter, Count;
    // ---- profiler (emitted only with profiling enabled) ----
    ProfLedgers = "prof_ledgers": Counter, Count;
    ProfSamples = "prof_samples": Counter, Count;
    // ---- PVM baseline ----
    Exited = "exited": Counter, Count;
    Spawns = "spawns": Counter, Count;
    BarriersReleased = "barriers_released": Counter, Count;
    Messages = "messages": Counter, Count;
    MessageBytes = "message_bytes": Counter, Bytes;
    InjectedLosses = "injected_losses": Counter, Count;
    Retransmissions = "retransmissions": Counter, Count;
    Fragments = "fragments": Counter, Count;
}

impl Metric {
    /// Look up a metric by its string key.
    pub fn from_name(name: &str) -> Option<Metric> {
        Metric::ALL.iter().copied().find(|m| m.name() == name)
    }

    /// A key validator suitable for `msgr_sim::stats::install_key_validator`:
    /// accepts exactly the registered names.
    pub fn validator(name: &str) -> bool {
        Metric::from_name(name).is_some()
    }
}

impl From<Metric> for &'static str {
    fn from(m: Metric) -> &'static str {
        m.name()
    }
}

impl std::fmt::Display for Metric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn names_are_unique_and_round_trip() {
        let mut seen = BTreeSet::new();
        for &m in Metric::ALL {
            assert!(seen.insert(m.name()), "duplicate metric name {}", m.name());
            assert_eq!(Metric::from_name(m.name()), Some(m));
        }
        assert_eq!(Metric::from_name("hpos"), None, "typos are caught");
        assert!(Metric::validator("hops"));
        assert!(!Metric::validator("hpos"));
    }

    #[test]
    fn metadata_is_consistent() {
        assert_eq!(Metric::XportDeliveryNs.kind(), MetricKind::Histogram);
        assert_eq!(Metric::XportDeliveryNs.unit(), Unit::Nanos);
        assert_eq!(Metric::GvtNs.kind(), MetricKind::Gauge);
        assert_eq!(Metric::MigrationBytes.unit(), Unit::Bytes);
        let s: &'static str = Metric::Hops.into();
        assert_eq!(s, "hops");
        assert_eq!(Metric::Hops.to_string(), "hops");
        assert_eq!(Metric::BatchBytesSaved.unit(), Unit::Bytes);
        assert_eq!(Metric::LaneSteals.kind(), MetricKind::Counter);
        assert_eq!(Metric::from_name("batch_flushes"), Some(Metric::BatchFlushes));
    }
}
