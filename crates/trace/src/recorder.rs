//! The per-daemon flight recorder: a bounded ring of [`TraceEvent`]s
//! with drop accounting.
//!
//! Each daemon owns one recorder. The platform stamps the recorder's
//! clock (`set_now`) before handing control to the daemon, the daemon
//! emits events as it works, and the platform drains the ring at the end
//! of the run. The ring is bounded so tracing a pathological run cannot
//! exhaust memory: when full, the *oldest* event is dropped and counted,
//! flight-recorder style — the most recent window before a crash is
//! exactly what post-mortem debugging needs.
//!
//! The recorder survives [`gut`]-style volatile-state destruction on a
//! daemon kill: the platform owns the drain, so a killed daemon's last
//! window of events still reaches the trace ("flush on crash").

use std::collections::VecDeque;

use crate::event::{EventKind, TraceEvent};

/// Tracing configuration, carried in the cluster config.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceConfig {
    /// Master switch; with it off every recorder call is a cheap no-op.
    pub enabled: bool,
    /// Ring capacity per daemon (events). When the ring is full the
    /// oldest event is dropped and counted in [`FlightRecorder::dropped`].
    pub capacity: usize,
    /// Also record node-variable reads/writes (high volume; off by
    /// default).
    pub node_vars: bool,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig { enabled: false, capacity: 65_536, node_vars: false }
    }
}

impl TraceConfig {
    /// An enabled config with default capacity.
    pub fn on() -> Self {
        TraceConfig { enabled: true, ..TraceConfig::default() }
    }
}

/// A bounded event ring for one daemon.
#[derive(Debug)]
pub struct FlightRecorder {
    daemon: u16,
    enabled: bool,
    node_vars: bool,
    capacity: usize,
    seq: u64,
    now: u64,
    gvt: f64,
    ring: VecDeque<TraceEvent>,
    dropped: u64,
}

impl FlightRecorder {
    /// A recorder for `daemon` per `cfg`.
    pub fn new(daemon: u16, cfg: &TraceConfig) -> Self {
        FlightRecorder {
            daemon,
            enabled: cfg.enabled,
            node_vars: cfg.enabled && cfg.node_vars,
            capacity: cfg.capacity.max(1),
            seq: 0,
            now: 0,
            gvt: 0.0,
            ring: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Whether events are being recorded at all.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The daemon this recorder belongs to.
    pub fn daemon(&self) -> u16 {
        self.daemon
    }

    /// Whether node-variable accesses should be recorded.
    pub fn node_vars(&self) -> bool {
        self.node_vars
    }

    /// Stamp the platform clock used for subsequent events.
    pub fn set_now(&mut self, rt: u64) {
        self.now = rt;
    }

    /// The last stamped platform clock.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Stamp the daemon's current GVT estimate.
    pub fn set_gvt(&mut self, gvt: f64) {
        self.gvt = gvt;
    }

    /// Record one event at messenger virtual time `vt`.
    pub fn emit(&mut self, vt: f64, kind: EventKind) {
        if !self.enabled {
            return;
        }
        self.seq += 1;
        if self.ring.len() >= self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(TraceEvent {
            daemon: self.daemon,
            seq: self.seq,
            rt: self.now,
            vt,
            gvt: self.gvt,
            kind,
        });
    }

    /// Record a system event (no messenger attached): `vt` is stamped
    /// with the daemon's GVT estimate.
    pub fn emit_sys(&mut self, kind: EventKind) {
        let gvt = self.gvt;
        self.emit(gvt, kind);
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Events dropped to the ring bound so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drain the ring (oldest first) and its drop count, leaving the
    /// recorder empty but still armed.
    pub fn drain(&mut self) -> (Vec<TraceEvent>, u64) {
        let events = std::mem::take(&mut self.ring).into();
        (events, std::mem::take(&mut self.dropped))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_a_no_op() {
        let mut r = FlightRecorder::new(0, &TraceConfig::default());
        assert!(!r.enabled());
        r.emit(0.0, EventKind::Kill);
        assert!(r.is_empty());
        assert_eq!(r.drain().0.len(), 0);
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let cfg = TraceConfig { enabled: true, capacity: 3, node_vars: false };
        let mut r = FlightRecorder::new(2, &cfg);
        for i in 0..5u64 {
            r.set_now(i * 10);
            r.emit(0.0, EventKind::MsgrInject { mid: i });
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let (events, dropped) = r.drain();
        assert_eq!(dropped, 2);
        // The survivors are the newest three, in order, with monotone seq.
        let mids: Vec<u64> = events
            .iter()
            .map(|e| match e.kind {
                EventKind::MsgrInject { mid } => mid,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(mids, [2, 3, 4]);
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(events[0].daemon, 2);
        // Drained recorder stays armed.
        r.emit(0.0, EventKind::Kill);
        assert_eq!(r.len(), 1);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn stamps_now_and_gvt() {
        let mut r = FlightRecorder::new(1, &TraceConfig::on());
        r.set_now(777);
        r.set_gvt(1.5);
        r.emit(2.0, EventKind::MsgrRetire { mid: 4 });
        r.emit_sys(EventKind::Checkpoint { bytes: 10 });
        let (ev, _) = r.drain();
        assert_eq!(ev[0].rt, 777);
        assert_eq!(ev[0].vt, 2.0);
        assert_eq!(ev[0].gvt, 1.5);
        assert_eq!(ev[1].vt, 1.5, "system events stamp vt = gvt");
    }
}
