//! Trace determinism properties: the flight recorder is part of the
//! deterministic surface of the simulator, so two runs of the **same
//! seed and fault plan must serialize to byte-identical JSONL** — not
//! just equal event multisets, but the same bytes, so `msgr trace diff`
//! and CI can compare runs with `cmp`.
//!
//! Every property runs 256 generated cases through `msgr-check`; a
//! failing case prints a `MSGR_CHECK_SEED=<n>` line and replays (and
//! shrinks) deterministically.
//!
//! ## Mutation check
//!
//! `perturbed_seed_changes_the_trace` proves the byte-identity property
//! has teeth: flipping one bit of the cluster seed under loss produces a
//! *different* trace. If tracing ever degenerated into something
//! seed-independent (empty traces, constant timestamps), both properties
//! together would catch it.

use msgr_check::{check_with, prop_assert, prop_assert_eq, Config, Source};
use msgr_core::topology::LogicalTopology;
use msgr_core::{ClusterConfig, DaemonId, SimCluster};
use msgr_sim::{CrashEvent, FaultPlan, MILLI};
use msgr_trace::{Metric, Trace};
use msgr_vm::{Dir, Value};

/// Ring walker (same shape as the core chaos suite): enough hops,
/// retransmits, and checkpoints to exercise every event class.
const WALK: &str = r#"
walk(passes) {
    int i = 0;
    node int visits;
    visits = visits + 1;
    while (i < passes) {
        hop(ll = "ring"; ldir = +);
        visits = visits + 1;
        i = i + 1;
    }
}
"#;

fn cases() -> Config {
    Config { cases: 256, ..Config::default() }
}

struct Scenario {
    daemons: usize,
    nodes: usize,
    msgrs: usize,
    passes: i64,
    seed: u64,
    plan: FaultPlan,
}

/// Random cluster shapes kept a notch smaller than the core chaos suite
/// (2–5 daemons, short walks) because every case runs the cluster twice.
fn arb_scenario(s: &mut Source) -> Scenario {
    let daemons = s.usize_in(2..6);
    let mut plan = FaultPlan {
        drop_p: s.f64_in(0.0, 0.10),
        dup_p: s.f64_in(0.0, 0.10),
        reorder_p: s.f64_in(0.0, 0.10),
        reorder_delay: s.u64_in(MILLI / 10..5 * MILLI),
        crashes: Vec::new(),
    };
    // Sometimes add one transient crash window (non-overlapping by
    // construction, and short enough not to trip permanent failover).
    if s.usize_in(0..2) == 1 {
        plan.crashes.push(CrashEvent::transient(
            s.u32_in(0..daemons as u32),
            s.u64_in(0..40 * MILLI),
            s.u64_in(MILLI..30 * MILLI),
        ));
    }
    Scenario {
        daemons,
        nodes: s.usize_in(daemons..2 * daemons + 1),
        msgrs: s.usize_in(1..4),
        passes: s.i64_in(1..12),
        seed: s.any_u64(),
        plan,
    }
}

/// Build the ring, run to quiescence with tracing on, and return the
/// collected trace plus the run's stats.
fn run_traced(sc: &Scenario, seed: u64) -> Result<(Trace, msgr_sim::Stats), String> {
    let mut topo = LogicalTopology::new();
    for i in 0..sc.nodes {
        topo.node(Value::str(format!("p{i}")), DaemonId((i % sc.daemons) as u16));
    }
    for i in 0..sc.nodes {
        topo.link(
            Value::str(format!("p{i}")),
            Value::str(format!("p{}", (i + 1) % sc.nodes)),
            Value::str("ring"),
            Dir::Forward,
        );
    }
    let mut cfg = ClusterConfig::new(sc.daemons);
    cfg.seed = seed;
    cfg.faults = sc.plan.clone();
    cfg.trace.enabled = true;
    let mut cluster = SimCluster::new(cfg);
    cluster.build(&topo).map_err(|e| e.to_string())?;
    let pid = cluster.register_program(&msgr_lang::compile(WALK).map_err(|e| e.to_string())?);
    for m in 0..sc.msgrs {
        cluster
            .inject_at(&Value::str(format!("p{}", m % sc.nodes)), pid, &[Value::Int(sc.passes)])
            .map_err(|e| e.to_string())?;
    }
    let report = cluster.run().map_err(|e| e.to_string())?;
    let trace = report.trace.clone().ok_or("tracing was enabled but no trace came back")?;
    Ok((trace, report.stats.clone()))
}

/// Same seed + same fault plan ⇒ byte-identical JSONL. The trace is the
/// new tier-1 determinism witness: it covers event payloads, ordering,
/// and both timestamp domains at once.
#[test]
fn same_seed_runs_serialize_byte_identically() {
    check_with(cases(), "same_seed_runs_serialize_byte_identically", |s| {
        let sc = arb_scenario(s);
        let (a, _) = run_traced(&sc, sc.seed)?;
        let (b, _) = run_traced(&sc, sc.seed)?;
        let (ja, jb) = (a.to_jsonl(), b.to_jsonl());
        prop_assert!(ja == jb, "same-seed traces differ: {:?}", a.diff(&b, 5));
        prop_assert!(!a.events.is_empty(), "trace must not be empty");
        // And the codec round-trips: parse(serialize(t)) == t, byte for byte.
        let back = Trace::from_jsonl(&ja)?;
        prop_assert_eq!(back.to_jsonl(), ja);
        Ok(())
    });
}

/// Mutation check: a perturbed seed yields a different trace. Uses a
/// fixed scenario with enough traffic and loss that the fault schedule
/// is guaranteed to actually fire (tiny generated cases can go an entire
/// run without a single drop, which would make a property-based version
/// of this check flaky).
#[test]
fn perturbed_seed_changes_the_trace() {
    let sc = Scenario {
        daemons: 4,
        nodes: 6,
        msgrs: 3,
        passes: 16,
        seed: 7,
        plan: FaultPlan {
            drop_p: 0.08,
            dup_p: 0.0,
            reorder_p: 0.0,
            reorder_delay: MILLI,
            crashes: Vec::new(),
        },
    };
    let (a, _) = run_traced(&sc, 7).expect("seed 7 run failed");
    let (b, _) = run_traced(&sc, 8).expect("seed 8 run failed");
    assert!(
        a.to_jsonl() != b.to_jsonl(),
        "seeds 7 and 8 produced identical traces — tracing has gone seed-independent"
    );
}

/// A seeded chaos run with a mid-run kill must produce every event class
/// the acceptance bar names: hop, retransmit, checkpoint, and restore.
#[test]
fn chaos_run_covers_required_event_classes() {
    let sc = Scenario {
        daemons: 4,
        nodes: 4,
        msgrs: 2,
        passes: 12,
        seed: 7,
        plan: FaultPlan {
            drop_p: 0.05,
            dup_p: 0.0,
            reorder_p: 0.0,
            reorder_delay: MILLI,
            crashes: vec![CrashEvent::kill(2, 20 * MILLI)],
        },
    };
    let (trace, _) = run_traced(&sc, sc.seed).expect("chaos run failed");
    let counts: std::collections::HashMap<&str, u64> = trace.counts().into_iter().collect();
    for ev in ["inject", "hop", "retransmit", "checkpoint", "kill", "restore"] {
        assert!(
            counts.get(ev).copied().unwrap_or(0) > 0,
            "chaos trace is missing `{ev}` events; got {counts:?}"
        );
    }
}

/// Key-drift allowlist: every stats key a smoke run emits — counters,
/// gauges, and histograms — must resolve through [`Metric::from_name`].
/// A typo'd or unregistered key fails here (and under `debug_assertions`
/// already fails inside `Stats` via the installed validator).
#[test]
fn every_emitted_stats_key_is_registered() {
    let sc = Scenario {
        daemons: 4,
        nodes: 5,
        msgrs: 2,
        passes: 10,
        seed: 11,
        plan: FaultPlan {
            drop_p: 0.05,
            dup_p: 0.02,
            reorder_p: 0.02,
            reorder_delay: MILLI,
            crashes: vec![CrashEvent::kill(1, 20 * MILLI)],
        },
    };
    let (_, stats) = run_traced(&sc, sc.seed).expect("smoke run failed");
    let mut keys: Vec<&'static str> = stats
        .counters()
        .map(|(k, _)| k)
        .chain(stats.gauges().map(|(k, _)| k))
        .chain(stats.histograms().map(|(k, _)| k))
        .collect();
    keys.sort_unstable();
    keys.dedup();
    assert!(!keys.is_empty(), "smoke run emitted no stats at all");
    let unregistered: Vec<&str> =
        keys.into_iter().filter(|k| Metric::from_name(k).is_none()).collect();
    assert!(unregistered.is_empty(), "stats keys not in the Metric registry: {unregistered:?}");
}

// ---------------------------------------------------------------------
// Codec coverage: every event class, including the profiler's
// PhaseLedger / PcSample, survives JSONL *and* the Chrome export.
// ---------------------------------------------------------------------

use msgr_trace::{json, EventKind, TraceEvent};

/// Safe integer payloads: the JSON parser is f64-backed, so anything
/// serialized as a bare number must stay below 2^53. (Fields that need
/// all 64 bits — program content hashes — go over the wire as hex
/// strings and may use `any_u64`.)
fn arb_num(s: &mut Source) -> u64 {
    s.u64_in(0..1 << 50)
}

fn arb_name(s: &mut Source) -> String {
    // Exercise JSON escaping: quotes, backslashes, control chars,
    // multi-byte UTF-8.
    s.string(0..9, "ab\"\\\n\tπé ")
}

/// One instance of every [`EventKind`] variant, fields drawn from `s`.
/// Listed in declaration order; a new variant fails the length check in
/// `every_event_kind_round_trips_losslessly` until it is added here.
fn all_kinds(s: &mut Source) -> Vec<EventKind> {
    vec![
        EventKind::MsgrInject { mid: arb_num(s) },
        EventKind::MsgrHop { mid: arb_num(s), to: s.any_u16(), bytes: arb_num(s) },
        EventKind::MsgrArrive { mid: arb_num(s) },
        EventKind::MsgrFork { mid: arb_num(s), replicas: arb_num(s) },
        EventKind::MsgrPark { mid: arb_num(s), wake: s.f64_in(-1e9, 1e9) },
        EventKind::MsgrRevive { mid: arb_num(s) },
        EventKind::MsgrRetire { mid: arb_num(s) },
        EventKind::MsgrFault { mid: arb_num(s) },
        EventKind::FrameSend { chan: s.any_u16(), seq: arb_num(s), bytes: arb_num(s) },
        EventKind::FrameAck { chan: s.any_u16(), seq: arb_num(s) },
        EventKind::FrameRetransmit { chan: s.any_u16(), seq: arb_num(s), attempt: s.any_u32() },
        EventKind::FrameRedirect { chan: s.any_u16(), seq: arb_num(s), to: s.any_u16() },
        EventKind::NodeVarRead { var: arb_name(s) },
        EventKind::NodeVarWrite { var: arb_name(s) },
        EventKind::GvtRound { round: arb_num(s) },
        EventKind::GvtAdvance { gvt: s.f64_in(0.0, 1e9) },
        EventKind::GvtEvict { victim: s.any_u16(), floor: s.f64_in(0.0, 1e9) },
        EventKind::Checkpoint { bytes: arb_num(s) },
        EventKind::Restore { victim: s.any_u16(), nodes: arb_num(s), messengers: arb_num(s) },
        EventKind::NetDrop { to: s.any_u16() },
        EventKind::NetDup { to: s.any_u16() },
        EventKind::NetDelay { to: s.any_u16(), by: arb_num(s) },
        EventKind::CodeCompile { prog: s.any_u64(), funcs: arb_num(s), superinsts: arb_num(s) },
        EventKind::CodeCacheHit { prog: s.any_u64() },
        EventKind::CodeAnalysis {
            prog: s.any_u64(),
            hop_free: arb_num(s),
            typed_loops: arb_num(s),
        },
        EventKind::CtrlPropose { victim: s.any_u16(), seq: s.any_u32() },
        EventKind::CtrlDecide { victim: s.any_u16(), successor: s.any_u16(), seq: s.any_u32() },
        EventKind::GossipMerge { from: s.any_u16() },
        EventKind::CkptReplica { owner: s.any_u16(), ver: s.any_u32() },
        EventKind::PhaseLedger {
            mid: arb_num(s),
            born: arb_num(s),
            parent: arb_num(s),
            queue: arb_num(s),
            verify: arb_num(s),
            exec: arb_num(s),
            enc: arb_num(s),
            xport: arb_num(s),
            park: arb_num(s),
            stall: arb_num(s),
            total: arb_num(s),
        },
        EventKind::PcSample {
            prog: s.any_u64(),
            func: s.any_u32(),
            line: s.any_u32(),
            count: arb_num(s),
        },
        EventKind::Kill,
        EventKind::SpanBegin { name: arb_name(s) },
        EventKind::SpanEnd { name: arb_name(s) },
    ]
}

/// A trace holding at least one of every event kind (plus duplicates),
/// arbitrary stamps, and sometimes a truncation attribution header.
fn arb_full_trace(s: &mut Source) -> Trace {
    let mut kinds = all_kinds(s);
    for _ in 0..s.usize_in(0..8) {
        let extra = all_kinds(s);
        kinds.push(extra[s.usize_in(0..extra.len())].clone());
    }
    let events: Vec<TraceEvent> = kinds
        .into_iter()
        .map(|kind| TraceEvent {
            daemon: s.u8_in(0..6) as u16,
            seq: arb_num(s),
            rt: arb_num(s),
            vt: s.f64_in(0.0, 1e9),
            gvt: s.f64_in(0.0, 1e9),
            kind,
        })
        .collect();
    let dropped_by: Vec<(u16, u64)> =
        (0..s.usize_in(0..3)).map(|i| (i as u16 * 2, s.u64_in(1..1000))).collect();
    let dropped = dropped_by.iter().map(|&(_, n)| n).sum();
    Trace { events, dropped, dropped_by }
}

/// Every event class — profiler events included — round-trips the JSONL
/// codec byte-identically and lands in the Chrome export with its
/// payload intact. 256 generated cases.
#[test]
fn every_event_kind_round_trips_losslessly() {
    check_with(cases(), "every_event_kind_round_trips_losslessly", |s| {
        let t = arb_full_trace(s);
        prop_assert!(t.events.len() >= 34, "generator must cover all 34 event kinds");

        // JSONL: decode(encode(t)) == t, and re-encoding is canonical.
        let doc = t.to_jsonl();
        let back = Trace::from_jsonl(&doc)?;
        prop_assert!(back == t, "JSONL round-trip lost data: {:?}", t.diff(&back, 5));
        prop_assert_eq!(back.to_jsonl(), doc);

        // Chrome: the export parses, and every source event is present —
        // hops, arrives, and parks fan out into two entries (flow arrow /
        // counter), everything else maps 1:1 (plus per-daemon metadata).
        let chrome = msgr_trace::chrome::to_chrome(&t);
        let parsed = json::parse(&chrome).map_err(|e| format!("chrome export: {e}"))?;
        let entries =
            parsed.get("traceEvents").and_then(json::Json::as_arr).ok_or("no traceEvents")?;
        let mut daemons: Vec<u16> = t.events.iter().map(|e| e.daemon).collect();
        daemons.sort_unstable();
        daemons.dedup();
        let expected: usize = daemons.len()
            + t.events
                .iter()
                .map(|e| match e.kind {
                    EventKind::MsgrHop { .. }
                    | EventKind::MsgrArrive { .. }
                    | EventKind::MsgrPark { .. } => 2,
                    _ => 1,
                })
                .sum::<usize>();
        prop_assert_eq!(entries.len(), expected);

        // Payload spot-checks through the generic args path: the
        // profiler events carry their headline numbers into Chrome.
        for (kind, field, want) in t.events.iter().filter_map(|e| match &e.kind {
            EventKind::PhaseLedger { total, .. } => Some(("phase_ledger", "total", *total)),
            EventKind::PcSample { count, .. } => Some(("pc_sample", "count", *count)),
            _ => None,
        }) {
            let hit = entries.iter().any(|e| {
                e.get("name").and_then(json::Json::as_str) == Some(kind)
                    && e.get("args").and_then(|a| a.get(field)).and_then(json::Json::as_u64)
                        == Some(want)
            });
            prop_assert!(hit, "chrome export lost {kind} with {field}={want}");
        }
        Ok(())
    });
}
