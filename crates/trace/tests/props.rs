//! Trace determinism properties: the flight recorder is part of the
//! deterministic surface of the simulator, so two runs of the **same
//! seed and fault plan must serialize to byte-identical JSONL** — not
//! just equal event multisets, but the same bytes, so `msgr trace diff`
//! and CI can compare runs with `cmp`.
//!
//! Every property runs 256 generated cases through `msgr-check`; a
//! failing case prints a `MSGR_CHECK_SEED=<n>` line and replays (and
//! shrinks) deterministically.
//!
//! ## Mutation check
//!
//! `perturbed_seed_changes_the_trace` proves the byte-identity property
//! has teeth: flipping one bit of the cluster seed under loss produces a
//! *different* trace. If tracing ever degenerated into something
//! seed-independent (empty traces, constant timestamps), both properties
//! together would catch it.

use msgr_check::{check_with, prop_assert, prop_assert_eq, Config, Source};
use msgr_core::topology::LogicalTopology;
use msgr_core::{ClusterConfig, DaemonId, SimCluster};
use msgr_sim::{CrashEvent, FaultPlan, MILLI};
use msgr_trace::{Metric, Trace};
use msgr_vm::{Dir, Value};

/// Ring walker (same shape as the core chaos suite): enough hops,
/// retransmits, and checkpoints to exercise every event class.
const WALK: &str = r#"
walk(passes) {
    int i = 0;
    node int visits;
    visits = visits + 1;
    while (i < passes) {
        hop(ll = "ring"; ldir = +);
        visits = visits + 1;
        i = i + 1;
    }
}
"#;

fn cases() -> Config {
    Config { cases: 256, ..Config::default() }
}

struct Scenario {
    daemons: usize,
    nodes: usize,
    msgrs: usize,
    passes: i64,
    seed: u64,
    plan: FaultPlan,
}

/// Random cluster shapes kept a notch smaller than the core chaos suite
/// (2–5 daemons, short walks) because every case runs the cluster twice.
fn arb_scenario(s: &mut Source) -> Scenario {
    let daemons = s.usize_in(2..6);
    let mut plan = FaultPlan {
        drop_p: s.f64_in(0.0, 0.10),
        dup_p: s.f64_in(0.0, 0.10),
        reorder_p: s.f64_in(0.0, 0.10),
        reorder_delay: s.u64_in(MILLI / 10..5 * MILLI),
        crashes: Vec::new(),
    };
    // Sometimes add one transient crash window (non-overlapping by
    // construction, and short enough not to trip permanent failover).
    if s.usize_in(0..2) == 1 {
        plan.crashes.push(CrashEvent::transient(
            s.u32_in(0..daemons as u32),
            s.u64_in(0..40 * MILLI),
            s.u64_in(MILLI..30 * MILLI),
        ));
    }
    Scenario {
        daemons,
        nodes: s.usize_in(daemons..2 * daemons + 1),
        msgrs: s.usize_in(1..4),
        passes: s.i64_in(1..12),
        seed: s.any_u64(),
        plan,
    }
}

/// Build the ring, run to quiescence with tracing on, and return the
/// collected trace plus the run's stats.
fn run_traced(sc: &Scenario, seed: u64) -> Result<(Trace, msgr_sim::Stats), String> {
    let mut topo = LogicalTopology::new();
    for i in 0..sc.nodes {
        topo.node(Value::str(format!("p{i}")), DaemonId((i % sc.daemons) as u16));
    }
    for i in 0..sc.nodes {
        topo.link(
            Value::str(format!("p{i}")),
            Value::str(format!("p{}", (i + 1) % sc.nodes)),
            Value::str("ring"),
            Dir::Forward,
        );
    }
    let mut cfg = ClusterConfig::new(sc.daemons);
    cfg.seed = seed;
    cfg.faults = sc.plan.clone();
    cfg.trace.enabled = true;
    let mut cluster = SimCluster::new(cfg);
    cluster.build(&topo).map_err(|e| e.to_string())?;
    let pid = cluster.register_program(&msgr_lang::compile(WALK).map_err(|e| e.to_string())?);
    for m in 0..sc.msgrs {
        cluster
            .inject_at(&Value::str(format!("p{}", m % sc.nodes)), pid, &[Value::Int(sc.passes)])
            .map_err(|e| e.to_string())?;
    }
    let report = cluster.run().map_err(|e| e.to_string())?;
    let trace = report.trace.clone().ok_or("tracing was enabled but no trace came back")?;
    Ok((trace, report.stats.clone()))
}

/// Same seed + same fault plan ⇒ byte-identical JSONL. The trace is the
/// new tier-1 determinism witness: it covers event payloads, ordering,
/// and both timestamp domains at once.
#[test]
fn same_seed_runs_serialize_byte_identically() {
    check_with(cases(), "same_seed_runs_serialize_byte_identically", |s| {
        let sc = arb_scenario(s);
        let (a, _) = run_traced(&sc, sc.seed)?;
        let (b, _) = run_traced(&sc, sc.seed)?;
        let (ja, jb) = (a.to_jsonl(), b.to_jsonl());
        prop_assert!(ja == jb, "same-seed traces differ: {:?}", a.diff(&b, 5));
        prop_assert!(!a.events.is_empty(), "trace must not be empty");
        // And the codec round-trips: parse(serialize(t)) == t, byte for byte.
        let back = Trace::from_jsonl(&ja)?;
        prop_assert_eq!(back.to_jsonl(), ja);
        Ok(())
    });
}

/// Mutation check: a perturbed seed yields a different trace. Uses a
/// fixed scenario with enough traffic and loss that the fault schedule
/// is guaranteed to actually fire (tiny generated cases can go an entire
/// run without a single drop, which would make a property-based version
/// of this check flaky).
#[test]
fn perturbed_seed_changes_the_trace() {
    let sc = Scenario {
        daemons: 4,
        nodes: 6,
        msgrs: 3,
        passes: 16,
        seed: 7,
        plan: FaultPlan {
            drop_p: 0.08,
            dup_p: 0.0,
            reorder_p: 0.0,
            reorder_delay: MILLI,
            crashes: Vec::new(),
        },
    };
    let (a, _) = run_traced(&sc, 7).expect("seed 7 run failed");
    let (b, _) = run_traced(&sc, 8).expect("seed 8 run failed");
    assert!(
        a.to_jsonl() != b.to_jsonl(),
        "seeds 7 and 8 produced identical traces — tracing has gone seed-independent"
    );
}

/// A seeded chaos run with a mid-run kill must produce every event class
/// the acceptance bar names: hop, retransmit, checkpoint, and restore.
#[test]
fn chaos_run_covers_required_event_classes() {
    let sc = Scenario {
        daemons: 4,
        nodes: 4,
        msgrs: 2,
        passes: 12,
        seed: 7,
        plan: FaultPlan {
            drop_p: 0.05,
            dup_p: 0.0,
            reorder_p: 0.0,
            reorder_delay: MILLI,
            crashes: vec![CrashEvent::kill(2, 20 * MILLI)],
        },
    };
    let (trace, _) = run_traced(&sc, sc.seed).expect("chaos run failed");
    let counts: std::collections::HashMap<&str, u64> = trace.counts().into_iter().collect();
    for ev in ["inject", "hop", "retransmit", "checkpoint", "kill", "restore"] {
        assert!(
            counts.get(ev).copied().unwrap_or(0) > 0,
            "chaos trace is missing `{ev}` events; got {counts:?}"
        );
    }
}

/// Key-drift allowlist: every stats key a smoke run emits — counters,
/// gauges, and histograms — must resolve through [`Metric::from_name`].
/// A typo'd or unregistered key fails here (and under `debug_assertions`
/// already fails inside `Stats` via the installed validator).
#[test]
fn every_emitted_stats_key_is_registered() {
    let sc = Scenario {
        daemons: 4,
        nodes: 5,
        msgrs: 2,
        passes: 10,
        seed: 11,
        plan: FaultPlan {
            drop_p: 0.05,
            dup_p: 0.02,
            reorder_p: 0.02,
            reorder_delay: MILLI,
            crashes: vec![CrashEvent::kill(1, 20 * MILLI)],
        },
    };
    let (_, stats) = run_traced(&sc, sc.seed).expect("smoke run failed");
    let mut keys: Vec<&'static str> = stats
        .counters()
        .map(|(k, _)| k)
        .chain(stats.gauges().map(|(k, _)| k))
        .chain(stats.histograms().map(|(k, _)| k))
        .collect();
    keys.sort_unstable();
    keys.dedup();
    assert!(!keys.is_empty(), "smoke run emitted no stats at all");
    let unregistered: Vec<&str> =
        keys.into_iter().filter(|k| Metric::from_name(k).is_none()).collect();
    assert!(unregistered.is_empty(), "stats keys not in the Metric registry: {unregistered:?}");
}
