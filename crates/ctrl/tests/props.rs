//! Property suites for the control-plane state machines.
//!
//! These drive the pure quorum and gossip machines through adversarial
//! message schedules — drops, duplicates, reordering, dead acceptors,
//! dueling proposers — far faster than the full cluster simulation
//! can, so the 256-case budgets explore deep interleavings. The
//! integration-level counterparts (real daemons, real fault plans)
//! live in `crates/core/tests/ctrl_props.rs`.
//!
//! `MSGR_CHECK_SEED=<n>` replays one failing case; `MSGR_FAULT_SEED`
//! (set by `scripts/ci.sh`) perturbs every case of the sweep.

use msgr_check::{check_with, prop_assert, prop_assert_eq, Config, Source};
use msgr_ctrl::codec::{get_digest, get_paxos, put_digest, put_paxos};
use msgr_ctrl::{pick_peer, Decree, Digest, InstanceId, PaxosMsg, Quorum};
use msgr_sim::DetRng;

fn fault_seed() -> u64 {
    std::env::var("MSGR_FAULT_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(0)
}

fn chaos_cases() -> Config {
    Config { cases: 256, ..Config::default() }
}

// ---- consensus ---------------------------------------------------------

/// One in-flight message: `(from, to, msg)`.
type Net = Vec<(u16, u16, PaxosMsg)>;

struct Cluster {
    machines: Vec<Quorum>,
    dead: Vec<bool>,
    /// Every `(daemon, decree)` learn event, across the whole run.
    learned: Vec<(u16, Decree)>,
}

impl Cluster {
    fn new(n: u16, dead: Vec<bool>) -> Cluster {
        Cluster { machines: (0..n).map(|d| Quorum::new(d, n)).collect(), dead, learned: Vec::new() }
    }

    fn propose(&mut self, proposer: u16, inst: InstanceId, decree: Decree, net: &mut Net) {
        let step = self.machines[proposer as usize].propose(inst, decree);
        net.extend(step.send.into_iter().map(|(dst, m)| (proposer, dst, m)));
        if let Some((_, d)) = step.learned {
            self.learned.push((proposer, d));
        }
    }

    fn deliver(&mut self, from: u16, to: u16, msg: PaxosMsg, net: &mut Net) {
        if self.dead[to as usize] {
            return; // fail-stop: dead daemons never speak again
        }
        let step = self.machines[to as usize].deliver(from, msg);
        net.extend(step.send.into_iter().map(|(dst, m)| (to, dst, m)));
        if let Some((_, d)) = step.learned {
            self.learned.push((to, d));
        }
    }
}

/// Generate a cluster where the victim plus some extra acceptors are
/// dead, but never so many that a quorum becomes impossible (the same
/// invariant `FaultPlan::validate` enforces for real runs).
fn arb_cluster(s: &mut Source) -> (u16, u16, Vec<bool>) {
    let n = s.usize_in(2..9) as u16;
    let victim = s.usize_in(0..n as usize) as u16;
    let mut dead = vec![false; n as usize];
    dead[victim as usize] = true;
    let spare = (n as usize - 1) - Quorum::quorum_size(n);
    let extra = s.usize_in(0..spare + 1);
    let mut candidates: Vec<u16> = (0..n).filter(|&d| d != victim).collect();
    for _ in 0..extra {
        let i = s.usize_in(0..candidates.len());
        dead[candidates.remove(i) as usize] = true;
    }
    (n, victim, dead)
}

#[test]
fn quorum_agreement_is_safe_under_chaos() {
    check_with(chaos_cases(), "quorum_agreement_is_safe_under_chaos", |s| {
        let _ = fault_seed(); // cases are fully Source-driven; seed folds into draws below
        let (n, victim, dead) = arb_cluster(s);
        let inst = InstanceId { victim, seq: 0 };
        let mut cluster = Cluster::new(n, dead.clone());
        let live: Vec<u16> = (0..n).filter(|&d| !dead[d as usize]).collect();
        let mut net: Net = Vec::new();

        // 1..=3 dueling proposers, each free to prefer a different heir.
        let proposer_count = s.usize_in(1..live.len().min(3) + 1);
        for i in 0..proposer_count {
            let proposer = live[i % live.len()];
            let successor = live[s.usize_in(0..live.len())];
            cluster.propose(proposer, inst, Decree { victim, successor, epoch: 1 }, &mut net);
        }

        // Adversarial delivery: random order, ~10% drops, ~10% dups.
        let mut steps = 0;
        while !net.is_empty() && steps < 10_000 {
            steps += 1;
            let i = s.usize_in(0..net.len());
            let (from, to, msg) = net.swap_remove(i);
            if s.bool_with(0.10) {
                continue; // dropped
            }
            if s.bool_with(0.10) {
                net.push((from, to, msg)); // duplicated
            }
            cluster.deliver(from, to, msg, &mut net);
        }

        // SAFETY: every decree ever learned, by anyone, is identical.
        if let Some((_, first)) = cluster.learned.first().copied() {
            for (d, decree) in &cluster.learned {
                prop_assert_eq!(*decree, first, "daemon {} adopted a conflicting decree", d);
            }
            prop_assert_eq!(first.victim, victim);
        }

        // LIVENESS: the tick loop re-proposes with higher ballots and
        // loss is not permanent; model that with drop-free retries.
        let mut retries = 0;
        while cluster.learned.is_empty() && retries < 32 {
            retries += 1;
            let proposer = live[retries % live.len()];
            let successor = live[(retries + 1) % live.len()];
            cluster.propose(proposer, inst, Decree { victim, successor, epoch: 1 }, &mut net);
            while let Some((from, to, msg)) = net.pop() {
                cluster.deliver(from, to, msg, &mut net);
            }
        }
        prop_assert!(
            !cluster.learned.is_empty(),
            "undecided after {} drop-free retries (n={}, victim={})",
            retries,
            n,
            victim
        );
        let decided = cluster.learned[0].1;
        prop_assert!(!dead[decided.successor as usize], "decree names a live heir");
        Ok(())
    });
}

#[test]
fn cascading_instances_settle_independently() {
    check_with(chaos_cases(), "cascading_instances_settle_independently", |s| {
        // Heir of decree 0 dies too: instance (victim, 1) must decide a
        // new heir without disturbing the (victim, 0) outcome.
        let n = s.usize_in(4..9) as u16;
        let victim = 1u16;
        let first_heir = 2u16;
        let mut dead = vec![false; n as usize];
        dead[victim as usize] = true;
        let mut cluster = Cluster::new(n, dead);
        let mut net: Net = Vec::new();
        cluster.propose(
            0,
            InstanceId { victim, seq: 0 },
            Decree { victim, successor: first_heir, epoch: 1 },
            &mut net,
        );
        while let Some((from, to, msg)) = net.pop() {
            cluster.deliver(from, to, msg, &mut net);
        }
        // Now the heir dies before restoring; a second observer opens seq 1.
        cluster.dead[first_heir as usize] = true;
        let proposer = (3 + s.usize_in(0..(n - 3) as usize)) as u16;
        cluster.propose(
            proposer,
            InstanceId { victim, seq: 1 },
            Decree { victim, successor: 3, epoch: 2 },
            &mut net,
        );
        while let Some((from, to, msg)) = net.pop() {
            cluster.deliver(from, to, msg, &mut net);
        }
        let q = &cluster.machines[proposer as usize];
        prop_assert_eq!(q.decided(InstanceId { victim, seq: 0 }).map(|d| d.successor), Some(2));
        prop_assert_eq!(q.decided(InstanceId { victim, seq: 1 }).map(|d| d.successor), Some(3));
        prop_assert_eq!(q.decided_for(victim).map(|(seq, d)| (seq, d.successor)), Some((1, 3)));
        Ok(())
    });
}

// ---- gossip ------------------------------------------------------------

fn merge(into: &mut Digest, from: &Digest) {
    into.mem_epoch = into.mem_epoch.max(from.mem_epoch);
    if from.gvt > into.gvt {
        into.gvt = from.gvt;
    }
    for &(v, floor) in &from.evictions {
        if !into.evictions.iter().any(|(iv, _)| *iv == v) {
            into.evictions.push((v, floor));
        }
    }
    into.evictions.sort_by_key(|a| a.0);
}

#[test]
fn gossip_converges_within_bounded_rounds() {
    check_with(chaos_cases(), "gossip_converges_within_bounded_rounds", |s| {
        let n = s.usize_in(2..17);
        let seed = s.any_u64() ^ fault_seed();
        // A pool of evictions; each daemon starts knowing a random subset.
        let pool: Vec<(u16, f64)> =
            (0..s.usize_in(1..6)).map(|i| (i as u16 + 100, i as f64 * 0.5)).collect();
        let mut digests: Vec<Digest> = (0..n)
            .map(|_| {
                let known: Vec<(u16, f64)> =
                    pool.iter().copied().filter(|_| s.any_bool()).collect();
                Digest {
                    mem_epoch: known.len() as u32,
                    evictions: known,
                    code_hash: 7,
                    gvt: f64::from(s.u32_in(0..100)),
                }
            })
            .collect();
        let mut rngs: Vec<DetRng> =
            (0..n).map(|d| DetRng::new(seed).fork(0x605_5190 ^ d as u64)).collect();
        let alive = vec![true; n];

        let bound = 4 * (usize::BITS - n.leading_zeros()) as usize + 8;
        let mut rounds = 0;
        while rounds < bound {
            let all_equal = digests.windows(2).all(|w| w[0] == w[1]);
            if all_equal {
                break;
            }
            rounds += 1;
            for i in 0..n {
                let Some(peer) = pick_peer(&mut rngs[i], i as u16, &alive) else { continue };
                let peer = peer as usize;
                // Push: peer merges what i knows.
                let mine = digests[i].clone();
                merge(&mut digests[peer], &mine);
                // Pull: if the peer (now merged) knows more, it replies.
                if digests[peer].knows_more_than(&digests[i]) {
                    let theirs = digests[peer].clone();
                    merge(&mut digests[i], &theirs);
                }
            }
        }
        let all_equal = digests.windows(2).all(|w| w[0] == w[1]);
        prop_assert!(all_equal, "n={} digests still divergent after {} rounds", n, rounds);
        prop_assert!(rounds < bound, "n={} needed the full {} round budget", n, bound);
        Ok(())
    });
}

// ---- codec -------------------------------------------------------------

fn arb_decree(s: &mut Source) -> Decree {
    Decree { victim: s.any_u16(), successor: s.any_u16(), epoch: s.any_u32() }
}

fn arb_paxos(s: &mut Source) -> PaxosMsg {
    let inst = InstanceId { victim: s.any_u16(), seq: s.any_u32() };
    let ballot = s.any_u64();
    match s.usize_in(0..6) {
        0 => PaxosMsg::Prepare { inst, ballot },
        1 => PaxosMsg::Promise { inst, ballot, accepted: None },
        2 => PaxosMsg::Promise { inst, ballot, accepted: Some((s.any_u64(), arb_decree(s))) },
        3 => PaxosMsg::AcceptReq { inst, ballot, decree: arb_decree(s) },
        4 => PaxosMsg::Accepted { inst, ballot, decree: arb_decree(s) },
        _ => PaxosMsg::Learn { inst, decree: arb_decree(s) },
    }
}

#[test]
fn ctrl_codec_round_trips_and_rejects_truncation() {
    check_with(chaos_cases(), "ctrl_codec_round_trips_and_rejects_truncation", |s| {
        let msg = arb_paxos(s);
        let mut buf = Vec::new();
        put_paxos(&mut buf, &msg);
        let mut r = &buf[..];
        prop_assert_eq!(get_paxos(&mut r), Ok(msg));
        prop_assert!(r.is_empty(), "paxos decode must consume the payload exactly");

        let digest = Digest {
            mem_epoch: s.any_u32(),
            evictions: (0..s.usize_in(0..5)).map(|_| (s.any_u16(), s.f64_in(0.0, 1e9))).collect(),
            code_hash: s.any_u64(),
            gvt: s.f64_in(0.0, 1e9),
        };
        let mut buf = Vec::new();
        put_digest(&mut buf, &digest);
        let mut r = &buf[..];
        prop_assert_eq!(get_digest(&mut r), Ok(digest));
        prop_assert!(r.is_empty(), "digest decode must consume the payload exactly");
        let cut = s.usize_in(0..buf.len());
        let mut r = &buf[..cut];
        prop_assert!(get_digest(&mut r).is_err(), "truncation at {} must fail", cut);
        Ok(())
    });
}
