//! Strict byte codec for control-plane payloads.
//!
//! Same discipline as the core wire codec: little-endian fixed-width
//! fields, every tag and flag validated, truncation rejected, and NaN
//! floats refused on both encode (debug assert) and decode (hard
//! error). The core frame layer length-prefixes these payloads and
//! requires the decoder to consume the slice exactly, so trailing
//! garbage is rejected there.

use crate::gossip::Digest;
use crate::quorum::{Ballot, Decree, InstanceId, PaxosMsg};

/// Why a control payload failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// Payload ended before the field being read.
    Truncated,
    /// Unknown message tag.
    BadTag(u8),
    /// An option/bool flag was neither 0 nor 1.
    BadFlag(u8),
    /// A float field decoded to NaN.
    NanFloat,
    /// A length field exceeded its sanity cap.
    Oversized,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "control payload truncated"),
            CodecError::BadTag(t) => write!(f, "unknown control message tag {t}"),
            CodecError::BadFlag(b) => write!(f, "control flag byte {b} is not 0/1"),
            CodecError::NanFloat => write!(f, "control float field is NaN"),
            CodecError::Oversized => write!(f, "control list length exceeds cap"),
        }
    }
}

/// Sanity cap on the digest eviction list: far above any real cluster
/// (membership is u16), low enough to bound a hostile allocation.
pub const MAX_EVICTIONS: usize = 4096;

const TAG_PREPARE: u8 = 0;
const TAG_PROMISE: u8 = 1;
const TAG_ACCEPT_REQ: u8 = 2;
const TAG_ACCEPTED: u8 = 3;
const TAG_LEARN: u8 = 4;

// ---- primitive readers -------------------------------------------------

fn take<'a>(r: &mut &'a [u8], n: usize) -> Result<&'a [u8], CodecError> {
    if r.len() < n {
        return Err(CodecError::Truncated);
    }
    let (head, rest) = r.split_at(n);
    *r = rest;
    Ok(head)
}

fn get_u8(r: &mut &[u8]) -> Result<u8, CodecError> {
    Ok(take(r, 1)?[0])
}

fn get_u16(r: &mut &[u8]) -> Result<u16, CodecError> {
    Ok(u16::from_le_bytes(take(r, 2)?.try_into().unwrap()))
}

fn get_u32(r: &mut &[u8]) -> Result<u32, CodecError> {
    Ok(u32::from_le_bytes(take(r, 4)?.try_into().unwrap()))
}

fn get_u64(r: &mut &[u8]) -> Result<u64, CodecError> {
    Ok(u64::from_le_bytes(take(r, 8)?.try_into().unwrap()))
}

fn get_f64(r: &mut &[u8]) -> Result<f64, CodecError> {
    let v = f64::from_bits(get_u64(r)?);
    if v.is_nan() {
        return Err(CodecError::NanFloat);
    }
    Ok(v)
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    debug_assert!(!v.is_nan(), "refusing to encode NaN");
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

// ---- compound fields ---------------------------------------------------

fn put_inst(out: &mut Vec<u8>, inst: InstanceId) {
    out.extend_from_slice(&inst.victim.to_le_bytes());
    out.extend_from_slice(&inst.seq.to_le_bytes());
}

fn get_inst(r: &mut &[u8]) -> Result<InstanceId, CodecError> {
    Ok(InstanceId { victim: get_u16(r)?, seq: get_u32(r)? })
}

fn put_decree(out: &mut Vec<u8>, d: Decree) {
    out.extend_from_slice(&d.victim.to_le_bytes());
    out.extend_from_slice(&d.successor.to_le_bytes());
    out.extend_from_slice(&d.epoch.to_le_bytes());
}

fn get_decree(r: &mut &[u8]) -> Result<Decree, CodecError> {
    Ok(Decree { victim: get_u16(r)?, successor: get_u16(r)?, epoch: get_u32(r)? })
}

fn put_ballot(out: &mut Vec<u8>, b: Ballot) {
    out.extend_from_slice(&b.to_le_bytes());
}

// ---- paxos messages ----------------------------------------------------

/// Append the encoding of `m` to `out`.
pub fn put_paxos(out: &mut Vec<u8>, m: &PaxosMsg) {
    match *m {
        PaxosMsg::Prepare { inst, ballot } => {
            out.push(TAG_PREPARE);
            put_inst(out, inst);
            put_ballot(out, ballot);
        }
        PaxosMsg::Promise { inst, ballot, accepted } => {
            out.push(TAG_PROMISE);
            put_inst(out, inst);
            put_ballot(out, ballot);
            match accepted {
                None => out.push(0),
                Some((b, d)) => {
                    out.push(1);
                    put_ballot(out, b);
                    put_decree(out, d);
                }
            }
        }
        PaxosMsg::AcceptReq { inst, ballot, decree } => {
            out.push(TAG_ACCEPT_REQ);
            put_inst(out, inst);
            put_ballot(out, ballot);
            put_decree(out, decree);
        }
        PaxosMsg::Accepted { inst, ballot, decree } => {
            out.push(TAG_ACCEPTED);
            put_inst(out, inst);
            put_ballot(out, ballot);
            put_decree(out, decree);
        }
        PaxosMsg::Learn { inst, decree } => {
            out.push(TAG_LEARN);
            put_inst(out, inst);
            put_decree(out, decree);
        }
    }
}

/// Decode one paxos message, advancing `r` past it.
///
/// # Errors
///
/// Any [`CodecError`]: truncation, an unknown tag, or a bad flag byte.
pub fn get_paxos(r: &mut &[u8]) -> Result<PaxosMsg, CodecError> {
    match get_u8(r)? {
        TAG_PREPARE => Ok(PaxosMsg::Prepare { inst: get_inst(r)?, ballot: get_u64(r)? }),
        TAG_PROMISE => {
            let inst = get_inst(r)?;
            let ballot = get_u64(r)?;
            let accepted = match get_u8(r)? {
                0 => None,
                1 => Some((get_u64(r)?, get_decree(r)?)),
                b => return Err(CodecError::BadFlag(b)),
            };
            Ok(PaxosMsg::Promise { inst, ballot, accepted })
        }
        TAG_ACCEPT_REQ => Ok(PaxosMsg::AcceptReq {
            inst: get_inst(r)?,
            ballot: get_u64(r)?,
            decree: get_decree(r)?,
        }),
        TAG_ACCEPTED => Ok(PaxosMsg::Accepted {
            inst: get_inst(r)?,
            ballot: get_u64(r)?,
            decree: get_decree(r)?,
        }),
        TAG_LEARN => Ok(PaxosMsg::Learn { inst: get_inst(r)?, decree: get_decree(r)? }),
        t => Err(CodecError::BadTag(t)),
    }
}

// ---- gossip digests ----------------------------------------------------

/// Append the encoding of `d` to `out`.
///
/// # Panics
///
/// Debug-asserts that the eviction list fits [`MAX_EVICTIONS`] (the
/// victim space is u16, so a legitimate list always does).
pub fn put_digest(out: &mut Vec<u8>, d: &Digest) {
    debug_assert!(d.evictions.len() <= MAX_EVICTIONS);
    out.extend_from_slice(&d.mem_epoch.to_le_bytes());
    out.extend_from_slice(&(d.evictions.len() as u16).to_le_bytes());
    for &(victim, floor) in &d.evictions {
        out.extend_from_slice(&victim.to_le_bytes());
        put_f64(out, floor);
    }
    out.extend_from_slice(&d.code_hash.to_le_bytes());
    put_f64(out, d.gvt);
}

/// Decode one digest, advancing `r` past it.
///
/// # Errors
///
/// Any [`CodecError`]: truncation, an oversized eviction list, or a
/// NaN float field.
pub fn get_digest(r: &mut &[u8]) -> Result<Digest, CodecError> {
    let mem_epoch = get_u32(r)?;
    let count = get_u16(r)? as usize;
    if count > MAX_EVICTIONS {
        return Err(CodecError::Oversized);
    }
    let mut evictions = Vec::with_capacity(count.min(64));
    for _ in 0..count {
        evictions.push((get_u16(r)?, get_f64(r)?));
    }
    Ok(Digest { mem_epoch, evictions, code_hash: get_u64(r)?, gvt: get_f64(r)? })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paxos_samples() -> Vec<PaxosMsg> {
        let inst = InstanceId { victim: 3, seq: 2 };
        let d = Decree { victim: 3, successor: 4, epoch: 7 };
        vec![
            PaxosMsg::Prepare { inst, ballot: crate::ballot(1, 0) },
            PaxosMsg::Promise { inst, ballot: crate::ballot(1, 0), accepted: None },
            PaxosMsg::Promise {
                inst,
                ballot: crate::ballot(2, 1),
                accepted: Some((crate::ballot(1, 0), d)),
            },
            PaxosMsg::AcceptReq { inst, ballot: crate::ballot(2, 1), decree: d },
            PaxosMsg::Accepted { inst, ballot: crate::ballot(2, 1), decree: d },
            PaxosMsg::Learn { inst, decree: d },
        ]
    }

    #[test]
    fn paxos_round_trips_and_is_strict() {
        for m in paxos_samples() {
            let mut buf = Vec::new();
            put_paxos(&mut buf, &m);
            let mut r = &buf[..];
            assert_eq!(get_paxos(&mut r), Ok(m), "round trip");
            assert!(r.is_empty(), "decoder consumes exactly what encode wrote");
            for cut in 0..buf.len() {
                let mut r = &buf[..cut];
                assert!(get_paxos(&mut r).is_err(), "truncation at {cut} must fail");
            }
        }
        assert_eq!(get_paxos(&mut &[9u8][..]), Err(CodecError::BadTag(9)));
        let mut bad = Vec::new();
        put_paxos(
            &mut bad,
            &PaxosMsg::Promise {
                inst: InstanceId { victim: 0, seq: 0 },
                ballot: 1,
                accepted: None,
            },
        );
        *bad.last_mut().unwrap() = 2; // corrupt the option flag
        assert_eq!(get_paxos(&mut &bad[..]), Err(CodecError::BadFlag(2)));
    }

    #[test]
    fn digest_round_trips_and_is_strict() {
        let d = Digest {
            mem_epoch: 5,
            evictions: vec![(2, 0.25), (7, f64::INFINITY)],
            code_hash: 0xDEAD_BEEF,
            gvt: 12.5,
        };
        let mut buf = Vec::new();
        put_digest(&mut buf, &d);
        let mut r = &buf[..];
        assert_eq!(get_digest(&mut r), Ok(d));
        assert!(r.is_empty());
        for cut in 0..buf.len() {
            let mut r = &buf[..cut];
            assert!(get_digest(&mut r).is_err(), "truncation at {cut} must fail");
        }
        // NaN floor is rejected.
        let mut nan = Vec::new();
        nan.extend_from_slice(&1u32.to_le_bytes());
        nan.extend_from_slice(&1u16.to_le_bytes());
        nan.extend_from_slice(&3u16.to_le_bytes());
        nan.extend_from_slice(&f64::NAN.to_bits().to_le_bytes());
        nan.extend_from_slice(&0u64.to_le_bytes());
        nan.extend_from_slice(&0f64.to_bits().to_le_bytes());
        assert_eq!(get_digest(&mut &nan[..]), Err(CodecError::NanFloat));
        // An oversized count is refused before any allocation.
        let mut big = Vec::new();
        big.extend_from_slice(&0u32.to_le_bytes());
        big.extend_from_slice(&u16::MAX.to_le_bytes());
        assert_eq!(get_digest(&mut &big[..]), Err(CodecError::Oversized));
    }
}
