//! Anti-entropy gossip digests.
//!
//! Each daemon periodically picks one random alive peer (from a forked
//! deterministic RNG, so schedules replay) and pushes a [`Digest`] of
//! everything a daemon can know without a coordinator: its membership
//! epoch, the evictions behind it (victim + recovery floor, enough for
//! a peer to apply the eviction idempotently), a content hash of its
//! code registry, and its GVT watermark. The receiver merges what it
//! lacks and, if it knows strictly more, replies with its own digest —
//! the pull half of push–pull. Replies are never replied to, so one
//! exchange is at most two frames.
//!
//! Everything merged this way is monotone or idempotent: epochs only
//! grow, an eviction applies once, GVT is a watermark, and hash
//! disagreement is only *detected* here (the reliable code-distribution
//! path owns repair). That is what makes gossip safe to run over a
//! lossy, reordering network with zero coordination.

use msgr_sim::DetRng;

/// One daemon's summarized control-plane knowledge.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Digest {
    /// Membership epoch (bumps once per eviction).
    pub mem_epoch: u32,
    /// Evictions this daemon knows: `(victim, recovery floor)`. The
    /// floor is the GVT safe point folded at restore time, which is all
    /// a peer needs to apply the eviction itself.
    pub evictions: Vec<(u16, f64)>,
    /// FNV content hash of the code registry (detection only).
    pub code_hash: u64,
    /// Local GVT watermark hint.
    pub gvt: f64,
}

impl Digest {
    /// Does `self` hold anything `other` provably lacks? Drives the
    /// pull half: a receiver replies exactly when this is true.
    pub fn knows_more_than(&self, other: &Digest) -> bool {
        self.mem_epoch > other.mem_epoch
            || self.gvt > other.gvt
            || self.evictions.iter().any(|(v, _)| !other.evictions.iter().any(|(ov, _)| ov == v))
            || self.code_hash != other.code_hash
    }
}

/// Pick a random alive peer (excluding `self_id`) from a deterministic
/// generator. Returns `None` when no other daemon is alive.
pub fn pick_peer(rng: &mut DetRng, self_id: u16, alive: &[bool]) -> Option<u16> {
    let peers: Vec<u16> =
        (0..alive.len() as u16).filter(|&d| d != self_id && alive[d as usize]).collect();
    if peers.is_empty() {
        return None;
    }
    Some(peers[rng.below(peers.len() as u64) as usize])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest(epoch: u32, evictions: &[(u16, f64)], hash: u64, gvt: f64) -> Digest {
        Digest { mem_epoch: epoch, evictions: evictions.to_vec(), code_hash: hash, gvt }
    }

    #[test]
    fn knows_more_is_driven_by_every_component() {
        let base = digest(1, &[(2, 0.5)], 7, 1.0);
        assert!(!base.knows_more_than(&base.clone()), "equal digests are quiescent");
        assert!(digest(2, &[(2, 0.5)], 7, 1.0).knows_more_than(&base), "newer epoch");
        assert!(digest(1, &[(2, 0.5)], 7, 2.0).knows_more_than(&base), "newer gvt");
        assert!(digest(1, &[(2, 0.5), (3, 0.9)], 7, 1.0).knows_more_than(&base), "extra eviction");
        assert!(digest(1, &[(2, 0.5)], 8, 1.0).knows_more_than(&base), "hash divergence");
        assert!(!digest(0, &[], 7, 0.0).knows_more_than(&base), "strictly-behind digest");
    }

    #[test]
    fn eviction_floors_do_not_mask_missing_victims() {
        let a = digest(1, &[(2, 0.5)], 7, 1.0);
        let b = digest(1, &[(2, 0.9)], 7, 1.0);
        assert!(!a.knows_more_than(&b), "same victim set, floor differences don't churn");
    }

    #[test]
    fn pick_peer_is_alive_not_self_and_deterministic() {
        let alive = [true, true, false, true];
        let mut r1 = DetRng::new(9);
        let mut r2 = DetRng::new(9);
        for _ in 0..64 {
            let p = pick_peer(&mut r1, 1, &alive).unwrap();
            assert_eq!(Some(p), pick_peer(&mut r2, 1, &alive));
            assert_ne!(p, 1, "never self");
            assert_ne!(p, 2, "never a dead daemon");
        }
        assert_eq!(pick_peer(&mut r1, 0, &[true, false]), None, "no alive peer");
    }

    #[test]
    fn pick_peer_covers_all_candidates() {
        let alive = [true; 5];
        let mut rng = DetRng::new(3);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[pick_peer(&mut rng, 0, &alive).unwrap() as usize] = true;
        }
        assert_eq!(seen, [false, true, true, true, true]);
    }
}
