//! # msgr-ctrl — the decentralized control plane
//!
//! The paper's daemon network (and our PR 4 failover) trusts two
//! centralized fictions: every daemon shares one membership view, so a
//! deterministic "next alive" successor can restore a dead daemon
//! without coordination; and checkpoints live in one store that
//! recovery is always able to reach. Both break exactly when they are
//! needed — under partitions, message loss, and simultaneous kills.
//!
//! This crate provides the pure state machines that replace them:
//!
//! * [`quorum`] — a minimal single-decree Paxos. Each membership change
//!   (daemon death and the choice of its heir) is one consensus
//!   *instance*; a kill is **proposed** by suspecting heartbeat
//!   observers and only acted on once a majority of the surviving
//!   acceptors accepts, so a wrong failure detector can never cause two
//!   daemons to restore the same victim onto different heirs.
//! * [`gossip`] — anti-entropy push–pull digests (membership epoch,
//!   eviction list, code-registry hash, GVT hint) exchanged on a seeded
//!   random peer schedule, so no daemon depends on a coordinator
//!   broadcast to learn what the cluster already decided.
//! * [`codec`] — a strict byte codec for both message families, called
//!   from the core wire layer (`Wire::Ctrl` / `Wire::Gossip` frames).
//!
//! Everything here is deterministic and side-effect free: the machines
//! consume messages and return messages, and all randomness is an
//! explicit [`msgr_sim::DetRng`] owned by the caller. That is what lets
//! the 256-case property suites drive them through adversarial
//! drop/dup/reorder schedules and assert agreement and convergence.

#![warn(missing_docs)]
#![warn(clippy::pedantic)]
#![allow(clippy::missing_panics_doc, clippy::must_use_candidate, clippy::cast_possible_truncation)]

pub mod codec;
pub mod gossip;
pub mod quorum;

pub use gossip::{pick_peer, Digest};
pub use quorum::{
    ballot, ballot_proposer, ballot_round, Ballot, Decree, InstanceId, PaxosMsg, Quorum, Step,
};
