//! Single-decree Paxos over membership changes.
//!
//! One consensus *instance* per proposed membership change, keyed by
//! [`InstanceId`] `(victim, seq)`: `seq 0` is the first attempt to bury
//! `victim`, and `seq k+1` reopens the question when the heir named by
//! decree `k` died before completing the restore (a cascading kill).
//! The value agreed on is a [`Decree`] naming the victim's heir and the
//! membership epoch the eviction will carry.
//!
//! The acceptor set for an instance is **every initial daemon except
//! the victim** — the victim is on trial, not on the jury — and a
//! quorum is a majority of that set, so decrees stay decidable as long
//! as a minority of the cluster is dead (enforced up front by
//! `FaultPlan::validate`). Daemons are fail-stop: a killed acceptor
//! never votes again, so there is no promise amnesia and the classic
//! safety argument applies unchanged.
//!
//! The machine is message-in/messages-out and knows nothing about
//! transport, timers, or failure detection. Liveness comes from the
//! caller: consensus frames ride outside the reliable envelope, and the
//! daemon simply re-[`propose`](Quorum::propose)s with a higher ballot
//! on every heartbeat tick while the instance is undecided — loss is
//! healed by retry, not retransmission.

use std::collections::{BTreeMap, BTreeSet};

/// A totally ordered ballot number: `(round << 16) | proposer`, so
/// ballots from distinct proposers never collide and a higher round
/// always dominates.
pub type Ballot = u64;

/// Compose a ballot from a round number and the proposing daemon.
pub fn ballot(round: u64, proposer: u16) -> Ballot {
    (round << 16) | u64::from(proposer)
}

/// The round component of a ballot.
pub fn ballot_round(b: Ballot) -> u64 {
    b >> 16
}

/// The proposing daemon encoded in a ballot.
pub fn ballot_proposer(b: Ballot) -> u16 {
    (b & 0xFFFF) as u16
}

/// Identifies one consensus instance: the `seq`-th attempt to agree on
/// a burial decree for `victim`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstanceId {
    /// The daemon whose death is being decided.
    pub victim: u16,
    /// Attempt number: bumped when a previously decreed heir also died.
    pub seq: u32,
}

/// The value a quorum agrees on: who inherits the victim's nodes, and
/// the membership epoch the eviction will be stamped with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decree {
    /// The daemon being declared dead.
    pub victim: u16,
    /// The heir that will restore the victim's checkpoint.
    pub successor: u16,
    /// Membership epoch proposed for the eviction (advisory — the
    /// eviction path keeps epochs monotone regardless).
    pub epoch: u32,
}

/// The consensus message family carried by `Wire::Ctrl` frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PaxosMsg {
    /// Phase-1a: a proposer claims `ballot` for `inst`.
    Prepare {
        /// Instance being claimed.
        inst: InstanceId,
        /// Ballot the proposer wants promised.
        ballot: Ballot,
    },
    /// Phase-1b: an acceptor promises `ballot`, reporting its
    /// highest-ballot accepted value (if any) so the proposer is forced
    /// to carry it forward.
    Promise {
        /// Instance the promise is for.
        inst: InstanceId,
        /// Ballot being promised.
        ballot: Ballot,
        /// Highest `(ballot, decree)` this acceptor already accepted.
        accepted: Option<(Ballot, Decree)>,
    },
    /// Phase-2a: the proposer asks acceptors to accept `decree`.
    AcceptReq {
        /// Instance being decided.
        inst: InstanceId,
        /// Ballot the request is issued under.
        ballot: Ballot,
        /// Value to accept.
        decree: Decree,
    },
    /// Phase-2b: an acceptor accepted `decree` at `ballot`.
    Accepted {
        /// Instance the vote belongs to.
        inst: InstanceId,
        /// Ballot the vote was cast under.
        ballot: Ballot,
        /// Value voted for.
        decree: Decree,
    },
    /// A decided value, broadcast by whoever observed the deciding
    /// quorum (and re-sent on later ticks while the eviction is still
    /// pending, since learn frames are as lossy as everything else).
    Learn {
        /// Instance that was decided.
        inst: InstanceId,
        /// The decided value.
        decree: Decree,
    },
}

/// What one call into the machine produced: messages to transmit and
/// (at most) one newly learned decree.
#[derive(Debug, Default)]
pub struct Step {
    /// `(destination daemon, message)` pairs to put on the wire.
    /// Self-addressed traffic is already looped internally and never
    /// appears here.
    pub send: Vec<(u16, PaxosMsg)>,
    /// Set when this step decided an instance *for the first time*.
    pub learned: Option<(InstanceId, Decree)>,
}

#[derive(Debug, Default)]
struct Acceptor {
    promised: Ballot,
    accepted: Option<(Ballot, Decree)>,
}

#[derive(Debug)]
struct Proposal {
    ballot: Ballot,
    decree: Decree,
    promises: BTreeSet<u16>,
    /// Highest accepted value reported by any promiser — must win over
    /// our own candidate decree.
    best: Option<(Ballot, Decree)>,
    accepts: BTreeSet<u16>,
    accepting: bool,
}

/// Per-daemon consensus state: acceptor, proposer, and learner roles
/// for every instance this daemon has touched.
#[derive(Debug)]
pub struct Quorum {
    id: u16,
    n: u16,
    acceptors: BTreeMap<InstanceId, Acceptor>,
    proposals: BTreeMap<InstanceId, Proposal>,
    learned: BTreeMap<InstanceId, Decree>,
}

impl Quorum {
    /// A fresh machine for daemon `id` in a cluster of `n` initial
    /// daemons.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` — a single daemon has nobody to agree with.
    pub fn new(id: u16, n: u16) -> Quorum {
        assert!(n >= 2, "quorum needs at least two daemons, got {n}");
        assert!(id < n, "daemon {id} outside cluster of {n}");
        Quorum {
            id,
            n,
            acceptors: BTreeMap::new(),
            proposals: BTreeMap::new(),
            learned: BTreeMap::new(),
        }
    }

    /// Majority size of the victim-excluded acceptor set (`n - 1`
    /// members).
    pub fn quorum_size(n: u16) -> usize {
        (n as usize - 1) / 2 + 1
    }

    /// The acceptor set for an instance: every initial daemon except
    /// the victim.
    pub fn acceptor_ids(n: u16, victim: u16) -> impl Iterator<Item = u16> {
        (0..n).filter(move |&d| d != victim)
    }

    /// The decided decree for `inst`, if this daemon has learned one.
    pub fn decided(&self, inst: InstanceId) -> Option<Decree> {
        self.learned.get(&inst).copied()
    }

    /// The highest-seq decided decree for `victim`, with its seq.
    pub fn decided_for(&self, victim: u16) -> Option<(u32, Decree)> {
        self.learned
            .range(InstanceId { victim, seq: 0 }..=InstanceId { victim, seq: u32::MAX })
            .next_back()
            .map(|(i, d)| (i.seq, *d))
    }

    /// A `Learn` message for a decided instance, for re-broadcast while
    /// the matching eviction is still outstanding.
    pub fn learn_msg(&self, inst: InstanceId) -> Option<PaxosMsg> {
        self.decided(inst).map(|decree| PaxosMsg::Learn { inst, decree })
    }

    /// Start (or restart, with a strictly higher ballot) a proposal for
    /// `inst` carrying `decree`. Returns nothing to send if the
    /// instance is already decided locally.
    pub fn propose(&mut self, inst: InstanceId, decree: Decree) -> Step {
        let mut step = Step::default();
        if self.learned.contains_key(&inst) {
            return step;
        }
        let round = self.proposals.get(&inst).map_or(0, |p| ballot_round(p.ballot)) + 1;
        let b = ballot(round, self.id);
        self.proposals.insert(
            inst,
            Proposal {
                ballot: b,
                decree,
                promises: BTreeSet::new(),
                best: None,
                accepts: BTreeSet::new(),
                accepting: false,
            },
        );
        let mut work: Vec<(u16, PaxosMsg)> = Self::acceptor_ids(self.n, inst.victim)
            .map(|dst| (dst, PaxosMsg::Prepare { inst, ballot: b }))
            .collect();
        self.drain(&mut work, &mut step);
        step
    }

    /// Feed one received message into the machine.
    pub fn deliver(&mut self, from: u16, msg: PaxosMsg) -> Step {
        let mut step = Step::default();
        let mut work = vec![(from, msg)];
        self.drain_from(&mut work, &mut step, true);
        step
    }

    /// Drop all consensus state (the daemon was gutted; fail-stop means
    /// it will never vote again, so nothing here needs to survive).
    pub fn reset(&mut self) {
        self.acceptors.clear();
        self.proposals.clear();
        self.learned.clear();
    }

    /// Process `work`, looping self-addressed output back through the
    /// machine until only external sends remain.
    fn drain(&mut self, work: &mut Vec<(u16, PaxosMsg)>, step: &mut Step) {
        self.drain_from(work, step, false);
    }

    fn drain_from(&mut self, work: &mut Vec<(u16, PaxosMsg)>, step: &mut Step, mut inbound: bool) {
        // The first queue entry of `deliver` is an inbound message (its
        // u16 is the *sender*); everything after is outbound (dst).
        while let Some((peer, msg)) = work.pop() {
            if inbound || peer == self.id {
                let from = if inbound { peer } else { self.id };
                self.handle(from, msg, work, step);
            } else {
                step.send.push((peer, msg));
            }
            inbound = false;
        }
        // Queue draining is LIFO for simplicity; order across distinct
        // destinations is normalized so steps are deterministic.
        step.send.sort_by_key(|(dst, _)| *dst);
    }

    fn handle(
        &mut self,
        from: u16,
        msg: PaxosMsg,
        out: &mut Vec<(u16, PaxosMsg)>,
        step: &mut Step,
    ) {
        match msg {
            PaxosMsg::Prepare { inst, ballot } => {
                if self.id == inst.victim {
                    return; // the victim is not an acceptor for its own burial
                }
                let a = self.acceptors.entry(inst).or_default();
                if ballot >= a.promised {
                    a.promised = ballot;
                    out.push((from, PaxosMsg::Promise { inst, ballot, accepted: a.accepted }));
                }
            }
            PaxosMsg::Promise { inst, ballot, accepted } => {
                let quorum = Self::quorum_size(self.n);
                let Some(p) = self.proposals.get_mut(&inst) else { return };
                if ballot != p.ballot || p.accepting {
                    return; // stale round, or phase 2 already launched
                }
                p.promises.insert(from);
                if let Some((b, d)) = accepted {
                    if p.best.is_none_or(|(bb, _)| b > bb) {
                        p.best = Some((b, d));
                    }
                }
                if p.promises.len() >= quorum {
                    p.accepting = true;
                    if let Some((_, d)) = p.best {
                        p.decree = d; // a possibly-chosen value must be carried forward
                    }
                    let decree = p.decree;
                    for dst in Self::acceptor_ids(self.n, inst.victim) {
                        out.push((dst, PaxosMsg::AcceptReq { inst, ballot, decree }));
                    }
                }
            }
            PaxosMsg::AcceptReq { inst, ballot, decree } => {
                if self.id == inst.victim {
                    return;
                }
                let a = self.acceptors.entry(inst).or_default();
                if ballot >= a.promised {
                    a.promised = ballot;
                    a.accepted = Some((ballot, decree));
                    out.push((from, PaxosMsg::Accepted { inst, ballot, decree }));
                }
            }
            PaxosMsg::Accepted { inst, ballot, decree } => {
                let quorum = Self::quorum_size(self.n);
                let Some(p) = self.proposals.get_mut(&inst) else { return };
                if ballot != p.ballot {
                    return;
                }
                p.accepts.insert(from);
                if p.accepts.len() >= quorum && self.learn(inst, decree, step) {
                    // First observer of the deciding quorum tells
                    // everyone else (lossy; re-sent on later ticks).
                    for dst in (0..self.n).filter(|&d| d != self.id) {
                        out.push((dst, PaxosMsg::Learn { inst, decree }));
                    }
                }
            }
            PaxosMsg::Learn { inst, decree } => {
                self.learn(inst, decree, step);
            }
        }
    }

    /// Record a decided value; returns `true` only the first time.
    fn learn(&mut self, inst: InstanceId, decree: Decree, step: &mut Step) -> bool {
        if let Some(prev) = self.learned.get(&inst) {
            debug_assert_eq!(*prev, decree, "paxos agreement violated for {inst:?}");
            return false;
        }
        self.learned.insert(inst, decree);
        debug_assert!(step.learned.is_none(), "one step decides at most one instance");
        step.learned = Some((inst, decree));
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const INST: InstanceId = InstanceId { victim: 2, seq: 0 };
    const DECREE: Decree = Decree { victim: 2, successor: 3, epoch: 1 };

    /// Deliver every message in `net`, feeding outputs back until the
    /// network drains. Returns all decrees learned along the way.
    fn settle(cluster: &mut [Quorum], mut net: Vec<(u16, u16, PaxosMsg)>) -> Vec<(u16, Decree)> {
        let mut learned = Vec::new();
        while let Some((from, to, msg)) = net.pop() {
            let step = cluster[to as usize].deliver(from, msg);
            for (dst, m) in step.send {
                net.push((to, dst, m));
            }
            if let Some((_, d)) = step.learned {
                learned.push((to, d));
            }
        }
        learned
    }

    fn start(cluster: &mut [Quorum], proposer: u16) -> Vec<(u16, u16, PaxosMsg)> {
        let step = cluster[proposer as usize].propose(INST, DECREE);
        step.send.into_iter().map(|(dst, m)| (proposer, dst, m)).collect()
    }

    #[test]
    fn ballots_are_ordered_and_unique() {
        assert!(ballot(2, 0) > ballot(1, u16::MAX), "round dominates proposer");
        assert_ne!(ballot(1, 3), ballot(1, 4));
        assert_eq!(ballot_round(ballot(7, 9)), 7);
        assert_eq!(ballot_proposer(ballot(7, 9)), 9);
    }

    #[test]
    fn quorum_is_majority_of_victim_excluded_set() {
        assert_eq!(Quorum::quorum_size(2), 1, "2 daemons: the lone survivor decides");
        assert_eq!(Quorum::quorum_size(3), 2);
        assert_eq!(Quorum::quorum_size(4), 2);
        assert_eq!(Quorum::quorum_size(5), 3);
        assert_eq!(Quorum::quorum_size(8), 4);
        assert_eq!(Quorum::acceptor_ids(4, 2).collect::<Vec<_>>(), vec![0, 1, 3]);
    }

    #[test]
    fn single_proposer_decides_with_full_delivery() {
        let mut cluster: Vec<Quorum> = (0..4).map(|d| Quorum::new(d, 4)).collect();
        let net = start(&mut cluster, 0);
        let learned = settle(&mut cluster, net);
        assert!(learned.iter().any(|(d, _)| *d == 0), "proposer learns");
        for (_, d) in &learned {
            assert_eq!(*d, DECREE);
        }
        // Everyone (except the dead victim, who got Learn but is gone
        // in practice) agrees.
        for d in [0u16, 1, 3] {
            assert_eq!(cluster[d as usize].decided(INST), Some(DECREE), "daemon {d}");
        }
    }

    #[test]
    fn dueling_proposers_agree_on_one_decree() {
        let mut cluster: Vec<Quorum> = (0..5).map(|d| Quorum::new(d, 5)).collect();
        let other = Decree { victim: 2, successor: 4, epoch: 1 };
        let mut net = start(&mut cluster, 0);
        let step = cluster[3].propose(INST, other);
        net.extend(step.send.into_iter().map(|(dst, m)| (3, dst, m)));
        let learned = settle(&mut cluster, net);
        assert!(!learned.is_empty());
        let first = learned[0].1;
        for (_, d) in &learned {
            assert_eq!(*d, first, "all learners adopt the same decree");
        }
    }

    #[test]
    fn decides_with_minority_of_acceptors_dead() {
        // 5 daemons, victim 2 dead, acceptor 4 also dead: 3 of 4
        // acceptors alive >= quorum 3.
        let mut cluster: Vec<Quorum> = (0..5).map(|d| Quorum::new(d, 5)).collect();
        let net: Vec<_> =
            start(&mut cluster, 0).into_iter().filter(|(_, to, _)| *to != 2 && *to != 4).collect();
        let learned = settle(&mut cluster, net);
        assert!(learned.iter().any(|(d, _)| *d == 0), "decides without the dead acceptors");
    }

    #[test]
    fn victim_never_votes_on_its_own_burial() {
        let mut q = Quorum::new(2, 4);
        let step = q.deliver(0, PaxosMsg::Prepare { inst: INST, ballot: ballot(1, 0) });
        assert!(step.send.is_empty(), "victim stays silent");
        let step =
            q.deliver(0, PaxosMsg::AcceptReq { inst: INST, ballot: ballot(1, 0), decree: DECREE });
        assert!(step.send.is_empty());
    }

    #[test]
    fn stale_ballots_are_ignored() {
        let mut q = Quorum::new(1, 4);
        let hi = ballot(5, 0);
        let step = q.deliver(0, PaxosMsg::Prepare { inst: INST, ballot: hi });
        assert_eq!(step.send.len(), 1, "high ballot promised");
        let step = q.deliver(3, PaxosMsg::Prepare { inst: INST, ballot: ballot(1, 3) });
        assert!(step.send.is_empty(), "lower ballot gets no promise");
        let step =
            q.deliver(3, PaxosMsg::AcceptReq { inst: INST, ballot: ballot(1, 3), decree: DECREE });
        assert!(step.send.is_empty(), "lower-ballot accept refused");
    }

    #[test]
    fn repropose_uses_higher_ballot_and_decided_instance_is_quiet() {
        let mut q = Quorum::new(0, 4);
        let s1 = q.propose(INST, DECREE);
        let s2 = q.propose(INST, DECREE);
        let b = |s: &Step| match s.send[0].1 {
            PaxosMsg::Prepare { ballot, .. } => ballot,
            ref m => panic!("expected prepare, got {m:?}"),
        };
        assert!(b(&s2) > b(&s1), "re-proposal climbs the ballot order");
        q.deliver(1, PaxosMsg::Learn { inst: INST, decree: DECREE });
        assert!(q.propose(INST, DECREE).send.is_empty(), "decided instances are not re-proposed");
        assert_eq!(q.learn_msg(INST), Some(PaxosMsg::Learn { inst: INST, decree: DECREE }));
    }

    #[test]
    fn decided_for_returns_highest_seq() {
        let mut q = Quorum::new(0, 4);
        q.deliver(1, PaxosMsg::Learn { inst: INST, decree: DECREE });
        let d2 = Decree { victim: 2, successor: 0, epoch: 3 };
        q.deliver(1, PaxosMsg::Learn { inst: InstanceId { victim: 2, seq: 1 }, decree: d2 });
        q.deliver(
            1,
            PaxosMsg::Learn {
                inst: InstanceId { victim: 1, seq: 0 },
                decree: Decree { victim: 1, successor: 3, epoch: 2 },
            },
        );
        assert_eq!(q.decided_for(2), Some((1, d2)));
        assert_eq!(q.decided_for(3), None);
    }

    #[test]
    fn promised_value_is_carried_forward() {
        // Acceptors 0,1 accepted DECREE at ballot (1,0). A new proposer
        // 3 with a competing decree must adopt DECREE after phase 1.
        let mut cluster: Vec<Quorum> = (0..4).map(|d| Quorum::new(d, 4)).collect();
        let b1 = ballot(1, 0);
        for a in [0u16, 1] {
            cluster[a as usize].deliver(0, PaxosMsg::Prepare { inst: INST, ballot: b1 });
            cluster[a as usize]
                .deliver(0, PaxosMsg::AcceptReq { inst: INST, ballot: b1, decree: DECREE });
        }
        let competing = Decree { victim: 2, successor: 0, epoch: 9 };
        let net = {
            let step = cluster[3].propose(INST, competing);
            step.send.into_iter().map(|(dst, m)| (3u16, dst, m)).collect()
        };
        let learned = settle(&mut cluster, net);
        for (_, d) in &learned {
            assert_eq!(*d, DECREE, "phase-1 discovery overrides the proposer's own value");
        }
        assert!(!learned.is_empty());
    }

    #[test]
    fn reset_forgets_everything() {
        let mut q = Quorum::new(0, 4);
        q.propose(INST, DECREE);
        q.deliver(1, PaxosMsg::Learn { inst: INST, decree: DECREE });
        q.reset();
        assert_eq!(q.decided(INST), None);
    }
}
