//! The bytecode interpreter.
//!
//! [`run`] executes a messenger until it yields. Yield points implement
//! the paper's modified non-preemptive scheduling policy (§2.1): a
//! messenger runs uninterrupted through arbitrary computational
//! statements and native calls, and gives up the daemon only at a
//! navigational statement (`hop`/`create`/`delete`), a virtual-time
//! suspension, or termination. Everything between two yields is one
//! atomic *segment* — which is why the applications in §3 need no
//! explicit locking around `next_task()` / `deposit()`.

use crate::bytecode::{Dir, LinkPat, NamePat, NetVar, NodePat, Op, Program};
use crate::error::VmError;
use crate::state::{Frame, MessengerState, Vt};
use crate::value::{LinkInstance, Value};

/// What the world must provide to an executing messenger.
pub trait Env {
    /// Read a node variable at the current node (NULL if unset).
    fn node_var(&mut self, name: &str) -> Value;
    /// Write a node variable at the current node.
    fn set_node_var(&mut self, name: &str, v: Value);
    /// Read a network variable other than `$time` (which the interpreter
    /// answers from the messenger state itself).
    fn net_var(&mut self, var: NetVar) -> Value;
    /// Dispatch a native-function call.
    ///
    /// # Errors
    ///
    /// Implementations return [`VmError::UnknownNative`] /
    /// [`VmError::Native`] as appropriate.
    fn call_native(&mut self, name: &str, args: &[Value]) -> Result<Value, VmError>;
    /// Account `ops` interpreted bytecode operations for this segment.
    /// Called once, when the segment ends (including on error).
    fn charge_ops(&mut self, ops: u64) {
        let _ = ops;
    }
    /// Profiler sampling interval in executed ops; 0 disables sampling
    /// (the default — the dispatch loop then pays one branch per op and
    /// nothing else).
    fn sample_interval(&self) -> u64 {
        0
    }
    /// Profiler hook: the executed-op counter crossed `count` sampling
    /// interval boundaries while the messenger was at `(func, pc)`.
    /// Deterministic per seed: the trigger is op count, not wall clock.
    fn pc_sample(&mut self, func: u32, pc: u32, count: u64) {
        let _ = (func, pc, count);
    }
}

/// An [`Env`] with no node variables and no natives; node-variable writes
/// vanish. Useful for pure-computation tests and micro-benchmarks.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullEnv;

impl Env for NullEnv {
    fn node_var(&mut self, _name: &str) -> Value {
        Value::Null
    }
    fn set_node_var(&mut self, _name: &str, _v: Value) {}
    fn net_var(&mut self, _var: NetVar) -> Value {
        Value::Null
    }
    fn call_native(&mut self, name: &str, _args: &[Value]) -> Result<Value, VmError> {
        Err(VmError::UnknownNative(name.to_string()))
    }
}

/// A self-contained test/utility environment: node variables in a map, a
/// native registry, and fixed network-variable answers.
#[derive(Debug, Default)]
pub struct MapEnv {
    /// Node variables of the single simulated node.
    pub vars: std::collections::HashMap<String, Value>,
    /// Native function table.
    pub natives: crate::natives::NativeRegistry,
    /// Value of `$address`.
    pub address: i64,
    /// Value of `$last`.
    pub last: Value,
    /// Value of `$node`.
    pub node: Value,
    /// Total operations charged.
    pub ops: u64,
    /// Messenger id/vtime presented to natives.
    pub mid: crate::state::MessengerId,
    /// Virtual time presented to natives.
    pub vtime: Vt,
}

impl MapEnv {
    /// Fresh environment with no variables or natives.
    pub fn new() -> Self {
        MapEnv { node: Value::str("init"), last: Value::Null, ..Default::default() }
    }
}

struct MapEnvCtx<'a>(&'a mut MapEnv);

impl crate::natives::NativeCtx for MapEnvCtx<'_> {
    fn node_var(&mut self, name: &str) -> Value {
        self.0.vars.get(name).cloned().unwrap_or_default()
    }
    fn set_node_var(&mut self, name: &str, v: Value) {
        self.0.vars.insert(name.to_string(), v);
    }
    fn charge(&mut self, _ref_ns: u64) {}
    fn daemon(&self) -> u16 {
        self.0.address as u16
    }
    fn node_name(&self) -> Value {
        self.0.node.clone()
    }
    fn messenger(&self) -> crate::state::MessengerId {
        self.0.mid
    }
    fn vtime(&self) -> Vt {
        self.0.vtime
    }
}

impl Env for MapEnv {
    fn node_var(&mut self, name: &str) -> Value {
        self.vars.get(name).cloned().unwrap_or_default()
    }
    fn set_node_var(&mut self, name: &str, v: Value) {
        self.vars.insert(name.to_string(), v);
    }
    fn net_var(&mut self, var: NetVar) -> Value {
        match var {
            NetVar::Address => Value::Int(self.address),
            NetVar::Last => self.last.clone(),
            NetVar::Node => self.node.clone(),
            NetVar::Time => Value::Float(self.vtime.as_f64()),
        }
    }
    fn call_native(&mut self, name: &str, args: &[Value]) -> Result<Value, VmError> {
        let natives = self.natives.clone();
        natives.call(&mut MapEnvCtx(self), name, args)
    }
    fn charge_ops(&mut self, ops: u64) {
        self.ops += ops;
    }
}

/// An evaluated link selector of a `hop`/`delete`.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalLink {
    /// `*`: any link.
    Wild,
    /// `~`: unnamed links only.
    Unnamed,
    /// A specific name (string/int value).
    Named(Value),
    /// A specific link instance (the value of `$last`).
    Instance(LinkInstance),
    /// Direct jump to the node named by `ln`.
    Virtual,
}

/// A fully evaluated `hop`/`delete` destination.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalHop {
    /// Node-name constraint; `None` is the wildcard.
    pub ln: Option<Value>,
    /// Link constraint.
    pub ll: EvalLink,
    /// Direction constraint.
    pub ldir: Dir,
}

/// One evaluated item of a `create`.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalCreateItem {
    /// New node name (`None` = unnamed).
    pub ln: Option<Value>,
    /// Connecting link name (`None` = unnamed).
    pub ll: Option<Value>,
    /// Orientation of the connecting link.
    pub ldir: Dir,
    /// Daemon placement constraint (`None` = wildcard).
    pub dn: Option<Value>,
    /// Daemon-link constraint.
    pub dl: EvalLink,
    /// Daemon-link direction.
    pub ddir: Dir,
}

/// A fully evaluated `create`.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalCreate {
    /// Items, in source order.
    pub items: Vec<EvalCreateItem>,
    /// The `ALL` flag.
    pub all: bool,
}

/// Why the interpreter stopped: the segment's outcome.
#[derive(Debug, Clone, PartialEq)]
pub enum Yield {
    /// The messenger finished (entry function returned / `Halt`), with
    /// its final value.
    Terminated(Value),
    /// `hop(...)` — replicate to matching neighbors; this copy dies.
    Hop(EvalHop),
    /// `delete(...)` — like hop, destroying traversed links.
    Delete(EvalHop),
    /// `create(...)` — build nodes/links, move there.
    Create(EvalCreate),
    /// `M_sched_time_abs(t)` — suspend until virtual time `t`.
    SchedAbs(Vt),
    /// `M_sched_time_dlt(dt)` — suspend for `dt` virtual time.
    SchedDlt(f64),
}

// Operator semantics (`arith`, `compare`, `neg`, `pop`, `jump`) live in
// `crate::binop`, shared verbatim with the closure-compiled engine.
use crate::binop::{arith, compare, jump, pop};

/// The default fuel budget for one segment: generous enough for any of
/// the paper's computational bursts, small enough to catch runaway loops
/// in tests.
pub const DEFAULT_FUEL: u64 = 50_000_000;

/// Execute `m` until it yields, returns, or errors.
///
/// On return the messenger state is *after* the yield instruction, so
/// the daemon can clone/ship it and resume replicas directly.
///
/// # Errors
///
/// Any [`VmError`]; the messenger should then be discarded (and the
/// error surfaced through the platform's fault log).
pub fn run(
    program: &Program,
    m: &mut MessengerState,
    env: &mut dyn Env,
    fuel: u64,
) -> Result<Yield, VmError> {
    let mut ops: u64 = 0;
    let interval = env.sample_interval();
    let mut next = if interval == 0 { u64::MAX } else { interval };
    let out = run_inner(program, m, env, fuel, &mut ops, &mut next, interval);
    env.charge_ops(ops);
    out
}

fn run_inner(
    program: &Program,
    m: &mut MessengerState,
    env: &mut dyn Env,
    fuel: u64,
    ops: &mut u64,
    next: &mut u64,
    interval: u64,
) -> Result<Yield, VmError> {
    loop {
        if *ops >= fuel {
            return Err(VmError::FuelExhausted);
        }
        if *ops >= *next {
            // Attribute every interval boundary the previous op crossed
            // to the current program counter (flat profile, no stacks).
            if let Some(f) = m.frames.last() {
                let crossings = (*ops - *next) / interval + 1;
                env.pc_sample(u32::from(f.func.0), f.pc, crossings);
                *next += crossings * interval;
            }
        }
        let frame = m.frames.last_mut().ok_or(VmError::Corrupt("no active frame"))?;
        let func = program.func(frame.func);
        // Falling off the end of a function is an implicit `return NULL`.
        if frame.pc as usize >= func.code.len() {
            m.frames.pop();
            match m.frames.last_mut() {
                None => return Ok(Yield::Terminated(Value::Null)),
                Some(caller) => {
                    caller.stack.push(Value::Null);
                    continue;
                }
            }
        }
        let op = func.code[frame.pc as usize];
        frame.pc += 1;
        *ops += 1;
        match op {
            Op::Const(i) => {
                let v = program
                    .consts
                    .get(i as usize)
                    .ok_or(VmError::Corrupt("constant index out of range"))?
                    .clone();
                frame.stack.push(v);
            }
            Op::LoadLocal(i) => {
                let v = frame
                    .locals
                    .get(i as usize)
                    .ok_or(VmError::Corrupt("local slot out of range"))?
                    .clone();
                frame.stack.push(v);
            }
            Op::StoreLocal(i) => {
                let v = pop(&mut frame.stack)?;
                let slot = frame
                    .locals
                    .get_mut(i as usize)
                    .ok_or(VmError::Corrupt("local slot out of range"))?;
                *slot = v;
            }
            Op::LoadNode(i) => {
                let name = program.consts[i as usize].as_str()?.to_string();
                let v = env.node_var(&name);
                m.frames.last_mut().unwrap().stack.push(v);
            }
            Op::StoreNode(i) => {
                let v = pop(&mut frame.stack)?;
                let name = program.consts[i as usize].as_str()?.to_string();
                env.set_node_var(&name, v);
            }
            Op::LoadNet(var) => {
                let v = match var {
                    NetVar::Time => Value::Float(m.vtime.as_f64()),
                    other => env.net_var(other),
                };
                m.frames.last_mut().unwrap().stack.push(v);
            }
            Op::Dup => {
                let v = frame.stack.last().ok_or(VmError::Corrupt("dup on empty stack"))?.clone();
                frame.stack.push(v);
            }
            Op::Pop => {
                pop(&mut frame.stack)?;
            }
            Op::Add | Op::Sub | Op::Mul | Op::Div | Op::Mod => {
                let b = pop(&mut frame.stack)?;
                let a = pop(&mut frame.stack)?;
                frame.stack.push(arith(&op, a, b)?);
            }
            Op::Neg => {
                let a = pop(&mut frame.stack)?;
                frame.stack.push(crate::binop::neg(a)?);
            }
            Op::Not => {
                let a = pop(&mut frame.stack)?;
                frame.stack.push(Value::Bool(!a.is_truthy()));
            }
            Op::Eq | Op::Ne => {
                let b = pop(&mut frame.stack)?;
                let a = pop(&mut frame.stack)?;
                let eq = a.loose_eq(&b);
                frame.stack.push(Value::Bool(if matches!(op, Op::Eq) { eq } else { !eq }));
            }
            Op::Lt | Op::Le | Op::Gt | Op::Ge => {
                let b = pop(&mut frame.stack)?;
                let a = pop(&mut frame.stack)?;
                frame.stack.push(compare(&op, &a, &b)?);
            }
            Op::Jump(off) => frame.pc = jump(frame.pc, off),
            Op::JumpIfFalse(off) => {
                let v = pop(&mut frame.stack)?;
                if !v.is_truthy() {
                    frame.pc = jump(frame.pc, off);
                }
            }
            Op::JumpIfTruePeek(off) => {
                let v = frame.stack.last().ok_or(VmError::Corrupt("peek on empty stack"))?;
                if v.is_truthy() {
                    frame.pc = jump(frame.pc, off);
                }
            }
            Op::JumpIfFalsePeek(off) => {
                let v = frame.stack.last().ok_or(VmError::Corrupt("peek on empty stack"))?;
                if !v.is_truthy() {
                    frame.pc = jump(frame.pc, off);
                }
            }
            Op::Call { f, argc } => {
                let at = frame
                    .stack
                    .len()
                    .checked_sub(argc as usize)
                    .ok_or(VmError::Corrupt("call args underflow"))?;
                let args: Vec<Value> = frame.stack.split_off(at);
                let callee = crate::bytecode::FuncId(f);
                if (f as usize) >= program.funcs.len() {
                    return Err(VmError::Corrupt("call target out of range"));
                }
                let new_frame = Frame::activate(program, callee, &args)?;
                m.frames.push(new_frame);
            }
            Op::CallNative { name, argc } => {
                let at = frame
                    .stack
                    .len()
                    .checked_sub(argc as usize)
                    .ok_or(VmError::Corrupt("native args underflow"))?;
                let args: Vec<Value> = frame.stack.split_off(at);
                let name = program.consts[name as usize].as_str()?.to_string();
                let v = env.call_native(&name, &args)?;
                m.frames.last_mut().unwrap().stack.push(v);
            }
            Op::Ret => {
                let v = pop(&mut frame.stack)?;
                m.frames.pop();
                match m.frames.last_mut() {
                    None => return Ok(Yield::Terminated(v)),
                    Some(caller) => caller.stack.push(v),
                }
            }
            Op::Hop(i) | Op::Delete(i) => {
                let spec = *program
                    .hop_specs
                    .get(i as usize)
                    .ok_or(VmError::Corrupt("hop spec out of range"))?;
                // Operands were pushed ln-then-ll; pop in reverse.
                let ll = match spec.ll {
                    LinkPat::Wild => EvalLink::Wild,
                    LinkPat::Unnamed => EvalLink::Unnamed,
                    LinkPat::Virtual => EvalLink::Virtual,
                    LinkPat::Expr => match pop(&mut frame.stack)? {
                        Value::Link(inst) => EvalLink::Instance(inst),
                        Value::Null => EvalLink::Unnamed,
                        v => EvalLink::Named(v),
                    },
                };
                let ln = match spec.ln {
                    NodePat::Wild => None,
                    NodePat::Expr => Some(pop(&mut frame.stack)?),
                };
                let eh = EvalHop { ln, ll, ldir: spec.ldir };
                return Ok(if matches!(op, Op::Hop(_)) {
                    Yield::Hop(eh)
                } else {
                    Yield::Delete(eh)
                });
            }
            Op::Create(i) => {
                let spec = program
                    .create_specs
                    .get(i as usize)
                    .ok_or(VmError::Corrupt("create spec out of range"))?
                    .clone();
                // Operands pushed per item in order (ln, ll, dn, dl);
                // pop everything in reverse.
                let mut items: Vec<EvalCreateItem> = Vec::with_capacity(spec.items.len());
                for it in spec.items.iter().rev() {
                    let dl = match it.dl {
                        LinkPat::Wild => EvalLink::Wild,
                        LinkPat::Unnamed => EvalLink::Unnamed,
                        LinkPat::Virtual => EvalLink::Virtual,
                        LinkPat::Expr => match pop(&mut frame.stack)? {
                            Value::Link(inst) => EvalLink::Instance(inst),
                            Value::Null => EvalLink::Unnamed,
                            v => EvalLink::Named(v),
                        },
                    };
                    let dn = match it.dn {
                        NodePat::Wild => None,
                        NodePat::Expr => Some(pop(&mut frame.stack)?),
                    };
                    let ll = match it.ll {
                        NamePat::Unnamed => None,
                        NamePat::Expr => Some(pop(&mut frame.stack)?),
                    };
                    let ln = match it.ln {
                        NamePat::Unnamed => None,
                        NamePat::Expr => Some(pop(&mut frame.stack)?),
                    };
                    items.push(EvalCreateItem { ln, ll, ldir: it.ldir, dn, dl, ddir: it.ddir });
                }
                items.reverse();
                return Ok(Yield::Create(EvalCreate { items, all: spec.all }));
            }
            Op::SchedAbs => {
                let t = pop(&mut frame.stack)?.as_float()?;
                if t.is_nan() {
                    return Err(VmError::Corrupt("NaN virtual time"));
                }
                return Ok(Yield::SchedAbs(Vt::new(t)));
            }
            Op::SchedDlt => {
                let dt = pop(&mut frame.stack)?.as_float()?;
                if dt.is_nan() {
                    return Err(VmError::Corrupt("NaN virtual time"));
                }
                return Ok(Yield::SchedDlt(dt));
            }
            Op::Halt => return Ok(Yield::Terminated(Value::Null)),
            Op::MakeArr => {
                let default = pop(&mut frame.stack)?;
                let n = pop(&mut frame.stack)?.as_int()?;
                if !(0..=(1 << 24)).contains(&n) {
                    return Err(VmError::Native(format!("bad array size {n}")));
                }
                frame.stack.push(Value::Arr(std::sync::Arc::new(vec![default; n as usize])));
            }
            Op::IndexGet => {
                let idx = pop(&mut frame.stack)?.as_int()?;
                let arr = pop(&mut frame.stack)?;
                let arr = arr.as_array()?;
                let v =
                    arr.get(usize::try_from(idx).map_err(|_| {
                        VmError::Native(format!("array index {idx} out of bounds"))
                    })?)
                    .ok_or_else(|| {
                        VmError::Native(format!(
                            "array index {idx} out of bounds (len {})",
                            arr.len()
                        ))
                    })?
                    .clone();
                frame.stack.push(v);
            }
            Op::IndexSet => {
                let value = pop(&mut frame.stack)?;
                let idx = pop(&mut frame.stack)?.as_int()?;
                let mut arr = match pop(&mut frame.stack)? {
                    Value::Arr(a) => a,
                    other => return Err(VmError::type_error("array", &other)),
                };
                let len = arr.len();
                let slot = std::sync::Arc::make_mut(&mut arr)
                    .get_mut(usize::try_from(idx).unwrap_or(usize::MAX))
                    .ok_or_else(|| {
                        VmError::Native(format!("array index {idx} out of bounds (len {len})"))
                    })?;
                *slot = value;
                frame.stack.push(Value::Arr(arr));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::{Builder, CreateItem, CreateSpec, HopSpec, Op};
    use crate::state::MessengerId;

    fn launch(p: &Program) -> MessengerState {
        MessengerState::launch(p, MessengerId(1), &[]).unwrap()
    }

    fn run_main(code: Vec<Op>, b: Builder) -> Result<Yield, VmError> {
        let mut b = b;
        let f = b.function("main", 0, 4, code);
        let p = b.finish(f);
        let mut m = launch(&p);
        run(&p, &mut m, &mut NullEnv, 10_000)
    }

    #[test]
    fn arithmetic_and_return() {
        let mut b = Builder::new();
        let c10 = b.constant(Value::Int(10));
        let c3 = b.constant(Value::Int(3));
        // (10 - 3) * 10 % 3 => 70 % 3 => 1
        let y = run_main(
            vec![
                Op::Const(c10),
                Op::Const(c3),
                Op::Sub,
                Op::Const(c10),
                Op::Mul,
                Op::Const(c3),
                Op::Mod,
                Op::Ret,
            ],
            b,
        )
        .unwrap();
        assert_eq!(y, Yield::Terminated(Value::Int(1)));
    }

    #[test]
    fn float_promotion() {
        let mut b = Builder::new();
        let ci = b.constant(Value::Int(3));
        let cf = b.constant(Value::Float(0.5));
        let y = run_main(vec![Op::Const(ci), Op::Const(cf), Op::Add, Op::Ret], b).unwrap();
        assert_eq!(y, Yield::Terminated(Value::Float(3.5)));
    }

    #[test]
    fn string_concat() {
        let mut b = Builder::new();
        let cs = b.constant(Value::str("n"));
        let ci = b.constant(Value::Int(7));
        let y = run_main(vec![Op::Const(cs), Op::Const(ci), Op::Add, Op::Ret], b).unwrap();
        assert_eq!(y, Yield::Terminated(Value::str("n7")));
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let mut b = Builder::new();
        let c1 = b.constant(Value::Int(1));
        let c0 = b.constant(Value::Int(0));
        let e = run_main(vec![Op::Const(c1), Op::Const(c0), Op::Div, Op::Ret], b).unwrap_err();
        assert_eq!(e, VmError::DivisionByZero);
        // Float division by zero is C-like: infinity, not an error.
        let mut b = Builder::new();
        let c1 = b.constant(Value::Float(1.0));
        let c0 = b.constant(Value::Float(0.0));
        let y = run_main(vec![Op::Const(c1), Op::Const(c0), Op::Div, Op::Ret], b).unwrap();
        assert_eq!(y, Yield::Terminated(Value::Float(f64::INFINITY)));
    }

    #[test]
    fn locals_load_store() {
        let mut b = Builder::new();
        let c5 = b.constant(Value::Int(5));
        let y = run_main(
            vec![
                Op::Const(c5),
                Op::StoreLocal(0),
                Op::LoadLocal(0),
                Op::LoadLocal(0),
                Op::Add,
                Op::Ret,
            ],
            b,
        )
        .unwrap();
        assert_eq!(y, Yield::Terminated(Value::Int(10)));
    }

    #[test]
    fn loop_with_jumps() {
        // i = 0; acc = 0; while (i < 5) { acc = acc + i; i = i + 1; } ret acc
        let mut b = Builder::new();
        let c0 = b.constant(Value::Int(0));
        let c1 = b.constant(Value::Int(1));
        let c5 = b.constant(Value::Int(5));
        let code = vec![
            Op::Const(c0),
            Op::StoreLocal(0), // i
            Op::Const(c0),
            Op::StoreLocal(1), // acc
            // loop head (pc=4)
            Op::LoadLocal(0),
            Op::Const(c5),
            Op::Lt,
            Op::JumpIfFalse(9), // to the trailing LoadLocal
            Op::LoadLocal(1),
            Op::LoadLocal(0),
            Op::Add,
            Op::StoreLocal(1),
            Op::LoadLocal(0),
            Op::Const(c1),
            Op::Add,
            Op::StoreLocal(0),
            Op::Jump(-13), // back to loop head
            Op::LoadLocal(1),
            Op::Ret,
        ];
        let y = run_main(code, b).unwrap();
        assert_eq!(y, Yield::Terminated(Value::Int(10)));
    }

    #[test]
    fn user_function_call_and_implicit_return() {
        let mut b = Builder::new();
        let c2 = b.constant(Value::Int(2));
        // callee: double(x) { return x + x; }
        let double =
            b.function("double", 1, 0, vec![Op::LoadLocal(0), Op::LoadLocal(0), Op::Add, Op::Ret]);
        // drop(x) {}  -- implicit NULL return
        let dropf = b.function("drop", 1, 0, vec![]);
        let main = b.function(
            "main",
            0,
            0,
            vec![
                Op::Const(c2),
                Op::Call { f: double.0, argc: 1 },
                Op::Const(c2),
                Op::Call { f: dropf.0, argc: 1 },
                Op::Pop, // discard NULL
                Op::Ret,
            ],
        );
        let p = b.finish(main);
        let mut m = launch(&p);
        let y = run(&p, &mut m, &mut NullEnv, 10_000).unwrap();
        assert_eq!(y, Yield::Terminated(Value::Int(4)));
    }

    #[test]
    fn fuel_exhaustion() {
        let e = run_main(vec![Op::Jump(-1)], Builder::new());
        assert_eq!(e.unwrap_err(), VmError::FuelExhausted);
    }

    #[test]
    fn hop_yield_evaluates_operands_and_advances_pc() {
        let mut b = Builder::new();
        let name = b.constant(Value::str("row"));
        let spec = b.hop_spec(HopSpec { ln: NodePat::Wild, ll: LinkPat::Expr, ldir: Dir::Forward });
        let after = b.constant(Value::Int(99));
        let f = b.function(
            "main",
            0,
            0,
            vec![Op::Const(name), Op::Hop(spec), Op::Const(after), Op::Ret],
        );
        let p = b.finish(f);
        let mut m = launch(&p);
        let y = run(&p, &mut m, &mut NullEnv, 100).unwrap();
        assert_eq!(
            y,
            Yield::Hop(EvalHop {
                ln: None,
                ll: EvalLink::Named(Value::str("row")),
                ldir: Dir::Forward
            })
        );
        // The state resumes *after* the hop: running again returns 99.
        let y2 = run(&p, &mut m, &mut NullEnv, 100).unwrap();
        assert_eq!(y2, Yield::Terminated(Value::Int(99)));
    }

    #[test]
    fn hop_on_link_instance_value() {
        let mut b = Builder::new();
        let spec = b.hop_spec(HopSpec { ln: NodePat::Wild, ll: LinkPat::Expr, ldir: Dir::Any });
        let f = b.function("main", 0, 0, vec![Op::LoadNet(NetVar::Last), Op::Hop(spec)]);
        let p = b.finish(f);
        let mut m = launch(&p);
        let mut env = MapEnv::new();
        env.last = Value::Link(LinkInstance(42));
        let y = run(&p, &mut m, &mut env, 100).unwrap();
        assert_eq!(
            y,
            Yield::Hop(EvalHop {
                ln: None,
                ll: EvalLink::Instance(LinkInstance(42)),
                ldir: Dir::Any
            })
        );
    }

    #[test]
    fn create_all_yield() {
        let mut b = Builder::new();
        let spec = b.create_spec(CreateSpec { items: vec![CreateItem::default()], all: true });
        let f = b.function("main", 0, 0, vec![Op::Create(spec), Op::Halt]);
        let p = b.finish(f);
        let mut m = launch(&p);
        let y = run(&p, &mut m, &mut NullEnv, 100).unwrap();
        match y {
            Yield::Create(c) => {
                assert!(c.all);
                assert_eq!(c.items.len(), 1);
                assert_eq!(c.items[0].ln, None);
                assert_eq!(c.items[0].dl, EvalLink::Wild);
            }
            other => panic!("expected create, got {other:?}"),
        }
    }

    #[test]
    fn create_multi_item_operand_order() {
        // create(ln=a,b; ll=x,y): operands must map to the right items.
        let mut b = Builder::new();
        let ca = b.constant(Value::str("a"));
        let cb = b.constant(Value::str("b"));
        let cx = b.constant(Value::str("x"));
        let cy = b.constant(Value::str("y"));
        let spec = b.create_spec(CreateSpec {
            items: vec![
                CreateItem { ln: NamePat::Expr, ll: NamePat::Expr, ..Default::default() },
                CreateItem { ln: NamePat::Expr, ll: NamePat::Expr, ..Default::default() },
            ],
            all: false,
        });
        let f = b.function(
            "main",
            0,
            0,
            vec![
                Op::Const(ca),
                Op::Const(cx),
                Op::Const(cb),
                Op::Const(cy),
                Op::Create(spec),
                Op::Halt,
            ],
        );
        let p = b.finish(f);
        let mut m = launch(&p);
        match run(&p, &mut m, &mut NullEnv, 100).unwrap() {
            Yield::Create(c) => {
                assert_eq!(c.items[0].ln, Some(Value::str("a")));
                assert_eq!(c.items[0].ll, Some(Value::str("x")));
                assert_eq!(c.items[1].ln, Some(Value::str("b")));
                assert_eq!(c.items[1].ll, Some(Value::str("y")));
            }
            other => panic!("expected create, got {other:?}"),
        }
    }

    #[test]
    fn sched_yields() {
        let mut b = Builder::new();
        let c = b.constant(Value::Float(2.5));
        let f = b.function("main", 0, 0, vec![Op::Const(c), Op::SchedAbs, Op::Halt]);
        let p = b.finish(f);
        let mut m = launch(&p);
        assert_eq!(run(&p, &mut m, &mut NullEnv, 100).unwrap(), Yield::SchedAbs(Vt::new(2.5)));
        assert_eq!(run(&p, &mut m, &mut NullEnv, 100).unwrap(), Yield::Terminated(Value::Null));
    }

    #[test]
    fn node_vars_via_env() {
        let mut b = Builder::new();
        let cname = b.constant(Value::str("counter"));
        let c1 = b.constant(Value::Int(1));
        let f = b.function(
            "main",
            0,
            0,
            vec![
                Op::LoadNode(cname),
                Op::Const(c1),
                Op::Add,
                Op::StoreNode(cname),
                Op::LoadNode(cname),
                Op::Ret,
            ],
        );
        let p = b.finish(f);
        let mut env = MapEnv::new();
        env.vars.insert("counter".into(), Value::Int(41));
        let mut m = launch(&p);
        let y = run(&p, &mut m, &mut env, 100).unwrap();
        assert_eq!(y, Yield::Terminated(Value::Int(42)));
        assert_eq!(env.vars["counter"], Value::Int(42));
        assert!(env.ops > 0);
    }

    #[test]
    fn net_vars_and_natives_via_map_env() {
        let mut b = Builder::new();
        let cn = b.constant(Value::str("twice"));
        let f = b.function(
            "main",
            0,
            0,
            vec![Op::LoadNet(NetVar::Address), Op::CallNative { name: cn, argc: 1 }, Op::Ret],
        );
        let p = b.finish(f);
        let mut env = MapEnv::new();
        env.address = 21;
        env.natives.register("twice", |_, args| {
            Ok(Value::Int(args[0].as_int().map_err(|e| e.to_string())? * 2))
        });
        let mut m = launch(&p);
        let y = run(&p, &mut m, &mut env, 100).unwrap();
        assert_eq!(y, Yield::Terminated(Value::Int(42)));
    }

    #[test]
    fn unknown_native_bubbles_up() {
        let mut b = Builder::new();
        let cn = b.constant(Value::str("ghost"));
        let f = b.function("main", 0, 0, vec![Op::CallNative { name: cn, argc: 0 }, Op::Halt]);
        let p = b.finish(f);
        let mut m = launch(&p);
        let e = run(&p, &mut m, &mut MapEnv::new(), 100).unwrap_err();
        assert!(matches!(e, VmError::UnknownNative(n) if n == "ghost"));
    }

    #[test]
    fn short_circuit_peek_jumps() {
        // false && (1/0) — must not evaluate the division.
        let mut b = Builder::new();
        let cf = b.constant(Value::Bool(false));
        let c1 = b.constant(Value::Int(1));
        let c0 = b.constant(Value::Int(0));
        let code = vec![
            Op::Const(cf),
            Op::JumpIfFalsePeek(4),
            Op::Pop,
            Op::Const(c1),
            Op::Const(c0),
            Op::Div,
            Op::Ret,
        ];
        let y = run_main(code, b).unwrap();
        assert_eq!(y, Yield::Terminated(Value::Bool(false)));
    }

    #[test]
    fn comparisons() {
        let mut b = Builder::new();
        let c1 = b.constant(Value::Int(1));
        let c2 = b.constant(Value::Float(2.0));
        let y = run_main(vec![Op::Const(c1), Op::Const(c2), Op::Lt, Op::Ret], b).unwrap();
        assert_eq!(y, Yield::Terminated(Value::Bool(true)));
        let mut b = Builder::new();
        let ca = b.constant(Value::str("abc"));
        let cb = b.constant(Value::str("abd"));
        let y = run_main(vec![Op::Const(ca), Op::Const(cb), Op::Ge, Op::Ret], b).unwrap();
        assert_eq!(y, Yield::Terminated(Value::Bool(false)));
    }

    #[test]
    fn null_comparisons_work() {
        let mut b = Builder::new();
        let cn = b.constant(Value::Null);
        let c0 = b.constant(Value::Int(0));
        let y = run_main(vec![Op::Const(cn), Op::Const(c0), Op::Ne, Op::Ret], b).unwrap();
        assert_eq!(y, Yield::Terminated(Value::Bool(true)));
    }

    #[test]
    fn corrupt_code_reports_errors() {
        let b = Builder::new();
        let e = run_main(vec![Op::Pop], b).unwrap_err();
        assert!(matches!(e, VmError::Corrupt(_)));
        let b = Builder::new();
        let e = run_main(vec![Op::Const(999), Op::Ret], b).unwrap_err();
        assert!(matches!(e, VmError::Corrupt(_)));
    }
}
