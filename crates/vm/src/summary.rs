//! Interprocedural effect summaries.
//!
//! A [`FnSummary`] is the analyzer's whole-program verdict about one
//! function: how it navigates, which node variables it touches, whether
//! it calls natives, and the fuel facts the closure compiler may trust
//! (`exact_ops`, `pure_loops`). The types live here — not in
//! `msgr-analyze` — because the compiler consumes them and must not
//! depend on the analyzer crate; `msgr-analyze::summarize` produces
//! them.
//!
//! Summaries are **facts, not hints**: `compile_with_summaries` charges
//! fuel from `exact_ops` without recounting, so a wrong summary is a
//! miscompile. That is deliberate — it keeps every summary bit
//! observable under the differential harness (see the summary-corruption
//! mutation check in `tests/diff_props.rs`). Summaries are keyed by
//! [`crate::ProgramId`] *outside* the program body, so attaching them
//! never changes a content hash.

use std::collections::BTreeSet;

/// How often a function may navigate (`hop`/`delete`), including
/// everything it transitively calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum HopBehavior {
    /// Provably never navigates.
    #[default]
    HopFree,
    /// Navigates at most once per call.
    AtMostOnce,
    /// May navigate any number of times.
    MayNavigate,
}

/// The flat value-kind lattice used for return-kind summaries
/// (mirrors the analyzer's abstract-interpretation kinds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum SumKind {
    /// Unknown / any value.
    #[default]
    Top,
    /// Always `NULL`.
    Null,
    /// Always a boolean.
    Bool,
    /// Always an integer.
    Int,
    /// Always a float.
    Float,
    /// Always a string.
    Str,
    /// Always a matrix block.
    Mat,
    /// Always a blob.
    Blob,
    /// Always an array.
    Arr,
    /// Always a link instance.
    Link,
}

impl SumKind {
    /// Least upper bound on the flat lattice.
    #[must_use]
    pub fn join(self, other: SumKind) -> SumKind {
        if self == other {
            self
        } else {
            SumKind::Top
        }
    }
}

/// The effect summary of one function, covering everything it
/// transitively calls.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FnSummary {
    /// Navigation behavior (hop/delete), transitively.
    pub hop: HopBehavior,
    /// May execute a `create` statement.
    pub may_create: bool,
    /// May suspend on virtual time (`M_sched_time_*`).
    pub may_sched: bool,
    /// May terminate the messenger (`M_exit`).
    pub may_halt: bool,
    /// May call a native function (unknown effects).
    pub may_native: bool,
    /// Participates in a call-graph cycle (direct or mutual recursion).
    pub recursive: bool,
    /// Node variables (constant-pool name indices) that *may* be read.
    pub node_reads: BTreeSet<u16>,
    /// Node variables that *may* be written.
    pub node_writes: BTreeSet<u16>,
    /// Node variables written on *every* returning path (must-writes).
    pub node_must_writes: BTreeSet<u16>,
    /// Direct callees (function indices).
    pub calls: BTreeSet<u16>,
    /// Upper bound on ops charged by one complete call, when the
    /// function (with its callees) is provably acyclic. `None` when
    /// unbounded or unknown.
    pub ops_bound: Option<u64>,
    /// Exact ops charged by one complete, fault-free call — only for
    /// straight-line pure functions (no jumps, calls, or effects). The
    /// compiler bulk-charges this amount when it fuses through a call,
    /// so it must be exact, not a bound.
    pub exact_ops: Option<u32>,
    /// Loop-head pcs of counted `while` loops proven free of faults and
    /// effects (no div/mod, no calls, no node/net access) — the
    /// compiler's license to run them on the unboxed typed fast path.
    pub pure_loops: BTreeSet<u32>,
    /// Kind of the returned value, joined over all returning paths.
    pub ret_kind: SumKind,
}

impl FnSummary {
    /// Whether a call can complete without any observable effect outside
    /// the frame: no navigation, no scheduling, no node/native traffic.
    pub fn is_pure(&self) -> bool {
        self.hop == HopBehavior::HopFree
            && !self.may_create
            && !self.may_sched
            && !self.may_halt
            && !self.may_native
            && self.node_reads.is_empty()
            && self.node_writes.is_empty()
    }
}

/// Per-function summaries for a whole program, parallel to
/// `Program::funcs`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SummaryTable {
    /// One summary per function, same order as `Program::funcs`.
    pub funcs: Vec<FnSummary>,
}

impl SummaryTable {
    /// Whether no function in the program can write a node variable —
    /// directly or through a native call (natives may write). Programs
    /// with this property cannot change `node.vars`, so the Time-Warp
    /// snapshot taken before an optimistic segment is provably
    /// redundant.
    pub fn node_write_free(&self) -> bool {
        self.funcs.iter().all(|s| s.node_writes.is_empty() && !s.may_native)
    }

    /// Count of functions proven hop-free.
    pub fn hop_free_funcs(&self) -> u64 {
        self.funcs.iter().filter(|s| s.hop == HopBehavior::HopFree).count() as u64
    }

    /// Count of typed-loop licenses across all functions.
    pub fn pure_loop_count(&self) -> u64 {
        self.funcs.iter().map(|s| s.pure_loops.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hop_behavior_orders_by_strength() {
        assert!(HopBehavior::HopFree < HopBehavior::AtMostOnce);
        assert!(HopBehavior::AtMostOnce < HopBehavior::MayNavigate);
    }

    #[test]
    fn kind_join_is_flat() {
        assert_eq!(SumKind::Int.join(SumKind::Int), SumKind::Int);
        assert_eq!(SumKind::Int.join(SumKind::Float), SumKind::Top);
        assert_eq!(SumKind::Top.join(SumKind::Null), SumKind::Top);
    }

    #[test]
    fn write_free_requires_no_natives() {
        let mut t = SummaryTable { funcs: vec![FnSummary::default()] };
        assert!(t.node_write_free());
        t.funcs[0].may_native = true;
        assert!(!t.node_write_free());
        t.funcs[0].may_native = false;
        t.funcs[0].node_writes.insert(3);
        assert!(!t.node_write_free());
    }
}
