//! Runtime values.
//!
//! MSGR-C is a dynamically-typed C subset: all standard data types other
//! than pointers (§4). Matrices ([`Matrix`]) stand in for the C arrays
//! the applications move around ("blocks" of the Mandelbrot image and of
//! the A/B/C matrices); they are reference-counted so that carrying one
//! inside a Messenger is cheap in memory while the *wire* codec still
//! accounts for their full byte size, exactly like the original system
//! (messenger variables travel with the messenger; no extra buffer
//! copies — §2.1).

use crate::bytes::Bytes;
use std::fmt;
use std::sync::Arc;

use crate::error::VmError;

/// A dense row-major matrix of `f64`, cheaply cloneable (shared storage,
/// copy-on-write mutation).
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: u32,
    cols: u32,
    data: Arc<Vec<f64>>,
}

impl Matrix {
    /// An all-zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `u32`.
    pub fn zeros(rows: u32, cols: u32) -> Self {
        let n = (rows as u64).checked_mul(cols as u64).expect("matrix dimensions overflow");
        Matrix { rows, cols, data: Arc::new(vec![0.0; n as usize]) }
    }

    /// Build from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: u32, cols: u32, data: Vec<f64>) -> Self {
        assert_eq!(data.len() as u64, rows as u64 * cols as u64, "shape mismatch");
        Matrix { rows, cols, data: Arc::new(data) }
    }

    /// Number of rows.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Row-major element view.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, r: u32, c: u32) -> f64 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        self.data[(r as usize) * self.cols as usize + c as usize]
    }

    /// Set element at `(r, c)`; clones the storage if shared.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, r: u32, c: u32, v: f64) {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        let cols = self.cols as usize;
        Arc::make_mut(&mut self.data)[(r as usize) * cols + c as usize] = v;
    }

    /// Mutable row-major element view; clones the storage if shared.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        Arc::make_mut(&mut self.data).as_mut_slice()
    }

    /// A deep copy with unshared storage (models the paper's
    /// `copy_block` native).
    pub fn deep_copy(&self) -> Matrix {
        Matrix { rows: self.rows, cols: self.cols, data: Arc::new(self.data.as_ref().clone()) }
    }

    /// Payload size in bytes when serialized (8 bytes per element plus a
    /// small header) — what a migration carrying this matrix pays on the
    /// wire.
    pub fn wire_bytes(&self) -> u64 {
        8 * self.rows as u64 * self.cols as u64 + 8
    }

    /// Whether the underlying buffer is shared with another handle.
    pub fn is_shared(&self) -> bool {
        Arc::strong_count(&self.data) > 1
    }
}

/// Identifier of a logical-link *instance*. The network variable `$last`
/// evaluates to one of these so that a Messenger can re-traverse the
/// specific (possibly unnamed) link it arrived on, as the manager/worker
/// script of Fig. 3 does.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkInstance(pub u64);

impl fmt::Display for LinkInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "link#{}", self.0)
    }
}

/// A dynamically-typed MSGR-C value.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Value {
    /// The C `NULL`; also the value of never-assigned node variables.
    #[default]
    Null,
    /// Boolean (`true` / `false` literals).
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// Double-precision float.
    Float(f64),
    /// Immutable string.
    Str(Arc<str>),
    /// Matrix / data block (see [`Matrix`]).
    Mat(Matrix),
    /// Raw byte block (e.g. a pixel tile) — cheap to clone, compact on
    /// the wire.
    Blob(Bytes),
    /// A C-style array (value semantics via copy-on-write).
    Arr(Arc<Vec<Value>>),
    /// A logical-link instance reference (produced by `$last`).
    Link(LinkInstance),
}

impl Value {
    /// Convenience constructor for strings.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// C-style truthiness: `NULL`/0/0.0/false are false; everything else
    /// (including strings and matrices) is true.
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Null => false,
            Value::Bool(b) => *b,
            Value::Int(i) => *i != 0,
            Value::Float(f) => *f != 0.0,
            Value::Str(_) | Value::Mat(_) | Value::Blob(_) | Value::Arr(_) | Value::Link(_) => true,
        }
    }

    /// A short name for the value's type, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Mat(_) => "block",
            Value::Blob(_) => "blob",
            Value::Arr(_) => "array",
            Value::Link(_) => "link",
        }
    }

    /// Interpret as an integer.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::Type`] if the value is not an `Int` or `Bool`.
    pub fn as_int(&self) -> Result<i64, VmError> {
        match self {
            Value::Int(i) => Ok(*i),
            Value::Bool(b) => Ok(*b as i64),
            other => Err(VmError::type_error("int", other)),
        }
    }

    /// Interpret as a float (ints widen).
    ///
    /// # Errors
    ///
    /// Returns [`VmError::Type`] for non-numeric values.
    pub fn as_float(&self) -> Result<f64, VmError> {
        match self {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::Bool(b) => Ok(*b as i64 as f64),
            other => Err(VmError::type_error("float", other)),
        }
    }

    /// Interpret as a string slice.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::Type`] if not a string.
    pub fn as_str(&self) -> Result<&str, VmError> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(VmError::type_error("string", other)),
        }
    }

    /// Interpret as a matrix.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::Type`] if not a matrix.
    pub fn as_matrix(&self) -> Result<&Matrix, VmError> {
        match self {
            Value::Mat(m) => Ok(m),
            other => Err(VmError::type_error("block", other)),
        }
    }

    /// Interpret as an array.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::Type`] if not an array.
    pub fn as_array(&self) -> Result<&Arc<Vec<Value>>, VmError> {
        match self {
            Value::Arr(a) => Ok(a),
            other => Err(VmError::type_error("array", other)),
        }
    }

    /// Interpret as a byte blob.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::Type`] if not a blob.
    pub fn as_blob(&self) -> Result<&Bytes, VmError> {
        match self {
            Value::Blob(b) => Ok(b),
            other => Err(VmError::type_error("blob", other)),
        }
    }

    /// Equality as used by `==`: `NULL == NULL`, numeric cross-type
    /// comparison (`1 == 1.0`), otherwise same-variant comparison.
    pub fn loose_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => *a as f64 == *b,
            (a, b) => a == b,
        }
    }

    /// Approximate serialized size, used for migration cost accounting.
    pub fn wire_bytes(&self) -> u64 {
        match self {
            Value::Null | Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) | Value::Link(_) => 9,
            Value::Str(s) => 5 + s.len() as u64,
            Value::Mat(m) => 1 + m.wire_bytes(),
            Value::Blob(b) => 6 + b.len() as u64,
            Value::Arr(a) => 5 + a.iter().map(Value::wire_bytes).sum::<u64>(),
        }
    }
}

// Values are usable as map keys (node names in the cluster directory).
// The contract holds as long as no NaN float is used as a name —
// `Vt::new` and the decoder already reject NaN virtual times, and NaN
// node names are nonsensical.
impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        std::mem::discriminant(self).hash(state);
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            Value::Int(i) => i.hash(state),
            Value::Float(f) => f.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
            // Weak but Eq-consistent: equal matrices share a shape.
            Value::Mat(m) => (m.rows(), m.cols()).hash(state),
            Value::Blob(b) => b.len().hash(state),
            Value::Arr(a) => a.len().hash(state),
            Value::Link(l) => l.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Mat(m) => write!(f, "block[{}x{}]", m.rows(), m.cols()),
            Value::Blob(b) => write!(f, "blob[{}]", b.len()),
            Value::Arr(a) => write!(f, "array[{}]", a.len()),
            Value::Link(l) => write!(f, "{l}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}
impl From<Matrix> for Value {
    fn from(v: Matrix) -> Self {
        Value::Mat(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_basics() {
        let mut m = Matrix::zeros(2, 3);
        assert_eq!(m.get(1, 2), 0.0);
        m.set(1, 2, 5.5);
        assert_eq!(m.get(1, 2), 5.5);
        assert_eq!(m.as_slice().len(), 6);
        assert_eq!(m.wire_bytes(), 56);
    }

    #[test]
    fn matrix_copy_on_write() {
        let mut a = Matrix::zeros(2, 2);
        let b = a.clone();
        assert!(a.is_shared());
        a.set(0, 0, 9.0);
        assert!(!a.is_shared());
        assert_eq!(b.get(0, 0), 0.0);
        assert_eq!(a.get(0, 0), 9.0);
    }

    #[test]
    fn deep_copy_unshares() {
        let a = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let b = a.deep_copy();
        assert!(!b.is_shared());
        assert_eq!(b, a);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn matrix_oob_panics() {
        Matrix::zeros(2, 2).get(2, 0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn matrix_shape_checked() {
        let _ = Matrix::from_vec(2, 2, vec![0.0; 3]);
    }

    #[test]
    fn truthiness_is_c_like() {
        assert!(!Value::Null.is_truthy());
        assert!(!Value::Int(0).is_truthy());
        assert!(!Value::Float(0.0).is_truthy());
        assert!(!Value::Bool(false).is_truthy());
        assert!(Value::Int(-1).is_truthy());
        assert!(Value::str("").is_truthy());
        assert!(Value::Mat(Matrix::zeros(1, 1)).is_truthy());
    }

    #[test]
    fn loose_eq_crosses_numeric_types() {
        assert!(Value::Int(1).loose_eq(&Value::Float(1.0)));
        assert!(Value::Float(2.0).loose_eq(&Value::Int(2)));
        assert!(!Value::Int(1).loose_eq(&Value::Float(1.5)));
        assert!(Value::Null.loose_eq(&Value::Null));
        assert!(!Value::Null.loose_eq(&Value::Int(0)));
        assert!(Value::str("ab").loose_eq(&Value::str("ab")));
    }

    #[test]
    fn conversions_and_errors() {
        assert_eq!(Value::Int(7).as_int().unwrap(), 7);
        assert_eq!(Value::Bool(true).as_int().unwrap(), 1);
        assert_eq!(Value::Int(7).as_float().unwrap(), 7.0);
        assert!(Value::str("x").as_int().is_err());
        assert!(Value::Null.as_matrix().is_err());
        assert_eq!(Value::str("hi").as_str().unwrap(), "hi");
    }

    #[test]
    fn wire_bytes_accounting() {
        assert_eq!(Value::Null.wire_bytes(), 1);
        assert_eq!(Value::Int(1).wire_bytes(), 9);
        assert_eq!(Value::str("abcd").wire_bytes(), 9);
        assert_eq!(Value::Mat(Matrix::zeros(10, 10)).wire_bytes(), 809);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Mat(Matrix::zeros(2, 3)).to_string(), "block[2x3]");
        assert_eq!(Value::Link(LinkInstance(4)).to_string(), "link#4");
    }
}
