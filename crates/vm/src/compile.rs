//! The closure-compiled execution engine.
//!
//! [`compile`] translates verified [`Program`] bytecode into a tree of
//! Rust closures: every pc gets a direct-threaded single-op closure (no
//! per-op `match` in the dispatch loop), and straight-line runs of pure
//! stack code are additionally fused into **superinstructions** — one
//! closure per run that evaluates the run's expression trees directly
//! out of frame locals, bypassing the operand stack entirely. The fused
//! spans subsume the hot patterns the MSGR-C compiler emits:
//!
//! * `const/binop/store` — `i = i + 1`, `zr2 = zr*zr - zi*zi + cr`
//! * `compare-and-branch` — `while (i < passes)` loop heads
//! * `load/hop` — `hop(ll = "ring"; ldir = +)` operand + yield
//!
//! # Engine contract
//!
//! [`run`] is observationally identical to [`crate::interp::run`]: same
//! yields, same final frames (pc, locals, operand stack), same node-var
//! effects, same `ops` charge, same errors at the same positions — at
//! *any* fuel. `tests/diff_props.rs` checks this differentially on
//! generated programs. Two mechanisms make exactness cheap:
//!
//! * **Resume points**: because every pc keeps its single-op closure, a
//!   messenger can enter a function at *any* pc — a hop arrival, a
//!   parked messenger resuming after `M_sched_*`, or a restored
//!   checkpoint all resume mid-block without special cases. Fused spans
//!   are an overlay: entering at a span head runs the superinstruction,
//!   entering one op later runs the singles.
//! * **Optimistic spans with deopt**: a fused span buffers its local
//!   stores and touches nothing until every sub-expression has
//!   evaluated. On any error it discards the buffered results and
//!   *deoptimizes*: the dispatcher replays the span through the
//!   single-op closures, which reproduce the interpreter's exact
//!   partial state (pc, half-built stack, ops) at the fault. Spans run
//!   only when the whole span fits in the remaining fuel, so
//!   fuel-exhaustion positions are bit-exact too.
//!
//! # Precondition: verification
//!
//! The compiler assumes structurally sane code — in-range constant pool
//! and local-slot indices, jump targets inside the function — which is
//! exactly what `msgr-analyze::verify` establishes before a program is
//! admitted to the code registry. Compiling unverified code is safe
//! (out-of-range accesses become closures that fail like the
//! interpreter fails) but pointless; the daemon registry therefore
//! compiles right after verification and quarantines on failure.

use std::sync::Arc;

use crate::binop;
use crate::bytecode::{Dir, FuncId, LinkPat, NodePat, Op, Program};
use crate::error::VmError;
use crate::interp::{Env, EvalCreateItem, EvalHop, EvalLink, Yield};
use crate::state::{Frame, MessengerState, Vt};
use crate::summary::SummaryTable;
use crate::value::Value;

/// Everything a step closure may touch while executing.
struct StepCtx<'a, 'e> {
    frame: &'a mut Frame,
    env: &'a mut (dyn Env + 'e),
    vtime: Vt,
    ops: &'a mut u64,
}

/// What a step closure tells the dispatcher to do next.
enum Ctrl {
    /// Continue at `frame.pc` (the closure already set it).
    Next,
    /// Segment over: surface the yield.
    Yield(Yield),
    /// Push an activation frame for a user-function call.
    Call { f: FuncId, args: Vec<Value> },
    /// Pop the current frame, pushing `Value` to the caller.
    Ret(Value),
    /// A fused span hit an error before committing anything: re-execute
    /// from the same pc through the single-op closures, which reproduce
    /// the interpreter's exact fault state.
    Deopt,
}

type StepFn = Box<dyn Fn(&mut StepCtx<'_, '_>) -> Result<Ctrl, VmError> + Send + Sync>;

/// A pure sub-expression of a fused span: evaluates against frame locals
/// and the span's already-computed store values. Never touches the
/// operand stack.
type ExprFn = Box<dyn Fn(&Frame, &[Option<Value>]) -> Result<Value, VmError> + Send + Sync>;

/// A fused superinstruction covering `need` consecutive bytecode ops.
struct SpanStep {
    /// Exact ops consumed; the dispatcher runs the span only when all of
    /// them fit in the remaining fuel.
    need: u32,
    run: StepFn,
}

struct CompiledFunc {
    /// One closure per pc — the resume-capable baseline.
    singles: Vec<StepFn>,
    /// Fused spans, indexed by head pc.
    spans: Vec<Option<SpanStep>>,
    /// Fused counted loops, indexed by loop-head pc (the strongest
    /// superinstruction: whole `while` loops run as flat register code).
    loops: Vec<Option<LoopStep>>,
    /// Fused calls to proven straight-line pure leaf functions, indexed
    /// by the `Call` pc. Only populated when the compiler was handed an
    /// effect-summary table.
    inlines: Vec<Option<InlineStep>>,
}

/// A program compiled to closures; build with [`compile`], execute with
/// [`run`]. Shareable across daemon threads (`Arc`) — closures hold no
/// mutable state.
pub struct CompiledProgram {
    funcs: Vec<CompiledFunc>,
    n_superinsts: u64,
    n_loops: u64,
    n_steps: u64,
    n_inlines: u64,
    n_typed_loops: u64,
}

impl std::fmt::Debug for CompiledProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledProgram")
            .field("funcs", &self.funcs.len())
            .field("steps", &self.n_steps)
            .field("superinsts", &self.n_superinsts)
            .field("loops", &self.n_loops)
            .finish()
    }
}

impl CompiledProgram {
    /// Number of fused superinstructions across all functions (spans
    /// plus fused loops).
    pub fn superinstructions(&self) -> u64 {
        self.n_superinsts
    }

    /// Number of whole-`while`-loop superinstructions among them.
    pub fn fused_loops(&self) -> u64 {
        self.n_loops
    }

    /// Number of single-op closures (== total bytecode ops compiled).
    pub fn steps(&self) -> u64 {
        self.n_steps
    }

    /// Number of compiled functions.
    pub fn func_count(&self) -> usize {
        self.funcs.len()
    }

    /// Number of `Call` sites fused through to a proven-pure leaf
    /// callee (0 unless compiled with summaries).
    pub fn inlined_calls(&self) -> u64 {
        self.n_inlines
    }

    /// Number of fused loops licensed for the unboxed typed fast path
    /// (0 unless compiled with summaries).
    pub fn typed_loops(&self) -> u64 {
        self.n_typed_loops
    }
}

/// Compile a (verified) program into closures.
///
/// # Errors
///
/// Structural limits only (a function body too large to index by `u32`);
/// verified programs always compile.
pub fn compile(p: &Program) -> Result<CompiledProgram, String> {
    compile_full(p, None, false)
}

/// Compile with interprocedural effect summaries (from
/// `msgr-analyze::summarize`). The summaries unlock two fusions the
/// summary-blind compiler cannot justify:
///
/// - **Call fusion**: a `Call` to a function with a proven `exact_ops`
///   fact executes in the caller's dispatch loop — no activation frame
///   — bulk-charging `1 + exact_ops` fuel. The charge *trusts* the
///   summary; a wrong `exact_ops` is an observable miscompile (by
///   design — see the corruption check in `tests/diff_props.rs`).
/// - **Typed loops**: a fused `while` loop whose head carries a
///   `pure_loops` license runs on an unboxed `{i64, f64, bool}`
///   register file with no per-iteration deopt checks.
///
/// `compile_with_summaries(p, None)` is exactly [`compile`].
///
/// # Errors
///
/// As for [`compile`].
pub fn compile_with_summaries(
    p: &Program,
    summaries: Option<&SummaryTable>,
) -> Result<CompiledProgram, String> {
    compile_full(p, summaries, false)
}

/// Test hook: compile with a deliberately miscompiled superinstruction
/// (fused arithmetic evaluates its operands swapped). The differential
/// suite uses this to prove it would catch a real miscompile.
///
/// # Errors
///
/// As for [`compile`].
#[doc(hidden)]
pub fn compile_miscompiled(p: &Program) -> Result<CompiledProgram, String> {
    compile_full(p, None, true)
}

fn compile_full(
    p: &Program,
    summaries: Option<&SummaryTable>,
    mutate: bool,
) -> Result<CompiledProgram, String> {
    let consts: Arc<Vec<Value>> = Arc::new(p.consts.clone());
    let mut funcs = Vec::with_capacity(p.funcs.len());
    let mut n_superinsts = 0u64;
    let mut n_loops = 0u64;
    let mut n_steps = 0u64;
    let mut n_inlines = 0u64;
    let mut n_typed_loops = 0u64;
    for (fi, f) in p.funcs.iter().enumerate() {
        if f.code.len() >= u32::MAX as usize {
            return Err(format!("function `{}` too large to compile", f.name));
        }
        let singles: Vec<StepFn> = (0..f.code.len())
            .map(|pc| single_step(p, &consts, f.code[pc], pc as u32 + 1))
            .collect();
        let n_slots = f.n_slots as usize;
        let spans: Vec<Option<SpanStep>> = (0..f.code.len())
            .map(|pc| build_span(p, &f.code, n_slots, pc as u32, mutate))
            .collect();
        let mut loops: Vec<Option<LoopStep>> = (0..f.code.len())
            .map(|pc| build_loop(p, &f.code, n_slots, pc as u32, mutate))
            .collect();
        let inlines: Vec<Option<InlineStep>> = (0..f.code.len())
            .map(|pc| {
                summaries.and_then(|t| build_inline(p, t, &consts, &f.code[pc], pc as u32 + 1))
            })
            .collect();
        if let Some(s) = summaries.and_then(|t| t.funcs.get(fi)) {
            for (pc, slot) in loops.iter_mut().enumerate() {
                if let Some(lp) = slot {
                    if s.pure_loops.contains(&(pc as u32)) && loop_regops_typed(lp) {
                        lp.typed = true;
                        n_typed_loops += 1;
                    }
                }
            }
        }
        n_superinsts += spans.iter().flatten().count() as u64;
        n_loops += loops.iter().flatten().count() as u64;
        n_steps += singles.len() as u64;
        n_inlines += inlines.iter().flatten().count() as u64;
        funcs.push(CompiledFunc { singles, spans, loops, inlines });
    }
    n_superinsts += n_loops;
    Ok(CompiledProgram { funcs, n_superinsts, n_loops, n_steps, n_inlines, n_typed_loops })
}

/// Execute `m` until it yields, returns, or errors — the compiled twin
/// of [`crate::interp::run`], with identical observable behavior.
///
/// # Errors
///
/// Any [`VmError`], exactly as the interpreter would raise it.
pub fn run(
    cp: &CompiledProgram,
    program: &Program,
    m: &mut MessengerState,
    env: &mut dyn Env,
    fuel: u64,
) -> Result<Yield, VmError> {
    let mut ops: u64 = 0;
    let interval = env.sample_interval();
    let mut next = if interval == 0 { u64::MAX } else { interval };
    let out = run_inner(cp, program, m, env, fuel, &mut ops, &mut next, interval);
    env.charge_ops(ops);
    out
}

#[allow(clippy::too_many_arguments)]
fn run_inner(
    cp: &CompiledProgram,
    program: &Program,
    m: &mut MessengerState,
    env: &mut dyn Env,
    fuel: u64,
    ops: &mut u64,
    next: &mut u64,
    interval: u64,
) -> Result<Yield, VmError> {
    // Once a span deopts, finish the segment on singles: the fault that
    // forced the deopt is about to re-fire with exact interpreter state.
    let mut fast = true;
    loop {
        if *ops >= fuel {
            return Err(VmError::FuelExhausted);
        }
        if *ops >= *next {
            // Bulk-charged superinstructions (fused loops, inlined calls,
            // spans) attribute all their ops to the head pc of the next
            // dispatch — per-superinstruction attribution, same key space
            // as the interpreter's flat profile.
            if let Some(f) = m.frames.last() {
                let crossings = (*ops - *next) / interval + 1;
                env.pc_sample(u32::from(f.func.0), f.pc, crossings);
                *next += crossings * interval;
            }
        }
        let vtime = m.vtime;
        let frame = m.frames.last_mut().ok_or(VmError::Corrupt("no active frame"))?;
        let cf = &cp.funcs[frame.func.0 as usize];
        let pc = frame.pc as usize;
        // Falling off the end of a function is an implicit `return NULL`.
        if pc >= cf.singles.len() {
            m.frames.pop();
            match m.frames.last_mut() {
                None => return Ok(Yield::Terminated(Value::Null)),
                Some(caller) => {
                    caller.stack.push(Value::Null);
                    continue;
                }
            }
        }
        if fast {
            // Fused counted loops run first: whole iterations execute as
            // flat register code, bulk-charged, as long as each full
            // iteration fits in the remaining fuel. The partial last
            // iteration (and any fault) falls back to spans/singles.
            if let Some(lp) = cf.loops[pc].as_ref() {
                if *ops + u64::from(lp.per_iter) <= fuel {
                    // Summary-licensed loops try the unboxed typed
                    // register file first; anything it cannot represent
                    // falls through to the generic boxed executor.
                    let typed = if lp.typed { run_loop_typed(lp, frame, fuel, ops) } else { None };
                    match typed.or_else(|| run_loop(lp, frame, fuel, ops)) {
                        Some(LoopExit::Progress) => continue,
                        Some(LoopExit::Deopt) => {
                            fast = false;
                            continue;
                        }
                        None => {}
                    }
                }
            }
            // Summary-fused calls: a `Call` whose callee is proven
            // straight-line pure executes inline — no activation frame —
            // and bulk-charges `1 + exact_ops`. The charge trusts the
            // summary (a wrong `exact_ops` diverges the ops count and is
            // caught by the differential suite); eligibility and the
            // result value are recomputed from the real callee bytecode,
            // so a fault or unsupported op bails to the exact singles
            // path below.
            if let Some(il) = cf.inlines[pc].as_ref() {
                if *ops + 1 + u64::from(il.exact_ops) <= fuel {
                    if let Some(ret) = run_inline(il, &frame.stack) {
                        let keep = frame.stack.len() - il.arity;
                        frame.stack.truncate(keep);
                        frame.stack.push(ret);
                        *ops += 1 + u64::from(il.exact_ops);
                        frame.pc = il.next;
                        continue;
                    }
                }
            }
        }
        let step = if fast {
            match &cf.spans[pc] {
                // A span runs only when it fits in the remaining fuel;
                // near exhaustion the singles take over and hit the
                // fuel wall at the interpreter's exact op.
                Some(sp) if *ops + sp.need as u64 <= fuel => &sp.run,
                _ => &cf.singles[pc],
            }
        } else {
            &cf.singles[pc]
        };
        match step(&mut StepCtx { frame, env: &mut *env, vtime, ops })? {
            Ctrl::Next => {}
            Ctrl::Deopt => fast = false,
            Ctrl::Yield(y) => return Ok(y),
            Ctrl::Ret(v) => {
                m.frames.pop();
                match m.frames.last_mut() {
                    None => return Ok(Yield::Terminated(v)),
                    Some(caller) => caller.stack.push(v),
                }
            }
            Ctrl::Call { f, args } => {
                let new_frame = Frame::activate(program, f, &args)?;
                m.frames.push(new_frame);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Single-op closures: the direct-threaded baseline, one per pc.
// Each closure advances `frame.pc` on entry (mirroring the
// interpreter's fetch) so errors leave the same pc behind.
// ---------------------------------------------------------------------

fn bx(f: impl Fn(&mut StepCtx<'_, '_>) -> Result<Ctrl, VmError> + Send + Sync + 'static) -> StepFn {
    Box::new(f)
}

#[allow(clippy::too_many_lines)]
fn single_step(p: &Program, consts: &Arc<Vec<Value>>, op: Op, next: u32) -> StepFn {
    match op {
        Op::Const(i) => match p.consts.get(i as usize) {
            Some(v) => {
                let v = v.clone();
                bx(move |cx| {
                    *cx.ops += 1;
                    cx.frame.pc = next;
                    cx.frame.stack.push(v.clone());
                    Ok(Ctrl::Next)
                })
            }
            None => bx(move |cx| {
                *cx.ops += 1;
                cx.frame.pc = next;
                Err(VmError::Corrupt("constant index out of range"))
            }),
        },
        Op::LoadLocal(i) => {
            let i = i as usize;
            bx(move |cx| {
                *cx.ops += 1;
                cx.frame.pc = next;
                let v = cx
                    .frame
                    .locals
                    .get(i)
                    .ok_or(VmError::Corrupt("local slot out of range"))?
                    .clone();
                cx.frame.stack.push(v);
                Ok(Ctrl::Next)
            })
        }
        Op::StoreLocal(i) => {
            let i = i as usize;
            bx(move |cx| {
                *cx.ops += 1;
                cx.frame.pc = next;
                let v = binop::pop(&mut cx.frame.stack)?;
                let slot = cx
                    .frame
                    .locals
                    .get_mut(i)
                    .ok_or(VmError::Corrupt("local slot out of range"))?;
                *slot = v;
                Ok(Ctrl::Next)
            })
        }
        Op::LoadNode(i) => match name_const(consts, i) {
            NameConst::Ok(name) => bx(move |cx| {
                *cx.ops += 1;
                cx.frame.pc = next;
                let v = cx.env.node_var(&name);
                cx.frame.stack.push(v);
                Ok(Ctrl::Next)
            }),
            NameConst::Bad(f) => bx(move |cx| {
                *cx.ops += 1;
                cx.frame.pc = next;
                Err(f())
            }),
        },
        Op::StoreNode(i) => match name_const(consts, i) {
            NameConst::Ok(name) => bx(move |cx| {
                *cx.ops += 1;
                cx.frame.pc = next;
                let v = binop::pop(&mut cx.frame.stack)?;
                cx.env.set_node_var(&name, v);
                Ok(Ctrl::Next)
            }),
            NameConst::Bad(f) => bx(move |cx| {
                *cx.ops += 1;
                cx.frame.pc = next;
                binop::pop(&mut cx.frame.stack)?;
                Err(f())
            }),
        },
        Op::LoadNet(var) => bx(move |cx| {
            *cx.ops += 1;
            cx.frame.pc = next;
            let v = match var {
                crate::bytecode::NetVar::Time => Value::Float(cx.vtime.as_f64()),
                other => cx.env.net_var(other),
            };
            cx.frame.stack.push(v);
            Ok(Ctrl::Next)
        }),
        Op::Dup => bx(move |cx| {
            *cx.ops += 1;
            cx.frame.pc = next;
            let v = cx.frame.stack.last().ok_or(VmError::Corrupt("dup on empty stack"))?.clone();
            cx.frame.stack.push(v);
            Ok(Ctrl::Next)
        }),
        Op::Pop => bx(move |cx| {
            *cx.ops += 1;
            cx.frame.pc = next;
            binop::pop(&mut cx.frame.stack)?;
            Ok(Ctrl::Next)
        }),
        Op::Add | Op::Sub | Op::Mul | Op::Div | Op::Mod => bx(move |cx| {
            *cx.ops += 1;
            cx.frame.pc = next;
            let b = binop::pop(&mut cx.frame.stack)?;
            let a = binop::pop(&mut cx.frame.stack)?;
            cx.frame.stack.push(binop::arith(&op, a, b)?);
            Ok(Ctrl::Next)
        }),
        Op::Neg => bx(move |cx| {
            *cx.ops += 1;
            cx.frame.pc = next;
            let a = binop::pop(&mut cx.frame.stack)?;
            cx.frame.stack.push(binop::neg(a)?);
            Ok(Ctrl::Next)
        }),
        Op::Not => bx(move |cx| {
            *cx.ops += 1;
            cx.frame.pc = next;
            let a = binop::pop(&mut cx.frame.stack)?;
            cx.frame.stack.push(Value::Bool(!a.is_truthy()));
            Ok(Ctrl::Next)
        }),
        Op::Eq | Op::Ne => bx(move |cx| {
            *cx.ops += 1;
            cx.frame.pc = next;
            let b = binop::pop(&mut cx.frame.stack)?;
            let a = binop::pop(&mut cx.frame.stack)?;
            let eq = a.loose_eq(&b);
            cx.frame.stack.push(Value::Bool(if matches!(op, Op::Eq) { eq } else { !eq }));
            Ok(Ctrl::Next)
        }),
        Op::Lt | Op::Le | Op::Gt | Op::Ge => bx(move |cx| {
            *cx.ops += 1;
            cx.frame.pc = next;
            let b = binop::pop(&mut cx.frame.stack)?;
            let a = binop::pop(&mut cx.frame.stack)?;
            cx.frame.stack.push(binop::compare(&op, &a, &b)?);
            Ok(Ctrl::Next)
        }),
        Op::Jump(off) => {
            let target = binop::jump(next, off);
            bx(move |cx| {
                *cx.ops += 1;
                cx.frame.pc = target;
                Ok(Ctrl::Next)
            })
        }
        Op::JumpIfFalse(off) => {
            let target = binop::jump(next, off);
            bx(move |cx| {
                *cx.ops += 1;
                cx.frame.pc = next;
                let v = binop::pop(&mut cx.frame.stack)?;
                if !v.is_truthy() {
                    cx.frame.pc = target;
                }
                Ok(Ctrl::Next)
            })
        }
        Op::JumpIfTruePeek(off) => {
            let target = binop::jump(next, off);
            bx(move |cx| {
                *cx.ops += 1;
                cx.frame.pc = next;
                let v = cx.frame.stack.last().ok_or(VmError::Corrupt("peek on empty stack"))?;
                if v.is_truthy() {
                    cx.frame.pc = target;
                }
                Ok(Ctrl::Next)
            })
        }
        Op::JumpIfFalsePeek(off) => {
            let target = binop::jump(next, off);
            bx(move |cx| {
                *cx.ops += 1;
                cx.frame.pc = next;
                let v = cx.frame.stack.last().ok_or(VmError::Corrupt("peek on empty stack"))?;
                if !v.is_truthy() {
                    cx.frame.pc = target;
                }
                Ok(Ctrl::Next)
            })
        }
        Op::Call { f, argc } => {
            let in_range = (f as usize) < p.funcs.len();
            bx(move |cx| {
                *cx.ops += 1;
                cx.frame.pc = next;
                let at = cx
                    .frame
                    .stack
                    .len()
                    .checked_sub(argc as usize)
                    .ok_or(VmError::Corrupt("call args underflow"))?;
                let args: Vec<Value> = cx.frame.stack.split_off(at);
                if !in_range {
                    return Err(VmError::Corrupt("call target out of range"));
                }
                Ok(Ctrl::Call { f: FuncId(f), args })
            })
        }
        Op::CallNative { name, argc } => {
            let name = name_const(consts, name);
            bx(move |cx| {
                *cx.ops += 1;
                cx.frame.pc = next;
                let at = cx
                    .frame
                    .stack
                    .len()
                    .checked_sub(argc as usize)
                    .ok_or(VmError::Corrupt("native args underflow"))?;
                let args: Vec<Value> = cx.frame.stack.split_off(at);
                let name = match &name {
                    NameConst::Ok(n) => n,
                    NameConst::Bad(f) => return Err(f()),
                };
                let v = cx.env.call_native(name, &args)?;
                cx.frame.stack.push(v);
                Ok(Ctrl::Next)
            })
        }
        Op::Ret => bx(move |cx| {
            *cx.ops += 1;
            cx.frame.pc = next;
            let v = binop::pop(&mut cx.frame.stack)?;
            Ok(Ctrl::Ret(v))
        }),
        Op::Hop(i) | Op::Delete(i) => {
            let spec = p.hop_specs.get(i as usize).copied();
            let delete = matches!(op, Op::Delete(_));
            bx(move |cx| {
                *cx.ops += 1;
                cx.frame.pc = next;
                let spec = spec.ok_or(VmError::Corrupt("hop spec out of range"))?;
                // Operands were pushed ln-then-ll; pop in reverse.
                let ll = match spec.ll {
                    LinkPat::Wild => EvalLink::Wild,
                    LinkPat::Unnamed => EvalLink::Unnamed,
                    LinkPat::Virtual => EvalLink::Virtual,
                    LinkPat::Expr => eval_link(binop::pop(&mut cx.frame.stack)?),
                };
                let ln = match spec.ln {
                    NodePat::Wild => None,
                    NodePat::Expr => Some(binop::pop(&mut cx.frame.stack)?),
                };
                let eh = EvalHop { ln, ll, ldir: spec.ldir };
                Ok(Ctrl::Yield(if delete { Yield::Delete(eh) } else { Yield::Hop(eh) }))
            })
        }
        Op::Create(i) => {
            let spec = p.create_specs.get(i as usize).cloned();
            bx(move |cx| {
                *cx.ops += 1;
                cx.frame.pc = next;
                let spec = spec.clone().ok_or(VmError::Corrupt("create spec out of range"))?;
                // Operands pushed per item in order (ln, ll, dn, dl);
                // pop everything in reverse.
                let mut items: Vec<EvalCreateItem> = Vec::with_capacity(spec.items.len());
                for it in spec.items.iter().rev() {
                    let dl = match it.dl {
                        LinkPat::Wild => EvalLink::Wild,
                        LinkPat::Unnamed => EvalLink::Unnamed,
                        LinkPat::Virtual => EvalLink::Virtual,
                        LinkPat::Expr => eval_link(binop::pop(&mut cx.frame.stack)?),
                    };
                    let dn = match it.dn {
                        NodePat::Wild => None,
                        NodePat::Expr => Some(binop::pop(&mut cx.frame.stack)?),
                    };
                    let ll = match it.ll {
                        crate::bytecode::NamePat::Unnamed => None,
                        crate::bytecode::NamePat::Expr => Some(binop::pop(&mut cx.frame.stack)?),
                    };
                    let ln = match it.ln {
                        crate::bytecode::NamePat::Unnamed => None,
                        crate::bytecode::NamePat::Expr => Some(binop::pop(&mut cx.frame.stack)?),
                    };
                    items.push(EvalCreateItem { ln, ll, ldir: it.ldir, dn, dl, ddir: it.ddir });
                }
                items.reverse();
                Ok(Ctrl::Yield(Yield::Create(crate::interp::EvalCreate { items, all: spec.all })))
            })
        }
        Op::SchedAbs => bx(move |cx| {
            *cx.ops += 1;
            cx.frame.pc = next;
            let t = binop::pop(&mut cx.frame.stack)?.as_float()?;
            if t.is_nan() {
                return Err(VmError::Corrupt("NaN virtual time"));
            }
            Ok(Ctrl::Yield(Yield::SchedAbs(Vt::new(t))))
        }),
        Op::SchedDlt => bx(move |cx| {
            *cx.ops += 1;
            cx.frame.pc = next;
            let dt = binop::pop(&mut cx.frame.stack)?.as_float()?;
            if dt.is_nan() {
                return Err(VmError::Corrupt("NaN virtual time"));
            }
            Ok(Ctrl::Yield(Yield::SchedDlt(dt)))
        }),
        Op::Halt => bx(move |cx| {
            *cx.ops += 1;
            cx.frame.pc = next;
            Ok(Ctrl::Yield(Yield::Terminated(Value::Null)))
        }),
        Op::MakeArr => bx(move |cx| {
            *cx.ops += 1;
            cx.frame.pc = next;
            let default = binop::pop(&mut cx.frame.stack)?;
            let n = binop::pop(&mut cx.frame.stack)?.as_int()?;
            if !(0..=(1 << 24)).contains(&n) {
                return Err(VmError::Native(format!("bad array size {n}")));
            }
            cx.frame.stack.push(Value::Arr(Arc::new(vec![default; n as usize])));
            Ok(Ctrl::Next)
        }),
        Op::IndexGet => bx(move |cx| {
            *cx.ops += 1;
            cx.frame.pc = next;
            let idx = binop::pop(&mut cx.frame.stack)?.as_int()?;
            let arr = binop::pop(&mut cx.frame.stack)?;
            let v = index_get(&arr, idx)?;
            cx.frame.stack.push(v);
            Ok(Ctrl::Next)
        }),
        Op::IndexSet => bx(move |cx| {
            *cx.ops += 1;
            cx.frame.pc = next;
            let value = binop::pop(&mut cx.frame.stack)?;
            let idx = binop::pop(&mut cx.frame.stack)?.as_int()?;
            let arr = binop::pop(&mut cx.frame.stack)?;
            cx.frame.stack.push(index_set(arr, idx, value)?);
            Ok(Ctrl::Next)
        }),
    }
}

/// A name constant (`LoadNode`/`StoreNode`/`CallNative`) resolved at
/// compile time; `Bad` reproduces the interpreter's lazy failure.
enum NameConst {
    Ok(String),
    Bad(Box<dyn Fn() -> VmError + Send + Sync>),
}

fn name_const(consts: &Arc<Vec<Value>>, i: u16) -> NameConst {
    match consts.get(i as usize) {
        Some(v) => match v.as_str() {
            Ok(s) => NameConst::Ok(s.to_string()),
            Err(_) => {
                let v = v.clone();
                NameConst::Bad(Box::new(move || v.as_str().unwrap_err()))
            }
        },
        None => {
            // The interpreter indexes the constant pool directly here and
            // panics; reproduce that exact behavior lazily.
            let consts = consts.clone();
            let i = i as usize;
            NameConst::Bad(Box::new(move || {
                let _ = &consts[i];
                unreachable!("index above is out of range")
            }))
        }
    }
}

fn eval_link(v: Value) -> EvalLink {
    match v {
        Value::Link(inst) => EvalLink::Instance(inst),
        Value::Null => EvalLink::Unnamed,
        v => EvalLink::Named(v),
    }
}

fn index_get(arr: &Value, idx: i64) -> Result<Value, VmError> {
    let arr = arr.as_array()?;
    arr.get(
        usize::try_from(idx)
            .map_err(|_| VmError::Native(format!("array index {idx} out of bounds")))?,
    )
    .ok_or_else(|| VmError::Native(format!("array index {idx} out of bounds (len {})", arr.len())))
    .cloned()
}

fn index_set(arr: Value, idx: i64, value: Value) -> Result<Value, VmError> {
    let mut arr = match arr {
        Value::Arr(a) => a,
        other => return Err(VmError::type_error("array", &other)),
    };
    let len = arr.len();
    let slot = Arc::make_mut(&mut arr)
        .get_mut(usize::try_from(idx).unwrap_or(usize::MAX))
        .ok_or_else(|| VmError::Native(format!("array index {idx} out of bounds (len {len})")))?;
    *slot = value;
    Ok(Value::Arr(arr))
}

// ---------------------------------------------------------------------
// Superinstruction spans: symbolic execution of straight-line pure
// stack code into expression trees, lowered to closure trees.
// ---------------------------------------------------------------------

/// A pure sub-expression discovered by symbolic execution.
enum VNode {
    Const(Value),
    Local(usize),
    /// Forwarded value of an earlier in-span store (index into the
    /// span's store-value array) — keeps `x = ...; y = x + 1` fused
    /// without re-evaluating `x`'s tree.
    Stored(usize),
    Bin(Op, Box<VNode>, Box<VNode>),
    Cmp(Op, Box<VNode>, Box<VNode>),
    Eq {
        ne: bool,
        a: Box<VNode>,
        b: Box<VNode>,
    },
    Neg(Box<VNode>),
    Not(Box<VNode>),
    MakeArr {
        n: Box<VNode>,
        default: Box<VNode>,
    },
    IndexGet {
        arr: Box<VNode>,
        idx: Box<VNode>,
    },
    IndexSet {
        arr: Box<VNode>,
        idx: Box<VNode>,
        val: Box<VNode>,
    },
}

/// How a span hands control back.
enum EndPlan {
    /// Next op is not fusable; fall through to it.
    Fall { next: u32 },
    /// Trailing unconditional `Jump`.
    Jump { target: u32 },
    /// Trailing conditional jump (compare-and-branch).
    Branch { cond: ExprFn, jump_if_true: bool, keep: bool, target: u32, next: u32 },
    /// Trailing `hop`/`delete` (load/hop).
    Hop { delete: bool, ldir: Dir, ln: Option<ExprFn>, ll: LinkPlan, next: u32 },
}

enum LinkPlan {
    Wild,
    Unnamed,
    Virtual,
    Expr(ExprFn),
}

const MAX_STORES: usize = 8;
const MAX_LEFTOVER: usize = 16;
const MAX_DISCARDS: usize = 8;
const MAX_SPAN_OPS: u32 = 96;
const MAX_NODES: usize = 192;

struct SpanBuilder {
    vstack: Vec<VNode>,
    stores: Vec<(usize, VNode)>,
    discards: Vec<VNode>,
    nodes: usize,
    len: u32,
}

impl SpanBuilder {
    fn full(&self) -> bool {
        self.len >= MAX_SPAN_OPS || self.nodes >= MAX_NODES
    }
}

/// Symbolically execute a straight-line run starting at `head`,
/// producing a fused span if it covers at least two ops.
#[allow(clippy::too_many_lines)]
fn build_span(
    p: &Program,
    code: &[Op],
    n_slots: usize,
    head: u32,
    mutate: bool,
) -> Option<SpanStep> {
    let mut b = SpanBuilder {
        vstack: Vec::new(),
        stores: Vec::new(),
        discards: Vec::new(),
        nodes: 0,
        len: 0,
    };
    // Last store index per slot, for store-to-load forwarding.
    let mut binding: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    let mut j = head as usize;
    let end: EndPlan = loop {
        if j >= code.len() || b.full() {
            break EndPlan::Fall { next: j as u32 };
        }
        let next = j as u32 + 1;
        match code[j] {
            Op::Const(i) if b.vstack.len() < MAX_LEFTOVER => match p.consts.get(i as usize) {
                Some(v) => b.vstack.push(VNode::Const(v.clone())),
                None => break EndPlan::Fall { next: j as u32 },
            },
            Op::LoadLocal(i) if (i as usize) < n_slots && b.vstack.len() < MAX_LEFTOVER => {
                let slot = i as usize;
                b.vstack.push(match binding.get(&slot) {
                    Some(&k) => VNode::Stored(k),
                    None => VNode::Local(slot),
                });
            }
            Op::StoreLocal(i)
                if (i as usize) < n_slots
                    && !b.vstack.is_empty()
                    && b.stores.len() < MAX_STORES =>
            {
                let n = b.vstack.pop().expect("non-empty");
                binding.insert(i as usize, b.stores.len());
                b.stores.push((i as usize, n));
            }
            Op::Add | Op::Sub | Op::Mul | Op::Div | Op::Mod if b.vstack.len() >= 2 => {
                let rhs = Box::new(b.vstack.pop().expect("len>=2"));
                let lhs = Box::new(b.vstack.pop().expect("len>=2"));
                b.vstack.push(VNode::Bin(code[j], lhs, rhs));
                b.nodes += 1;
            }
            Op::Lt | Op::Le | Op::Gt | Op::Ge if b.vstack.len() >= 2 => {
                let rhs = Box::new(b.vstack.pop().expect("len>=2"));
                let lhs = Box::new(b.vstack.pop().expect("len>=2"));
                b.vstack.push(VNode::Cmp(code[j], lhs, rhs));
                b.nodes += 1;
            }
            Op::Eq | Op::Ne if b.vstack.len() >= 2 => {
                let rhs = Box::new(b.vstack.pop().expect("len>=2"));
                let lhs = Box::new(b.vstack.pop().expect("len>=2"));
                b.vstack.push(VNode::Eq { ne: matches!(code[j], Op::Ne), a: lhs, b: rhs });
                b.nodes += 1;
            }
            Op::Neg if !b.vstack.is_empty() => {
                let a = Box::new(b.vstack.pop().expect("non-empty"));
                b.vstack.push(VNode::Neg(a));
                b.nodes += 1;
            }
            Op::Not if !b.vstack.is_empty() => {
                let a = Box::new(b.vstack.pop().expect("non-empty"));
                b.vstack.push(VNode::Not(a));
                b.nodes += 1;
            }
            Op::MakeArr if b.vstack.len() >= 2 => {
                let default = Box::new(b.vstack.pop().expect("len>=2"));
                let n = Box::new(b.vstack.pop().expect("len>=2"));
                b.vstack.push(VNode::MakeArr { n, default });
                b.nodes += 1;
            }
            Op::IndexGet if b.vstack.len() >= 2 => {
                let idx = Box::new(b.vstack.pop().expect("len>=2"));
                let arr = Box::new(b.vstack.pop().expect("len>=2"));
                b.vstack.push(VNode::IndexGet { arr, idx });
                b.nodes += 1;
            }
            Op::IndexSet if b.vstack.len() >= 3 => {
                let val = Box::new(b.vstack.pop().expect("len>=3"));
                let idx = Box::new(b.vstack.pop().expect("len>=3"));
                let arr = Box::new(b.vstack.pop().expect("len>=3"));
                b.vstack.push(VNode::IndexSet { arr, idx, val });
                b.nodes += 1;
            }
            Op::Pop if !b.vstack.is_empty() && b.discards.len() < MAX_DISCARDS => {
                // The popped expression still has to evaluate: the
                // interpreter would have run (and possibly faulted on)
                // the ops that built it.
                let n = b.vstack.pop().expect("non-empty");
                b.discards.push(n);
            }
            Op::Jump(off) => {
                b.len += 1;
                break EndPlan::Jump { target: binop::jump(next, off) };
            }
            Op::JumpIfFalse(off) if !b.vstack.is_empty() => {
                let cond = lower(b.vstack.pop().expect("non-empty"), mutate);
                b.len += 1;
                break EndPlan::Branch {
                    cond,
                    jump_if_true: false,
                    keep: false,
                    target: binop::jump(next, off),
                    next,
                };
            }
            Op::JumpIfTruePeek(off) if !b.vstack.is_empty() => {
                let cond = lower(b.vstack.pop().expect("non-empty"), mutate);
                b.len += 1;
                break EndPlan::Branch {
                    cond,
                    jump_if_true: true,
                    keep: true,
                    target: binop::jump(next, off),
                    next,
                };
            }
            Op::JumpIfFalsePeek(off) if !b.vstack.is_empty() => {
                let cond = lower(b.vstack.pop().expect("non-empty"), mutate);
                b.len += 1;
                break EndPlan::Branch {
                    cond,
                    jump_if_true: false,
                    keep: true,
                    target: binop::jump(next, off),
                    next,
                };
            }
            Op::Hop(i) | Op::Delete(i) => {
                let Some(spec) = p.hop_specs.get(i as usize).copied() else {
                    break EndPlan::Fall { next: j as u32 };
                };
                if spec.operand_count() > b.vstack.len() {
                    break EndPlan::Fall { next: j as u32 };
                }
                // Operands were pushed ln-then-ll: ll is on top.
                let ll = match spec.ll {
                    LinkPat::Wild => LinkPlan::Wild,
                    LinkPat::Unnamed => LinkPlan::Unnamed,
                    LinkPat::Virtual => LinkPlan::Virtual,
                    LinkPat::Expr => {
                        LinkPlan::Expr(lower(b.vstack.pop().expect("checked above"), mutate))
                    }
                };
                let ln = match spec.ln {
                    NodePat::Wild => None,
                    NodePat::Expr => Some(lower(b.vstack.pop().expect("checked above"), mutate)),
                };
                b.len += 1;
                break EndPlan::Hop {
                    delete: matches!(code[j], Op::Delete(_)),
                    ldir: spec.ldir,
                    ln,
                    ll,
                    next,
                };
            }
            _ => break EndPlan::Fall { next: j as u32 },
        }
        b.len += 1;
        j += 1;
    };
    if b.len < 2 {
        return None;
    }
    // Only the final store to a slot is published; earlier ones still
    // evaluate (for fault equivalence) but their values are dropped.
    let mut last_for_slot: std::collections::HashMap<usize, usize> =
        std::collections::HashMap::new();
    for (k, (slot, _)) in b.stores.iter().enumerate() {
        last_for_slot.insert(*slot, k);
    }
    let stores: Vec<(usize, bool, ExprFn)> = b
        .stores
        .into_iter()
        .enumerate()
        .map(|(k, (slot, n))| (slot, last_for_slot[&slot] == k, lower(n, mutate)))
        .collect();
    let discards: Vec<ExprFn> = b.discards.into_iter().map(|n| lower(n, mutate)).collect();
    let leftovers: Vec<ExprFn> = b.vstack.into_iter().map(|n| lower(n, mutate)).collect();
    let need = b.len;
    let run = bx(move |cx| {
        // Evaluate everything before touching any observable state; on
        // any fault, deopt and let the singles replay from `head` with
        // the interpreter's exact semantics.
        let fr: &mut Frame = cx.frame;
        let mut sv: [Option<Value>; MAX_STORES] = Default::default();
        for (k, (_, _, e)) in stores.iter().enumerate() {
            match e(fr, &sv) {
                Ok(v) => sv[k] = Some(v),
                Err(_) => return Ok(Ctrl::Deopt),
            }
        }
        for e in &discards {
            if e(fr, &sv).is_err() {
                return Ok(Ctrl::Deopt);
            }
        }
        let mut lv: [Option<Value>; MAX_LEFTOVER] = Default::default();
        for (k, e) in leftovers.iter().enumerate() {
            match e(fr, &sv) {
                Ok(v) => lv[k] = Some(v),
                Err(_) => return Ok(Ctrl::Deopt),
            }
        }
        let ctrl = match &end {
            EndPlan::Fall { next } => {
                fr.pc = *next;
                Ctrl::Next
            }
            EndPlan::Jump { target } => {
                fr.pc = *target;
                Ctrl::Next
            }
            EndPlan::Branch { cond, jump_if_true, keep, target, next } => {
                let v = match cond(fr, &sv) {
                    Ok(v) => v,
                    Err(_) => return Ok(Ctrl::Deopt),
                };
                fr.pc = if v.is_truthy() == *jump_if_true { *target } else { *next };
                if *keep {
                    // Peek branches leave the condition on the stack.
                    commit(fr, &stores, &mut sv, &mut lv, leftovers.len());
                    fr.stack.push(v);
                    *cx.ops += need as u64;
                    return Ok(Ctrl::Next);
                }
                Ctrl::Next
            }
            EndPlan::Hop { delete, ldir, ln, ll, next } => {
                let ll = match ll {
                    LinkPlan::Wild => EvalLink::Wild,
                    LinkPlan::Unnamed => EvalLink::Unnamed,
                    LinkPlan::Virtual => EvalLink::Virtual,
                    LinkPlan::Expr(e) => match e(fr, &sv) {
                        Ok(v) => eval_link(v),
                        Err(_) => return Ok(Ctrl::Deopt),
                    },
                };
                let ln = match ln {
                    None => None,
                    Some(e) => match e(fr, &sv) {
                        Ok(v) => Some(v),
                        Err(_) => return Ok(Ctrl::Deopt),
                    },
                };
                fr.pc = *next;
                let eh = EvalHop { ln, ll, ldir: *ldir };
                Ctrl::Yield(if *delete { Yield::Delete(eh) } else { Yield::Hop(eh) })
            }
        };
        commit(fr, &stores, &mut sv, &mut lv, leftovers.len());
        *cx.ops += need as u64;
        Ok(ctrl)
    });
    Some(SpanStep { need, run })
}

/// Publish a successful span: final store per slot, then leftovers in
/// stack order. Only runs after every sub-expression evaluated cleanly.
fn commit(
    fr: &mut Frame,
    stores: &[(usize, bool, ExprFn)],
    sv: &mut [Option<Value>; MAX_STORES],
    lv: &mut [Option<Value>; MAX_LEFTOVER],
    n_left: usize,
) {
    for (k, (slot, publish, _)) in stores.iter().enumerate() {
        if *publish {
            fr.locals[*slot] = sv[k].take().expect("span store evaluated");
        }
    }
    for v in lv.iter_mut().take(n_left) {
        fr.stack.push(v.take().expect("span leftover evaluated"));
    }
}

// ---------------------------------------------------------------------
// Fused counted loops: whole `while` loops lowered to flat register
// code. The strongest superinstruction — the mandel/matmul inner loops
// run here, with locals promoted to a register file for the loop's
// entire residence and fuel charged per completed iteration.
// ---------------------------------------------------------------------

/// Flat three-address code over the loop's register file.
enum RegOp {
    Bin { op: Op, dst: usize, a: usize, b: usize },
    Cmp { op: Op, dst: usize, a: usize, b: usize },
    Eq { ne: bool, dst: usize, a: usize, b: usize },
    Neg { dst: usize, a: usize },
    Not { dst: usize, a: usize },
    Mov { dst: usize, src: usize },
}

/// A fused `while` loop:
///
/// ```text
/// head: <pure cond ops> JumpIfFalse(exit)
///       <pure local body ops> Jump(head)
/// exit:
/// ```
///
/// Registers `0..n_slots` mirror the frame's locals (loaded once at
/// entry, written back once at exit/fault), then come preloaded
/// constants, then SSA temporaries. Each completed iteration charges
/// `per_iter` ops; the final false condition charges `cond_need`.
/// Faults restore the current iteration's stores from a snapshot and
/// deopt with the state exactly at the loop head, so the singles replay
/// reproduces the interpreter's fault position bit for bit.
struct LoopStep {
    /// Ops for one full iteration (cond + branch + body + backedge).
    per_iter: u32,
    /// Ops for the exiting (false) condition evaluation.
    cond_need: u32,
    /// pc after the loop (`JumpIfFalse` target).
    exit: u32,
    n_slots: usize,
    n_regs: usize,
    /// Constant registers, materialized once at loop entry.
    consts: Vec<(usize, Value)>,
    cond_ops: Vec<RegOp>,
    /// Register holding the condition after `cond_ops`.
    cond_reg: usize,
    body_ops: Vec<RegOp>,
    /// Local slots the body stores to (write-back + fault snapshot set).
    writeback: Vec<usize>,
    /// Summary license: the analyzer proved this loop head is a counted
    /// call-free `while` whose ops are total over `{int, float, bool}`,
    /// so iterations may run on the unboxed [`TV`] register file with no
    /// per-iteration deopt checks. Set only by `compile_with_summaries`.
    typed: bool,
    /// Which local slots the loop actually reads or writes back — the
    /// typed executor only needs *these* to be representable; dead slots
    /// holding strings/arrays don't block the fast path.
    used_slots: Vec<bool>,
}

const MAX_LOOP_SLOTS: usize = 32;
const MAX_LOOP_REGS: usize = 160;
const MAX_LOOP_STORES: usize = 16;

/// Symbolic executor lowering a straight-line section to [`RegOp`]s.
struct RegBuilder {
    n_slots: usize,
    next_reg: usize,
    consts: Vec<(usize, Value)>,
    vstack: Vec<usize>,
    len: u32,
}

impl RegBuilder {
    fn alloc(&mut self) -> Option<usize> {
        if self.next_reg >= MAX_LOOP_REGS {
            return None;
        }
        self.next_reg += 1;
        Some(self.next_reg - 1)
    }

    /// Lower ops from `at` until a non-fusable op; returns the pc of
    /// that op. `stores` is `None` for the condition section (where
    /// stores end the section) and collects stored slots for the body.
    fn section(
        &mut self,
        p: &Program,
        code: &[Op],
        at: usize,
        mutate: bool,
        out: &mut Vec<RegOp>,
        mut stores: Option<&mut Vec<usize>>,
    ) -> Option<usize> {
        let mut j = at;
        while j < code.len() {
            match code[j] {
                Op::Const(i) => {
                    let v = p.consts.get(i as usize)?.clone();
                    let r = self.alloc()?;
                    self.consts.push((r, v));
                    self.vstack.push(r);
                }
                Op::LoadLocal(i) if (i as usize) < self.n_slots => {
                    self.vstack.push(i as usize);
                }
                Op::Dup => {
                    let &top = self.vstack.last()?;
                    self.vstack.push(top);
                }
                Op::StoreLocal(i) if (i as usize) < self.n_slots => {
                    let slots = stores.as_deref_mut()?;
                    if slots.len() >= MAX_LOOP_STORES {
                        return Some(j);
                    }
                    let src = self.vstack.pop()?;
                    let slot = i as usize;
                    // Pending stack values that alias this slot's
                    // register still mean the *old* value; preserve it
                    // in a temp before overwriting.
                    if self.vstack.contains(&slot) {
                        let save = self.alloc()?;
                        out.push(RegOp::Mov { dst: save, src: slot });
                        for v in &mut self.vstack {
                            if *v == slot {
                                *v = save;
                            }
                        }
                    }
                    out.push(RegOp::Mov { dst: slot, src });
                    slots.push(slot);
                }
                Op::Add | Op::Sub | Op::Mul | Op::Div | Op::Mod => {
                    let b = self.vstack.pop()?;
                    let a = self.vstack.pop()?;
                    let dst = self.alloc()?;
                    let (a, b) = if mutate { (b, a) } else { (a, b) };
                    out.push(RegOp::Bin { op: code[j], dst, a, b });
                    self.vstack.push(dst);
                }
                Op::Lt | Op::Le | Op::Gt | Op::Ge => {
                    let b = self.vstack.pop()?;
                    let a = self.vstack.pop()?;
                    let dst = self.alloc()?;
                    out.push(RegOp::Cmp { op: code[j], dst, a, b });
                    self.vstack.push(dst);
                }
                Op::Eq | Op::Ne => {
                    let b = self.vstack.pop()?;
                    let a = self.vstack.pop()?;
                    let dst = self.alloc()?;
                    out.push(RegOp::Eq { ne: matches!(code[j], Op::Ne), dst, a, b });
                    self.vstack.push(dst);
                }
                Op::Neg => {
                    let a = self.vstack.pop()?;
                    let dst = self.alloc()?;
                    out.push(RegOp::Neg { dst, a });
                    self.vstack.push(dst);
                }
                Op::Not => {
                    let a = self.vstack.pop()?;
                    let dst = self.alloc()?;
                    out.push(RegOp::Not { dst, a });
                    self.vstack.push(dst);
                }
                Op::Pop => {
                    // The value was already computed eagerly by earlier
                    // RegOps (and any fault already surfaced), so the
                    // discard itself is free.
                    self.vstack.pop()?;
                }
                _ => return Some(j),
            }
            self.len += 1;
            j += 1;
        }
        Some(j)
    }
}

/// Recognize and lower a fused `while` loop headed at `head`.
fn build_loop(
    p: &Program,
    code: &[Op],
    n_slots: usize,
    head: u32,
    mutate: bool,
) -> Option<LoopStep> {
    if n_slots > MAX_LOOP_SLOTS {
        return None;
    }
    let mut b =
        RegBuilder { n_slots, next_reg: n_slots, consts: Vec::new(), vstack: Vec::new(), len: 0 };
    // Condition: pure, store-free, ending at JumpIfFalse with exactly
    // the condition value produced.
    let mut cond_ops = Vec::new();
    let stop = b.section(p, code, head as usize, mutate, &mut cond_ops, None)?;
    let Some(Op::JumpIfFalse(off)) = code.get(stop) else {
        return None;
    };
    let cond_reg = b.vstack.pop()?;
    if !b.vstack.is_empty() || b.len == 0 {
        return None;
    }
    b.len += 1;
    let cond_need = b.len;
    let exit = binop::jump(stop as u32 + 1, *off);
    // Body: pure local code ending with the backedge to `head`, with
    // nothing left on the (virtual) operand stack.
    let mut body_ops = Vec::new();
    let mut stored = Vec::new();
    let stop2 = b.section(p, code, stop + 1, mutate, &mut body_ops, Some(&mut stored))?;
    let Some(Op::Jump(back)) = code.get(stop2) else {
        return None;
    };
    if binop::jump(stop2 as u32 + 1, *back) != head || !b.vstack.is_empty() {
        return None;
    }
    b.len += 1;
    let mut writeback = stored;
    writeback.sort_unstable();
    writeback.dedup();
    let mut used_slots = vec![false; n_slots];
    let mark = |used: &mut [bool], r: usize| {
        if r < used.len() {
            used[r] = true;
        }
    };
    for r in cond_ops.iter().chain(body_ops.iter()) {
        match *r {
            RegOp::Bin { dst, a, b, .. }
            | RegOp::Cmp { dst, a, b, .. }
            | RegOp::Eq { dst, a, b, .. } => {
                mark(&mut used_slots, dst);
                mark(&mut used_slots, a);
                mark(&mut used_slots, b);
            }
            RegOp::Neg { dst, a } | RegOp::Not { dst, a } => {
                mark(&mut used_slots, dst);
                mark(&mut used_slots, a);
            }
            RegOp::Mov { dst, src } => {
                mark(&mut used_slots, dst);
                mark(&mut used_slots, src);
            }
        }
    }
    mark(&mut used_slots, cond_reg);
    for &s in &writeback {
        mark(&mut used_slots, s);
    }
    Some(LoopStep {
        per_iter: b.len,
        cond_need,
        exit,
        n_slots,
        n_regs: b.next_reg,
        consts: b.consts,
        cond_ops,
        cond_reg,
        body_ops,
        writeback,
        typed: false,
        used_slots,
    })
}

/// Execute one flat-code section over the register file. Arithmetic and
/// comparison inline the hot `Int`/`Float` cases with semantics
/// identical to [`binop::arith`] / [`binop::compare`] (ints wrap,
/// comparison widens ints to `f64` and uses `total_cmp`), falling back
/// to the shared helpers everywhere else.
fn exec_regops(ops: &[RegOp], regs: &mut [Value]) -> Result<(), VmError> {
    use std::cmp::Ordering;
    let cmp_ord = |op: &Op, ord: Ordering| {
        Value::Bool(match op {
            Op::Lt => ord == Ordering::Less,
            Op::Le => ord != Ordering::Greater,
            Op::Gt => ord == Ordering::Greater,
            _ => ord != Ordering::Less,
        })
    };
    for r in ops {
        match *r {
            RegOp::Mov { dst, src } => regs[dst] = regs[src].clone(),
            RegOp::Bin { ref op, dst, a, b } => {
                let v = match (&regs[a], &regs[b]) {
                    (Value::Int(x), Value::Int(y)) => match op {
                        Op::Add => Value::Int(x.wrapping_add(*y)),
                        Op::Sub => Value::Int(x.wrapping_sub(*y)),
                        Op::Mul => Value::Int(x.wrapping_mul(*y)),
                        _ => binop::arith(op, regs[a].clone(), regs[b].clone())?,
                    },
                    (Value::Float(x), Value::Float(y)) => match op {
                        Op::Add => Value::Float(x + y),
                        Op::Sub => Value::Float(x - y),
                        Op::Mul => Value::Float(x * y),
                        Op::Div => Value::Float(x / y),
                        Op::Mod => Value::Float(x % y),
                        _ => binop::arith(op, regs[a].clone(), regs[b].clone())?,
                    },
                    _ => binop::arith(op, regs[a].clone(), regs[b].clone())?,
                };
                regs[dst] = v;
            }
            RegOp::Cmp { ref op, dst, a, b } => {
                let v = match (&regs[a], &regs[b]) {
                    (Value::Float(x), Value::Float(y)) => cmp_ord(op, x.total_cmp(y)),
                    (Value::Int(x), Value::Int(y)) => {
                        cmp_ord(op, (*x as f64).total_cmp(&(*y as f64)))
                    }
                    _ => binop::compare(op, &regs[a], &regs[b])?,
                };
                regs[dst] = v;
            }
            RegOp::Eq { ne, dst, a, b } => {
                let eq = regs[a].loose_eq(&regs[b]);
                regs[dst] = Value::Bool(if ne { !eq } else { eq });
            }
            RegOp::Neg { dst, a } => regs[dst] = binop::neg(regs[a].clone())?,
            RegOp::Not { dst, a } => regs[dst] = Value::Bool(!regs[a].is_truthy()),
        }
    }
    Ok(())
}

enum LoopExit {
    /// Committed work (iterations and/or the exit branch); continue
    /// dispatching at the pc the loop set.
    Progress,
    /// A fault is pending at the loop head: replay on singles.
    Deopt,
}

/// Run fused iterations until the condition goes false, the fuel budget
/// allows no further full iteration, or a fault deopts. The caller
/// guarantees at least one full iteration fits in the remaining fuel.
fn run_loop(lp: &LoopStep, fr: &mut Frame, fuel: u64, ops: &mut u64) -> Option<LoopExit> {
    if fr.locals.len() != lp.n_slots {
        return None; // corrupt frame: let the singles raise the error
    }
    let per = u64::from(lp.per_iter);
    let budget = (fuel - *ops) / per;
    let mut regs: Vec<Value> = Vec::with_capacity(lp.n_regs);
    regs.extend(fr.locals.iter().cloned());
    regs.resize(lp.n_regs, Value::Null);
    for (r, v) in &lp.consts {
        regs[*r] = v.clone();
    }
    // Fault recovery is replay-based: faults are rare (they deopt
    // permanently), so instead of snapshotting stores every iteration
    // we keep the entry registers and, on a fault at iteration `done`,
    // deterministically re-execute the `done` completed iterations —
    // they are pure register code and already succeeded once.
    let entry = regs.clone();
    let mut done: u64 = 0;
    let write_back = |fr: &mut Frame, regs: &mut [Value]| {
        for &s in &lp.writeback {
            fr.locals[s] = std::mem::replace(&mut regs[s], Value::Null);
        }
    };
    let deopt = |fr: &mut Frame, ops: &mut u64, done: u64| {
        let mut regs = entry.clone();
        for _ in 0..done {
            let _ = exec_regops(&lp.cond_ops, &mut regs);
            let _ = exec_regops(&lp.body_ops, &mut regs);
        }
        write_back(fr, &mut regs);
        *ops += done * per;
        Some(LoopExit::Deopt)
    };
    while done < budget {
        if exec_regops(&lp.cond_ops, &mut regs).is_err() {
            return deopt(fr, ops, done);
        }
        if !regs[lp.cond_reg].is_truthy() {
            write_back(fr, &mut regs);
            *ops += done * per + u64::from(lp.cond_need);
            fr.pc = lp.exit;
            return Some(LoopExit::Progress);
        }
        if exec_regops(&lp.body_ops, &mut regs).is_err() {
            return deopt(fr, ops, done);
        }
        done += 1;
    }
    // Fuel bound: the next full iteration no longer fits. Publish and
    // let spans/singles walk into the fuel wall at the exact op.
    write_back(fr, &mut regs);
    *ops += done * per;
    Some(LoopExit::Progress)
}

// ---------------------------------------------------------------------
// Summary-guided fusions: what an interprocedural effect summary
// licenses beyond what local compilation can prove.
//
// Trust discipline: *eligibility* facts are always re-derived from the
// real bytecode (a corrupt license at worst bails to the exact generic
// path), while the one *quantitative* fact — `exact_ops` — is charged
// as a trusted constant, so corrupting it is an observable miscompile
// the differential suite catches.
// ---------------------------------------------------------------------

/// Whether a fused loop's register code stays inside the op set the
/// typed executor implements totally: Div/Mod can fault (and produce
/// `Float` from `Int/Int` only sometimes), so they stay generic.
fn loop_regops_typed(lp: &LoopStep) -> bool {
    let ok = |ops: &[RegOp]| {
        ops.iter().all(|r| match r {
            RegOp::Bin { op, .. } => matches!(op, Op::Add | Op::Sub | Op::Mul),
            _ => true,
        })
    };
    ok(&lp.cond_ops)
        && ok(&lp.body_ops)
        && lp
            .consts
            .iter()
            .all(|(_, v)| matches!(v, Value::Int(_) | Value::Float(_) | Value::Bool(_)))
}

/// Unboxed typed value for the summary-licensed loop fast path. Closed
/// and total under `{Add, Sub, Mul, Lt..Ge, Eq/Ne, Neg, Not, Mov}` with
/// semantics identical to [`binop`] on `Int`/`Float`/`Bool` inputs — no
/// faults, hence no deopt machinery.
#[derive(Copy, Clone)]
enum TV {
    I(i64),
    F(f64),
    B(bool),
}

fn tv_of(v: &Value) -> Option<TV> {
    match v {
        Value::Int(x) => Some(TV::I(*x)),
        Value::Float(x) => Some(TV::F(*x)),
        Value::Bool(b) => Some(TV::B(*b)),
        _ => None,
    }
}

fn tv_value(t: TV) -> Value {
    match t {
        TV::I(x) => Value::Int(x),
        TV::F(x) => Value::Float(x),
        TV::B(b) => Value::Bool(b),
    }
}

/// Numeric widening, mirroring `Value::as_float` for `Int`/`Float`/`Bool`.
fn tv_f64(t: TV) -> f64 {
    match t {
        TV::I(x) => x as f64,
        TV::F(x) => x,
        TV::B(b) => i64::from(b) as f64,
    }
}

/// Mirrors `Value::is_truthy` (`-0.0` falsy, NaN truthy).
fn tv_truthy(t: TV) -> bool {
    match t {
        TV::I(x) => x != 0,
        TV::F(x) => x != 0.0,
        TV::B(b) => b,
    }
}

/// The typed twin of [`exec_regops`]: infallible, because the op set was
/// restricted by [`loop_regops_typed`] at compile time and `TV` is
/// closed under it.
fn exec_regops_tv(ops: &[RegOp], regs: &mut [TV]) {
    use std::cmp::Ordering;
    let cmp_ord = |op: &Op, ord: Ordering| match op {
        Op::Lt => ord == Ordering::Less,
        Op::Le => ord != Ordering::Greater,
        Op::Gt => ord == Ordering::Greater,
        _ => ord != Ordering::Less,
    };
    for r in ops {
        match *r {
            RegOp::Mov { dst, src } => regs[dst] = regs[src],
            RegOp::Bin { ref op, dst, a, b } => {
                regs[dst] = match (regs[a], regs[b]) {
                    (TV::I(x), TV::I(y)) => TV::I(match op {
                        Op::Add => x.wrapping_add(y),
                        Op::Sub => x.wrapping_sub(y),
                        Op::Mul => x.wrapping_mul(y),
                        _ => unreachable!("loop_regops_typed admits only Add/Sub/Mul"),
                    }),
                    (x, y) => {
                        let (x, y) = (tv_f64(x), tv_f64(y));
                        TV::F(match op {
                            Op::Add => x + y,
                            Op::Sub => x - y,
                            Op::Mul => x * y,
                            _ => unreachable!("loop_regops_typed admits only Add/Sub/Mul"),
                        })
                    }
                };
            }
            RegOp::Cmp { ref op, dst, a, b } => {
                // `binop::compare` widens everything numeric to f64 and
                // uses total_cmp — including Int/Int.
                let ord = tv_f64(regs[a]).total_cmp(&tv_f64(regs[b]));
                regs[dst] = TV::B(cmp_ord(op, ord));
            }
            RegOp::Eq { ne, dst, a, b } => {
                // `Value::loose_eq`: Int/Float cross-compares widen, same
                // variants use derived equality (NaN != NaN), and
                // Bool-vs-numeric is always unequal.
                let eq = match (regs[a], regs[b]) {
                    (TV::I(x), TV::I(y)) => x == y,
                    (TV::F(x), TV::F(y)) => x == y,
                    (TV::B(x), TV::B(y)) => x == y,
                    (TV::I(x), TV::F(y)) | (TV::F(y), TV::I(x)) => x as f64 == y,
                    _ => false,
                };
                regs[dst] = TV::B(if ne { !eq } else { eq });
            }
            RegOp::Neg { dst, a } => {
                regs[dst] = match regs[a] {
                    TV::I(x) => TV::I(x.wrapping_neg()),
                    t => TV::F(-tv_f64(t)),
                };
            }
            RegOp::Not { dst, a } => regs[dst] = TV::B(!tv_truthy(regs[a])),
        }
    }
}

/// Run a summary-licensed loop on the unboxed register file. Returns
/// `None` (having touched nothing) when a *used* slot or constant holds
/// a value `TV` can't represent — the generic executor handles those.
/// Fuel accounting is identical to [`run_loop`]; there is no deopt path
/// because every typed op is total.
fn run_loop_typed(lp: &LoopStep, fr: &mut Frame, fuel: u64, ops: &mut u64) -> Option<LoopExit> {
    if fr.locals.len() != lp.n_slots {
        return None;
    }
    let mut regs: Vec<TV> = Vec::with_capacity(lp.n_regs);
    for (s, v) in fr.locals.iter().enumerate() {
        regs.push(match tv_of(v) {
            Some(t) => t,
            // A slot the loop never touches may hold anything; it only
            // needs a placeholder register.
            None if !lp.used_slots.get(s).copied().unwrap_or(true) => TV::I(0),
            None => return None,
        });
    }
    regs.resize(lp.n_regs, TV::I(0));
    for (r, v) in &lp.consts {
        *regs.get_mut(*r)? = tv_of(v)?;
    }
    let per = u64::from(lp.per_iter);
    let budget = (fuel - *ops) / per;
    let write_back = |fr: &mut Frame, regs: &[TV]| {
        for &s in &lp.writeback {
            fr.locals[s] = tv_value(regs[s]);
        }
    };
    let mut done: u64 = 0;
    while done < budget {
        exec_regops_tv(&lp.cond_ops, &mut regs);
        if !tv_truthy(regs[lp.cond_reg]) {
            write_back(fr, &regs);
            *ops += done * per + u64::from(lp.cond_need);
            fr.pc = lp.exit;
            return Some(LoopExit::Progress);
        }
        exec_regops_tv(&lp.body_ops, &mut regs);
        done += 1;
    }
    write_back(fr, &regs);
    *ops += done * per;
    Some(LoopExit::Progress)
}

/// A `Call` site fused through to a proven straight-line pure leaf
/// callee: the callee body runs as a mini-interpretation inside the
/// caller's dispatch step, with no activation frame.
struct InlineStep {
    arity: usize,
    n_slots: usize,
    /// The callee's executed prefix (through its first `Ret`, or the
    /// whole body for an implicit `return NULL`), re-validated at
    /// compile time against the op set `run_inline` implements.
    code: Vec<Op>,
    consts: Arc<Vec<Value>>,
    /// The summary's proven op count for the callee body. The dispatcher
    /// charges `1 + exact_ops` as a trusted constant — never recounted —
    /// which is what makes a corrupted summary observable.
    exact_ops: u32,
    next: u32,
}

/// Validate and extract an inline plan for the `Call` at a pc. Only the
/// presence of an `exact_ops` fact comes from the summary; everything
/// structural is re-derived from the callee's real bytecode, so a bogus
/// license degrades to "no fusion" rather than to wrong behavior.
fn build_inline(
    p: &Program,
    t: &SummaryTable,
    consts: &Arc<Vec<Value>>,
    op: &Op,
    next: u32,
) -> Option<InlineStep> {
    let &Op::Call { f: callee, argc } = op else { return None };
    let exact_ops = t.funcs.get(callee as usize)?.exact_ops?;
    let g = p.funcs.get(callee as usize)?;
    if g.arity != argc || (g.arity as u16) > g.n_slots {
        return None;
    }
    let mut code = Vec::new();
    for op in &g.code {
        match op {
            Op::Const(_)
            | Op::LoadLocal(_)
            | Op::StoreLocal(_)
            | Op::Dup
            | Op::Pop
            | Op::Add
            | Op::Sub
            | Op::Mul
            | Op::Div
            | Op::Mod
            | Op::Neg
            | Op::Not
            | Op::Eq
            | Op::Ne
            | Op::Lt
            | Op::Le
            | Op::Gt
            | Op::Ge => code.push(*op),
            Op::Ret => {
                code.push(*op);
                break;
            }
            _ => return None,
        }
    }
    Some(InlineStep {
        arity: argc as usize,
        n_slots: g.n_slots as usize,
        code,
        consts: consts.clone(),
        exact_ops,
        next,
    })
}

/// Execute a fused callee against the caller's operand stack without
/// consuming it. Any fault, underflow, or out-of-range index returns
/// `None` with the stack untouched; the dispatcher then runs the real
/// `Call` closure, whose activation-frame replay reproduces the
/// interpreter's exact error state.
fn run_inline(il: &InlineStep, stack: &[Value]) -> Option<Value> {
    let at = stack.len().checked_sub(il.arity)?;
    let mut locals: Vec<Value> = stack[at..].to_vec();
    locals.resize(il.n_slots.max(il.arity), Value::Null);
    let mut vs: Vec<Value> = Vec::new();
    for op in &il.code {
        match op {
            Op::Const(i) => vs.push(il.consts.get(*i as usize)?.clone()),
            Op::LoadLocal(i) => vs.push(locals.get(*i as usize)?.clone()),
            Op::StoreLocal(i) => {
                let v = vs.pop()?;
                *locals.get_mut(*i as usize)? = v;
            }
            Op::Dup => vs.push(vs.last()?.clone()),
            Op::Pop => {
                vs.pop()?;
            }
            Op::Add | Op::Sub | Op::Mul | Op::Div | Op::Mod => {
                let b = vs.pop()?;
                let a = vs.pop()?;
                vs.push(binop::arith(op, a, b).ok()?);
            }
            Op::Neg => {
                let a = vs.pop()?;
                vs.push(binop::neg(a).ok()?);
            }
            Op::Not => {
                let a = vs.pop()?;
                vs.push(Value::Bool(!a.is_truthy()));
            }
            Op::Eq | Op::Ne => {
                let b = vs.pop()?;
                let a = vs.pop()?;
                let eq = a.loose_eq(&b);
                vs.push(Value::Bool(if matches!(op, Op::Eq) { eq } else { !eq }));
            }
            Op::Lt | Op::Le | Op::Gt | Op::Ge => {
                let b = vs.pop()?;
                let a = vs.pop()?;
                vs.push(binop::compare(op, &a, &b).ok()?);
            }
            Op::Ret => return vs.pop(),
            _ => return None,
        }
    }
    // Fell off the end: the implicit `return NULL`.
    Some(Value::Null)
}

/// Lower an expression tree to a closure tree. `mutate` swaps the
/// operands of fused arithmetic — the deliberate miscompile the
/// differential suite must catch.
fn lower(n: VNode, mutate: bool) -> ExprFn {
    match n {
        VNode::Const(v) => Box::new(move |_, _| Ok(v.clone())),
        VNode::Local(i) => Box::new(move |f, _| Ok(f.locals[i].clone())),
        VNode::Stored(k) => {
            Box::new(move |_, sv| Ok(sv[k].as_ref().expect("stored before use").clone()))
        }
        VNode::Bin(op, a, b) => {
            let a = lower(*a, mutate);
            let b = lower(*b, mutate);
            if mutate {
                Box::new(move |f, sv| binop::arith(&op, b(f, sv)?, a(f, sv)?))
            } else {
                Box::new(move |f, sv| binop::arith(&op, a(f, sv)?, b(f, sv)?))
            }
        }
        VNode::Cmp(op, a, b) => {
            let a = lower(*a, mutate);
            let b = lower(*b, mutate);
            Box::new(move |f, sv| binop::compare(&op, &a(f, sv)?, &b(f, sv)?))
        }
        VNode::Eq { ne, a, b } => {
            let a = lower(*a, mutate);
            let b = lower(*b, mutate);
            Box::new(move |f, sv| {
                let eq = a(f, sv)?.loose_eq(&b(f, sv)?);
                Ok(Value::Bool(if ne { !eq } else { eq }))
            })
        }
        VNode::Neg(a) => {
            let a = lower(*a, mutate);
            Box::new(move |f, sv| binop::neg(a(f, sv)?))
        }
        VNode::Not(a) => {
            let a = lower(*a, mutate);
            Box::new(move |f, sv| Ok(Value::Bool(!a(f, sv)?.is_truthy())))
        }
        VNode::MakeArr { n, default } => {
            let n = lower(*n, mutate);
            let default = lower(*default, mutate);
            Box::new(move |f, sv| {
                let len = n(f, sv)?.as_int()?;
                if !(0..=(1 << 24)).contains(&len) {
                    return Err(VmError::Native(format!("bad array size {len}")));
                }
                let d = default(f, sv)?;
                Ok(Value::Arr(Arc::new(vec![d; len as usize])))
            })
        }
        VNode::IndexGet { arr, idx } => {
            let arr = lower(*arr, mutate);
            let idx = lower(*idx, mutate);
            Box::new(move |f, sv| {
                let i = idx(f, sv)?.as_int()?;
                index_get(&arr(f, sv)?, i)
            })
        }
        VNode::IndexSet { arr, idx, val } => {
            let arr = lower(*arr, mutate);
            let idx = lower(*idx, mutate);
            let val = lower(*val, mutate);
            Box::new(move |f, sv| {
                let a = arr(f, sv)?;
                let i = idx(f, sv)?.as_int()?;
                let v = val(f, sv)?;
                index_set(a, i, v)
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::{Builder, HopSpec, Op};
    use crate::interp::{self, MapEnv, NullEnv};
    use crate::state::MessengerId;

    fn launch(p: &Program) -> MessengerState {
        MessengerState::launch(p, MessengerId(1), &[]).unwrap()
    }

    /// Run the same program under both engines at the same fuel and
    /// require identical outcomes and identical messenger states.
    fn both(p: &Program, fuel: u64) -> Result<Yield, VmError> {
        let cp = compile(p).expect("compiles");
        let mut mi = launch(p);
        let mut mc = launch(p);
        let ri = interp::run(p, &mut mi, &mut NullEnv, fuel);
        let rc = run(&cp, p, &mut mc, &mut NullEnv, fuel);
        assert_eq!(ri, rc, "yields/errors diverge");
        assert_eq!(mi.frames, mc.frames, "frames diverge");
        rc
    }

    #[test]
    fn arithmetic_loop_matches_interpreter() {
        // while (i < 10) { acc = acc + i * 2; i = i + 1; } return acc
        let mut b = Builder::new();
        let c0 = b.constant(Value::Int(0));
        let c1 = b.constant(Value::Int(1));
        let c2 = b.constant(Value::Int(2));
        let c10 = b.constant(Value::Int(10));
        let code = vec![
            Op::Const(c0),
            Op::StoreLocal(0), // i
            Op::Const(c0),
            Op::StoreLocal(1), // acc
            // loop head (pc 4)
            Op::LoadLocal(0),
            Op::Const(c10),
            Op::Lt,
            Op::JumpIfFalse(11),
            Op::LoadLocal(1),
            Op::LoadLocal(0),
            Op::Const(c2),
            Op::Mul,
            Op::Add,
            Op::StoreLocal(1),
            Op::LoadLocal(0),
            Op::Const(c1),
            Op::Add,
            Op::StoreLocal(0),
            Op::Jump(-15),
            // exit (pc 19)
            Op::LoadLocal(1),
            Op::Ret,
        ];
        let f = b.function("main", 0, 2, code);
        let p = b.finish(f);
        assert_eq!(both(&p, 10_000).unwrap(), Yield::Terminated(Value::Int(90)));
        let cp = compile(&p).unwrap();
        assert!(cp.superinstructions() > 0, "the loop must fuse spans");
        assert!(cp.fused_loops() > 0, "the whole while loop must fuse");
    }

    #[test]
    fn fault_inside_fused_loop_deopts_to_exact_interpreter_state() {
        // while (i < 8) { acc = acc + 6 / (3 - i); i = i + 1 }
        // The divisor hits zero on the fourth iteration: the fused loop
        // must roll back that iteration and replay the fault with the
        // interpreter's exact frame and ops charge.
        let mut b = Builder::new();
        let c0 = b.constant(Value::Int(0));
        let c1 = b.constant(Value::Int(1));
        let c3 = b.constant(Value::Int(3));
        let c6 = b.constant(Value::Int(6));
        let c8 = b.constant(Value::Int(8));
        let code = vec![
            Op::Const(c0),
            Op::StoreLocal(0), // i
            Op::Const(c0),
            Op::StoreLocal(1), // acc
            // loop head (pc 4)
            Op::LoadLocal(0),
            Op::Const(c8),
            Op::Lt,
            Op::JumpIfFalse(13),
            Op::LoadLocal(1),
            Op::Const(c6),
            Op::Const(c3),
            Op::LoadLocal(0),
            Op::Sub,
            Op::Div,
            Op::Add,
            Op::StoreLocal(1),
            Op::LoadLocal(0),
            Op::Const(c1),
            Op::Add,
            Op::StoreLocal(0),
            Op::Jump(-17),
            // exit (pc 21)
            Op::LoadLocal(1),
            Op::Ret,
        ];
        let f = b.function("main", 0, 2, code);
        let p = b.finish(f);
        let cp = compile(&p).unwrap();
        assert!(cp.fused_loops() > 0, "the faulting loop must still fuse");
        let err = both(&p, 10_000).unwrap_err();
        assert!(matches!(err, VmError::DivisionByZero));
        // And with the fault patched out of range, both agree on the sum.
        for fuel in 0..80 {
            let mut mi = launch(&p);
            let mut mc = launch(&p);
            let mut ei = MapEnv::new();
            let mut ec = MapEnv::new();
            let ri = interp::run(&p, &mut mi, &mut ei, fuel);
            let rc = run(&cp, &p, &mut mc, &mut ec, fuel);
            assert_eq!(ri, rc, "fuel={fuel}");
            assert_eq!(mi.frames, mc.frames, "fuel={fuel}");
            assert_eq!(ei.ops, ec.ops, "fuel={fuel}: ops charge diverges");
        }
    }

    #[test]
    fn every_fuel_level_is_bit_exact() {
        // The same loop, cut off at every possible fuel: state after
        // FuelExhausted must match the interpreter op for op.
        let mut b = Builder::new();
        let c1 = b.constant(Value::Int(1));
        let c5 = b.constant(Value::Int(5));
        let code = vec![
            Op::Const(c1),
            Op::StoreLocal(0),
            Op::LoadLocal(0),
            Op::Const(c5),
            Op::Lt,
            Op::JumpIfFalse(5),
            Op::LoadLocal(0),
            Op::Const(c1),
            Op::Add,
            Op::StoreLocal(0),
            Op::Jump(-9),
            Op::LoadLocal(0),
            Op::Ret,
        ];
        let f = b.function("main", 0, 1, code);
        let p = b.finish(f);
        let cp = compile(&p).unwrap();
        for fuel in 0..40 {
            let mut mi = launch(&p);
            let mut mc = launch(&p);
            let mut ei = MapEnv::new();
            let mut ec = MapEnv::new();
            let ri = interp::run(&p, &mut mi, &mut ei, fuel);
            let rc = run(&cp, &p, &mut mc, &mut ec, fuel);
            assert_eq!(ri, rc, "fuel={fuel}");
            assert_eq!(mi.frames, mc.frames, "fuel={fuel}");
            assert_eq!(ei.ops, ec.ops, "fuel={fuel}: ops charge diverges");
        }
    }

    #[test]
    fn hop_fuses_and_resumes_at_the_next_pc() {
        let mut b = Builder::new();
        let ring = b.constant(Value::str("ring"));
        let hop = b.hop_spec(HopSpec { ln: NodePat::Wild, ll: LinkPat::Expr, ldir: Dir::Forward });
        let code = vec![Op::Const(ring), Op::Hop(hop), Op::Halt];
        let f = b.function("main", 0, 1, code);
        let p = b.finish(f);
        let cp = compile(&p).unwrap();
        assert!(cp.superinstructions() > 0, "const/hop must fuse");
        let mut m = launch(&p);
        let y = run(&cp, &p, &mut m, &mut NullEnv, 100).unwrap();
        assert_eq!(
            y,
            Yield::Hop(EvalHop {
                ln: None,
                ll: EvalLink::Named(Value::str("ring")),
                ldir: Dir::Forward
            })
        );
        assert_eq!(m.frames.last().unwrap().pc, 2, "resume pc is past the hop");
        // Resuming the parked/migrated state runs the tail.
        let y = run(&cp, &p, &mut m, &mut NullEnv, 100).unwrap();
        assert_eq!(y, Yield::Terminated(Value::Null));
    }

    #[test]
    fn division_by_zero_deopts_to_exact_interpreter_state() {
        let mut b = Builder::new();
        let c1 = b.constant(Value::Int(1));
        let c0 = b.constant(Value::Int(0));
        let code = vec![
            Op::Const(c1),
            Op::Const(c0),
            Op::Div,
            Op::StoreLocal(0),
            Op::LoadLocal(0),
            Op::Ret,
        ];
        let f = b.function("main", 0, 1, code);
        let p = b.finish(f);
        let err = both(&p, 1_000).unwrap_err();
        assert!(matches!(err, VmError::DivisionByZero));
    }

    #[test]
    fn miscompiled_superinstruction_is_observable() {
        // 10 - 3 fused with swapped operands must NOT equal the
        // interpreter's 7 — this is what diff_props' mutation check
        // relies on.
        let mut b = Builder::new();
        let c10 = b.constant(Value::Int(10));
        let c3 = b.constant(Value::Int(3));
        let code = vec![
            Op::Const(c10),
            Op::Const(c3),
            Op::Sub,
            Op::StoreLocal(0),
            Op::LoadLocal(0),
            Op::Ret,
        ];
        let f = b.function("main", 0, 1, code);
        let p = b.finish(f);
        let bad = compile_miscompiled(&p).unwrap();
        let mut m = launch(&p);
        let y = run(&bad, &p, &mut m, &mut NullEnv, 100).unwrap();
        assert_eq!(y, Yield::Terminated(Value::Int(-7)), "mutation must flip the result");
    }

    #[test]
    fn summary_fused_call_is_bit_exact_and_trusts_exact_ops() {
        // main: return add3(4, 5) + 1; add3: return a + b + 3;
        use crate::summary::{FnSummary, SummaryTable};
        let mut b = Builder::new();
        let c1 = b.constant(Value::Int(1));
        let c3 = b.constant(Value::Int(3));
        let c4 = b.constant(Value::Int(4));
        let c5 = b.constant(Value::Int(5));
        let leaf =
            vec![Op::LoadLocal(0), Op::LoadLocal(1), Op::Add, Op::Const(c3), Op::Add, Op::Ret];
        let lf = b.function("add3", 2, 0, leaf);
        let main = vec![
            Op::Const(c4),
            Op::Const(c5),
            Op::Call { f: lf.0, argc: 2 },
            Op::Const(c1),
            Op::Add,
            Op::Ret,
        ];
        let mf = b.function("main", 0, 0, main);
        let p = b.finish(mf);
        let mut table = SummaryTable {
            funcs: vec![
                FnSummary { exact_ops: Some(6), ..FnSummary::default() },
                FnSummary::default(),
            ],
        };
        let cp = compile_with_summaries(&p, Some(&table)).unwrap();
        assert_eq!(cp.inlined_calls(), 1, "the Call must fuse");
        // Bit-exact against the interpreter at every fuel level,
        // including the ops charge the trusted constant produces.
        for fuel in 0..20 {
            let mut mi = launch(&p);
            let mut mc = launch(&p);
            let mut ei = MapEnv::new();
            let mut ec = MapEnv::new();
            let ri = interp::run(&p, &mut mi, &mut ei, fuel);
            let rc = run(&cp, &p, &mut mc, &mut ec, fuel);
            assert_eq!(ri, rc, "fuel={fuel}");
            assert_eq!(mi.frames, mc.frames, "fuel={fuel}");
            assert_eq!(ei.ops, ec.ops, "fuel={fuel}: ops charge diverges");
        }
        // A corrupted exact_ops is an *observable* miscompile: the bulk
        // charge no longer matches the interpreter's per-op count.
        table.funcs[0].exact_ops = Some(7);
        let bad = compile_with_summaries(&p, Some(&table)).unwrap();
        let mut mi = launch(&p);
        let mut mb = launch(&p);
        let mut ei = MapEnv::new();
        let mut eb = MapEnv::new();
        let ri = interp::run(&p, &mut mi, &mut ei, 1_000);
        let rb = run(&bad, &p, &mut mb, &mut eb, 1_000);
        assert_eq!(ri, rb, "the result itself still agrees");
        assert_ne!(ei.ops, eb.ops, "the corrupted charge must diverge");
    }

    #[test]
    fn summary_licensed_typed_loop_is_bit_exact() {
        use crate::summary::{FnSummary, SummaryTable};
        // while (i < 10) { acc = acc + i * 2; i = i + 1; } return acc —
        // same loop as arithmetic_loop_matches_interpreter, now licensed
        // for the unboxed typed register file.
        let mut b = Builder::new();
        let c0 = b.constant(Value::Int(0));
        let c1 = b.constant(Value::Int(1));
        let c2 = b.constant(Value::Int(2));
        let c10 = b.constant(Value::Int(10));
        let code = vec![
            Op::Const(c0),
            Op::StoreLocal(0),
            Op::Const(c0),
            Op::StoreLocal(1),
            // loop head (pc 4)
            Op::LoadLocal(0),
            Op::Const(c10),
            Op::Lt,
            Op::JumpIfFalse(11),
            Op::LoadLocal(1),
            Op::LoadLocal(0),
            Op::Const(c2),
            Op::Mul,
            Op::Add,
            Op::StoreLocal(1),
            Op::LoadLocal(0),
            Op::Const(c1),
            Op::Add,
            Op::StoreLocal(0),
            Op::Jump(-15),
            // exit (pc 19)
            Op::LoadLocal(1),
            Op::Ret,
        ];
        let f = b.function("main", 0, 2, code);
        let p = b.finish(f);
        let mut table = SummaryTable::default();
        let mut s = FnSummary::default();
        s.pure_loops.insert(4);
        table.funcs = vec![s];
        let cp = compile_with_summaries(&p, Some(&table)).unwrap();
        assert_eq!(cp.typed_loops(), 1, "the loop must take the license");
        let plain = compile(&p).unwrap();
        assert_eq!(plain.typed_loops(), 0, "no license without summaries");
        for fuel in 0..80 {
            let mut mi = launch(&p);
            let mut mc = launch(&p);
            let mut ei = MapEnv::new();
            let mut ec = MapEnv::new();
            let ri = interp::run(&p, &mut mi, &mut ei, fuel);
            let rc = run(&cp, &p, &mut mc, &mut ec, fuel);
            assert_eq!(ri, rc, "fuel={fuel}");
            assert_eq!(mi.frames, mc.frames, "fuel={fuel}");
            assert_eq!(ei.ops, ec.ops, "fuel={fuel}: ops charge diverges");
        }
    }

    #[test]
    fn inline_bails_safely_on_a_faulting_or_impure_callee() {
        use crate::summary::{FnSummary, SummaryTable};
        // div(a, b) = a / b — pure, but faults when b == 0. A (bogus)
        // exact_ops license must not change the error or its position.
        let mut b = Builder::new();
        let c0 = b.constant(Value::Int(0));
        let c9 = b.constant(Value::Int(9));
        let leaf = vec![Op::LoadLocal(0), Op::LoadLocal(1), Op::Div, Op::Ret];
        let lf = b.function("div", 2, 0, leaf);
        let main = vec![Op::Const(c9), Op::Const(c0), Op::Call { f: lf.0, argc: 2 }, Op::Ret];
        let mf = b.function("main", 0, 0, main);
        let p = b.finish(mf);
        let table = SummaryTable {
            funcs: vec![
                FnSummary { exact_ops: Some(4), ..FnSummary::default() },
                FnSummary::default(),
            ],
        };
        let cp = compile_with_summaries(&p, Some(&table)).unwrap();
        assert_eq!(cp.inlined_calls(), 1);
        let mut mi = launch(&p);
        let mut mc = launch(&p);
        let mut ei = MapEnv::new();
        let mut ec = MapEnv::new();
        let ri = interp::run(&p, &mut mi, &mut ei, 1_000);
        let rc = run(&cp, &p, &mut mc, &mut ec, 1_000);
        assert_eq!(ri, rc);
        assert!(matches!(rc, Err(VmError::DivisionByZero)));
        assert_eq!(mi.frames, mc.frames, "fault frames diverge");
        assert_eq!(ei.ops, ec.ops, "fault ops charge diverges");
    }

    #[test]
    fn node_vars_and_natives_match_interpreter() {
        let mut b = Builder::new();
        let visits = b.constant(Value::str("visits"));
        let one = b.constant(Value::Int(1));
        let code = vec![
            Op::LoadNode(visits),
            Op::Const(one),
            Op::Add,
            Op::StoreNode(visits),
            Op::LoadNode(visits),
            Op::Ret,
        ];
        let f = b.function("main", 0, 0, code);
        let p = b.finish(f);
        let cp = compile(&p).unwrap();
        let mut ei = MapEnv::new();
        let mut ec = MapEnv::new();
        let mut mi = launch(&p);
        let mut mc = launch(&p);
        let ri = interp::run(&p, &mut mi, &mut ei, 100).unwrap();
        let rc = run(&cp, &p, &mut mc, &mut ec, 100).unwrap();
        assert_eq!(ri, rc);
        assert_eq!(ri, Yield::Terminated(Value::Int(1)));
        assert_eq!(ei.vars, ec.vars, "node-variable effects diverge");
        assert_eq!(ei.ops, ec.ops);
    }
}
