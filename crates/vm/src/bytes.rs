//! In-repo byte buffers for the wire codecs.
//!
//! A minimal, dependency-free replacement for the `bytes` crate,
//! providing exactly what the codecs need: [`BytesMut`], a growable
//! `Vec<u8>`-backed write buffer, and [`Bytes`], an immutable,
//! cheaply-cloneable view that doubles as a read cursor. Cloning or
//! slicing a [`Bytes`] shares the underlying allocation (`Arc<[u8]>`),
//! so passing migration payloads between daemons never copies the
//! payload itself.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer with a read cursor.
///
/// Reader methods (`get_u8`, `get_f64_le`, `copy_to_bytes`) consume from
/// the front of the view, like `bytes::Buf`. Slicing and cloning are
/// O(1) and share storage.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// A buffer copied from a static slice.
    pub fn from_static(s: &'static [u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }

    /// Remaining (unread) length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Synonym for [`Bytes::len`], reader-flavored.
    pub fn remaining(&self) -> usize {
        self.len()
    }

    /// Whether any unread bytes remain.
    pub fn has_remaining(&self) -> bool {
        !self.is_empty()
    }

    /// Read one byte.
    ///
    /// # Panics
    ///
    /// Panics if empty; codecs must check `has_remaining` first.
    pub fn get_u8(&mut self) -> u8 {
        assert!(self.has_remaining(), "get_u8 on empty buffer");
        let b = self.data[self.start];
        self.start += 1;
        b
    }

    /// Read a little-endian `f64`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 8 bytes remain.
    pub fn get_f64_le(&mut self) -> f64 {
        assert!(self.remaining() >= 8, "get_f64_le on short buffer");
        let raw: [u8; 8] = self.data[self.start..self.start + 8].try_into().unwrap();
        self.start += 8;
        f64::from_le_bytes(raw)
    }

    /// Split off the next `n` bytes as a shared-storage [`Bytes`].
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` bytes remain.
    pub fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        assert!(self.remaining() >= n, "copy_to_bytes past end");
        let out = Bytes { data: self.data.clone(), start: self.start, end: self.start + n };
        self.start += n;
        out
    }

    /// Skip `n` bytes.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` bytes remain.
    pub fn advance(&mut self, n: usize) {
        assert!(self.remaining() >= n, "advance past end");
        self.start += n;
    }

    /// A shared-storage sub-view of the unread bytes.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&i) => i,
            Bound::Excluded(&i) => i + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&i) => i + 1,
            Bound::Excluded(&i) => i,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice {lo}..{hi} out of bounds");
        Bytes { data: self.data.clone(), start: self.start + lo, end: self.start + hi }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes { data: v.into(), start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        **self == **other
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        (**self).hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

/// A growable write buffer, frozen into [`Bytes`] when complete.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(n: usize) -> BytesMut {
        BytesMut { buf: Vec::with_capacity(n) }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one byte.
    pub fn put_u8(&mut self, b: u8) {
        self.buf.push(b);
    }

    /// Append a slice.
    pub fn put_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }

    /// Append a little-endian `f64`.
    pub fn put_f64_le(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> BytesMut {
        BytesMut { buf: s.to_vec() }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_freeze_read_round_trip() {
        let mut w = BytesMut::with_capacity(16);
        w.put_u8(7);
        w.put_f64_le(2.5);
        w.put_slice(b"abc");
        let mut r = w.freeze();
        assert_eq!(r.len(), 12);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_f64_le(), 2.5);
        let tail = r.copy_to_bytes(3);
        assert_eq!(&*tail, b"abc");
        assert!(!r.has_remaining());
    }

    #[test]
    fn slices_share_storage_and_compare_by_content() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let mid = b.slice(1..4);
        assert_eq!(&*mid, &[2, 3, 4]);
        assert_eq!(mid, Bytes::from(vec![2u8, 3, 4]));
        // Slicing after partial reads is relative to the unread view.
        let mut r = b.clone();
        r.advance(2);
        assert_eq!(&*r.slice(..2), &[3, 4]);
    }

    #[test]
    fn empty_buffer_behaves() {
        let b = Bytes::new();
        assert!(b.is_empty());
        assert!(!b.has_remaining());
        assert_eq!(b, Bytes::from(Vec::new()));
    }

    #[test]
    #[should_panic(expected = "get_u8 on empty")]
    fn reading_past_end_panics() {
        Bytes::new().get_u8();
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        Bytes::from(vec![1u8]).slice(..5);
    }
}
