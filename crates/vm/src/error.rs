//! VM error type.

use crate::value::Value;

/// A runtime error inside a Messenger. In the daemon, an erroring
/// messenger is killed and the error is reported through the platform's
/// fault log — it never takes the daemon down.
#[derive(Debug, Clone, PartialEq)]
pub enum VmError {
    /// A value had the wrong type for an operation.
    Type {
        /// What the operation required.
        expected: &'static str,
        /// What it got (type name).
        got: &'static str,
    },
    /// Integer division or remainder by zero.
    DivisionByZero,
    /// Call to an unregistered native function.
    UnknownNative(String),
    /// A native function failed.
    Native(String),
    /// The per-segment fuel budget was exhausted (runaway loop with no
    /// navigational statement).
    FuelExhausted,
    /// Operand stack underflow / bad code (compiler bug or corrupted
    /// migration).
    Corrupt(&'static str),
    /// Wire decode failure.
    Decode(String),
    /// Arity mismatch on a user-function call.
    Arity {
        /// Function name.
        func: String,
        /// Declared parameter count.
        expected: u8,
        /// Supplied argument count.
        got: u8,
    },
}

impl VmError {
    pub(crate) fn type_error(expected: &'static str, got: &Value) -> VmError {
        VmError::Type { expected, got: got.type_name() }
    }
}

impl std::fmt::Display for VmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VmError::Type { expected, got } => {
                write!(f, "type error: expected {expected}, got {got}")
            }
            VmError::DivisionByZero => write!(f, "division by zero"),
            VmError::UnknownNative(n) => write!(f, "unknown native function `{n}`"),
            VmError::Native(m) => write!(f, "native function failed: {m}"),
            VmError::FuelExhausted => write!(f, "fuel exhausted (runaway loop?)"),
            VmError::Corrupt(m) => write!(f, "corrupt bytecode or state: {m}"),
            VmError::Decode(m) => write!(f, "wire decode error: {m}"),
            VmError::Arity { func, expected, got } => {
                write!(f, "call to `{func}` with {got} args, expected {expected}")
            }
        }
    }
}

impl std::error::Error for VmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            VmError::type_error("int", &Value::str("x")).to_string(),
            "type error: expected int, got string"
        );
        assert_eq!(VmError::DivisionByZero.to_string(), "division by zero");
        assert!(VmError::UnknownNative("f".into()).to_string().contains("`f`"));
        let e = VmError::Arity { func: "g".into(), expected: 2, got: 3 };
        assert!(e.to_string().contains("expected 2"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err<E: std::error::Error + Send + Sync + 'static>(_: E) {}
        takes_err(VmError::DivisionByZero);
    }
}
