//! Binary wire codec.
//!
//! Everything that crosses a daemon boundary is encoded here: values,
//! complete messenger states (migration payloads), and — when a program
//! is not yet in the destination's code registry, or in the carry-code
//! ablation — whole programs. The paper compiled scripts "into a form of
//! byte code for more efficient transport and parsing"; this module is
//! that transport format.
//!
//! The format is a simple tagged encoding with LEB128 varints. It is not
//! self-describing beyond the tags and performs strict validation on
//! decode: a truncated or corrupted buffer yields [`VmError::Decode`],
//! never a panic.

use crate::bytes::{Bytes, BytesMut};

use crate::bytecode::{
    CreateItem, CreateSpec, Dir, FuncId, Function, HopSpec, LinkPat, NamePat, NetVar, NodePat, Op,
    Program, ProgramId,
};
use crate::error::VmError;
use crate::state::{Frame, MessengerId, MessengerState, Vt};
use crate::summary::{FnSummary, HopBehavior, SumKind, SummaryTable};
use crate::value::{LinkInstance, Matrix, Value};

fn err(msg: &str) -> VmError {
    VmError::Decode(msg.to_string())
}

// ---- primitives ---------------------------------------------------------
//
// Public so that higher layers (e.g. the daemon frame codec in
// `msgr-core`) can reuse the exact same varint/string/float encodings
// instead of inventing parallel ones.

/// Append an LEB128 varint.
pub fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Decode an LEB128 varint.
///
/// # Errors
///
/// [`VmError::Decode`] on truncation or overlong encodings.
pub fn get_varint(buf: &mut Bytes) -> Result<u64, VmError> {
    let mut v: u64 = 0;
    for shift in (0..64).step_by(7) {
        if !buf.has_remaining() {
            return Err(err("truncated varint"));
        }
        let byte = buf.get_u8();
        let group = (byte & 0x7f) as u64;
        // The tenth group can only hold bit 63: anything above would be
        // shifted out of the u64 and decode the same as its absence,
        // letting corrupted bytes round-trip silently.
        if shift == 63 && group > 1 {
            return Err(err("varint overflows u64"));
        }
        v |= group << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(err("varint too long"))
}

/// Zigzag-map a signed integer so small magnitudes stay small.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Append a little-endian `f64`.
pub fn put_f64(buf: &mut BytesMut, v: f64) {
    buf.put_f64_le(v);
}

/// Decode a little-endian `f64`.
///
/// # Errors
///
/// [`VmError::Decode`] on truncation.
pub fn get_f64(buf: &mut Bytes) -> Result<f64, VmError> {
    if buf.remaining() < 8 {
        return Err(err("truncated f64"));
    }
    Ok(buf.get_f64_le())
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut BytesMut, s: &str) {
    put_varint(buf, s.len() as u64);
    buf.put_slice(s.as_bytes());
}

/// Decode a length-prefixed UTF-8 string.
///
/// # Errors
///
/// [`VmError::Decode`] on truncation or invalid UTF-8.
pub fn get_str(buf: &mut Bytes) -> Result<String, VmError> {
    let n = get_varint(buf)? as usize;
    if buf.remaining() < n {
        return Err(err("truncated string"));
    }
    let raw = buf.copy_to_bytes(n);
    String::from_utf8(raw.to_vec()).map_err(|_| err("invalid utf8"))
}

// ---- values --------------------------------------------------------------

/// Append `v` to `buf`.
pub fn put_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::Null => buf.put_u8(0),
        Value::Bool(b) => {
            buf.put_u8(1);
            buf.put_u8(*b as u8);
        }
        Value::Int(i) => {
            buf.put_u8(2);
            put_varint(buf, zigzag(*i));
        }
        Value::Float(f) => {
            buf.put_u8(3);
            put_f64(buf, *f);
        }
        Value::Str(s) => {
            buf.put_u8(4);
            put_str(buf, s);
        }
        Value::Mat(m) => {
            buf.put_u8(5);
            put_varint(buf, m.rows() as u64);
            put_varint(buf, m.cols() as u64);
            for &x in m.as_slice() {
                put_f64(buf, x);
            }
        }
        Value::Blob(b) => {
            buf.put_u8(7);
            put_varint(buf, b.len() as u64);
            buf.put_slice(b);
        }
        Value::Link(l) => {
            buf.put_u8(6);
            put_varint(buf, l.0);
        }
        Value::Arr(a) => {
            buf.put_u8(8);
            put_varint(buf, a.len() as u64);
            for v in a.iter() {
                put_value(buf, v);
            }
        }
    }
}

/// Decode one value.
///
/// # Errors
///
/// [`VmError::Decode`] on truncation or unknown tags.
pub fn get_value(buf: &mut Bytes) -> Result<Value, VmError> {
    if !buf.has_remaining() {
        return Err(err("truncated value"));
    }
    Ok(match buf.get_u8() {
        0 => Value::Null,
        1 => {
            if !buf.has_remaining() {
                return Err(err("truncated bool"));
            }
            Value::Bool(buf.get_u8() != 0)
        }
        2 => Value::Int(unzigzag(get_varint(buf)?)),
        3 => Value::Float(get_f64(buf)?),
        4 => Value::str(get_str(buf)?),
        5 => {
            let rows = get_varint(buf)? as u32;
            let cols = get_varint(buf)? as u32;
            let n = (rows as u64)
                .checked_mul(cols as u64)
                .filter(|&n| n <= (1 << 32))
                .ok_or(err("matrix too large"))? as usize;
            if buf.remaining() < n * 8 {
                return Err(err("truncated matrix"));
            }
            let mut data = Vec::with_capacity(n);
            for _ in 0..n {
                data.push(buf.get_f64_le());
            }
            Value::Mat(Matrix::from_vec(rows, cols, data))
        }
        6 => Value::Link(LinkInstance(get_varint(buf)?)),
        7 => {
            let n = get_varint(buf)? as usize;
            if buf.remaining() < n {
                return Err(err("truncated blob"));
            }
            Value::Blob(buf.copy_to_bytes(n))
        }
        8 => {
            let n = get_varint(buf)? as usize;
            if n > 1 << 24 {
                return Err(err("absurd array length"));
            }
            let mut items = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                items.push(get_value(buf)?);
            }
            Value::Arr(std::sync::Arc::new(items))
        }
        t => return Err(err(&format!("unknown value tag {t}"))),
    })
}

// ---- messenger state -------------------------------------------------------

fn put_frame(buf: &mut BytesMut, f: &Frame) {
    put_varint(buf, f.func.0 as u64);
    put_varint(buf, f.pc as u64);
    put_varint(buf, f.locals.len() as u64);
    for v in &f.locals {
        put_value(buf, v);
    }
    put_varint(buf, f.stack.len() as u64);
    for v in &f.stack {
        put_value(buf, v);
    }
}

fn get_frame(buf: &mut Bytes) -> Result<Frame, VmError> {
    let func = FuncId(get_varint(buf)? as u16);
    let pc = get_varint(buf)? as u32;
    let nl = get_varint(buf)? as usize;
    if nl > 1 << 20 {
        return Err(err("absurd local count"));
    }
    let mut locals = Vec::with_capacity(nl);
    for _ in 0..nl {
        locals.push(get_value(buf)?);
    }
    let ns = get_varint(buf)? as usize;
    if ns > 1 << 20 {
        return Err(err("absurd stack size"));
    }
    let mut stack = Vec::with_capacity(ns);
    for _ in 0..ns {
        stack.push(get_value(buf)?);
    }
    Ok(Frame { func, pc, locals, stack })
}

/// Serialize a messenger for migration. This is the payload a `hop`
/// actually ships (plus routing headers added by the daemon layer).
pub fn encode_messenger(m: &MessengerState) -> Bytes {
    let mut buf = BytesMut::with_capacity(64);
    put_varint(&mut buf, m.id.0);
    put_varint(&mut buf, m.program.0);
    put_f64(&mut buf, m.vtime.as_f64());
    buf.put_u8(m.anti as u8);
    put_varint(&mut buf, m.frames.len() as u64);
    for f in &m.frames {
        put_frame(&mut buf, f);
    }
    buf.freeze()
}

/// Decode a migrated messenger.
///
/// # Errors
///
/// [`VmError::Decode`] on any malformed input.
pub fn decode_messenger(mut buf: Bytes) -> Result<MessengerState, VmError> {
    let id = MessengerId(get_varint(&mut buf)?);
    let program = ProgramId(get_varint(&mut buf)?);
    let vt = get_f64(&mut buf)?;
    if vt.is_nan() {
        return Err(err("NaN virtual time"));
    }
    if !buf.has_remaining() {
        return Err(err("truncated messenger"));
    }
    let anti = buf.get_u8() != 0;
    let nf = get_varint(&mut buf)? as usize;
    if nf > 1 << 16 {
        return Err(err("absurd frame count"));
    }
    let mut frames = Vec::with_capacity(nf);
    for _ in 0..nf {
        frames.push(get_frame(&mut buf)?);
    }
    if buf.has_remaining() {
        return Err(err("trailing bytes after messenger"));
    }
    Ok(MessengerState { id, program, frames, vtime: Vt::new(vt), anti })
}

// ---- programs -------------------------------------------------------------

fn put_dir(buf: &mut BytesMut, d: Dir) {
    buf.put_u8(match d {
        Dir::Forward => 0,
        Dir::Backward => 1,
        Dir::Any => 2,
    });
}

fn get_dir(buf: &mut Bytes) -> Result<Dir, VmError> {
    if !buf.has_remaining() {
        return Err(err("truncated dir"));
    }
    Ok(match buf.get_u8() {
        0 => Dir::Forward,
        1 => Dir::Backward,
        2 => Dir::Any,
        t => return Err(err(&format!("bad dir {t}"))),
    })
}

fn put_op(buf: &mut BytesMut, op: &Op) {
    use Op::*;
    match op {
        Const(i) => {
            buf.put_u8(0);
            put_varint(buf, *i as u64);
        }
        LoadLocal(i) => {
            buf.put_u8(1);
            put_varint(buf, *i as u64);
        }
        StoreLocal(i) => {
            buf.put_u8(2);
            put_varint(buf, *i as u64);
        }
        LoadNode(i) => {
            buf.put_u8(3);
            put_varint(buf, *i as u64);
        }
        StoreNode(i) => {
            buf.put_u8(4);
            put_varint(buf, *i as u64);
        }
        LoadNet(v) => {
            buf.put_u8(5);
            buf.put_u8(match v {
                NetVar::Address => 0,
                NetVar::Last => 1,
                NetVar::Node => 2,
                NetVar::Time => 3,
            });
        }
        Dup => buf.put_u8(6),
        Pop => buf.put_u8(7),
        Add => buf.put_u8(8),
        Sub => buf.put_u8(9),
        Mul => buf.put_u8(10),
        Div => buf.put_u8(11),
        Mod => buf.put_u8(12),
        Neg => buf.put_u8(13),
        Not => buf.put_u8(14),
        Eq => buf.put_u8(15),
        Ne => buf.put_u8(16),
        Lt => buf.put_u8(17),
        Le => buf.put_u8(18),
        Gt => buf.put_u8(19),
        Ge => buf.put_u8(20),
        Jump(o) => {
            buf.put_u8(21);
            put_varint(buf, zigzag(*o as i64));
        }
        JumpIfFalse(o) => {
            buf.put_u8(22);
            put_varint(buf, zigzag(*o as i64));
        }
        JumpIfTruePeek(o) => {
            buf.put_u8(23);
            put_varint(buf, zigzag(*o as i64));
        }
        JumpIfFalsePeek(o) => {
            buf.put_u8(24);
            put_varint(buf, zigzag(*o as i64));
        }
        Call { f, argc } => {
            buf.put_u8(25);
            put_varint(buf, *f as u64);
            buf.put_u8(*argc);
        }
        CallNative { name, argc } => {
            buf.put_u8(26);
            put_varint(buf, *name as u64);
            buf.put_u8(*argc);
        }
        Ret => buf.put_u8(27),
        Hop(i) => {
            buf.put_u8(28);
            put_varint(buf, *i as u64);
        }
        Create(i) => {
            buf.put_u8(29);
            put_varint(buf, *i as u64);
        }
        Delete(i) => {
            buf.put_u8(30);
            put_varint(buf, *i as u64);
        }
        SchedAbs => buf.put_u8(31),
        SchedDlt => buf.put_u8(32),
        Halt => buf.put_u8(33),
        MakeArr => buf.put_u8(34),
        IndexGet => buf.put_u8(35),
        IndexSet => buf.put_u8(36),
    }
}

fn get_op(buf: &mut Bytes) -> Result<Op, VmError> {
    use Op::*;
    if !buf.has_remaining() {
        return Err(err("truncated op"));
    }
    let tag = buf.get_u8();
    Ok(match tag {
        0 => Const(get_varint(buf)? as u16),
        1 => LoadLocal(get_varint(buf)? as u16),
        2 => StoreLocal(get_varint(buf)? as u16),
        3 => LoadNode(get_varint(buf)? as u16),
        4 => StoreNode(get_varint(buf)? as u16),
        5 => {
            if !buf.has_remaining() {
                return Err(err("truncated netvar"));
            }
            LoadNet(match buf.get_u8() {
                0 => NetVar::Address,
                1 => NetVar::Last,
                2 => NetVar::Node,
                3 => NetVar::Time,
                t => return Err(err(&format!("bad netvar {t}"))),
            })
        }
        6 => Dup,
        7 => Pop,
        8 => Add,
        9 => Sub,
        10 => Mul,
        11 => Div,
        12 => Mod,
        13 => Neg,
        14 => Not,
        15 => Eq,
        16 => Ne,
        17 => Lt,
        18 => Le,
        19 => Gt,
        20 => Ge,
        21 => Jump(unzigzag(get_varint(buf)?) as i32),
        22 => JumpIfFalse(unzigzag(get_varint(buf)?) as i32),
        23 => JumpIfTruePeek(unzigzag(get_varint(buf)?) as i32),
        24 => JumpIfFalsePeek(unzigzag(get_varint(buf)?) as i32),
        25 => {
            let f = get_varint(buf)? as u16;
            if !buf.has_remaining() {
                return Err(err("truncated call"));
            }
            Call { f, argc: buf.get_u8() }
        }
        26 => {
            let name = get_varint(buf)? as u16;
            if !buf.has_remaining() {
                return Err(err("truncated native call"));
            }
            CallNative { name, argc: buf.get_u8() }
        }
        27 => Ret,
        28 => Hop(get_varint(buf)? as u16),
        29 => Create(get_varint(buf)? as u16),
        30 => Delete(get_varint(buf)? as u16),
        31 => SchedAbs,
        32 => SchedDlt,
        33 => Halt,
        34 => MakeArr,
        35 => IndexGet,
        36 => IndexSet,
        t => return Err(err(&format!("unknown op tag {t}"))),
    })
}

fn put_node_pat(buf: &mut BytesMut, p: NodePat) {
    buf.put_u8(matches!(p, NodePat::Expr) as u8);
}

fn get_node_pat(buf: &mut Bytes) -> Result<NodePat, VmError> {
    if !buf.has_remaining() {
        return Err(err("truncated pat"));
    }
    Ok(match buf.get_u8() {
        0 => NodePat::Wild,
        1 => NodePat::Expr,
        t => return Err(err(&format!("bad node pat {t}"))),
    })
}

fn put_link_pat(buf: &mut BytesMut, p: LinkPat) {
    buf.put_u8(match p {
        LinkPat::Wild => 0,
        LinkPat::Unnamed => 1,
        LinkPat::Expr => 2,
        LinkPat::Virtual => 3,
    });
}

fn get_link_pat(buf: &mut Bytes) -> Result<LinkPat, VmError> {
    if !buf.has_remaining() {
        return Err(err("truncated pat"));
    }
    Ok(match buf.get_u8() {
        0 => LinkPat::Wild,
        1 => LinkPat::Unnamed,
        2 => LinkPat::Expr,
        3 => LinkPat::Virtual,
        t => return Err(err(&format!("bad link pat {t}"))),
    })
}

fn put_name_pat(buf: &mut BytesMut, p: NamePat) {
    buf.put_u8(matches!(p, NamePat::Expr) as u8);
}

fn get_name_pat(buf: &mut Bytes) -> Result<NamePat, VmError> {
    if !buf.has_remaining() {
        return Err(err("truncated pat"));
    }
    Ok(match buf.get_u8() {
        0 => NamePat::Unnamed,
        1 => NamePat::Expr,
        t => return Err(err(&format!("bad name pat {t}"))),
    })
}

/// Serialize a program (for code-registry shipping and the carry-code
/// ablation).
pub fn encode_program(p: &Program) -> Bytes {
    let mut buf = BytesMut::with_capacity(256);
    put_varint(&mut buf, p.consts.len() as u64);
    for c in &p.consts {
        put_value(&mut buf, c);
    }
    put_varint(&mut buf, p.funcs.len() as u64);
    for f in &p.funcs {
        put_str(&mut buf, &f.name);
        buf.put_u8(f.arity);
        put_varint(&mut buf, f.n_slots as u64);
        put_varint(&mut buf, f.code.len() as u64);
        for op in &f.code {
            put_op(&mut buf, op);
        }
        // Debug info travels with the code so a shipped program keeps
        // its content id (`Program::id` hashes the line table too).
        put_varint(&mut buf, f.lines.len() as u64);
        for &line in &f.lines {
            put_varint(&mut buf, line as u64);
        }
    }
    put_varint(&mut buf, p.hop_specs.len() as u64);
    for s in &p.hop_specs {
        put_node_pat(&mut buf, s.ln);
        put_link_pat(&mut buf, s.ll);
        put_dir(&mut buf, s.ldir);
    }
    put_varint(&mut buf, p.create_specs.len() as u64);
    for s in &p.create_specs {
        buf.put_u8(s.all as u8);
        put_varint(&mut buf, s.items.len() as u64);
        for it in &s.items {
            put_name_pat(&mut buf, it.ln);
            put_name_pat(&mut buf, it.ll);
            put_dir(&mut buf, it.ldir);
            put_node_pat(&mut buf, it.dn);
            put_link_pat(&mut buf, it.dl);
            put_dir(&mut buf, it.ddir);
        }
    }
    put_varint(&mut buf, p.entry.0 as u64);
    buf.freeze()
}

/// Decode a program.
///
/// # Errors
///
/// [`VmError::Decode`] on malformed input (including an out-of-range
/// entry function).
pub fn decode_program(mut buf: Bytes) -> Result<Program, VmError> {
    let nc = get_varint(&mut buf)? as usize;
    if nc > u16::MAX as usize {
        return Err(err("too many constants"));
    }
    let mut consts = Vec::with_capacity(nc);
    for _ in 0..nc {
        consts.push(get_value(&mut buf)?);
    }
    let nf = get_varint(&mut buf)? as usize;
    if nf > u16::MAX as usize {
        return Err(err("too many functions"));
    }
    let mut funcs = Vec::with_capacity(nf);
    for _ in 0..nf {
        let name = get_str(&mut buf)?;
        if !buf.has_remaining() {
            return Err(err("truncated function"));
        }
        let arity = buf.get_u8();
        let n_slots = get_varint(&mut buf)? as u16;
        let ni = get_varint(&mut buf)? as usize;
        if ni > 1 << 24 {
            return Err(err("absurd code length"));
        }
        let mut code = Vec::with_capacity(ni);
        for _ in 0..ni {
            code.push(get_op(&mut buf)?);
        }
        let nl = get_varint(&mut buf)? as usize;
        if nl > 1 << 24 {
            return Err(err("absurd line table length"));
        }
        let mut lines = Vec::with_capacity(nl);
        for _ in 0..nl {
            lines.push(get_varint(&mut buf)? as u32);
        }
        funcs.push(Function { name, arity, n_slots, code, lines });
    }
    let nh = get_varint(&mut buf)? as usize;
    let mut hop_specs = Vec::with_capacity(nh.min(1024));
    for _ in 0..nh {
        let ln = get_node_pat(&mut buf)?;
        let ll = get_link_pat(&mut buf)?;
        let ldir = get_dir(&mut buf)?;
        hop_specs.push(HopSpec { ln, ll, ldir });
    }
    let ncs = get_varint(&mut buf)? as usize;
    let mut create_specs = Vec::with_capacity(ncs.min(1024));
    for _ in 0..ncs {
        if !buf.has_remaining() {
            return Err(err("truncated create spec"));
        }
        let all = buf.get_u8() != 0;
        let ni = get_varint(&mut buf)? as usize;
        let mut items = Vec::with_capacity(ni.min(1024));
        for _ in 0..ni {
            items.push(CreateItem {
                ln: get_name_pat(&mut buf)?,
                ll: get_name_pat(&mut buf)?,
                ldir: get_dir(&mut buf)?,
                dn: get_node_pat(&mut buf)?,
                dl: get_link_pat(&mut buf)?,
                ddir: get_dir(&mut buf)?,
            });
        }
        create_specs.push(CreateSpec { items, all });
    }
    let entry = FuncId(get_varint(&mut buf)? as u16);
    if entry.0 as usize >= funcs.len() {
        return Err(err("entry function out of range"));
    }
    if buf.has_remaining() {
        return Err(err("trailing bytes after program"));
    }
    Ok(Program { consts, funcs, hop_specs, create_specs, entry })
}

// ---- effect summaries ---------------------------------------------------

fn put_u16_set(buf: &mut BytesMut, set: &std::collections::BTreeSet<u16>) {
    put_varint(buf, set.len() as u64);
    for &v in set {
        put_varint(buf, v as u64);
    }
}

fn get_u16_set(buf: &mut Bytes) -> Result<std::collections::BTreeSet<u16>, VmError> {
    let n = get_varint(buf)? as usize;
    if n > u16::MAX as usize {
        return Err(err("absurd summary set length"));
    }
    let mut set = std::collections::BTreeSet::new();
    for _ in 0..n {
        let v = get_varint(buf)?;
        if v > u16::MAX as u64 {
            return Err(err("summary set item out of range"));
        }
        set.insert(v as u16);
    }
    Ok(set)
}

/// Serialize a program's effect summaries (shipped next to the program
/// body by registries that cache analysis results; summaries never
/// enter the program's content hash).
pub fn encode_summaries(t: &SummaryTable) -> Bytes {
    let mut buf = BytesMut::with_capacity(64);
    put_varint(&mut buf, t.funcs.len() as u64);
    for s in &t.funcs {
        buf.put_u8(match s.hop {
            HopBehavior::HopFree => 0,
            HopBehavior::AtMostOnce => 1,
            HopBehavior::MayNavigate => 2,
        });
        let flags = u8::from(s.may_create)
            | u8::from(s.may_sched) << 1
            | u8::from(s.may_halt) << 2
            | u8::from(s.may_native) << 3
            | u8::from(s.recursive) << 4;
        buf.put_u8(flags);
        put_u16_set(&mut buf, &s.node_reads);
        put_u16_set(&mut buf, &s.node_writes);
        put_u16_set(&mut buf, &s.node_must_writes);
        put_u16_set(&mut buf, &s.calls);
        // Options as 0 = None, n+1 = Some(n).
        put_varint(&mut buf, s.ops_bound.map_or(0, |b| b.saturating_add(1)));
        put_varint(&mut buf, s.exact_ops.map_or(0, |b| b as u64 + 1));
        put_varint(&mut buf, s.pure_loops.len() as u64);
        for &pc in &s.pure_loops {
            put_varint(&mut buf, pc as u64);
        }
        buf.put_u8(s.ret_kind as u8);
    }
    buf.freeze()
}

/// Decode effect summaries.
///
/// # Errors
///
/// [`VmError::Decode`] on malformed input.
pub fn decode_summaries(mut buf: Bytes) -> Result<SummaryTable, VmError> {
    let nf = get_varint(&mut buf)? as usize;
    if nf > u16::MAX as usize {
        return Err(err("too many summaries"));
    }
    let mut funcs = Vec::with_capacity(nf);
    for _ in 0..nf {
        if buf.remaining() < 2 {
            return Err(err("truncated summary"));
        }
        let hop = match buf.get_u8() {
            0 => HopBehavior::HopFree,
            1 => HopBehavior::AtMostOnce,
            2 => HopBehavior::MayNavigate,
            t => return Err(err(&format!("bad hop behavior {t}"))),
        };
        let flags = buf.get_u8();
        if flags >= 1 << 5 {
            return Err(err("bad summary flags"));
        }
        let node_reads = get_u16_set(&mut buf)?;
        let node_writes = get_u16_set(&mut buf)?;
        let node_must_writes = get_u16_set(&mut buf)?;
        let calls = get_u16_set(&mut buf)?;
        let ops_bound = match get_varint(&mut buf)? {
            0 => None,
            n => Some(n - 1),
        };
        let exact_ops = match get_varint(&mut buf)? {
            0 => None,
            n if n <= u64::from(u32::MAX) => Some((n - 1) as u32),
            _ => return Err(err("exact_ops out of range")),
        };
        let nl = get_varint(&mut buf)? as usize;
        if nl > 1 << 24 {
            return Err(err("absurd pure-loop count"));
        }
        let mut pure_loops = std::collections::BTreeSet::new();
        for _ in 0..nl {
            let pc = get_varint(&mut buf)?;
            if pc > u64::from(u32::MAX) {
                return Err(err("pure-loop pc out of range"));
            }
            pure_loops.insert(pc as u32);
        }
        if !buf.has_remaining() {
            return Err(err("truncated summary"));
        }
        let ret_kind = match buf.get_u8() {
            0 => SumKind::Top,
            1 => SumKind::Null,
            2 => SumKind::Bool,
            3 => SumKind::Int,
            4 => SumKind::Float,
            5 => SumKind::Str,
            6 => SumKind::Mat,
            7 => SumKind::Blob,
            8 => SumKind::Arr,
            9 => SumKind::Link,
            t => return Err(err(&format!("bad summary kind {t}"))),
        };
        funcs.push(FnSummary {
            hop,
            may_create: flags & 1 != 0,
            may_sched: flags & 2 != 0,
            may_halt: flags & 4 != 0,
            may_native: flags & 8 != 0,
            recursive: flags & 16 != 0,
            node_reads,
            node_writes,
            node_must_writes,
            calls,
            ops_bound,
            exact_ops,
            pure_loops,
            ret_kind,
        });
    }
    if buf.has_remaining() {
        return Err(err("trailing bytes after summaries"));
    }
    Ok(SummaryTable { funcs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::Builder;

    #[test]
    fn summaries_round_trip() {
        let mut s = FnSummary {
            hop: HopBehavior::AtMostOnce,
            may_create: true,
            may_halt: true,
            recursive: true,
            ops_bound: Some(17),
            exact_ops: Some(4),
            ret_kind: SumKind::Float,
            ..Default::default()
        };
        s.node_reads.insert(3);
        s.node_writes.extend([1, 9]);
        s.node_must_writes.insert(9);
        s.calls.insert(0);
        s.pure_loops.extend([4, 40]);
        let t = SummaryTable { funcs: vec![FnSummary::default(), s] };
        let bytes = encode_summaries(&t);
        assert_eq!(decode_summaries(bytes).unwrap(), t);
    }

    #[test]
    fn summaries_reject_trailing_and_truncated_bytes() {
        let t = SummaryTable { funcs: vec![FnSummary::default()] };
        let good = encode_summaries(&t);
        let mut long = BytesMut::new();
        long.put_slice(&good);
        long.put_u8(0);
        assert!(decode_summaries(long.freeze()).is_err());
        let short = good.slice(0..good.len() - 1);
        assert!(decode_summaries(short).is_err());
    }

    fn sample_values() -> Vec<Value> {
        vec![
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(0),
            Value::Int(-1),
            Value::Int(i64::MAX),
            Value::Int(i64::MIN),
            Value::Float(3.25),
            Value::Float(-0.0),
            Value::Float(f64::INFINITY),
            Value::str(""),
            Value::str("héllo ∆"),
            Value::Mat(Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])),
            Value::Blob(Bytes::from(vec![0u8, 1, 2, 255])),
            Value::Arr(std::sync::Arc::new(vec![
                Value::Int(1),
                Value::str("two"),
                Value::Arr(std::sync::Arc::new(vec![Value::Null])),
            ])),
            Value::Link(LinkInstance(u64::MAX)),
        ]
    }

    #[test]
    fn value_round_trips() {
        for v in sample_values() {
            let mut buf = BytesMut::new();
            put_value(&mut buf, &v);
            let mut bytes = buf.freeze();
            let back = get_value(&mut bytes).unwrap();
            assert_eq!(back, v, "round trip failed for {v:?}");
            assert!(!bytes.has_remaining());
        }
    }

    #[test]
    fn messenger_round_trip() {
        let mut b = Builder::new();
        let f = b.function("main", 1, 2, vec![Op::Ret]);
        let p = b.finish(f);
        let mut m =
            MessengerState::launch(&p, MessengerId::compose(3, 17), &[Value::Int(5)]).unwrap();
        m.vtime = Vt::new(2.5);
        m.frames[0].stack.push(Value::str("pending"));
        m.frames.push(Frame {
            func: FuncId(0),
            pc: 1,
            locals: vec![Value::Mat(Matrix::zeros(2, 2))],
            stack: vec![],
        });
        let bytes = encode_messenger(&m);
        let back = decode_messenger(bytes).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn truncation_never_panics() {
        let mut b = Builder::new();
        let f = b.function("main", 0, 0, vec![Op::Halt]);
        let p = b.finish(f);
        let m = MessengerState::launch(&p, MessengerId(1), &[]).unwrap();
        let full = encode_messenger(&m);
        for cut in 0..full.len() {
            let slice = full.slice(..cut);
            assert!(decode_messenger(slice).is_err(), "cut at {cut} decoded");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut b = Builder::new();
        let f = b.function("main", 0, 0, vec![Op::Halt]);
        let p = b.finish(f);
        let m = MessengerState::launch(&p, MessengerId(1), &[]).unwrap();
        let mut buf = BytesMut::from(&encode_messenger(&m)[..]);
        buf.put_u8(0xAB);
        assert!(decode_messenger(buf.freeze()).is_err());
    }

    fn rich_program() -> Program {
        let mut b = Builder::new();
        let c = b.constant(Value::str("row"));
        let n = b.constant(Value::Int(12));
        let hs = b.hop_spec(HopSpec { ln: NodePat::Expr, ll: LinkPat::Expr, ldir: Dir::Backward });
        let cs = b.create_spec(CreateSpec {
            items: vec![CreateItem {
                ln: NamePat::Expr,
                ll: NamePat::Unnamed,
                ldir: Dir::Forward,
                dn: NodePat::Expr,
                dl: LinkPat::Wild,
                ddir: Dir::Any,
            }],
            all: true,
        });
        let helper = b.function("helper", 2, 1, vec![Op::LoadLocal(0), Op::Ret]);
        let main = b.function(
            "main",
            0,
            3,
            vec![
                Op::Const(c),
                Op::Const(n),
                Op::Call { f: helper.0, argc: 2 },
                Op::Pop,
                Op::LoadNet(NetVar::Last),
                Op::Pop,
                Op::Const(c),
                Op::Const(c),
                Op::Hop(hs),
                Op::Const(c),
                Op::Const(n),
                Op::Create(cs),
                Op::Jump(-3),
                Op::JumpIfFalse(2),
                Op::JumpIfTruePeek(1),
                Op::JumpIfFalsePeek(-1),
                Op::CallNative { name: c, argc: 0 },
                Op::Delete(hs),
                Op::SchedAbs,
                Op::SchedDlt,
                Op::MakeArr,
                Op::IndexGet,
                Op::IndexSet,
                Op::Dup,
                Op::Pop,
                Op::Neg,
                Op::Not,
                Op::Eq,
                Op::Ne,
                Op::Lt,
                Op::Le,
                Op::Gt,
                Op::Ge,
                Op::Mod,
                Op::Halt,
            ],
        );
        b.finish(main)
    }

    #[test]
    fn program_round_trip_preserves_id() {
        let p = rich_program();
        let bytes = encode_program(&p);
        let back = decode_program(bytes).unwrap();
        assert_eq!(back, p);
        assert_eq!(back.id(), p.id());
    }

    #[test]
    fn program_truncation_never_panics() {
        let p = rich_program();
        let full = encode_program(&p);
        for cut in 0..full.len() {
            assert!(decode_program(full.slice(..cut)).is_err(), "cut {cut} decoded");
        }
    }

    #[test]
    fn nan_vtime_rejected() {
        let mut buf = BytesMut::new();
        put_varint(&mut buf, 1); // id
        put_varint(&mut buf, 2); // program
        put_f64(&mut buf, f64::NAN);
        buf.put_u8(0);
        put_varint(&mut buf, 0);
        assert!(decode_messenger(buf.freeze()).is_err());
    }

    #[test]
    fn varint_boundaries() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut buf = BytesMut::new();
            put_varint(&mut buf, v);
            let mut b = buf.freeze();
            assert_eq!(get_varint(&mut b).unwrap(), v);
        }
    }

    #[test]
    fn zigzag_round_trip() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 123456, -654321] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }
}
