//! Operator semantics shared by both execution engines.
//!
//! The interpreter ([`crate::interp`]) and the closure compiler
//! ([`crate::compile`]) must agree on every operator down to the last
//! bit — the differential suite (`tests/diff_props.rs`) checks that, but
//! sharing one implementation is what makes the property boring.
//! Historically the `+` string-concatenation rule lived in a special
//! case *before* the interpreter's generic arithmetic match (and only
//! there); it is now one arm of the single [`arith`] match that both
//! engines call.

use crate::bytecode::Op;
use crate::error::VmError;
use crate::value::Value;

/// Pop the operand stack, surfacing underflow as corrupt code.
pub(crate) fn pop(stack: &mut Vec<Value>) -> Result<Value, VmError> {
    stack.pop().ok_or(VmError::Corrupt("operand stack underflow"))
}

/// Binary arithmetic (`+ - * / %`) over messenger values.
pub(crate) fn arith(op: &Op, a: Value, b: Value) -> Result<Value, VmError> {
    match (op, &a, &b) {
        // String concatenation with `+` when either side is a string
        // (used to build node/link names). NULL concatenates as the
        // empty string.
        (Op::Add, Value::Str(_), _) | (Op::Add, _, Value::Str(_)) => {
            let show = |v: &Value| match v {
                Value::Null => String::new(),
                other => other.to_string(),
            };
            Ok(Value::str(format!("{}{}", show(&a), show(&b))))
        }
        _ => {
            // Never-assigned node variables read as NULL; arithmetically
            // NULL is zero, so scripts can use node variables as
            // counters without an initialization pass.
            let a = if a == Value::Null { Value::Int(0) } else { a };
            let b = if b == Value::Null { Value::Int(0) } else { b };
            match (&a, &b) {
                (Value::Int(x), Value::Int(y)) => {
                    let (x, y) = (*x, *y);
                    Ok(Value::Int(match op {
                        Op::Add => x.wrapping_add(y),
                        Op::Sub => x.wrapping_sub(y),
                        Op::Mul => x.wrapping_mul(y),
                        Op::Div => {
                            if y == 0 {
                                return Err(VmError::DivisionByZero);
                            }
                            x.wrapping_div(y)
                        }
                        Op::Mod => {
                            if y == 0 {
                                return Err(VmError::DivisionByZero);
                            }
                            x.wrapping_rem(y)
                        }
                        _ => unreachable!(),
                    }))
                }
                _ => {
                    let x = a.as_float()?;
                    let y = b.as_float()?;
                    Ok(Value::Float(match op {
                        Op::Add => x + y,
                        Op::Sub => x - y,
                        Op::Mul => x * y,
                        Op::Div => x / y,
                        Op::Mod => x % y,
                        _ => unreachable!(),
                    }))
                }
            }
        }
    }
}

/// Ordered comparison (`< <= > >=`) over messenger values.
pub(crate) fn compare(op: &Op, a: &Value, b: &Value) -> Result<Value, VmError> {
    use std::cmp::Ordering;
    // NULL orders as zero (see `arith`).
    let a = if *a == Value::Null { &Value::Int(0) } else { a };
    let b = if *b == Value::Null { &Value::Int(0) } else { b };
    let ord: Ordering = match (a, b) {
        (Value::Str(x), Value::Str(y)) => x.cmp(y),
        _ => {
            let x = a.as_float()?;
            let y = b.as_float()?;
            x.total_cmp(&y)
        }
    };
    Ok(Value::Bool(match op {
        Op::Lt => ord == Ordering::Less,
        Op::Le => ord != Ordering::Greater,
        Op::Gt => ord == Ordering::Greater,
        Op::Ge => ord != Ordering::Less,
        _ => unreachable!(),
    }))
}

/// Arithmetic negation: integers wrap, everything else promotes to float.
pub(crate) fn neg(a: Value) -> Result<Value, VmError> {
    Ok(match a {
        Value::Int(i) => Value::Int(i.wrapping_neg()),
        other => Value::Float(-other.as_float()?),
    })
}

/// Relative jump targets: offsets are from the *next* instruction.
pub(crate) fn jump(pc: u32, off: i32) -> u32 {
    (pc as i64 + off as i64) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_concatenates_when_either_side_is_a_string() {
        let v = arith(&Op::Add, Value::str("n"), Value::Int(3)).unwrap();
        assert_eq!(v, Value::str("n3"));
        let v = arith(&Op::Add, Value::Null, Value::str("x")).unwrap();
        assert_eq!(v, Value::str("x"));
    }

    #[test]
    fn null_is_zero_in_arithmetic_and_comparison() {
        assert_eq!(arith(&Op::Add, Value::Null, Value::Int(2)).unwrap(), Value::Int(2));
        assert_eq!(compare(&Op::Lt, &Value::Null, &Value::Int(1)).unwrap(), Value::Bool(true));
    }

    #[test]
    fn division_by_zero_is_a_runtime_error() {
        assert!(matches!(
            arith(&Op::Div, Value::Int(1), Value::Int(0)),
            Err(VmError::DivisionByZero)
        ));
        assert!(matches!(
            arith(&Op::Mod, Value::Int(1), Value::Int(0)),
            Err(VmError::DivisionByZero)
        ));
    }

    #[test]
    fn neg_wraps_ints_and_promotes_floats() {
        assert_eq!(neg(Value::Int(i64::MIN)).unwrap(), Value::Int(i64::MIN));
        assert_eq!(neg(Value::Float(1.5)).unwrap(), Value::Float(-1.5));
    }
}
