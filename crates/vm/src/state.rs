//! Messenger state: the migrating entity itself.

use crate::bytecode::{FuncId, Program, ProgramId};
use crate::error::VmError;
use crate::value::Value;

/// Cluster-unique messenger identity. The high 16 bits are the daemon
/// that created the messenger, the low 48 a per-daemon counter; ids stay
/// unique without any coordination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct MessengerId(pub u64);

impl MessengerId {
    /// Compose an id from a creating daemon and its local counter.
    pub fn compose(daemon: u16, counter: u64) -> Self {
        debug_assert!(counter < (1 << 48));
        MessengerId(((daemon as u64) << 48) | counter)
    }

    /// The daemon that created this messenger.
    pub fn creator(self) -> u16 {
        (self.0 >> 48) as u16
    }
}

impl From<u64> for MessengerId {
    fn from(v: u64) -> Self {
        MessengerId(v)
    }
}

impl std::fmt::Display for MessengerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "m{}/{}", self.creator(), self.0 & 0xFFFF_FFFF_FFFF)
    }
}

/// Virtual time (§2.2): a totally ordered f64. The matrix-multiplication
/// application schedules at half ticks (0.5, 1.5, …), hence a float
/// rather than an integer tick counter.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vt(f64);

impl Vt {
    /// Virtual time zero — where injected messengers start.
    pub const ZERO: Vt = Vt(0.0);
    /// A value later than every legal virtual time.
    pub const INFINITY: Vt = Vt(f64::INFINITY);

    /// Wrap a float as a virtual time.
    ///
    /// # Panics
    ///
    /// Panics on NaN.
    pub fn new(t: f64) -> Self {
        assert!(!t.is_nan(), "virtual time cannot be NaN");
        Vt(t)
    }

    /// The raw float.
    pub fn as_f64(self) -> f64 {
        self.0
    }

    /// `self + dt`, saturating at NaN-free arithmetic.
    ///
    /// # Panics
    ///
    /// Panics if the result is NaN (e.g. ∞ + −∞).
    pub fn plus(self, dt: f64) -> Vt {
        Vt::new(self.0 + dt)
    }

    /// The smaller of two virtual times.
    pub fn min(self, other: Vt) -> Vt {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The larger of two virtual times.
    pub fn max(self, other: Vt) -> Vt {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Eq for Vt {}
#[allow(clippy::derive_ord_xor_partial_ord)]
impl PartialOrd for Vt {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Vt {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl From<f64> for Vt {
    fn from(t: f64) -> Self {
        Vt::new(t)
    }
}

impl std::fmt::Display for Vt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "vt{}", self.0)
    }
}

/// One call frame: function, program counter, local slots (messenger
/// variables and parameters), and the operand stack.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// The function being executed.
    pub func: FuncId,
    /// Index of the *next* instruction to execute.
    pub pc: u32,
    /// Local slots. Parameters occupy the first `arity` slots.
    pub locals: Vec<Value>,
    /// Operand stack.
    pub stack: Vec<Value>,
}

impl Frame {
    /// A fresh frame for `func` with arguments bound to the first slots
    /// and the rest NULL.
    pub fn activate(program: &Program, func: FuncId, args: &[Value]) -> Result<Frame, VmError> {
        let f = program.func(func);
        if args.len() != f.arity as usize {
            return Err(VmError::Arity {
                func: f.name.clone(),
                expected: f.arity,
                got: args.len() as u8,
            });
        }
        let mut locals = vec![Value::Null; f.n_slots as usize];
        locals[..args.len()].clone_from_slice(args);
        Ok(Frame { func, pc: 0, locals, stack: Vec::new() })
    }
}

/// The complete state of a Messenger: everything that migrates.
///
/// This is the paper's autonomous object, flattened into plain data. A
/// `hop` serializes this struct, ships it, and the receiving daemon
/// resumes interpretation at `frames.last().pc`. Cloning it replicates
/// the messenger (multi-link hops, `create(ALL)`); saving a copy enables
/// Time-Warp rollback.
#[derive(Debug, Clone, PartialEq)]
pub struct MessengerState {
    /// Cluster-unique identity. Replicas receive fresh ids from the
    /// daemon that performs the replication.
    pub id: MessengerId,
    /// Content hash of the program to interpret.
    pub program: ProgramId,
    /// The call stack. Never empty while the messenger is alive.
    pub frames: Vec<Frame>,
    /// Current virtual time (advanced by `M_sched_time_*`).
    pub vtime: Vt,
    /// Set when this is an anti-messenger chasing a positive one
    /// (optimistic virtual time, §2.2).
    pub anti: bool,
}

impl MessengerState {
    /// A fresh messenger at the entry function of `program`, virtual
    /// time 0.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::Arity`] if `args` does not match the entry
    /// function's parameter count.
    pub fn launch(program: &Program, id: MessengerId, args: &[Value]) -> Result<Self, VmError> {
        Ok(MessengerState {
            id,
            program: program.id(),
            frames: vec![Frame::activate(program, program.entry, args)?],
            vtime: Vt::ZERO,
            anti: false,
        })
    }

    /// Approximate serialized size in bytes — the migration payload a
    /// `hop` pays on the wire (excluding code, which is fetched from the
    /// shared code registry).
    pub fn wire_bytes(&self) -> u64 {
        let mut n = 8 + 8 + 8 + 2; // id, program, vtime, flags/counters
        for f in &self.frames {
            n += 8; // func, pc
            n += f.locals.iter().map(Value::wire_bytes).sum::<u64>();
            n += f.stack.iter().map(Value::wire_bytes).sum::<u64>();
        }
        n
    }

    /// The currently active frame.
    ///
    /// # Panics
    ///
    /// Panics if the messenger has terminated (empty call stack).
    pub fn frame(&self) -> &Frame {
        self.frames.last().expect("messenger has no active frame")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::{Builder, Op};

    fn prog2() -> Program {
        let mut b = Builder::new();
        let f = b.function("main", 2, 1, vec![Op::Ret]);
        b.finish(f)
    }

    #[test]
    fn messenger_id_composition() {
        let id = MessengerId::compose(7, 42);
        assert_eq!(id.creator(), 7);
        assert_eq!(id.0 & 0xFFFF_FFFF_FFFF, 42);
        assert_eq!(id.to_string(), "m7/42");
    }

    #[test]
    fn vt_total_order() {
        let a = Vt::new(0.5);
        let b = Vt::new(1.0);
        assert!(a < b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert!(Vt::ZERO < Vt::INFINITY);
        assert_eq!(Vt::new(1.0).plus(0.5), Vt::new(1.5));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn vt_rejects_nan() {
        let _ = Vt::new(f64::NAN);
    }

    #[test]
    fn launch_binds_args() {
        let p = prog2();
        let m =
            MessengerState::launch(&p, MessengerId(1), &[Value::Int(3), Value::str("s")]).unwrap();
        assert_eq!(m.frames.len(), 1);
        assert_eq!(m.frame().locals, vec![Value::Int(3), Value::str("s"), Value::Null]);
        assert_eq!(m.vtime, Vt::ZERO);
        assert!(!m.anti);
    }

    #[test]
    fn launch_checks_arity() {
        let p = prog2();
        let err = MessengerState::launch(&p, MessengerId(1), &[]).unwrap_err();
        assert!(matches!(err, VmError::Arity { expected: 2, got: 0, .. }));
    }

    #[test]
    fn wire_bytes_grow_with_payload() {
        let p = prog2();
        let small = MessengerState::launch(&p, MessengerId(1), &[Value::Int(1), Value::Int(2)])
            .unwrap()
            .wire_bytes();
        let big = MessengerState::launch(
            &p,
            MessengerId(1),
            &[Value::Mat(crate::value::Matrix::zeros(100, 100)), Value::Int(2)],
        )
        .unwrap()
        .wire_bytes();
        assert!(big > small + 8 * 100 * 100 - 64);
    }
}
