//! Native ("precompiled C") functions.
//!
//! The paper's third statement category: "Function invocation statements
//! … permit the dynamic loading and invocation of precompiled C
//! functions to be executed in native mode" (§2.1). Here natives are
//! Rust closures registered under a name; applications (Mandelbrot,
//! matrix multiplication) register `compute`, `next_task`,
//! `block_multiply`, etc.
//!
//! A native runs atomically within the messenger's current execution
//! segment (the daemon never interrupts it — the paper's critical-section
//! guarantee) and reports its *cost* through [`NativeCtx::charge`] so the
//! simulation platform can account for the work.

use std::collections::HashMap;
use std::sync::Arc;

use crate::error::VmError;
use crate::state::{MessengerId, Vt};
use crate::value::Value;

/// What a native function can see and do: the node it runs at, shared
/// node variables, and cost accounting.
pub trait NativeCtx {
    /// Read a node variable of the current logical node (NULL if unset).
    fn node_var(&mut self, name: &str) -> Value;
    /// Write a node variable of the current logical node.
    fn set_node_var(&mut self, name: &str, v: Value);
    /// Charge `ref_ns` reference-nanoseconds of CPU work for this
    /// segment (no-op on the threaded platform, where time is real).
    fn charge(&mut self, ref_ns: u64);
    /// The daemon (host) this node lives on.
    fn daemon(&self) -> u16;
    /// The name of the current logical node.
    fn node_name(&self) -> Value;
    /// The calling messenger's id.
    fn messenger(&self) -> MessengerId;
    /// The calling messenger's virtual time.
    fn vtime(&self) -> Vt;
}

/// A registered native function.
pub type NativeFn =
    Arc<dyn Fn(&mut dyn NativeCtx, &[Value]) -> Result<Value, String> + Send + Sync>;

/// Name → native function table, shared by all daemons of a cluster
/// (they all "link against the same precompiled functions").
#[derive(Clone, Default)]
pub struct NativeRegistry {
    map: HashMap<String, NativeFn>,
}

impl std::fmt::Debug for NativeRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut names: Vec<_> = self.map.keys().collect();
        names.sort();
        f.debug_struct("NativeRegistry").field("names", &names).finish()
    }
}

impl NativeRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        NativeRegistry::default()
    }

    /// Register `f` under `name`, replacing any previous registration.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        f: impl Fn(&mut dyn NativeCtx, &[Value]) -> Result<Value, String> + Send + Sync + 'static,
    ) {
        self.map.insert(name.into(), Arc::new(f));
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.map.contains_key(name)
    }

    /// Registered names, sorted (for diagnostics).
    pub fn names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.map.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }

    /// Invoke a native.
    ///
    /// # Errors
    ///
    /// [`VmError::UnknownNative`] if unregistered; [`VmError::Native`] if
    /// the function itself fails.
    pub fn call(
        &self,
        ctx: &mut dyn NativeCtx,
        name: &str,
        args: &[Value],
    ) -> Result<Value, VmError> {
        let f = self.map.get(name).ok_or_else(|| VmError::UnknownNative(name.to_string()))?.clone();
        f(ctx, args).map_err(VmError::Native)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Ctx {
        vars: HashMap<String, Value>,
        charged: u64,
    }
    impl NativeCtx for Ctx {
        fn node_var(&mut self, name: &str) -> Value {
            self.vars.get(name).cloned().unwrap_or_default()
        }
        fn set_node_var(&mut self, name: &str, v: Value) {
            self.vars.insert(name.to_string(), v);
        }
        fn charge(&mut self, ref_ns: u64) {
            self.charged += ref_ns;
        }
        fn daemon(&self) -> u16 {
            3
        }
        fn node_name(&self) -> Value {
            Value::str("init")
        }
        fn messenger(&self) -> MessengerId {
            MessengerId(9)
        }
        fn vtime(&self) -> Vt {
            Vt::ZERO
        }
    }

    #[test]
    fn register_and_call() {
        let mut reg = NativeRegistry::new();
        reg.register("bump", |ctx, args| {
            let by = args[0].as_int().map_err(|e| e.to_string())?;
            let cur = ctx.node_var("n").as_int().unwrap_or(0);
            ctx.set_node_var("n", Value::Int(cur + by));
            ctx.charge(100);
            Ok(Value::Int(cur + by))
        });
        assert!(reg.contains("bump"));
        let mut ctx = Ctx { vars: HashMap::new(), charged: 0 };
        let v = reg.call(&mut ctx, "bump", &[Value::Int(5)]).unwrap();
        assert_eq!(v, Value::Int(5));
        let v = reg.call(&mut ctx, "bump", &[Value::Int(2)]).unwrap();
        assert_eq!(v, Value::Int(7));
        assert_eq!(ctx.charged, 200);
    }

    #[test]
    fn unknown_native_error() {
        let reg = NativeRegistry::new();
        let mut ctx = Ctx { vars: HashMap::new(), charged: 0 };
        assert!(matches!(reg.call(&mut ctx, "nope", &[]), Err(VmError::UnknownNative(_))));
    }

    #[test]
    fn native_failure_is_wrapped() {
        let mut reg = NativeRegistry::new();
        reg.register("fail", |_, _| Err("boom".to_string()));
        let mut ctx = Ctx { vars: HashMap::new(), charged: 0 };
        assert_eq!(reg.call(&mut ctx, "fail", &[]), Err(VmError::Native("boom".to_string())));
    }

    #[test]
    fn names_sorted() {
        let mut reg = NativeRegistry::new();
        reg.register("b", |_, _| Ok(Value::Null));
        reg.register("a", |_, _| Ok(Value::Null));
        assert_eq!(reg.names(), vec!["a", "b"]);
    }
}
