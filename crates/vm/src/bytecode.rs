//! Bytecode definitions: operations, destination specifications for the
//! navigational statements, and compiled [`Program`]s.
//!
//! Programs are content-addressed by [`ProgramId`] (a 64-bit FNV hash of
//! the serialized program). A migrating Messenger normally carries only
//! this id — the paper's shared-file-system optimization: "MESSENGERS
//! code does not need to be carried between nodes but can be loaded as
//! necessary" (§4). The daemon-side code registry lives in `msgr-core`.

use crate::value::Value;

/// Index of a function within its [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FuncId(pub u16);

/// Content hash identifying a compiled program cluster-wide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProgramId(pub u64);

impl std::fmt::Display for ProgramId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "prog#{:016x}", self.0)
    }
}

/// The predefined, read-only network variables (§2.1), prefixed `$` in
/// MSGR-C source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetVar {
    /// `$address` — the daemon (host) the messenger currently runs on.
    Address,
    /// `$last` — the link instance traversed to enter the current node.
    Last,
    /// `$node` — the name of the current logical node.
    Node,
    /// `$time` — the messenger's current virtual time.
    Time,
}

/// Link direction constraint in a destination specification: the paper's
/// `+` (forward), `-` (backward), `*` (either).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Dir {
    /// Follow the link along its orientation (`+`).
    Forward,
    /// Follow the link against its orientation (`-`).
    Backward,
    /// Either way (`*`, the default).
    #[default]
    Any,
}

/// How a node position in a `hop`/`delete` specification is matched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NodePat {
    /// `*` — any node (the default).
    #[default]
    Wild,
    /// An expression; its value (at the top of the operand stack at
    /// execution time) is compared against the node name.
    Expr,
}

/// How a link in a `hop`/`delete` specification is matched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LinkPat {
    /// `*` — any link (the default).
    #[default]
    Wild,
    /// `~` — only unnamed links.
    Unnamed,
    /// An expression: a string/int names the link; a link instance (from
    /// `$last`) matches exactly that link.
    Expr,
    /// `virtual` — a direct jump to the node named by `ln`, regardless
    /// of links.
    Virtual,
}

/// Destination specification for `hop` and `delete` (§2.1):
/// `hop(ln = n; ll = l; ldir = d)`.
///
/// Expression operands are pushed onto the operand stack (ln first, then
/// ll) before the `Hop`/`Delete` instruction executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HopSpec {
    /// Logical-node pattern.
    pub ln: NodePat,
    /// Logical-link pattern.
    pub ll: LinkPat,
    /// Link direction.
    pub ldir: Dir,
}

impl HopSpec {
    /// Number of stack operands this spec consumes.
    pub fn operand_count(&self) -> usize {
        (self.ln == NodePat::Expr) as usize + (self.ll == LinkPat::Expr) as usize
    }
}

/// Naming of a created node or link: the paper's `~` (unnamed) or an
/// expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NamePat {
    /// `~` — unnamed (the default).
    #[default]
    Unnamed,
    /// Named by an expression operand.
    Expr,
}

/// One `(n_i, l_i, d_i, N_i, L_i, D_i)` item of a `create` statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CreateItem {
    /// New logical node name.
    pub ln: NamePat,
    /// Connecting logical link name.
    pub ll: NamePat,
    /// Orientation of the connecting link (current node → new node is
    /// `Forward`).
    pub ldir: Dir,
    /// Daemon-node pattern choosing where the new node is placed.
    pub dn: NodePat,
    /// Daemon-link pattern (matched against the daemon network).
    pub dl: LinkPat,
    /// Daemon-link direction.
    pub ddir: Dir,
}

impl CreateItem {
    /// Number of stack operands this item consumes
    /// (pushed in order: ln, ll, dn, dl).
    pub fn operand_count(&self) -> usize {
        (self.ln == NamePat::Expr) as usize
            + (self.ll == NamePat::Expr) as usize
            + (self.dn == NodePat::Expr) as usize
            + (self.dl == LinkPat::Expr) as usize
    }
}

/// A full `create` statement: one or more items plus the optional `ALL`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CreateSpec {
    /// The `(n_i, l_i, d_i; N_i, L_i, D_i)` items.
    pub items: Vec<CreateItem>,
    /// With `ALL`, each item is instantiated on *every* matching daemon
    /// and the messenger replicates to all new nodes.
    pub all: bool,
}

impl CreateSpec {
    /// Total stack operands consumed by the statement.
    pub fn operand_count(&self) -> usize {
        self.items.iter().map(CreateItem::operand_count).sum()
    }
}

/// One bytecode operation of the stack machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Push `consts[i]`.
    Const(u16),
    /// Push local slot `i` of the current frame.
    LoadLocal(u16),
    /// Pop into local slot `i`.
    StoreLocal(u16),
    /// Push the node variable named `consts[i]` (NULL if absent).
    LoadNode(u16),
    /// Pop into the node variable named `consts[i]`.
    StoreNode(u16),
    /// Push a network variable.
    LoadNet(NetVar),
    /// Duplicate the top of stack.
    Dup,
    /// Discard the top of stack.
    Pop,
    /// Arithmetic / logic (pop 2, push 1; `Neg`/`Not` pop 1).
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division. Integer division truncates; division by zero is a
    /// runtime error.
    Div,
    /// Remainder (C semantics: sign of the dividend).
    Mod,
    /// Arithmetic negation.
    Neg,
    /// Logical not (C truthiness).
    Not,
    /// `==` (loose equality; NULL-safe).
    Eq,
    /// `!=`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// Unconditional relative jump (offset from the *next* instruction).
    Jump(i32),
    /// Pop; jump if falsy.
    JumpIfFalse(i32),
    /// Peek; jump if truthy *without popping* (for `||`).
    JumpIfTruePeek(i32),
    /// Peek; jump if falsy *without popping* (for `&&`).
    JumpIfFalsePeek(i32),
    /// Call user function `f` with `argc` stack arguments.
    Call {
        /// Callee function index.
        f: u16,
        /// Argument count popped from the stack.
        argc: u8,
    },
    /// Call the native function named `consts[name]`.
    CallNative {
        /// Constant-pool index of the function name.
        name: u16,
        /// Argument count popped from the stack.
        argc: u8,
    },
    /// Return from the current frame (return value on top of stack).
    Ret,
    /// Yield: `hop(hop_specs[i])`.
    Hop(u16),
    /// Yield: `create(create_specs[i])`.
    Create(u16),
    /// Yield: `delete(hop_specs[i])`.
    Delete(u16),
    /// Yield: suspend until absolute virtual time (pop 1).
    SchedAbs,
    /// Yield: suspend for a virtual-time delta (pop 1).
    SchedDlt,
    /// Yield: terminate this messenger immediately.
    Halt,
    /// Pop default value, pop size → push an array of `size` copies of
    /// the default.
    MakeArr,
    /// Pop index, pop array → push element.
    IndexGet,
    /// Pop value, pop index, pop array → push the array with
    /// `arr[index] = value` applied (copy-on-write).
    IndexSet,
}

/// A compiled function.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name (for diagnostics and entry-point lookup).
    pub name: String,
    /// Number of parameters (bound to the first `arity` local slots).
    pub arity: u8,
    /// Total local slots, including parameters.
    pub n_slots: u16,
    /// The code. Execution falls off the end as an implicit
    /// `return NULL`.
    pub code: Vec<Op>,
    /// Source line of each instruction, parallel to `code`. Empty when
    /// the program was assembled without debug info (hand-built
    /// programs); the verifier and `msgr-lint` use it to attach source
    /// spans to diagnostics.
    pub lines: Vec<u32>,
}

impl Function {
    /// The source line of the instruction at `pc`, if debug info is
    /// present.
    ///
    /// Lowering emits synthetic instructions (loop back-edges, patch
    /// jumps, implicit returns) with line entry `0` — no source line of
    /// their own. Those resolve to the nearest *preceding* instruction
    /// with real debug info: the statement whose lowering produced
    /// them, which is always in the same basic block or the block being
    /// closed. Returns `None` only when `pc` is out of range or no
    /// instruction at or before it carries a line.
    pub fn line_at(&self, pc: usize) -> Option<u32> {
        let upto = self.lines.get(..=pc)?;
        upto.iter().rev().copied().find(|&l| l != 0)
    }
}

/// A compiled MSGR-C program: constant pool, functions, navigation
/// specs, and the entry function.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Constant pool.
    pub consts: Vec<Value>,
    /// Functions; `FuncId` indexes this.
    pub funcs: Vec<Function>,
    /// `hop`/`delete` destination specifications.
    pub hop_specs: Vec<HopSpec>,
    /// `create` specifications.
    pub create_specs: Vec<CreateSpec>,
    /// The function a freshly injected messenger starts in.
    pub entry: FuncId,
}

impl Program {
    /// The program's content hash (FNV-1a over a canonical rendering).
    pub fn id(&self) -> ProgramId {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        };
        eat(format!("{:?}", self.consts).as_bytes());
        eat(format!("{:?}", self.funcs).as_bytes());
        eat(format!("{:?}", self.hop_specs).as_bytes());
        eat(format!("{:?}", self.create_specs).as_bytes());
        eat(&self.entry.0.to_le_bytes());
        ProgramId(h)
    }

    /// Find a function by name.
    pub fn function_named(&self, name: &str) -> Option<FuncId> {
        self.funcs.iter().position(|f| f.name == name).map(|i| FuncId(i as u16))
    }

    /// Look up a function.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range (compiler bug).
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.0 as usize]
    }

    /// Total instruction count across functions (used in size metrics).
    pub fn instruction_count(&self) -> usize {
        self.funcs.iter().map(|f| f.code.len()).sum()
    }

    /// Approximate serialized size of the program in bytes — what a
    /// *carry-code* migration (the WAVE-style ablation) pays per hop.
    pub fn wire_bytes(&self) -> u64 {
        let consts: u64 = self.consts.iter().map(Value::wire_bytes).sum();
        let code: u64 = self.funcs.iter().map(|f| 4 * f.code.len() as u64 + 16).sum();
        let specs = 8 * (self.hop_specs.len() + self.create_specs.len()) as u64;
        consts + code + specs + 16
    }
}

/// Convenience builder for assembling programs by hand (tests,
/// micro-benchmarks; the real front-end is `msgr-lang`).
#[derive(Debug, Default)]
pub struct Builder {
    consts: Vec<Value>,
    funcs: Vec<Function>,
    hop_specs: Vec<HopSpec>,
    create_specs: Vec<CreateSpec>,
}

impl Builder {
    /// An empty builder.
    pub fn new() -> Self {
        Builder::default()
    }

    /// Intern a constant, returning its pool index. Identical constants
    /// are shared.
    pub fn constant(&mut self, v: Value) -> u16 {
        if let Some(i) = self.consts.iter().position(|c| c == &v) {
            return i as u16;
        }
        let i = self.consts.len();
        assert!(i < u16::MAX as usize, "constant pool overflow");
        self.consts.push(v);
        i as u16
    }

    /// Register a hop/delete spec, returning its index.
    pub fn hop_spec(&mut self, spec: HopSpec) -> u16 {
        let i = self.hop_specs.len();
        self.hop_specs.push(spec);
        i as u16
    }

    /// Register a create spec, returning its index.
    pub fn create_spec(&mut self, spec: CreateSpec) -> u16 {
        let i = self.create_specs.len();
        self.create_specs.push(spec);
        i as u16
    }

    /// Add a function; returns its id.
    pub fn function(
        &mut self,
        name: impl Into<String>,
        arity: u8,
        extra_slots: u16,
        code: Vec<Op>,
    ) -> FuncId {
        self.function_with_lines(name, arity, extra_slots, code, Vec::new())
    }

    /// Add a function with a per-instruction source-line table
    /// (parallel to `code`; pass an empty vec for no debug info).
    pub fn function_with_lines(
        &mut self,
        name: impl Into<String>,
        arity: u8,
        extra_slots: u16,
        code: Vec<Op>,
        lines: Vec<u32>,
    ) -> FuncId {
        let id = FuncId(self.funcs.len() as u16);
        self.funcs.push(Function {
            name: name.into(),
            arity,
            n_slots: arity as u16 + extra_slots,
            code,
            lines,
        });
        id
    }

    /// Finish the program with the given entry function.
    pub fn finish(self, entry: FuncId) -> Program {
        assert!((entry.0 as usize) < self.funcs.len(), "entry out of range");
        Program {
            consts: self.consts,
            funcs: self.funcs,
            hop_specs: self.hop_specs,
            create_specs: self.create_specs,
            entry,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Program {
        let mut b = Builder::new();
        let c = b.constant(Value::Int(1));
        let f = b.function("main", 0, 0, vec![Op::Const(c), Op::Ret]);
        b.finish(f)
    }

    #[test]
    fn constants_are_interned() {
        let mut b = Builder::new();
        let a = b.constant(Value::Int(5));
        let c = b.constant(Value::str("x"));
        let d = b.constant(Value::Int(5));
        assert_eq!(a, d);
        assert_ne!(a, c);
    }

    #[test]
    fn program_ids_are_stable_and_content_sensitive() {
        let p1 = tiny();
        let p2 = tiny();
        assert_eq!(p1.id(), p2.id());
        let mut b = Builder::new();
        let c = b.constant(Value::Int(2));
        let f = b.function("main", 0, 0, vec![Op::Const(c), Op::Ret]);
        let p3 = b.finish(f);
        assert_ne!(p1.id(), p3.id());
    }

    #[test]
    fn function_lookup() {
        let mut b = Builder::new();
        let f = b.function("alpha", 0, 0, vec![Op::Ret]);
        let g = b.function("beta", 2, 1, vec![Op::Ret]);
        let p = b.finish(f);
        assert_eq!(p.function_named("beta"), Some(g));
        assert_eq!(p.function_named("nope"), None);
        assert_eq!(p.func(g).n_slots, 3);
    }

    #[test]
    fn spec_operand_counts() {
        let s = HopSpec { ln: NodePat::Expr, ll: LinkPat::Expr, ldir: Dir::Any };
        assert_eq!(s.operand_count(), 2);
        assert_eq!(HopSpec::default().operand_count(), 0);
        let c = CreateSpec {
            items: vec![
                CreateItem { ln: NamePat::Expr, ll: NamePat::Expr, ..Default::default() },
                CreateItem::default(),
            ],
            all: true,
        };
        assert_eq!(c.operand_count(), 2);
    }

    #[test]
    fn wire_bytes_nonzero() {
        let p = tiny();
        assert!(p.wire_bytes() > 16);
        assert_eq!(p.instruction_count(), 2);
    }

    #[test]
    #[should_panic(expected = "entry out of range")]
    fn bad_entry_panics() {
        let b = Builder::new();
        let _ = b.finish(FuncId(0));
    }

    /// Synthetic instructions produced by loop lowering carry line
    /// entry 0; `line_at` must attribute them to the statement that
    /// produced them (nearest preceding real entry), not to nothing —
    /// and certainly not to the function's first line.
    #[test]
    fn line_at_resolves_synthetic_loop_ops_to_their_block() {
        // The shape `while` lowering produces:
        //   pc 0-1  init            (line 2)
        //   pc 2-4  cond            (line 3)
        //   pc 5    jfalse exit     (line 3)
        //   pc 6-7  body            (line 4)
        //   pc 8    jmp head        (line 0: synthetic back-edge)
        let mut b = Builder::new();
        let c0 = b.constant(Value::Int(0));
        let c3 = b.constant(Value::Int(3));
        let code = vec![
            Op::Const(c0),
            Op::StoreLocal(0),
            Op::LoadLocal(0),
            Op::Const(c3),
            Op::Lt,
            Op::JumpIfFalse(4),
            Op::Const(c3),
            Op::Pop,
            Op::Jump(-7),
        ];
        let lines = vec![2, 2, 3, 3, 3, 3, 4, 4, 0];
        let f = b.function_with_lines("main", 0, 1, code, lines);
        let p = b.finish(f);
        let f = p.func(f);
        assert_eq!(f.line_at(0), Some(2));
        assert_eq!(f.line_at(5), Some(3));
        // The synthetic back-edge belongs to the `while` body (line 4),
        // not the function head.
        assert_eq!(f.line_at(8), Some(4));
        // Out of range stays None; so does an all-zero prefix.
        assert_eq!(f.line_at(9), None);
        let mut b = Builder::new();
        let g = b.function_with_lines("g", 0, 0, vec![Op::Ret], vec![0]);
        let p = b.finish(g);
        assert_eq!(p.func(g).line_at(0), None);
    }
}
