//! # msgr-vm — the MESSENGERS bytecode virtual machine
//!
//! The paper's Messenger scripts are "written in a subset of C and …
//! compiled into a form of byte code for more efficient transport and
//! parsing" (§2.1). This crate defines that byte code and interprets it.
//!
//! The crucial design point — and the answer to "how do you migrate a
//! computation in Rust?" — is that a running Messenger is *data*, not a
//! thread: a [`MessengerState`] holds the program hash, a stack of call
//! frames (program counter, locals, operand stack), the messenger's
//! virtual time, and nothing else. Migrating a Messenger means encoding
//! that struct ([`wire`]), shipping the bytes, and resuming
//! interpretation on the destination daemon. Rollback in optimistic
//! virtual time is equally simple: restore a saved copy of the state.
//!
//! The interpreter ([`interp::run`]) executes until the Messenger
//! *yields*: at a navigational statement (`hop` / `create` / `delete`), a
//! virtual-time suspension (`M_sched_time_abs` / `M_sched_time_dlt`), or
//! termination. What happens next (matching links, replicating the
//! state, transferring it) is the daemon's job — see `msgr-core`. This
//! mirrors the paper's non-preemptive scheduling policy: "a daemon will
//! interrupt a Messenger only when it issues a navigational command".
//!
//! ## Example: hand-assembled program
//!
//! ```
//! use msgr_vm::{Builder, Op, Value, MessengerState, interp, NullEnv, Yield};
//!
//! // fn main() { return 2 + 3; }
//! let mut b = Builder::new();
//! let two = b.constant(Value::Int(2));
//! let three = b.constant(Value::Int(3));
//! let f = b.function("main", 0, 0, vec![
//!     Op::Const(two), Op::Const(three), Op::Add, Op::Ret,
//! ]);
//! let program = b.finish(f);
//! let mut m = MessengerState::launch(&program, 1.into(), &[]).unwrap();
//! let y = interp::run(&program, &mut m, &mut NullEnv, 1_000).unwrap();
//! assert_eq!(y, Yield::Terminated(Value::Int(5)));
//! ```

#![warn(missing_docs)]

mod binop;
mod bytecode;
pub mod bytes;
pub mod compile;
mod error;
pub mod interp;
mod natives;
mod state;
pub mod summary;
mod value;
pub mod wire;

pub use bytecode::{
    Builder, CreateItem, CreateSpec, Dir, FuncId, Function, HopSpec, LinkPat, NamePat, NetVar,
    NodePat, Op, Program, ProgramId,
};
pub use bytes::{Bytes, BytesMut};
pub use compile::CompiledProgram;
pub use error::VmError;
pub use interp::{Env, EvalCreate, EvalCreateItem, EvalHop, EvalLink, MapEnv, NullEnv, Yield};
pub use natives::{NativeCtx, NativeFn, NativeRegistry};
pub use state::{Frame, MessengerId, MessengerState, Vt};
pub use summary::{FnSummary, HopBehavior, SumKind, SummaryTable};
pub use value::{LinkInstance, Matrix, Value};
