//! Migration-transparency tests: serializing a messenger at every yield
//! point and resuming the decoded copy must be indistinguishable from
//! running it in place. This is the property that makes `hop` sound.

use msgr_vm::{interp, wire, MapEnv, MessengerState, Value, Yield};

/// Run a program in a single env; at every yield, round-trip the
/// messenger through the wire codec before continuing.
fn run_with_roundtrips(
    program: &msgr_vm::Program,
    args: &[Value],
    env: &mut MapEnv,
) -> (Vec<Yield>, Value) {
    let mut m = MessengerState::launch(program, 1.into(), args).unwrap();
    let mut yields = Vec::new();
    loop {
        let y = interp::run(program, &mut m, env, 1_000_000).unwrap();
        match y {
            Yield::Terminated(v) => return (yields, v),
            other => {
                yields.push(other);
                // Migrate: encode, drop the original, decode, continue.
                let bytes = wire::encode_messenger(&m);
                m = wire::decode_messenger(bytes).unwrap();
                // Suspensions advance virtual time before resumption.
                if let Some(Yield::SchedAbs(t)) = yields.last() {
                    m.vtime = m.vtime.max(*t);
                }
                if let Some(Yield::SchedDlt(dt)) = yields.last() {
                    m.vtime = m.vtime.plus(*dt);
                }
            }
        }
    }
}

fn run_in_place(
    program: &msgr_vm::Program,
    args: &[Value],
    env: &mut MapEnv,
) -> (Vec<Yield>, Value) {
    let mut m = MessengerState::launch(program, 1.into(), args).unwrap();
    let mut yields = Vec::new();
    loop {
        let y = interp::run(program, &mut m, env, 1_000_000).unwrap();
        match y {
            Yield::Terminated(v) => return (yields, v),
            other => {
                if let Yield::SchedAbs(t) = &other {
                    m.vtime = m.vtime.max(*t);
                }
                if let Yield::SchedDlt(dt) = &other {
                    m.vtime = m.vtime.plus(*dt);
                }
                yields.push(other);
            }
        }
    }
}

fn program(src: &str) -> msgr_vm::Program {
    msgr_lang::compile(src).unwrap()
}

#[test]
fn deep_call_stack_survives_migration() {
    // Suspend from three frames deep, repeatedly.
    let p = program(
        r#"
        main(n) {
            return outer(n);
        }
        outer(n) {
            int i, acc;
            for (i = 0; i < n; i = i + 1) acc = acc + middle(i);
            return acc;
        }
        middle(i) { return inner(i) * 2; }
        inner(i) {
            M_sched_time_dlt(0.5);
            return i + 1;
        }
        "#,
    );
    let mut env1 = MapEnv::new();
    let mut env2 = MapEnv::new();
    let (y1, v1) = run_in_place(&p, &[Value::Int(6)], &mut env1);
    let (y2, v2) = run_with_roundtrips(&p, &[Value::Int(6)], &mut env2);
    assert_eq!(v1, v2);
    assert_eq!(v1, Value::Int(42)); // sum of 2*(i+1) for i in 0..6
    assert_eq!(y1.len(), 6);
    assert_eq!(y1, y2);
}

#[test]
fn operand_stack_contents_survive_migration() {
    // A suspension in the middle of an expression: partial operands live
    // on the operand stack across the yield.
    let p = program(
        r#"
        main() {
            int a = 10;
            return a * boundary() + a;
        }
        boundary() {
            M_sched_time_dlt(1.0);
            return 3;
        }
        "#,
    );
    let (_, v1) = run_in_place(&p, &[], &mut MapEnv::new());
    let (_, v2) = run_with_roundtrips(&p, &[], &mut MapEnv::new());
    assert_eq!(v1, Value::Int(40));
    assert_eq!(v2, Value::Int(40));
}

#[test]
fn node_variables_and_messenger_variables_interleave() {
    let p = program(
        r#"
        main(rounds) {
            int k, mine;
            node int shared;
            for (k = 0; k < rounds; k = k + 1) {
                M_sched_time_dlt(1.0);
                mine = mine + k;
                shared = shared + mine;
            }
            return mine;
        }
        "#,
    );
    let mut env1 = MapEnv::new();
    let mut env2 = MapEnv::new();
    let (_, v1) = run_in_place(&p, &[Value::Int(5)], &mut env1);
    let (_, v2) = run_with_roundtrips(&p, &[Value::Int(5)], &mut env2);
    assert_eq!(v1, v2);
    assert_eq!(env1.vars.get("shared"), env2.vars.get("shared"));
}

#[test]
fn hop_yields_preserve_evaluated_destinations() {
    let p = program(
        r#"
        main(times) {
            int k;
            for (k = 0; k < times; k = k + 1) {
                hop(ln = "target" + k; ll = "wire"; ldir = +);
            }
        }
        "#,
    );
    let (y1, _) = run_in_place(&p, &[Value::Int(3)], &mut MapEnv::new());
    let (y2, _) = run_with_roundtrips(&p, &[Value::Int(3)], &mut MapEnv::new());
    assert_eq!(y1, y2);
    assert_eq!(y1.len(), 3);
    match &y1[2] {
        Yield::Hop(h) => assert_eq!(h.ln, Some(Value::str("target2"))),
        other => panic!("{other:?}"),
    }
}

#[test]
fn virtual_time_accumulates_identically() {
    let p = program(
        r#"
        main() {
            M_sched_time_abs(2.0);
            M_sched_time_dlt(0.5);
            M_sched_time_dlt(0.25);
            return $time;
        }
        "#,
    );
    let (_, v1) = run_in_place(&p, &[], &mut MapEnv::new());
    let (_, v2) = run_with_roundtrips(&p, &[], &mut MapEnv::new());
    assert_eq!(v1, Value::Float(2.75));
    assert_eq!(v2, v1);
}
