//! Differential property suite: the interpreter and the closure
//! compiler must be observationally identical on every verified
//! program, at every fuel level.
//!
//! The generator is the PR 3 compiler-soundness generator (mirrored
//! from `crates/analyze/tests/props.rs`): well-scoped random MSGR-C
//! ASTs, compiled by the real front end, so the programs exercise
//! exactly the emit patterns the superinstructions fuse. Each case
//! drives *both* engines through the full multi-segment lifecycle —
//! run, yield at hops/creates/deletes, park on virtual time, resume —
//! comparing after every segment:
//!
//! * the yield (or error) itself,
//! * the complete frame stack (pc, locals, operand stack),
//! * node-variable effects and `$net` interactions (`MapEnv::vars`),
//! * the fuel charge (`MapEnv::ops`) and the messenger's virtual time.
//!
//! Because daemons derive costs, metrics, and trace events from exactly
//! these observables, segment-level equality here is what makes the
//! cluster-level goldens in `tests/determinism.rs` mode-invariant.
//!
//! A mutation check closes the loop: a deliberately miscompiled
//! superinstruction (swapped arithmetic operands) must be caught by the
//! same comparison harness, proving the suite has teeth.

use msgr_check::{check_with, Config, Source};
use msgr_lang::ast::*;
use msgr_lang::{compile_ast, Pos};
use msgr_vm::compile::{self, CompiledProgram};
use msgr_vm::{interp, Dir, MapEnv, MessengerState, Program, Value, Vt, Yield};

const P: Pos = Pos { line: 1, col: 1 };

// ---------------------------------------------------------------------
// Generator (mirrors crates/analyze/tests/props.rs — the PR 3
// compiler-soundness generator; tests cannot import other crates'
// test modules, so the arbiter is replicated here verbatim).
// ---------------------------------------------------------------------

struct Ctx {
    scopes: Vec<Vec<(String, bool)>>,
    arities: Vec<u8>,
    in_loop: bool,
    counter: u32,
}

impl Ctx {
    fn visible(&self) -> Vec<String> {
        self.scopes.iter().flatten().map(|(n, _)| n.clone()).collect()
    }

    fn fresh_name(&mut self, prefix: &str) -> String {
        self.counter += 1;
        format!("{prefix}{}", self.counter)
    }
}

fn arb_expr(s: &mut Source, ctx: &Ctx, depth: usize) -> Expr {
    let vars = ctx.visible();
    let leaf = depth == 0 || s.bool_with(0.4);
    if leaf {
        match s.draw(6) {
            0 => Expr::Int(s.i64_in(-3..100), P),
            1 => Expr::Float(0.5, P),
            2 => Expr::Str(s.string(0..4, "abn"), P),
            3 => Expr::Bool(s.any_bool(), P),
            4 if !vars.is_empty() => Expr::Var(s.pick(&vars).clone(), P),
            4 => Expr::Null(P),
            _ => Expr::NetVar(s.pick(&["address", "node", "time"]).to_string(), P),
        }
    } else {
        match s.draw(4) {
            0 => Expr::Bin {
                op: *s.pick(&[
                    BinOp::Add,
                    BinOp::Sub,
                    BinOp::Mul,
                    BinOp::Eq,
                    BinOp::Lt,
                    BinOp::And,
                    BinOp::Or,
                ]),
                lhs: Box::new(arb_expr(s, ctx, depth - 1)),
                rhs: Box::new(arb_expr(s, ctx, depth - 1)),
            },
            1 => Expr::Un {
                op: *s.pick(&[UnOp::Neg, UnOp::Not]),
                expr: Box::new(arb_expr(s, ctx, depth - 1)),
                pos: P,
            },
            2 => {
                if s.any_bool() && !ctx.arities.is_empty() {
                    let f = s.usize_in(0..ctx.arities.len());
                    let args = (0..ctx.arities[f]).map(|_| arb_expr(s, ctx, depth - 1)).collect();
                    Expr::Call { name: format!("f{f}"), args, pos: P }
                } else {
                    let args = s.vec_with(0..3, |s| arb_expr(s, ctx, depth.saturating_sub(1)));
                    Expr::Call { name: "some_native".into(), args, pos: P }
                }
            }
            _ => arb_expr(s, ctx, depth - 1),
        }
    }
}

fn arb_hop_args(s: &mut Source, ctx: &Ctx) -> HopArgs {
    let ln = match s.draw(3) {
        0 => None,
        1 => Some(Pat::Wild),
        _ => Some(Pat::Expr(arb_expr(s, ctx, 1))),
    };
    let ll = match s.draw(4) {
        0 => None,
        1 => Some(Pat::Unnamed),
        2 => Some(Pat::Expr(arb_expr(s, ctx, 1))),
        _ if matches!(ln, Some(Pat::Expr(_))) => Some(Pat::Virtual),
        _ => Some(Pat::Wild),
    };
    let ldir = match s.draw(3) {
        0 => None,
        1 => Some(Dir::Forward),
        _ => Some(Dir::Backward),
    };
    HopArgs { ln, ll, ldir }
}

fn arb_create_args(s: &mut Source, ctx: &Ctx) -> CreateArgs {
    let mut args = CreateArgs { all: s.any_bool(), ..Default::default() };
    if s.any_bool() {
        args.ln = vec![Pat::Expr(arb_expr(s, ctx, 1))];
    }
    if s.any_bool() {
        args.ll = vec![Pat::Unnamed];
    }
    if s.any_bool() {
        args.dn = vec![Pat::Wild];
    }
    args
}

fn arb_stmt(s: &mut Source, ctx: &mut Ctx, depth: usize) -> Stmt {
    let vars = ctx.visible();
    match s.draw(12) {
        0 => {
            let name = ctx.fresh_name("v");
            let init = if s.any_bool() { Some(arb_expr(s, ctx, 2)) } else { None };
            ctx.scopes.last_mut().unwrap().push((name.clone(), false));
            Stmt::Decl {
                ty: *s.pick(&[DeclType::Int, DeclType::Float, DeclType::Str, DeclType::Bool]),
                decls: vec![Declarator { name, array_size: None, init, pos: P }],
            }
        }
        1 => {
            let name = ctx.fresh_name("nv");
            ctx.scopes.last_mut().unwrap().push((name.clone(), true));
            Stmt::NodeDecl {
                ty: DeclType::Int,
                decls: vec![Declarator { name, array_size: None, init: None, pos: P }],
            }
        }
        2 if !vars.is_empty() => {
            let target = s.pick(&vars).clone();
            Stmt::Expr(Expr::Assign {
                target,
                index: None,
                value: Box::new(arb_expr(s, ctx, 2)),
                pos: P,
            })
        }
        3 if depth > 0 => Stmt::If {
            cond: arb_expr(s, ctx, 2),
            then: arb_block(s, ctx, depth - 1),
            otherwise: if s.any_bool() { arb_block(s, ctx, depth - 1) } else { Vec::new() },
        },
        4 if depth > 0 => {
            let was = ctx.in_loop;
            ctx.in_loop = true;
            let body = arb_block(s, ctx, depth - 1);
            ctx.in_loop = was;
            Stmt::While { cond: arb_expr(s, ctx, 2), body }
        }
        5 => Stmt::Hop(arb_hop_args(s, ctx), P),
        6 => Stmt::Create(arb_create_args(s, ctx), P),
        7 => Stmt::Delete(arb_hop_args(s, ctx), P),
        8 => Stmt::Return(if s.any_bool() { Some(arb_expr(s, ctx, 2)) } else { None }, P),
        9 if ctx.in_loop => {
            if s.any_bool() {
                Stmt::Break(P)
            } else {
                Stmt::Continue(P)
            }
        }
        10 => Stmt::Expr(Expr::Call {
            name: "M_sched_time_dlt".into(),
            args: vec![Expr::Float(1.0, P)],
            pos: P,
        }),
        _ => Stmt::Expr(arb_expr(s, ctx, 2)),
    }
}

fn arb_block(s: &mut Source, ctx: &mut Ctx, depth: usize) -> Vec<Stmt> {
    ctx.scopes.push(Vec::new());
    let n = s.usize_in(0..5);
    let body = (0..n).map(|_| arb_stmt(s, ctx, depth)).collect();
    ctx.scopes.pop();
    body
}

fn arb_script(s: &mut Source) -> Script {
    let nfuncs = s.usize_in(1..4);
    let arities: Vec<u8> = (0..nfuncs).map(|_| s.u8_in(0..3)).collect();
    let funcs = arities
        .iter()
        .enumerate()
        .map(|(i, &arity)| {
            let params: Vec<String> = (0..arity).map(|k| format!("p{k}")).collect();
            let mut ctx = Ctx {
                scopes: vec![params.iter().map(|p| (p.clone(), false)).collect()],
                arities: arities.clone(),
                in_loop: false,
                counter: 0,
            };
            let body = arb_block(s, &mut ctx, 2);
            Func { name: format!("f{i}"), params, body, pos: P }
        })
        .collect();
    Script { funcs }
}

fn compile_arb(s: &mut Source) -> Result<Program, String> {
    let script = arb_script(s);
    compile_ast(&script).map_err(|e| format!("generated AST failed to compile: {e}\n{script:#?}"))
}

// ---------------------------------------------------------------------
// The lockstep harness.
// ---------------------------------------------------------------------

/// A deterministic environment for one engine, with the native the
/// generator emits calls to registered so execution continues past it.
fn env() -> MapEnv {
    let mut e = MapEnv::new();
    e.natives.register("some_native", |_, args: &[Value]| {
        let mut acc = 0i64;
        for a in args {
            acc = acc.wrapping_mul(31).wrapping_add(a.as_int().unwrap_or(1));
        }
        Ok(Value::Int(acc))
    });
    e
}

/// Drive one messenger to completion under both engines, segment by
/// segment, comparing every observable after every segment. Returns the
/// first divergence as an error.
fn drive_both(
    p: &Program,
    cp: &CompiledProgram,
    fuel_of: &mut dyn FnMut(usize) -> u64,
) -> Result<(), String> {
    // The generated entry function may take parameters; bind small ints.
    let args: Vec<Value> =
        (0..p.funcs[p.entry.0 as usize].arity).map(|k| Value::Int(i64::from(k) + 2)).collect();
    let mut mi = MessengerState::launch(p, 1.into(), &args).map_err(|e| e.to_string())?;
    let mut mc = MessengerState::launch(p, 1.into(), &args).map_err(|e| e.to_string())?;
    let mut ei = env();
    let mut ec = env();
    for seg in 0..64 {
        let fuel = fuel_of(seg);
        ei.vtime = mi.vtime;
        ec.vtime = mc.vtime;
        let yi = interp::run(p, &mut mi, &mut ei, fuel);
        let yc = compile::run(cp, p, &mut mc, &mut ec, fuel);
        if yi != yc {
            return Err(format!("segment {seg} (fuel {fuel}): yields diverge\n  interp:   {yi:?}\n  compiled: {yc:?}"));
        }
        if mi.frames != mc.frames {
            return Err(format!(
                "segment {seg} (fuel {fuel}): frames diverge after {yi:?}\n  interp:   {:?}\n  compiled: {:?}",
                mi.frames, mc.frames
            ));
        }
        if ei.vars != ec.vars {
            return Err(format!(
                "segment {seg}: node-var effects diverge\n  interp:   {:?}\n  compiled: {:?}",
                ei.vars, ec.vars
            ));
        }
        if ei.ops != ec.ops {
            return Err(format!(
                "segment {seg}: ops charge diverges (interp {}, compiled {})",
                ei.ops, ec.ops
            ));
        }
        if mi.vtime != mc.vtime {
            return Err(format!(
                "segment {seg}: virtual time diverges ({:?} vs {:?})",
                mi.vtime, mc.vtime
            ));
        }
        match yi {
            // Hop/delete/create park-and-resume: the wire state just
            // compared equal is exactly what would migrate; resume it.
            Ok(Yield::Hop(_) | Yield::Delete(_) | Yield::Create(_)) => {}
            Ok(Yield::SchedAbs(t)) => {
                mi.vtime = t;
                mc.vtime = t;
            }
            Ok(Yield::SchedDlt(dt)) => {
                let t = Vt::new(mi.vtime.as_f64() + dt);
                mi.vtime = t;
                mc.vtime = t;
            }
            Ok(Yield::Terminated(_)) => return Ok(()),
            // FuelExhausted is a comparable outcome, not a divergence:
            // resume to exercise mid-expression resume points.
            Err(msgr_vm::VmError::FuelExhausted) => {}
            Err(_) => return Ok(()),
        }
    }
    Ok(()) // still hopping after the segment cap: states stayed equal throughout
}

fn case(
    s: &mut Source,
    cp_of: impl Fn(&Program) -> Result<CompiledProgram, String>,
) -> Result<(), String> {
    let p = compile_arb(s)?;
    if msgr_analyze::verify(&p).is_err() {
        // The PR 3 soundness property says this can't happen; don't
        // double-report it here.
        return Ok(());
    }
    let cp = cp_of(&p)?;
    // Mostly generous fuel, sometimes a tiny budget so segments cut off
    // mid-expression (resume points at arbitrary pcs, exact fuel walls).
    let mut fuels: Vec<u64> = Vec::new();
    for _ in 0..8 {
        fuels.push(if s.bool_with(0.3) { s.u64_in(1..200) } else { 100_000 });
    }
    drive_both(&p, &cp, &mut |seg| fuels[seg % fuels.len()])
}

#[test]
fn engines_agree_on_generated_programs() {
    check_with(Config { cases: 256, ..Config::default() }, "engines_agree", |s| {
        case(s, compile::compile)
    });
}

#[test]
#[ignore = "soak: 4096 cases; run via scripts/ci.sh --soak"]
fn engines_agree_soak() {
    check_with(Config { cases: 4096, ..Config::default() }, "engines_agree_soak", |s| {
        case(s, compile::compile)
    });
}

#[test]
fn mutation_check_catches_a_miscompiled_superinstruction() {
    // A deliberately miscompiled engine (fused arithmetic with swapped
    // operands) must be caught by the same harness — if this passes
    // quietly, the differential property is vacuous.
    let p = msgr_lang::compile("main() { int x; x = 10 - 3; return x; }").unwrap();
    msgr_analyze::verify(&p).expect("fixture verifies");
    let good = compile::compile(&p).unwrap();
    drive_both(&p, &good, &mut |_| 100_000).expect("honest compile agrees");
    let bad = compile::compile_miscompiled(&p).unwrap();
    let err =
        drive_both(&p, &bad, &mut |_| 100_000).expect_err("swapped operands must be observable");
    assert!(err.contains("diverge"), "unexpected failure shape: {err}");
}

#[test]
fn engines_agree_with_summaries_enabled() {
    // The same 256-case lockstep property, with the interprocedural
    // summary table driving inline fusion, typed loops, and bulk fuel
    // charges. Every observable — yields, errors, frames, node vars,
    // ops — must stay bit-equal to the plain interpreter.
    check_with(Config { cases: 256, ..Config::default() }, "engines_agree_summaries", |s| {
        case(s, |p| {
            let t = msgr_analyze::summarize(p);
            compile::compile_with_summaries(p, Some(&t))
        })
    });
}

#[test]
fn summaries_are_stable_across_wire_roundtrip() {
    // Summaries are derived facts about bytecode: a no-op codec
    // roundtrip of the program must reproduce the identical table, and
    // the summary codec itself must be an identity. 256 randomized
    // programs.
    check_with(Config { cases: 256, ..Config::default() }, "summary_stability", |s| {
        let p = compile_arb(s)?;
        if msgr_analyze::verify(&p).is_err() {
            return Ok(());
        }
        let t1 = msgr_analyze::summarize(&p);
        let p2 = msgr_vm::wire::decode_program(msgr_vm::wire::encode_program(&p))
            .map_err(|e| format!("program roundtrip failed: {e}"))?;
        if p.id() != p2.id() {
            return Err("content id changed across program roundtrip".into());
        }
        let t2 = msgr_analyze::summarize(&p2);
        if t1 != t2 {
            return Err(format!(
                "summaries unstable across program roundtrip\n  before: {t1:?}\n  after:  {t2:?}"
            ));
        }
        let t3 = msgr_vm::wire::decode_summaries(msgr_vm::wire::encode_summaries(&t1))
            .map_err(|e| format!("summary roundtrip failed: {e}"))?;
        if t1 != t3 {
            return Err(format!(
                "summary codec is not an identity\n  before: {t1:?}\n  after:  {t3:?}"
            ));
        }
        Ok(())
    });
}

#[test]
fn mutation_check_catches_a_corrupted_summary() {
    // Summaries are trusted facts: the compiler bulk-charges
    // `1 + exact_ops` fuel for a fused call without recounting. A
    // single-bit lie in `exact_ops` must therefore show up as an ops
    // divergence in the differential harness — proving the harness
    // guards the summary contract, not just the codegen.
    let p = msgr_lang::compile(
        "main() { return add3(4, 5) + 1; }\n\
         add3(a, b) { return a + b + 3; }",
    )
    .unwrap();
    msgr_analyze::verify(&p).expect("fixture verifies");
    let honest = msgr_analyze::summarize(&p);
    let cp = compile::compile_with_summaries(&p, Some(&honest)).unwrap();
    assert_eq!(cp.inlined_calls(), 1, "fixture must exercise the call fusion");
    drive_both(&p, &cp, &mut |_| 100_000).expect("honest summaries agree");

    let mut lying = honest.clone();
    let cell = lying
        .funcs
        .iter_mut()
        .find_map(|f| f.exact_ops.as_mut())
        .expect("fixture has an exact-ops license");
    *cell += 1;
    let bad = compile::compile_with_summaries(&p, Some(&lying)).unwrap();
    assert_eq!(bad.inlined_calls(), 1, "corrupted table still licenses the fusion");
    let err = drive_both(&p, &bad, &mut |_| 100_000)
        .expect_err("a corrupted exact-ops bulk charge must be observable");
    assert!(err.contains("ops charge diverges"), "unexpected failure shape: {err}");
}

#[test]
fn miscompile_is_caught_by_the_generator_too() {
    // Same mutation, random programs: within 256 generated cases at
    // least one program must trip the miscompiled engine. (Almost every
    // program with any arithmetic does; this guards against the
    // generator drifting toward arithmetic-free programs.)
    use std::sync::atomic::{AtomicBool, Ordering};
    let tripped = AtomicBool::new(false);
    check_with(Config { cases: 256, ..Config::default() }, "miscompile_caught", |s| {
        let p = compile_arb(s)?;
        if msgr_analyze::verify(&p).is_err() {
            return Ok(());
        }
        let bad = compile::compile_miscompiled(&p).map_err(|e| e.to_string())?;
        if drive_both(&p, &bad, &mut |_| 100_000).is_err() {
            tripped.store(true, Ordering::Relaxed);
        }
        Ok(())
    });
    assert!(tripped.load(Ordering::Relaxed), "no generated program tripped the seeded miscompile");
}
