//! Demonstration of msgr-check's shrinking and seed replay on a
//! deliberately broken property.
//!
//! Run with `cargo run -p msgr-check --example failing_demo`. The
//! property claims every generated vector sums below 100, which is
//! false; the harness finds a counterexample, shrinks it to the minimal
//! one-element vector `[100]`, and prints a `MSGR_CHECK_SEED=<n>` line.
//! The demo then re-runs itself with that seed set, verifying the exact
//! failing case is reproduced, and exits 0 only if replay matches.

use msgr_check::{prop_assert, replay_choices, run_check, Config, Source};

fn property(s: &mut Source) -> Result<(), String> {
    let v = s.vec_with(0..32, |s| s.u64_in(0..1000));
    prop_assert!(v.iter().sum::<u64>() < 100, "sum of {v:?} is >= 100");
    Ok(())
}

fn main() {
    let cfg = Config::default();
    let failure = run_check(cfg, "demo_sum_below_100", property)
        .expect_err("this property is deliberately broken");

    println!("{}", failure.report());
    println!();

    // Show the minimal counterexample's generated value.
    let minimal = {
        let cell = std::cell::RefCell::new(Vec::new());
        let _ = replay_choices(&failure.choices, |s| {
            *cell.borrow_mut() = s.vec_with(0..32, |s| s.u64_in(0..1000));
            Err("probe".to_string())
        });
        cell.into_inner()
    };
    println!("minimal generated input: {minimal:?}");
    assert_eq!(minimal, vec![100], "shrinking must reach the one-element minimum");

    // Prove the printed seed replays the failure exactly, the way a
    // developer would: set MSGR_CHECK_SEED and re-check.
    std::env::set_var(msgr_check::SEED_ENV, failure.seed.to_string());
    let replayed = run_check(cfg, "demo_sum_below_100", property)
        .expect_err("replay with the printed seed must reproduce the failure");
    assert_eq!(replayed.seed, failure.seed);
    assert_eq!(replayed.original, failure.original, "replayed case must match");
    assert_eq!(replayed.choices, failure.choices, "replayed shrink must match");
    std::env::remove_var(msgr_check::SEED_ENV);

    println!(
        "replay with {}={} reproduced the same minimal counterexample.",
        msgr_check::SEED_ENV,
        failure.seed
    );
}
