//! # msgr-check — deterministic property-based testing
//!
//! A zero-dependency property-testing harness built on the workspace's
//! own SplitMix64 generator ([`msgr_sim::DetRng`]). It replaces
//! `proptest` for this repository with three guarantees that matter for
//! a simulation-backed distributed system:
//!
//! 1. **Determinism.** Every property derives its case seeds from a
//!    hash of the property name, so a given source tree produces the
//!    same cases on every machine, every run. There is no time- or
//!    OS-entropy anywhere.
//! 2. **Replayability.** When a case fails, the harness prints a
//!    `MSGR_CHECK_SEED=<n>` line. Re-running the test with that
//!    environment variable set replays the failing case (and its
//!    shrink) exactly.
//! 3. **Automatic shrinking.** Generators draw from a recorded *choice
//!    stream*; shrinking edits the stream (deleting spans, zeroing and
//!    halving entries) and replays generation, so any generator —
//!    including recursive ones — shrinks for free, hypothesis-style.
//!
//! ## Writing a property
//!
//! A property is a closure from a [`Source`] of random choices to
//! `Result<(), String>`; `Err` (or a panic) is a counterexample. The
//! [`prop_assert!`] family mirrors proptest's macros:
//!
//! ```
//! msgr_check::check("reverse_is_involutive", |s| {
//!     let v = s.vec_with(0..32, |s| s.u64_in(0..100));
//!     let mut w = v.clone();
//!     w.reverse();
//!     w.reverse();
//!     msgr_check::prop_assert_eq!(v, w);
//!     Ok(())
//! });
//! ```

#![warn(missing_docs)]

use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};

use msgr_sim::DetRng;

/// Environment variable replaying one specific failing case.
pub const SEED_ENV: &str = "MSGR_CHECK_SEED";
/// Environment variable overriding the per-property case count.
pub const CASES_ENV: &str = "MSGR_CHECK_CASES";

// ---- configuration -----------------------------------------------------

/// Harness configuration for one property.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of generated cases per property (default 128, overridable
    /// globally via `MSGR_CHECK_CASES`).
    pub cases: u32,
    /// Budget of candidate replays during shrinking.
    pub max_shrink: u32,
}

impl Default for Config {
    fn default() -> Self {
        let cases = std::env::var(CASES_ENV).ok().and_then(|v| v.parse().ok()).unwrap_or(128);
        Config { cases, max_shrink: 4096 }
    }
}

// ---- choice source -----------------------------------------------------

enum Draws {
    /// Fresh generation: draws come from the rng and are recorded.
    Fresh(DetRng),
    /// Replay of an edited choice stream; exhausted positions yield 0.
    Replay(Vec<u64>),
}

/// The source of randomness handed to a property.
///
/// All generator methods bottom out in [`Source::draw`], which records
/// every choice so that a failing case can be shrunk and replayed.
/// Values shrink toward the *low end* of their range (and collections
/// toward their minimum length), so write ranges with the simplest
/// value first.
pub struct Source {
    draws: Draws,
    /// Choices consumed so far (recorded in fresh mode).
    trace: Vec<u64>,
}

impl Source {
    fn fresh(seed: u64) -> Source {
        Source { draws: Draws::Fresh(DetRng::new(seed)), trace: Vec::new() }
    }

    fn replay(choices: Vec<u64>) -> Source {
        Source { draws: Draws::Replay(choices), trace: Vec::new() }
    }

    /// One uniform choice in `[0, span)`. The primitive every generator
    /// is built from.
    ///
    /// # Panics
    ///
    /// Panics if `span == 0`.
    pub fn draw(&mut self, span: u64) -> u64 {
        assert!(span > 0, "draw(0) is meaningless");
        let c = match &mut self.draws {
            Draws::Fresh(rng) => rng.below(span),
            Draws::Replay(choices) => choices.get(self.trace.len()).copied().unwrap_or(0) % span,
        };
        self.trace.push(c);
        c
    }

    /// A full-range 64-bit draw (not reduced modulo anything).
    pub fn draw_raw(&mut self) -> u64 {
        let c = match &mut self.draws {
            Draws::Fresh(rng) => rng.next_u64(),
            Draws::Replay(choices) => choices.get(self.trace.len()).copied().unwrap_or(0),
        };
        self.trace.push(c);
        c
    }

    // ---- scalar generators ---------------------------------------------

    /// Uniform `u64` in `[lo, hi)`; shrinks toward `lo`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    pub fn u64_in(&mut self, r: Range<u64>) -> u64 {
        assert!(r.start < r.end, "empty range");
        r.start + self.draw(r.end - r.start)
    }

    /// Uniform `u32` in `[lo, hi)`; shrinks toward `lo`.
    pub fn u32_in(&mut self, r: Range<u32>) -> u32 {
        self.u64_in(r.start as u64..r.end as u64) as u32
    }

    /// Uniform `u8` in `[lo, hi)`; shrinks toward `lo`.
    pub fn u8_in(&mut self, r: Range<u8>) -> u8 {
        self.u64_in(r.start as u64..r.end as u64) as u8
    }

    /// Uniform `usize` in `[lo, hi)`; shrinks toward `lo`.
    pub fn usize_in(&mut self, r: Range<usize>) -> usize {
        self.u64_in(r.start as u64..r.end as u64) as usize
    }

    /// Uniform `i64` in `[lo, hi)`; shrinks toward `lo`.
    pub fn i64_in(&mut self, r: Range<i64>) -> i64 {
        assert!(r.start < r.end, "empty range");
        let span = r.end.wrapping_sub(r.start) as u64;
        r.start.wrapping_add(self.draw(span) as i64)
    }

    /// Any `u64`, uniform over the full range; shrinks toward 0.
    pub fn any_u64(&mut self) -> u64 {
        self.draw_raw()
    }

    /// Any `u32`; shrinks toward 0.
    pub fn any_u32(&mut self) -> u32 {
        self.draw_raw() as u32
    }

    /// Any `u16`; shrinks toward 0.
    pub fn any_u16(&mut self) -> u16 {
        self.draw_raw() as u16
    }

    /// Any `u8`; shrinks toward 0.
    pub fn any_u8(&mut self) -> u8 {
        self.draw_raw() as u8
    }

    /// Any `i64` (full range, reinterpreted bits); shrinks toward 0.
    pub fn any_i64(&mut self) -> i64 {
        self.draw_raw() as i64
    }

    /// Uniform `f64` in `[lo, hi)` with 53-bit resolution; shrinks
    /// toward `lo`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        let unit = self.draw(1 << 53) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }

    /// An arbitrary *finite* `f64`: reinterprets a raw 64-bit draw as a
    /// float bit pattern (hitting denormals, ±0, huge magnitudes), and
    /// falls back to a unit-interval value for NaN/infinity patterns.
    /// Shrinks toward `0.0`.
    pub fn any_finite_f64(&mut self) -> f64 {
        let raw = self.draw_raw();
        let f = f64::from_bits(raw);
        if f.is_finite() {
            f
        } else {
            (raw >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// A boolean; shrinks toward `false`.
    pub fn any_bool(&mut self) -> bool {
        self.draw(2) == 1
    }

    /// `true` with probability `p`; shrinks toward `false`.
    pub fn bool_with(&mut self, p: f64) -> bool {
        let c = self.draw(1 << 32) as f64 / (1u64 << 32) as f64;
        c >= 1.0 - p
    }

    // ---- composite generators -------------------------------------------

    /// A vector with length drawn from `len` and elements from `f`;
    /// shrinks toward fewer, simpler elements.
    pub fn vec_with<T>(
        &mut self,
        len: Range<usize>,
        mut f: impl FnMut(&mut Source) -> T,
    ) -> Vec<T> {
        let n = self.usize_in(len);
        (0..n).map(|_| f(self)).collect()
    }

    /// A string with length drawn from `len` and characters drawn
    /// uniformly from `charset`; shrinks toward shorter strings of the
    /// charset's first character.
    ///
    /// # Panics
    ///
    /// Panics if `charset` is empty.
    pub fn string(&mut self, len: Range<usize>, charset: &str) -> String {
        let chars: Vec<char> = charset.chars().collect();
        assert!(!chars.is_empty(), "empty charset");
        let n = self.usize_in(len);
        (0..n).map(|_| chars[self.draw(chars.len() as u64) as usize]).collect()
    }

    /// A uniformly chosen element of `items`; shrinks toward the first.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.draw(items.len() as u64) as usize]
    }
}

// ---- failure reporting -------------------------------------------------

/// A minimized counterexample for a failed property.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Property name.
    pub property: String,
    /// Seed of the failing case — `MSGR_CHECK_SEED=<seed>` replays it.
    pub seed: u64,
    /// Index of the failing case within the run.
    pub case: u32,
    /// Failure message of the originally generated case.
    pub original: String,
    /// Failure message of the minimal counterexample.
    pub minimal: String,
    /// Number of successful shrink steps applied.
    pub shrink_steps: u32,
    /// The minimal choice stream (replayable via [`replay_choices`]).
    pub choices: Vec<u64>,
}

impl Failure {
    /// The human-readable report printed on failure.
    pub fn report(&self) -> String {
        format!(
            "property '{}' failed (case {}).\n  minimal counterexample ({} shrink steps): {}\n  \
             original failure: {}\n  replay exactly with: {}={} cargo test",
            self.property,
            self.case,
            self.shrink_steps,
            self.minimal,
            self.original,
            SEED_ENV,
            self.seed,
        )
    }
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.report())
    }
}

/// Re-run a property against a recorded choice stream (for inspecting a
/// minimal counterexample, e.g. to extract the generated values).
///
/// # Errors
///
/// Returns the property's failure message if it still fails.
pub fn replay_choices(
    choices: &[u64],
    prop: impl Fn(&mut Source) -> Result<(), String>,
) -> Result<(), String> {
    let mut src = Source::replay(choices.to_vec());
    run_prop(&prop, &mut src)
}

// ---- runner ------------------------------------------------------------

/// Check a property with the default [`Config`]; panics with a full
/// report (including the replay seed) on failure.
pub fn check(name: &str, prop: impl Fn(&mut Source) -> Result<(), String>) {
    check_with(Config::default(), name, prop)
}

/// Check a property with an explicit [`Config`]; panics on failure.
pub fn check_with(cfg: Config, name: &str, prop: impl Fn(&mut Source) -> Result<(), String>) {
    if let Err(failure) = run_check(cfg, name, prop) {
        panic!("{}", failure.report());
    }
}

/// Check a property, returning the minimized [`Failure`] instead of
/// panicking. This is the non-panicking core that `check`/`check_with`
/// wrap, and what the self-tests and the failing-property demo use.
///
/// # Errors
///
/// Returns the shrunk [`Failure`] if any generated case fails.
pub fn run_check(
    cfg: Config,
    name: &str,
    prop: impl Fn(&mut Source) -> Result<(), String>,
) -> Result<(), Failure> {
    // Replay mode: one exact case.
    if let Ok(v) = std::env::var(SEED_ENV) {
        let seed: u64 =
            v.trim().parse().unwrap_or_else(|_| panic!("{SEED_ENV} must be a u64, got {v:?}"));
        return run_one(&cfg, name, &prop, seed, 0);
    }
    // Deterministic seeds: derived from the property name alone.
    let mut seeder = DetRng::new(fnv1a(name.as_bytes()));
    for case in 0..cfg.cases {
        let seed = seeder.next_u64();
        run_one(&cfg, name, &prop, seed, case)?;
    }
    Ok(())
}

fn run_one(
    cfg: &Config,
    name: &str,
    prop: &impl Fn(&mut Source) -> Result<(), String>,
    seed: u64,
    case: u32,
) -> Result<(), Failure> {
    let mut src = Source::fresh(seed);
    let original = match run_prop(prop, &mut src) {
        Ok(()) => return Ok(()),
        Err(msg) => msg,
    };
    let (choices, minimal, shrink_steps) = shrink(cfg, prop, src.trace, original.clone());
    Err(Failure {
        property: name.to_string(),
        seed,
        case,
        original,
        minimal,
        shrink_steps,
        choices,
    })
}

thread_local! {
    /// True while the harness is intentionally catching panics; the
    /// quiet hook suppresses the default backtrace spew so hundreds of
    /// shrink replays don't flood the test output.
    static CAPTURING: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

static QUIET_HOOK: std::sync::Once = std::sync::Once::new();

fn install_quiet_hook() {
    QUIET_HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !CAPTURING.with(|c| c.get()) {
                prev(info);
            }
        }));
    });
}

/// Run the property once, converting panics into `Err`.
fn run_prop(
    prop: &impl Fn(&mut Source) -> Result<(), String>,
    src: &mut Source,
) -> Result<(), String> {
    install_quiet_hook();
    CAPTURING.with(|c| c.set(true));
    let caught = catch_unwind(AssertUnwindSafe(|| prop(src)));
    CAPTURING.with(|c| c.set(false));
    match caught {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "panic (non-string payload)".to_string());
            Err(format!("panic: {msg}"))
        }
    }
}

// ---- shrinking ---------------------------------------------------------

/// Does the edited stream still fail? If so, return the *consumed*
/// prefix (trailing unused choices are dropped for free) and the
/// failure message.
fn still_fails(
    prop: &impl Fn(&mut Source) -> Result<(), String>,
    candidate: &[u64],
) -> Option<(Vec<u64>, String)> {
    let mut src = Source::replay(candidate.to_vec());
    match run_prop(prop, &mut src) {
        Err(msg) => {
            let mut consumed = src.trace;
            consumed.truncate(candidate.len());
            Some((consumed, msg))
        }
        Ok(()) => None,
    }
}

/// Lexicographic-by-(length, values) order: the shrinker only ever
/// moves strictly downward in this order, so it terminates.
fn simpler(a: &[u64], b: &[u64]) -> bool {
    (a.len(), a) < (b.len(), b)
}

fn shrink(
    cfg: &Config,
    prop: &impl Fn(&mut Source) -> Result<(), String>,
    start: Vec<u64>,
    start_msg: String,
) -> (Vec<u64>, String, u32) {
    let mut best = start;
    let mut best_msg = start_msg;
    let mut steps = 0u32;
    let mut budget = cfg.max_shrink;

    'outer: loop {
        for cand in candidates(&best) {
            if budget == 0 {
                break 'outer;
            }
            budget -= 1;
            if !simpler(&cand, &best) {
                continue;
            }
            if let Some((consumed, msg)) = still_fails(prop, &cand) {
                best = if simpler(&consumed, &cand) { consumed } else { cand };
                best_msg = msg;
                steps += 1;
                continue 'outer; // restart candidate generation from the new best
            }
        }
        break;
    }
    (best, best_msg, steps)
}

/// Candidate edits, most aggressive first: delete big chunks, then
/// small ones, then zero/halve/decrement single choices.
fn candidates(best: &[u64]) -> Vec<Vec<u64>> {
    let n = best.len();
    let mut out = Vec::new();
    if n == 0 {
        return out;
    }
    // Chunk deletions: halves, quarters, …, single elements.
    let mut size = n.div_ceil(2);
    loop {
        let mut start = 0;
        while start < n {
            let end = (start + size).min(n);
            let mut cand = Vec::with_capacity(n - (end - start));
            cand.extend_from_slice(&best[..start]);
            cand.extend_from_slice(&best[end..]);
            out.push(cand);
            start += size;
        }
        if size == 1 {
            break;
        }
        size /= 2;
    }
    // Pointwise value minimization.
    for i in 0..n {
        let v = best[i];
        if v == 0 {
            continue;
        }
        for replacement in [0, v / 2, v - 1] {
            if replacement != v {
                let mut cand = best.to_vec();
                cand[i] = replacement;
                out.push(cand);
            }
        }
    }
    out
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---- assertion macros --------------------------------------------------

/// Assert a condition inside a property; on failure, returns an `Err`
/// counterexample instead of panicking (so shrinking stays quiet).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Assert equality inside a property; both sides are captured in the
/// counterexample message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err(format!(
                "assertion failed: `{:?}` == `{:?}` ({}:{})",
                a,
                b,
                file!(),
                line!()
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err(format!($($fmt)+));
        }
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return Err(format!(
                "assertion failed: `{:?}` != `{:?}` ({}:{})",
                a,
                b,
                file!(),
                line!()
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Config {
        Config { cases: 64, max_shrink: 4096 }
    }

    #[test]
    fn passing_property_passes() {
        check("sum_is_commutative", |s| {
            let a = s.u64_in(0..1000);
            let b = s.u64_in(0..1000);
            prop_assert_eq!(a + b, b + a);
            Ok(())
        });
    }

    #[test]
    fn scalar_generators_respect_ranges() {
        check("generator_ranges", |s| {
            let u = s.u64_in(10..20);
            prop_assert!((10..20).contains(&u), "u64_in out of range: {u}");
            let i = s.i64_in(-5..5);
            prop_assert!((-5..5).contains(&i), "i64_in out of range: {i}");
            let f = s.f64_in(1.0, 2.0);
            prop_assert!((1.0..2.0).contains(&f), "f64_in out of range: {f}");
            let v = s.vec_with(2..5, |s| s.u8_in(0..3));
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 3));
            let t = s.string(0..8, "ab");
            prop_assert!(t.chars().all(|c| c == 'a' || c == 'b'));
            prop_assert!(s.any_finite_f64().is_finite());
            Ok(())
        });
    }

    #[test]
    fn failing_property_shrinks_to_minimal_vector() {
        // "No element may be >= 10" over vecs of 0..100: the minimal
        // counterexample is the single-element vector [10].
        let failure = run_check(cfg(), "demo_all_below_ten", |s| {
            let v = s.vec_with(0..64, |s| s.u64_in(0..100));
            prop_assert!(v.iter().all(|&x| x < 10), "element >= 10 in {v:?}");
            Ok(())
        })
        .expect_err("property must fail");

        // Extract the minimal generated value by replaying the choices.
        let seen = std::cell::RefCell::new(Vec::new());
        let _ = replay_choices(&failure.choices, |s| {
            *seen.borrow_mut() = s.vec_with(0..64, |s| s.u64_in(0..100));
            Err("probe".to_string())
        });
        assert_eq!(seen.into_inner(), vec![10], "shrinker must reach the minimum");
        assert!(failure.shrink_steps > 0);
        assert!(failure.report().contains(&format!("{SEED_ENV}={}", failure.seed)));
    }

    #[test]
    fn reported_seed_replays_the_failure() {
        let prop = |s: &mut Source| {
            let v = s.vec_with(0..64, |s| s.u64_in(0..1000));
            prop_assert!(v.iter().sum::<u64>() < 900, "sum too large: {v:?}");
            Ok(())
        };
        let failure = run_check(cfg(), "demo_sum_bound", prop).expect_err("must fail");
        // A fresh source with the reported seed reproduces the original
        // (pre-shrink) counterexample exactly.
        let mut src = Source::fresh(failure.seed);
        let replayed = run_prop(&prop, &mut src).expect_err("seed must reproduce the failure");
        assert_eq!(replayed, failure.original);
    }

    #[test]
    fn whole_run_is_deterministic() {
        let prop = |s: &mut Source| {
            let v = s.vec_with(0..32, |s| s.u64_in(0..50));
            prop_assert!(v.len() < 20, "long vector: {v:?}");
            Ok(())
        };
        let a = run_check(cfg(), "demo_determinism", prop).expect_err("must fail");
        let b = run_check(cfg(), "demo_determinism", prop).expect_err("must fail");
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.case, b.case);
        assert_eq!(a.choices, b.choices);
        assert_eq!(a.minimal, b.minimal);
    }

    #[test]
    fn panics_are_caught_and_shrunk() {
        let failure = run_check(cfg(), "demo_panic", |s| {
            let v = s.vec_with(0..16, |s| s.u64_in(0..8));
            if v.contains(&7) {
                panic!("boom on {v:?}");
            }
            Ok(())
        })
        .expect_err("must fail");
        assert!(failure.minimal.contains("panic: boom"), "{}", failure.minimal);
        // Minimal counterexample is the one-element vector [7]: a length
        // choice of 1 and an element choice of 7.
        assert_eq!(failure.choices, vec![1, 7]);
    }

    #[test]
    fn shrinking_is_bounded() {
        let tight = Config { cases: 8, max_shrink: 3 };
        let failure = run_check(tight, "demo_budget", |s| {
            let v = s.vec_with(8..64, |s| s.u64_in(0..1_000_000));
            prop_assert!(v.is_empty(), "never");
            Ok(())
        })
        .expect_err("must fail");
        assert!(failure.shrink_steps <= 3);
    }
}
