//! Property-based tests on the virtual-time machinery.

use msgr_check::{check, prop_assert, prop_assert_eq, Source};

use msgr_gvt::{Coordinator, CoordinatorAction, CtrlMsg, Participant, TwEntry, TwNode};
use msgr_vm::Vt;

// ---- Time-Warp log -----------------------------------------------------------

/// Feed a random interleaving of record/straggler operations through a
/// TwNode alongside a naive oracle (a sorted list); the node's view of
/// "what has been processed" must always match the oracle.
#[test]
fn tw_log_matches_oracle() {
    check("tw_log_matches_oracle", |s: &mut Source| {
        let ops = s.vec_with(1..64, |s| (s.f64_in(0.0, 64.0), s.u64_in(1..1000)));
        let mut node: TwNode<u64, u64> = TwNode::new();
        let mut oracle: Vec<(Vt, u64)> = Vec::new(); // processed keys, sorted
        let mut version: u64 = 0;

        for (t, id) in ops {
            let key = (Vt::new(t), id);
            if oracle.contains(&key) {
                continue; // ids are unique per event in the real system
            }
            if node.is_straggler(key) {
                // Roll back everything at or after the straggler.
                let rb = node.rollback(key).expect("straggler implies rollback");
                let undone = oracle.iter().filter(|k| **k >= key).count();
                prop_assert_eq!(rb.reexecute.len(), undone);
                oracle.retain(|k| *k < key);
                // Snapshots come back earliest-first, one per undone
                // event, and each is a version recorded at or before
                // the current one (checked via monotone versions).
                prop_assert_eq!(rb.restores.len(), undone);
                prop_assert!(rb.restores.iter().all(|v| *v <= version));
                prop_assert!(rb.restores.windows(2).all(|w| w[0] <= w[1]));
            }
            version += 1;
            node.record(TwEntry { key, pre_state: version, input: id, sent: vec![] });
            oracle.push(key);
            oracle.sort();
            prop_assert_eq!(node.last_key(), oracle.last().copied());
            prop_assert_eq!(node.log_len(), oracle.len());
        }
        Ok(())
    });
}

#[test]
fn fossil_collection_never_loses_the_tail() {
    check("fossil_collection_never_loses_the_tail", |s: &mut Source| {
        let times = s.vec_with(1..64, |s| s.f64_in(0.0, 100.0));
        let gvt = s.f64_in(0.0, 120.0);
        let mut node: TwNode<(), u32> = TwNode::new();
        let mut sorted = times.clone();
        sorted.sort_by(f64::total_cmp);
        sorted.dedup();
        for (i, t) in sorted.iter().enumerate() {
            node.record(TwEntry {
                key: (Vt::new(*t), i as u64),
                pre_state: (),
                input: 0,
                sent: vec![],
            });
        }
        let before = node.log_len();
        let reclaimed = node.fossil_collect(Vt::new(gvt));
        prop_assert_eq!(node.log_len() + reclaimed, before);
        prop_assert!(node.log_len() >= 1, "at least one entry retained");
        // Everything still rollback-able is at or after the oldest
        // retained entry; a straggler above GVT must still be servable.
        let last = node.last_key().unwrap();
        if last.0 > Vt::new(gvt) {
            prop_assert!(node.rollback(last).is_some());
        }
        Ok(())
    });
}

// ---- GVT protocol --------------------------------------------------------------

/// A quiescent system (no messages in flight, all counters consistent)
/// must complete a round in one wave and report exactly the minimum.
#[test]
fn quiescent_round_reports_exact_minimum() {
    check("quiescent_round_reports_exact_minimum", |s: &mut Source| {
        let mins = s.vec_with(1..48, |s| s.f64_in(0.0, 1e6));
        let n = mins.len();
        let mut coord = Coordinator::new(n);
        let mut parts: Vec<Participant> = (0..n as u16).map(Participant::new).collect();
        let CtrlMsg::Cut { round } = coord.begin_round().unwrap() else { unreachable!() };
        let mut outcome = None;
        for (p, &m) in parts.iter_mut().zip(&mins) {
            let ack = p.on_cut(round, Vt::new(m));
            if let CoordinatorAction::Advance { gvt } = coord.on_ack(&ack) {
                outcome = Some(gvt);
            }
        }
        let expect = mins.iter().copied().fold(f64::INFINITY, f64::min);
        prop_assert_eq!(outcome, Some(Vt::new(expect)));
        Ok(())
    });
}

/// Messages recorded through on_send/on_receive in matched pairs keep
/// the books balanced: the next quiescent round still completes
/// without polling.
#[test]
fn balanced_traffic_needs_no_polling() {
    check("balanced_traffic_needs_no_polling", |s: &mut Source| {
        let transfers = s.vec_with(0..64, |s| (s.u8_in(0..8), s.u8_in(0..8), s.f64_in(0.0, 100.0)));
        let n = 8;
        let mut coord = Coordinator::new(n);
        let mut parts: Vec<Participant> = (0..n as u16).map(Participant::new).collect();
        for (src, dst, t) in transfers {
            let stamp = parts[src as usize].stamp();
            parts[src as usize].on_send(Vt::new(t));
            parts[dst as usize].on_receive(stamp, Vt::new(t));
        }
        let CtrlMsg::Cut { round } = coord.begin_round().unwrap() else { unreachable!() };
        let mut done = false;
        for p in parts.iter_mut() {
            let ack = p.on_cut(round, Vt::new(50.0));
            match coord.on_ack(&ack) {
                CoordinatorAction::Advance { .. } => done = true,
                CoordinatorAction::PollAll { .. } => {
                    prop_assert!(false, "balanced books must not poll");
                }
                CoordinatorAction::Wait => {}
            }
        }
        prop_assert!(done);
        prop_assert_eq!(coord.polls_sent(), 0);
        Ok(())
    });
}
