//! Time-Warp (optimistic virtual time) support.
//!
//! §2.2: "Optimistic approaches permit processors to advance their local
//! virtual times at their own pace but require that a computation be
//! rolled back if a 'straggler' Messenger arrives … This, in turn, may
//! require the sending of 'anti-Messengers' to cancel Messengers that
//! departed during the time that is being rolled back."
//!
//! The unit of rollback is the *logical node* (the classical Time-Warp
//! "logical process"): between two navigational statements a messenger
//! reads and writes exactly one node's variables, so an execution segment
//! is an event at that node. [`TwNode`] keeps, per node, the log of
//! processed events: the node-variable snapshot taken *before* each
//! event, the input messenger as it arrived (messengers are plain data —
//! see `msgr-vm` — so re-execution is literally re-enqueueing the saved
//! state), and references to every messenger the event sent (for
//! anti-messenger generation).

use msgr_vm::Vt;

/// The ordering key of an event: timestamp, then a deterministic
/// tiebreaker (we use the messenger id), so all daemons agree on event
/// order even at equal virtual times.
pub type EventKey = (Vt, u64);

/// A reference to a messenger sent by a processed event — enough to
/// chase it with an anti-messenger.
#[derive(Debug, Clone, PartialEq)]
pub struct SentRef {
    /// The sent messenger's id.
    pub id: u64,
    /// The daemon it was sent to.
    pub dest: u16,
    /// The messenger's virtual time — carried on the anti-messenger so
    /// GVT accounting stays tight (an anti with timestamp 0 would pin
    /// the GVT estimate at 0 forever).
    pub ts: Vt,
}

/// One processed event in a node's log.
#[derive(Debug, Clone)]
pub struct TwEntry<S, M> {
    /// Ordering key (timestamp, messenger id).
    pub key: EventKey,
    /// Node-variable snapshot taken before the event executed.
    pub pre_state: S,
    /// The input messenger exactly as it arrived (for re-execution).
    pub input: M,
    /// Messengers sent by this event.
    pub sent: Vec<SentRef>,
}

/// What a rollback demands of the daemon.
#[derive(Debug, Clone)]
pub struct Rollback<S, M> {
    /// Pre-event snapshots of every undone event, in key order (earliest
    /// first). `restores[0]` is the snapshot taken before the earliest
    /// undone event — the state to restore. Later entries let callers
    /// with *elided* snapshots (e.g. `S = Option<Vars>` where `None`
    /// marks a provably write-free event) walk forward to the first
    /// materialized one.
    pub restores: Vec<S>,
    /// Re-enqueue these input messengers (in key order).
    pub reexecute: Vec<(EventKey, M)>,
    /// Send anti-messengers for these.
    pub cancel: Vec<SentRef>,
}

/// The Time-Warp log of one logical node.
#[derive(Debug, Clone)]
pub struct TwNode<S, M> {
    processed: Vec<TwEntry<S, M>>, // ascending by key
    rollbacks: u64,
    fossils: u64,
}

impl<S, M> Default for TwNode<S, M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S, M> TwNode<S, M> {
    /// A node with an empty event log.
    pub fn new() -> Self {
        TwNode { processed: Vec::new(), rollbacks: 0, fossils: 0 }
    }

    /// The key of the most recent processed event.
    pub fn last_key(&self) -> Option<EventKey> {
        self.processed.last().map(|e| e.key)
    }

    /// Whether an arriving event with `key` is a straggler (arrives in
    /// this node's past).
    pub fn is_straggler(&self, key: EventKey) -> bool {
        self.last_key().is_some_and(|last| key < last)
    }

    /// Number of rollbacks performed.
    pub fn rollbacks(&self) -> u64 {
        self.rollbacks
    }

    /// Number of log entries reclaimed by fossil collection.
    pub fn fossils_collected(&self) -> u64 {
        self.fossils
    }

    /// Number of retained log entries.
    pub fn log_len(&self) -> usize {
        self.processed.len()
    }

    /// Record a processed event.
    ///
    /// # Panics
    ///
    /// Panics if `entry.key` is not strictly greater than the last
    /// recorded key — the daemon must roll back first.
    pub fn record(&mut self, entry: TwEntry<S, M>) {
        if let Some(last) = self.last_key() {
            assert!(
                entry.key > last,
                "recording event {:?} at or before last processed {:?}",
                entry.key,
                last
            );
        }
        self.processed.push(entry);
    }

    /// Undo every processed event with key `>= key`. Returns `None` if
    /// nothing needs undoing.
    pub fn rollback(&mut self, key: EventKey) -> Option<Rollback<S, M>> {
        let cut = self.processed.partition_point(|e| e.key < key);
        if cut == self.processed.len() {
            return None;
        }
        let mut undone = self.processed.drain(cut..);
        self.rollbacks += 1;
        let first = undone.next().expect("undone nonempty");
        let mut restores = vec![first.pre_state];
        let mut cancel = first.sent;
        let mut reexecute = vec![(first.key, first.input)];
        for e in undone {
            restores.push(e.pre_state);
            cancel.extend(e.sent);
            reexecute.push((e.key, e.input));
        }
        Some(Rollback { restores, reexecute, cancel })
    }

    /// Whether an event with the given input messenger id is in the log.
    pub fn contains_input(&self, input_id: u64) -> bool {
        self.processed.iter().any(|e| e.key.1 == input_id)
    }

    /// Handle an anti-messenger whose positive copy was already
    /// processed here: roll back from that event, *discarding* the
    /// annihilated input rather than re-executing it.
    pub fn annihilate_processed(&mut self, input_id: u64) -> Option<Rollback<S, M>> {
        let key = self.processed.iter().find(|e| e.key.1 == input_id)?.key;
        let mut rb = self.rollback(key)?;
        rb.reexecute.retain(|(k, _)| k.1 != input_id);
        Some(rb)
    }

    /// Drop log entries with timestamps strictly below `gvt`; they can
    /// never be rolled back again. Returns how many were reclaimed.
    pub fn fossil_collect(&mut self, gvt: Vt) -> usize {
        let cut = self.processed.partition_point(|e| e.key.0 < gvt);
        // Keep at least one entry: its pre_state may still be needed if an
        // event at exactly `gvt` must be rolled back.
        let cut = cut.min(self.processed.len().saturating_sub(1));
        self.processed.drain(..cut);
        self.fossils += cut as u64;
        cut
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Node = TwNode<i64, &'static str>;

    fn key(t: f64, id: u64) -> EventKey {
        (Vt::new(t), id)
    }

    fn entry(
        t: f64,
        id: u64,
        pre: i64,
        input: &'static str,
        sent: Vec<SentRef>,
    ) -> TwEntry<i64, &'static str> {
        TwEntry { key: key(t, id), pre_state: pre, input, sent }
    }

    #[test]
    fn straggler_detection() {
        let mut n = Node::new();
        assert!(!n.is_straggler(key(1.0, 1)));
        n.record(entry(1.0, 1, 0, "a", vec![]));
        n.record(entry(2.0, 2, 10, "b", vec![]));
        assert!(n.is_straggler(key(1.5, 9)));
        assert!(!n.is_straggler(key(2.5, 1)));
        // Equal timestamp: tiebreak by id.
        assert!(n.is_straggler(key(2.0, 1)));
        assert!(!n.is_straggler(key(2.0, 3)));
    }

    #[test]
    fn rollback_restores_earliest_pre_state_and_cancels_sends() {
        let mut n = Node::new();
        n.record(entry(1.0, 1, 100, "e1", vec![SentRef { id: 11, dest: 2, ts: Vt::new(1.0) }]));
        n.record(entry(2.0, 2, 200, "e2", vec![SentRef { id: 22, dest: 3, ts: Vt::new(2.0) }]));
        n.record(entry(3.0, 3, 300, "e3", vec![]));
        let rb = n.rollback(key(2.0, 0)).unwrap();
        assert_eq!(rb.restores, vec![200, 300]); // earliest undone (e2) first
        assert_eq!(rb.reexecute, vec![(key(2.0, 2), "e2"), (key(3.0, 3), "e3")]);
        assert_eq!(rb.cancel, vec![SentRef { id: 22, dest: 3, ts: Vt::new(2.0) }]);
        assert_eq!(n.last_key(), Some(key(1.0, 1)));
        assert_eq!(n.rollbacks(), 1);
    }

    #[test]
    fn rollback_of_future_is_noop() {
        let mut n = Node::new();
        n.record(entry(1.0, 1, 0, "a", vec![]));
        assert!(n.rollback(key(5.0, 0)).is_none());
        assert_eq!(n.rollbacks(), 0);
    }

    #[test]
    fn rollback_everything() {
        let mut n = Node::new();
        n.record(entry(1.0, 1, 7, "a", vec![]));
        n.record(entry(2.0, 2, 8, "b", vec![]));
        let rb = n.rollback(key(0.0, 0)).unwrap();
        assert_eq!(rb.restores, vec![7, 8]);
        assert_eq!(rb.reexecute.len(), 2);
        assert_eq!(n.last_key(), None);
    }

    #[test]
    fn annihilate_processed_discards_the_victim() {
        let mut n = Node::new();
        n.record(entry(1.0, 1, 7, "a", vec![]));
        n.record(entry(2.0, 42, 8, "victim", vec![SentRef { id: 9, dest: 1, ts: Vt::new(2.0) }]));
        n.record(entry(3.0, 3, 9, "c", vec![]));
        let rb = n.annihilate_processed(42).unwrap();
        assert_eq!(rb.restores, vec![8, 9]);
        // "victim" is gone; "c" gets re-executed.
        assert_eq!(rb.reexecute, vec![(key(3.0, 3), "c")]);
        assert_eq!(rb.cancel, vec![SentRef { id: 9, dest: 1, ts: Vt::new(2.0) }]);
        assert!(n.annihilate_processed(42).is_none());
    }

    #[test]
    #[should_panic(expected = "at or before last processed")]
    fn out_of_order_record_panics() {
        let mut n = Node::new();
        n.record(entry(2.0, 2, 0, "a", vec![]));
        n.record(entry(1.0, 1, 0, "b", vec![]));
    }

    #[test]
    fn fossil_collection_keeps_a_safety_entry() {
        let mut n = Node::new();
        for i in 0..10u64 {
            n.record(entry(i as f64, i, i as i64, "e", vec![]));
        }
        let reclaimed = n.fossil_collect(Vt::new(5.0));
        assert_eq!(reclaimed, 5);
        assert_eq!(n.log_len(), 5);
        assert_eq!(n.fossils_collected(), 5);
        // Collecting everything still retains the newest entry.
        let _ = n.fossil_collect(Vt::new(100.0));
        assert_eq!(n.log_len(), 1);
        // Rollback at the retained entry still works.
        assert!(n.rollback(key(9.0, 0)).is_some());
    }

    #[test]
    fn rollback_then_reprocess_in_order() {
        let mut n = Node::new();
        n.record(entry(1.0, 1, 0, "a", vec![]));
        n.record(entry(3.0, 3, 10, "c", vec![]));
        // Straggler at t=2 arrives.
        assert!(n.is_straggler(key(2.0, 2)));
        let rb = n.rollback(key(2.0, 2)).unwrap();
        assert_eq!(rb.restores, vec![10]);
        // Daemon would now execute t=2 then re-execute t=3.
        n.record(entry(2.0, 2, 10, "b", vec![]));
        n.record(entry(3.0, 3, 20, "c", vec![]));
        assert_eq!(n.last_key(), Some(key(3.0, 3)));
    }
}
