//! The per-daemon queue of suspended messengers.

use msgr_vm::Vt;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

#[derive(Debug)]
struct Entry<T> {
    wake: Vt,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.wake == other.wake && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.wake, self.seq).cmp(&(other.wake, other.seq))
    }
}

/// A priority queue of items keyed by wake-up virtual time, FIFO within
/// equal times. This is the paper's single-processor virtual-time
/// implementation ("a priority queue, such that events are time-stamped
/// with the virtual time at which they are to execute") and the
/// per-daemon suspension queue in the distributed setting.
///
/// # Example
///
/// ```
/// use msgr_gvt::PendingQueue;
/// use msgr_vm::Vt;
///
/// let mut q = PendingQueue::new();
/// q.push(Vt::new(1.0), "late");
/// q.push(Vt::new(0.5), "early");
/// assert_eq!(q.min_wake(), Some(Vt::new(0.5)));
/// assert_eq!(q.pop_runnable(Vt::new(0.5)), Some((Vt::new(0.5), "early")));
/// assert_eq!(q.pop_runnable(Vt::new(0.5)), None); // 1.0 > GVT
/// ```
#[derive(Debug)]
pub struct PendingQueue<T> {
    heap: BinaryHeap<Reverse<Entry<T>>>,
    seq: u64,
}

impl<T> Default for PendingQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> PendingQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        PendingQueue { heap: BinaryHeap::new(), seq: 0 }
    }

    /// Suspend `item` until virtual time `wake`.
    pub fn push(&mut self, wake: Vt, item: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { wake, seq, item }));
    }

    /// The earliest wake time, if any.
    pub fn min_wake(&self) -> Option<Vt> {
        self.heap.peek().map(|Reverse(e)| e.wake)
    }

    /// Pop the earliest item if its wake time is `<= gvt` (the
    /// conservative execution rule). Items with equal wake times come out
    /// in insertion order.
    pub fn pop_runnable(&mut self, gvt: Vt) -> Option<(Vt, T)> {
        if self.min_wake()? <= gvt {
            self.heap.pop().map(|Reverse(e)| (e.wake, e.item))
        } else {
            None
        }
    }

    /// Pop the earliest item unconditionally (optimistic execution).
    pub fn pop_min(&mut self) -> Option<(Vt, T)> {
        self.heap.pop().map(|Reverse(e)| (e.wake, e.item))
    }

    /// Number of suspended items.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Remove every item for which `pred` returns true, returning them
    /// (used for anti-messenger annihilation). O(n).
    pub fn drain_matching(&mut self, mut pred: impl FnMut(&T) -> bool) -> Vec<(Vt, T)> {
        let mut kept = BinaryHeap::new();
        let mut out = Vec::new();
        for Reverse(e) in self.heap.drain() {
            if pred(&e.item) {
                out.push((e.wake, e.item));
            } else {
                kept.push(Reverse(e));
            }
        }
        self.heap = kept;
        out.sort_by_key(|(wake, _)| *wake);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time_then_fifo() {
        let mut q = PendingQueue::new();
        q.push(Vt::new(1.0), "b1");
        q.push(Vt::new(0.5), "a");
        q.push(Vt::new(1.0), "b2");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop_min(), Some((Vt::new(0.5), "a")));
        assert_eq!(q.pop_min(), Some((Vt::new(1.0), "b1")));
        assert_eq!(q.pop_min(), Some((Vt::new(1.0), "b2")));
        assert!(q.is_empty());
    }

    #[test]
    fn pop_runnable_respects_gvt() {
        let mut q = PendingQueue::new();
        q.push(Vt::new(2.0), 20);
        q.push(Vt::new(1.0), 10);
        assert_eq!(q.pop_runnable(Vt::new(0.0)), None);
        assert_eq!(q.pop_runnable(Vt::new(1.0)), Some((Vt::new(1.0), 10)));
        assert_eq!(q.pop_runnable(Vt::new(1.5)), None);
        assert_eq!(q.pop_runnable(Vt::new(2.0)), Some((Vt::new(2.0), 20)));
    }

    #[test]
    fn drain_matching_removes_and_sorts() {
        let mut q = PendingQueue::new();
        for i in 0..10 {
            q.push(Vt::new(10.0 - i as f64), i);
        }
        let evens = q.drain_matching(|i| i % 2 == 0);
        assert_eq!(evens.len(), 5);
        assert!(evens.windows(2).all(|w| w[0].0 <= w[1].0));
        assert_eq!(q.len(), 5);
        let odds: Vec<i32> = std::iter::from_fn(|| q.pop_min().map(|(_, i)| i)).collect();
        assert_eq!(odds, vec![9, 7, 5, 3, 1]);
    }

    #[test]
    fn drain_matching_edge_cases() {
        // Empty queue: nothing to drain, nothing disturbed.
        let mut q: PendingQueue<i32> = PendingQueue::new();
        assert!(q.drain_matching(|_| true).is_empty());
        // All match: queue is emptied, result sorted by wake time.
        for i in 0..5 {
            q.push(Vt::new(5.0 - i as f64), i);
        }
        let all = q.drain_matching(|_| true);
        assert_eq!(all.len(), 5);
        assert!(q.is_empty());
        assert!(all.windows(2).all(|w| w[0].0 <= w[1].0));
        // None match: queue order (time, then FIFO) is preserved.
        q.push(Vt::new(1.0), 100);
        q.push(Vt::new(1.0), 101);
        q.push(Vt::new(0.5), 99);
        assert!(q.drain_matching(|_| false).is_empty());
        assert_eq!(q.pop_min(), Some((Vt::new(0.5), 99)));
        assert_eq!(q.pop_min(), Some((Vt::new(1.0), 100)));
        assert_eq!(q.pop_min(), Some((Vt::new(1.0), 101)), "FIFO within equal wake survives");
    }

    #[test]
    fn min_wake_tracks_head() {
        let mut q = PendingQueue::new();
        assert_eq!(q.min_wake(), None);
        q.push(Vt::new(3.0), ());
        q.push(Vt::new(1.0), ());
        assert_eq!(q.min_wake(), Some(Vt::new(1.0)));
        q.pop_min();
        assert_eq!(q.min_wake(), Some(Vt::new(3.0)));
    }
}
