//! # msgr-gvt — global virtual time
//!
//! §2.2 of the paper: "virtual time is an ordering of dynamically created
//! events … The globally minimal time obtained from this system-wide
//! synchronization, which is referred to as global virtual time (GVT),
//! must be guaranteed to monotonically increase over the entire system."
//!
//! MESSENGERS "supports both a conservative and an optimistic approach";
//! so does this crate:
//!
//! * [`PendingQueue`] — the per-daemon priority queue of suspended
//!   messengers (`M_sched_time_abs` / `M_sched_time_dlt`).
//! * [`protocol`] — a coordinator-based GVT estimation protocol in the
//!   style of Mattern's two-cut algorithm: epochs ("colors") stamped on
//!   every migration, send/receive counting with re-polling until the
//!   previous epoch's messages have all drained, and a late-message
//!   minimum folded into the estimate. The protocol is expressed as pure
//!   state machines over [`protocol::CtrlMsg`] values, so the same code
//!   drives both the simulated cluster (where control traffic pays real
//!   simulated network cost — the paper's "significant communication
//!   overhead") and the threaded runtime.
//! * [`timewarp`] — per-logical-node Time-Warp support: input logging,
//!   state snapshots, straggler detection, rollback, anti-message
//!   generation, and fossil collection, used by the optimistic mode of
//!   the simulation platform.
//!
//! The conservative execution rule is: a suspended messenger with wake
//! time `t` may run once `t <= GVT`. Because every pending wake time is
//! part of the local minimum reported to the coordinator, GVT reaches
//! exactly the global minimum wake time, those messengers run, and the
//! clock advances — the paper's matrix multiplication alternates its
//! `distribute_A` (integer ticks) and `rotate_B` (half ticks) messengers
//! this way.

#![warn(missing_docs)]

pub mod protocol;
pub mod timewarp;

mod queue;

pub use protocol::{Coordinator, CoordinatorAction, CtrlMsg, Participant};
pub use queue::PendingQueue;
pub use timewarp::{Rollback, SentRef, TwEntry, TwNode};

pub use msgr_vm::Vt;
